"""repro — grammar-based time series anomaly discovery.

A from-scratch Python reproduction of *"Time series anomaly discovery
with grammar-based compression"* (Senin et al., EDBT 2015): SAX
discretization, Sequitur grammar induction, the rule density curve, and
the RRA (Rare Rule Anomaly) variable-length discord algorithm, plus the
HOTSAX and brute-force baselines the paper compares against.

Quickstart
----------
>>> import numpy as np
>>> from repro import GrammarAnomalyDetector
>>> t = np.arange(4000)
>>> series = np.sin(2 * np.pi * t / 200)
>>> series[2000:2120] = -series[2000:2120]        # plant an anomaly
>>> detector = GrammarAnomalyDetector(window=100, paa_size=4, alphabet_size=4)
>>> _ = detector.fit(series)
>>> best = detector.discords(num_discords=1).best
>>> 1900 <= best.start <= 2120
True
"""

from repro.core import (
    Anomaly,
    Discord,
    EnsembleDetector,
    EnsembleDiscord,
    EnsembleMember,
    EnsembleResult,
    GrammarAnomalyDetector,
    Motif,
    ParameterGridStudy,
    ParameterSuggestion,
    PipelineResult,
    RRAResult,
    dominant_period,
    find_density_anomalies,
    find_discord,
    find_discords,
    find_motifs,
    rule_density_curve,
    suggest_parameters,
)
from repro.observability import (
    MetricsRegistry,
    NullMetrics,
    deterministic_view,
    read_run_report,
    write_run_report,
)
from repro.streaming import StreamAlarm, StreamingAnomalyDetector
from repro.exceptions import (
    CheckpointError,
    DataQualityError,
    DatasetError,
    DiscordSearchError,
    DiscretizationError,
    GrammarError,
    GridCellError,
    ParameterError,
    ReproError,
    TrajectoryError,
)
from repro.cache import ResultCache, SearchContext
from repro.resilience import CancellationToken, SearchBudget, SearchStatus
from repro.grammar import Grammar, GrammarRule, induce_grammar, repair_grammar
from repro.sax import Discretization, NumerosityReduction, discretize, sax_word

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Anomaly",
    "Discord",
    "EnsembleDetector",
    "EnsembleDiscord",
    "EnsembleMember",
    "EnsembleResult",
    "GrammarAnomalyDetector",
    "ParameterGridStudy",
    "PipelineResult",
    "RRAResult",
    "find_density_anomalies",
    "find_discord",
    "find_discords",
    "rule_density_curve",
    "Motif",
    "find_motifs",
    "ParameterSuggestion",
    "dominant_period",
    "suggest_parameters",
    # observability
    "MetricsRegistry",
    "NullMetrics",
    "write_run_report",
    "read_run_report",
    "deterministic_view",
    # streaming
    "StreamAlarm",
    "StreamingAnomalyDetector",
    # cache
    "ResultCache",
    "SearchContext",
    # resilience
    "CancellationToken",
    "SearchBudget",
    "SearchStatus",
    # grammar
    "Grammar",
    "GrammarRule",
    "induce_grammar",
    "repair_grammar",
    # sax
    "Discretization",
    "NumerosityReduction",
    "discretize",
    "sax_word",
    # exceptions
    "ReproError",
    "ParameterError",
    "DiscretizationError",
    "GrammarError",
    "DiscordSearchError",
    "DatasetError",
    "GridCellError",
    "DataQualityError",
    "CheckpointError",
    "TrajectoryError",
]

"""Dataset and result I/O: UCR-style files, dataset bundles, result export.

Pieces a downstream user needs around the algorithms:

* :func:`load_series` / :func:`save_series` — plain one-column text
  series (what the CLI consumes);
* :func:`load_ucr` — the UCR time-series-archive format (one series per
  line, first column a label), the de-facto community interchange
  format;
* :func:`save_dataset` / :func:`load_dataset` — a
  :class:`~repro.datasets.base.Dataset` bundle (series + ground truth +
  recommended parameters) as ``.npz``;
* :func:`anomalies_to_json` / :func:`anomalies_from_json` — result
  export for downstream tooling.
"""

from __future__ import annotations

import json
import pathlib
from typing import Sequence, Union

import numpy as np

from repro.core.anomaly import Anomaly, Discord
from repro.datasets.base import Dataset
from repro.exceptions import DatasetError, ReproError

PathLike = Union[str, pathlib.Path]


# -- plain series -----------------------------------------------------------

def load_series(path: PathLike, *, column: int = 0) -> np.ndarray:
    """Load a 1-d series from a text file (CSV or whitespace-separated).

    Non-finite entries are dropped (use
    :func:`repro.timeseries.preprocess.fill_missing` when positions
    matter).
    """
    try:
        data = np.genfromtxt(path, delimiter=None, dtype=float)
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    if data.ndim == 0:
        data = data.reshape(1)
    if data.ndim == 2:
        if column >= data.shape[1]:
            raise ReproError(
                f"column {column} requested but file has {data.shape[1]} columns"
            )
        data = data[:, column]
    series = data[np.isfinite(data)]
    if series.size == 0:
        raise ReproError(f"no numeric data found in {path}")
    return series


def save_series(path: PathLike, series: np.ndarray) -> None:
    """Write a 1-d series as one value per line."""
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ReproError(f"series must be 1-d, got shape {series.shape}")
    np.savetxt(path, series, fmt="%.10g")


# -- UCR archive format -----------------------------------------------------

def load_ucr(path: PathLike) -> list[tuple[int, np.ndarray]]:
    """Read a UCR-archive-style file: ``label v1 v2 ...`` per line.

    Accepts comma- or whitespace-separated rows.  Returns ``(label,
    values)`` pairs; the label is coerced to int (UCR class labels).
    """
    rows: list[tuple[int, np.ndarray]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                parts = line.replace(",", " ").split()
                if len(parts) < 2:
                    raise ReproError(
                        f"{path}:{line_no}: need a label plus at least one value"
                    )
                try:
                    label = int(float(parts[0]))
                    values = np.array([float(p) for p in parts[1:]])
                except ValueError as exc:
                    raise ReproError(f"{path}:{line_no}: {exc}") from exc
                rows.append((label, values))
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    if not rows:
        raise ReproError(f"{path}: no data rows")
    return rows


def ucr_to_series(
    rows: Sequence[tuple[int, np.ndarray]],
    *,
    anomalous_label: int | None = None,
) -> Dataset:
    """Concatenate UCR instances into one long series.

    When *anomalous_label* is given, the positions of instances carrying
    that label become the ground-truth anomaly intervals — a common way
    to build anomaly benchmarks from classification archives.
    """
    if not rows:
        raise DatasetError("no rows to concatenate")
    pieces = []
    anomalies: list[tuple[int, int]] = []
    position = 0
    for label, values in rows:
        if anomalous_label is not None and label == anomalous_label:
            anomalies.append((position, position + values.size))
        pieces.append(np.asarray(values, dtype=float))
        position += values.size
    return Dataset(
        name="ucr_concatenated",
        series=np.concatenate(pieces),
        anomalies=anomalies,
        description=f"{len(rows)} UCR instances concatenated",
    )


# -- dataset bundles --------------------------------------------------------

def save_dataset(path: PathLike, dataset: Dataset) -> None:
    """Persist a Dataset (series + truth + parameters) as ``.npz``."""
    np.savez_compressed(
        path,
        series=dataset.series,
        anomalies=np.array(dataset.anomalies, dtype=np.int64).reshape(-1, 2),
        meta=json.dumps(
            {
                "name": dataset.name,
                "window": dataset.window,
                "paa_size": dataset.paa_size,
                "alphabet_size": dataset.alphabet_size,
                "description": dataset.description,
            }
        ),
    )


def load_dataset(path: PathLike) -> Dataset:
    """Load a Dataset bundle written by :func:`save_dataset`."""
    try:
        bundle = np.load(path, allow_pickle=False)
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    try:
        meta = json.loads(str(bundle["meta"]))
        anomalies = [
            (int(start), int(end)) for start, end in bundle["anomalies"]
        ]
        return Dataset(
            name=meta["name"],
            series=bundle["series"],
            anomalies=anomalies,
            window=int(meta["window"]),
            paa_size=int(meta["paa_size"]),
            alphabet_size=int(meta["alphabet_size"]),
            description=meta.get("description", ""),
        )
    except KeyError as exc:
        raise ReproError(f"{path}: not a dataset bundle ({exc})") from exc


# -- result export ----------------------------------------------------------

def anomalies_to_json(anomalies: Sequence[Anomaly]) -> str:
    """Serialize detection results for downstream tooling."""
    records = []
    for anomaly in anomalies:
        record = {
            "start": anomaly.start,
            "end": anomaly.end,
            "score": anomaly.score,
            "rank": anomaly.rank,
            "source": anomaly.source,
        }
        if isinstance(anomaly, Discord):
            record["nn_distance"] = anomaly.nn_distance
            record["rule_id"] = anomaly.rule_id
        records.append(record)
    return json.dumps(records, indent=2)


def anomalies_from_json(payload: str) -> list[Anomaly]:
    """Inverse of :func:`anomalies_to_json`."""
    try:
        records = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid anomaly JSON: {exc}") from exc
    out: list[Anomaly] = []
    for record in records:
        if "nn_distance" in record:
            out.append(
                Discord(
                    start=record["start"],
                    end=record["end"],
                    score=record["score"],
                    rank=record.get("rank", 0),
                    source=record.get("source", "rra"),
                    nn_distance=record["nn_distance"],
                    rule_id=record.get("rule_id"),
                )
            )
        else:
            out.append(
                Anomaly(
                    start=record["start"],
                    end=record["end"],
                    score=record["score"],
                    rank=record.get("rank", 0),
                    source=record.get("source", "density"),
                )
            )
    return out

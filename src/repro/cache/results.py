"""(De)serialization of cached search results and ledger deltas.

A cached entry stores the search's *ledger delta* — what the search
added to its :class:`~repro.timeseries.distance.DistanceCounter` — not
the counter's absolute state, because callers routinely thread one
counter through several searches (the sweep, the pipeline's fallback
path).  Applying the delta on a hit reproduces exactly the increments
the live search would have made, so downstream ledger arithmetic
(``calls == true_calls + pruned``) is unchanged.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.anomaly import Discord
from repro.timeseries.distance import DistanceCounter

__all__ = [
    "LEDGER_FIELDS",
    "ledger_delta",
    "apply_ledger_delta",
    "discords_to_json",
    "discords_from_json",
]

LEDGER_FIELDS = ("calls", "true_calls", "lb_calls", "pruned")


def ledger_delta(before: dict, after: dict) -> dict:
    """What a search added to its counter between two ledger snapshots."""
    return {
        field: int(after[field]) - int(before[field])
        for field in LEDGER_FIELDS
    }


def apply_ledger_delta(counter: DistanceCounter, delta: dict) -> None:
    """Replay a stored ledger delta onto a live counter (cache hit)."""
    counter.calls += int(delta.get("calls", 0))
    counter.true_calls += int(delta.get("true_calls", 0))
    counter.lb_calls += int(delta.get("lb_calls", 0))
    counter.pruned += int(delta.get("pruned", 0))


def discords_to_json(discords: Iterable[Discord]) -> list:
    """JSON-able encoding of a discord list, lossless for every field."""
    return [
        {
            "start": int(d.start),
            "end": int(d.end),
            "score": float(d.score),
            "rank": int(d.rank),
            "nn_distance": float(d.nn_distance),
            "rule_id": d.rule_id,
            "source": d.source,
        }
        for d in discords
    ]


def discords_from_json(entries: Sequence[dict]) -> list:
    """Rebuild :class:`Discord` objects from :func:`discords_to_json`."""
    return [
        Discord(
            start=int(entry["start"]),
            end=int(entry["end"]),
            score=float(entry["score"]),
            rank=int(entry["rank"]),
            nn_distance=float(entry["nn_distance"]),
            rule_id=(
                None if entry["rule_id"] is None else int(entry["rule_id"])
            ),
            source=str(entry["source"]),
        )
        for entry in entries
    ]

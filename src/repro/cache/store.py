"""Persistent, content-addressed result store with size-capped LRU.

Layout: one JSON document per entry, named ``<64-hex-key>.json`` inside
the cache directory.  Each document carries a format tag and echoes its
own key; :meth:`ResultCache.get` validates both, and *any* failure —
unreadable file, truncated JSON, wrong format, key mismatch — deletes
the offender and reports a miss, so corruption can only ever cost a
recompute, never a wrong answer.

Writes are atomic (temp file + ``os.replace``, the checkpoint layer's
pattern), so concurrent readers never observe a half-written entry and
a crash mid-put leaves the store consistent.  Eviction is LRU by file
mtime — ``get`` touches entries on hit — applied after every put until
the store fits ``max_bytes``; the entry just written is never evicted,
so a single oversized result still caches (the cap is honored again as
soon as a smaller entry displaces it).

Metrics: ``cache.hit`` / ``cache.miss`` / ``cache.evicted`` counters
and the ``cache.bytes`` gauge on the bound registry.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.observability.metrics import ensure_metrics

__all__ = ["CACHE_FORMAT", "DEFAULT_MAX_BYTES", "ResultCache"]

#: Format tag written into (and required from) every cache entry.
CACHE_FORMAT = "repro-result-cache/1"

#: Default store cap: 256 MiB — thousands of typical entries (a stored
#: result is a few KiB of discords plus a ledger), while bounding the
#: worst case of caching many large sweeps.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_KEY_HEX = set("0123456789abcdef")


def _valid_key(key: str) -> bool:
    """64 lowercase hex chars — rejects anything path-traversal-shaped."""
    return (
        isinstance(key, str)
        and len(key) == 64
        and all(ch in _KEY_HEX for ch in key)
    )


class ResultCache:
    """On-disk cache of completed search results, keyed by fingerprint.

    Parameters
    ----------
    directory:
        Where entries live; created on first use.
    max_bytes:
        LRU size cap for the directory's ``*.json`` entries.
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`
        receiving hit/miss/eviction counters (rebindable later via
        :meth:`bind_metrics`, e.g. by the pipeline ctor).
    """

    def __init__(
        self,
        directory,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        metrics=None,
    ) -> None:
        self.directory = os.path.expanduser(os.fspath(directory))
        self.max_bytes = int(max_bytes)
        self._metrics = ensure_metrics(metrics)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def bind_metrics(self, metrics) -> None:
        """Route subsequent hit/miss/eviction counts to *metrics*."""
        self._metrics = ensure_metrics(metrics)

    # -- lookup ---------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The stored payload for *key*, or ``None`` (always a miss-able
        operation: every validation failure deletes the entry and
        returns ``None``)."""
        if not _valid_key(key):
            self._miss()
            return None
        path = self._path(key)
        try:
            with open(path) as handle:
                data = json.load(handle)
        except FileNotFoundError:
            self._miss()
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            self._miss()
            return None
        if (
            not isinstance(data, dict)
            or data.get("format") != CACHE_FORMAT
            or data.get("key") != key
            or "payload" not in data
        ):
            self._discard(path)
            self._miss()
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        self.hits += 1
        if self._metrics.enabled:
            self._metrics.counter("cache.hit").inc()
        return data["payload"]

    # -- insertion ------------------------------------------------------

    def put(self, key: str, payload: dict) -> None:
        """Atomically store *payload* under *key*, then enforce the cap.

        Silently refuses malformed keys (defensive: a caller bug should
        degrade to "not cached", not crash a successful search).
        """
        if not _valid_key(key):
            return
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(key)
        document = {"format": CACHE_FORMAT, "key": key, "payload": payload}
        fd, tmp_path = tempfile.mkstemp(
            prefix=key + ".", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._evict(keep=os.path.basename(path))

    # -- maintenance ----------------------------------------------------

    def stats(self) -> dict:
        """Hit/miss/eviction tallies plus current entry count and bytes."""
        count, total = self._usage()[:2]
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": count,
            "bytes": total,
        }

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + ".json")

    def _entries(self) -> list:
        """(mtime_ns, size, path) for every entry file, oldest first."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        entries = []
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, stat.st_size, path))
        entries.sort()
        return entries

    def _usage(self):
        entries = self._entries()
        return len(entries), sum(size for _, size, _ in entries), entries

    def _evict(self, *, keep: str) -> None:
        count, total, entries = self._usage()
        if total <= self.max_bytes:
            self._set_bytes_gauge(total)
            return
        for _mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            if os.path.basename(path) == keep:
                continue
            self._discard(path)
            total -= size
            self.evictions += 1
            if self._metrics.enabled:
                self._metrics.counter("cache.evicted").inc()
        self._set_bytes_gauge(total)

    def _set_bytes_gauge(self, total: int) -> None:
        if self._metrics.enabled:
            self._metrics.gauge("cache.bytes").set(total)

    def _miss(self) -> None:
        self.misses += 1
        if self._metrics.enabled:
            self._metrics.counter("cache.miss").inc()

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def __repr__(self) -> str:
        return (
            f"ResultCache({self.directory!r}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )

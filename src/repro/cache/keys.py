"""Cache-key derivation for the fingerprint-keyed result cache.

Every key is the checkpoint layer's :func:`search_fingerprint` over the
series content, the candidate intervals, and a parameter dict — plus
two cache-private entries folded into the params: the engine name and
:data:`CACHE_KEY_VERSION`.  Bumping the version orphans (never
corrupts) every existing entry when the result schema or the search
semantics change.

``n_workers`` is deliberately **excluded** from every key: the parallel
scan/replay engine guarantees bit-identical discords and logical
ledgers across worker counts (pinned by the golden-count suite), so a
result computed with 8 workers is exactly the result a serial run would
produce — and may be served to one.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

import numpy as np

from repro.resilience.checkpoint import rng_state_to_json, search_fingerprint

__all__ = [
    "CACHE_KEY_VERSION",
    "rng_fingerprint",
    "discord_search_key",
    "ensemble_member_key",
    "grid_cell_key",
]

#: Version of the key derivation + stored-payload schema.  Part of every
#: key, so a bump silently invalidates (misses) all prior entries.
CACHE_KEY_VERSION = 1


def rng_fingerprint(rng: Optional[np.random.Generator]) -> str:
    """Digest of a Generator's full state (``"none"`` when absent).

    Engines that consume random draws (tie-breaking visit orders) fold
    this into their cache key so two searches are only considered
    identical when they would draw the same stream.
    """
    if rng is None:
        return "none"
    state = rng_state_to_json(rng)
    return hashlib.sha256(
        json.dumps(state, sort_keys=True).encode()
    ).hexdigest()


def discord_search_key(
    series: np.ndarray,
    intervals,
    *,
    engine: str,
    params: dict,
    rng: Optional[np.random.Generator] = None,
) -> str:
    """Cache key for one complete discord search.

    *params* must contain everything that can change the discords or
    the logical ledger (backend, prune, num_discords, window geometry,
    ...) — but not ``n_workers`` (see module docstring).
    """
    merged = dict(params)
    merged["__cache_engine__"] = engine
    merged["__cache_key_version__"] = CACHE_KEY_VERSION
    merged["__cache_rng__"] = rng_fingerprint(rng)
    return search_fingerprint(series, intervals, merged)


def ensemble_member_key(
    series: np.ndarray,
    *,
    window: int,
    paa_size: int,
    alphabet_size: int,
    params: Optional[dict] = None,
) -> str:
    """Cache key for one :class:`~repro.core.ensemble.EnsembleDetector`
    member: the member's raw evidence (density curve + discords) for one
    series and discretization triple.

    Like every key here, ``n_workers`` is excluded; so is the distance
    backend, because the engines guarantee bit-identical discords and
    ledgers across backends (pinned by the golden-count suite).  The
    *params* dict must carry everything else that shapes the stored
    payload (``num_discords``, ``seed``).
    """
    merged = dict(params or {})
    merged.update(
        {
            "__cache_engine__": "ensemble_member",
            "__cache_key_version__": CACHE_KEY_VERSION,
            "window": int(window),
            "paa_size": int(paa_size),
            "alphabet_size": int(alphabet_size),
        }
    )
    return search_fingerprint(series, (), merged)


def grid_cell_key(
    series: np.ndarray,
    *,
    window: int,
    paa_size: int,
    alphabet_size: int,
    params: Optional[dict] = None,
) -> str:
    """Cache key for one ``ParameterGridStudy`` sweep cell."""
    merged = dict(params or {})
    merged.update(
        {
            "__cache_engine__": "grid_cell",
            "__cache_key_version__": CACHE_KEY_VERSION,
            "window": int(window),
            "paa_size": int(paa_size),
            "alphabet_size": int(alphabet_size),
        }
    )
    return search_fingerprint(series, (), merged)

"""In-process memoization of per-series search artifacts.

A :class:`SearchContext` owns every intermediate the engines, the
pipeline, and the parameter-grid sweep would otherwise recompute for the
same series — cumulative-sum statistics, z-normalized window matrices
(with their row norms), SAX/Haar discretizations, MINDIST lower-bound
tables, windowed-PAA coefficient matrices, and the z-normalized sample
rows behind the sweep's approximation-distance axis.

Artifacts are keyed by series *content* (the memoized
:func:`~repro.resilience.checkpoint.series_digest`) plus their shape
parameters, so logically equal arrays share entries.  Every accessor
builds its artifact with the exact arithmetic, in the exact order, the
uncontexted code path uses — memoization changes *when* a value is
computed, never *what* is computed — so discords, distances, and the
logical call ledger stay bit-identical (pinned by the golden-count
suite and the cache equivalence tests).

Engine modules are imported lazily inside the accessors: the engines
themselves import :mod:`repro.cache` for key/result helpers, and a
module-level import here would close that cycle.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.observability.metrics import ensure_metrics
from repro.resilience.checkpoint import series_digest
from repro.timeseries import kernels
from repro.timeseries.windows import num_windows

__all__ = ["SearchContext"]


class SearchContext:
    """Shared per-series artifact memo, threaded through the engines.

    One context serves any number of searches over any number of series
    (entries are content-keyed); :meth:`clear` drops everything when
    memory matters more than reuse.  The context is a pure in-process
    optimization — unlike :class:`~repro.cache.store.ResultCache` it
    never persists anything and never short-circuits a search.
    """

    def __init__(self, *, metrics=None) -> None:
        self._memo: dict = {}
        self.hits = 0
        self.misses = 0
        self._metrics = ensure_metrics(metrics)

    def bind_metrics(self, metrics) -> None:
        """Route subsequent hit/miss counts to *metrics*."""
        self._metrics = ensure_metrics(metrics)

    # -- generic memo ---------------------------------------------------

    def memo(self, key: tuple, build: Callable[[], object]) -> object:
        """The memoized value for *key*, building (and storing) on miss."""
        try:
            value = self._memo[key]
        except KeyError:
            self.misses += 1
            if self._metrics.enabled:
                self._metrics.counter("context.miss").inc()
            value = self._memo[key] = build()
            return value
        self.hits += 1
        if self._metrics.enabled:
            self._metrics.counter("context.hit").inc()
        return value

    def clear(self) -> None:
        """Drop every memoized artifact (tallies are kept)."""
        self._memo.clear()

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._memo),
        }

    def _series_key(self, series: np.ndarray) -> str:
        return series_digest(series)

    # -- window-level artifacts -----------------------------------------

    def series_stats(self, series: np.ndarray) -> kernels.SeriesStats:
        """Cumulative-sum statistics of *series* (shared by RRA + pruning)."""
        key = ("series_stats", self._series_key(series))
        return self.memo(key, lambda: kernels.SeriesStats(series))

    def window_matrix(
        self, series: np.ndarray, window: int
    ) -> Optional[kernels.WindowMatrix]:
        """The fixed-length engines' :class:`WindowMatrix` for *window*.

        ``None`` for degenerate inputs (< 2 windows), mirroring the
        engines' own deferral so their validation errors still fire.
        """
        if num_windows(series.size, window) < 2:
            return None
        key = ("window_matrix", self._series_key(series), int(window))
        return self.memo(
            key,
            lambda: kernels.WindowMatrix(
                series, window, stats=self.series_stats(series)
            ),
        )

    def window_lower_bound(self, series: np.ndarray, window: int):
        """The default MINDIST/PAA pruner over *window*'s normalized rows.

        Exactly ``WindowLowerBound.from_normalized_windows(normalized,
        window)`` — what ``iterated_search`` and the brute-force engine
        build when ``prune=True`` with no explicit bound.
        """
        windows = self.window_matrix(series, window)
        if windows is None:
            return None
        from repro.timeseries.lowerbound import WindowLowerBound

        key = ("window_lower_bound", self._series_key(series), int(window))
        return self.memo(
            key,
            lambda: WindowLowerBound.from_normalized_windows(
                windows.normalized, window
            ),
        )

    # -- SAX artifacts --------------------------------------------------

    def sax_discretization(
        self,
        series: np.ndarray,
        window: int,
        paa_size: int,
        alphabet_size: int,
    ):
        """HOTSAX's per-window SAX discretization (words + PAA + letters)."""
        from repro.discord.hotsax import SAXWindowDiscretization

        key = (
            "sax_disc",
            self._series_key(series),
            int(window),
            int(paa_size),
            int(alphabet_size),
        )

        def build():
            windows = self.window_matrix(series, window)
            normalized = windows.normalized if windows is not None else None
            return SAXWindowDiscretization(
                series, window, paa_size, alphabet_size, normalized=normalized
            )

        return self.memo(key, build)

    def sax_lower_bound(
        self,
        series: np.ndarray,
        window: int,
        paa_size: int,
        alphabet_size: int,
    ):
        """The MINDIST pruner over one SAX discretization, built once."""
        key = (
            "sax_lb",
            self._series_key(series),
            int(window),
            int(paa_size),
            int(alphabet_size),
        )
        disc = self.sax_discretization(series, window, paa_size, alphabet_size)
        return self.memo(key, disc.lower_bound)

    # -- Haar artifacts -------------------------------------------------

    def haar_bucketing(
        self, series: np.ndarray, window: int, num_coefficients: int
    ):
        """The Haar engine's ``(windows, bucket_fn)`` pair, words memoized."""
        windows = self.window_matrix(series, window)
        if windows is None:
            from repro.discord.haar import haar_words

            return None, (
                lambda s, w: haar_words(s, w, num_coefficients=num_coefficients)
            )
        from repro.discord.haar import haar_words

        key = (
            "haar_words",
            self._series_key(series),
            int(window),
            int(num_coefficients),
        )
        words = self.memo(
            key,
            lambda: haar_words(
                series,
                window,
                num_coefficients=num_coefficients,
                normalized=windows.normalized,
            ),
        )
        return windows, (lambda s, w: words)

    # -- discretization / sweep artifacts -------------------------------

    def normalized_flat_windows(self, series: np.ndarray, window: int):
        """The paa-independent front half of ``windowed_paa``.

        Reuses the window matrix's z-normalized rows (identical
        arithmetic: both run ``znorm_rows`` at the default flatness
        threshold over the same sliding-window view) and applies the
        flat-row zeroing on top.
        """
        from repro.sax.discretize import normalized_flat_windows

        key = ("norm_flat", self._series_key(series), int(window))

        def build():
            windows = self.window_matrix(series, window)
            normalized = windows.normalized if windows is not None else None
            return normalized_flat_windows(
                series, window, normalized=normalized
            )

        return self.memo(key, build)

    def windowed_paa(
        self, series: np.ndarray, window: int, paa_size: int
    ) -> np.ndarray:
        """Per-window PAA coefficients, sharing the znorm pass across
        every ``paa_size`` of the same ``window``."""
        from repro.sax.discretize import windowed_paa

        key = (
            "windowed_paa",
            self._series_key(series),
            int(window),
            int(paa_size),
        )
        return self.memo(
            key,
            lambda: windowed_paa(
                series,
                window,
                paa_size,
                normalized_flat=self.normalized_flat_windows(series, window),
            ),
        )

    # -- grammar front half ----------------------------------------------

    def sax_tokens(
        self,
        series: np.ndarray,
        window: int,
        paa_size: int,
        alphabet_size: int,
        strategy,
    ):
        """The pipeline's numerosity-reduced :class:`Discretization`.

        Builds on :meth:`windowed_paa`, so every ``alphabet_size`` (and
        every refit) of the same ``(window, paa_size)`` shares the
        sliding-window/znorm/PAA front half.
        """
        from repro.sax.discretize import discretize

        key = (
            "sax_tokens",
            self._series_key(series),
            int(window),
            int(paa_size),
            int(alphabet_size),
            strategy.value,
        )
        return self.memo(
            key,
            lambda: discretize(
                series,
                window,
                paa_size,
                alphabet_size,
                strategy=strategy,
                paa_values=self.windowed_paa(series, window, paa_size),
            ),
        )

    def grammar_front(
        self,
        series: np.ndarray,
        window: int,
        paa_size: int,
        alphabet_size: int,
        strategy,
        algorithm: str = "sequitur",
    ):
        """The pipeline front half: ``(disc, grammar, intervals, gaps)``.

        Everything the detector's :meth:`~repro.core.pipeline.
        GrammarAnomalyDetector.fit` derives from the token stream before
        any distance work — the induced grammar, its occurrence
        intervals, and the uncovered-token gaps — memoized per
        ``(series content, window, paa_size, alphabet_size, strategy,
        algorithm)``.  RRA candidate generation, density ranking, and
        repeated sweep cells all reuse one induction.  The density curve
        is deliberately *not* memoized: it is O(n) from *intervals* and
        recomputing it per fit keeps the density metrics gauges behaving
        identically on memo hits and misses.
        """
        key = (
            "grammar_front",
            self._series_key(series),
            int(window),
            int(paa_size),
            int(alphabet_size),
            strategy.value,
            algorithm,
        )

        def build():
            from repro.grammar.intervals import (
                rule_intervals,
                uncovered_intervals,
            )

            disc = self.sax_tokens(
                series, window, paa_size, alphabet_size, strategy
            )
            if algorithm == "repair":
                from repro.grammar.repair import repair_grammar

                grammar = repair_grammar(disc.tokens())
            else:
                from repro.grammar.sequitur import induce_grammar_interned

                grammar = induce_grammar_interned(
                    disc.token_ids, disc.vocabulary, tokens=disc.tokens()
                )
            intervals = rule_intervals(grammar, disc)
            gaps = uncovered_intervals(grammar, disc)
            return disc, grammar, intervals, gaps

        return self.memo(key, build)

    # -- RRA artifacts --------------------------------------------------

    def rra_candidate_set(self, series: np.ndarray, intervals):
        """The RRA engine's candidate set for *intervals*, reused across
        searches.

        Keyed by the interval *positions* (rule ids are display-only:
        the set reads nothing but ``start``/``end``/``length``), so a
        repeated :func:`~repro.core.rra.find_discords` over the same
        grammar — common in interactive sweeps — reuses every
        z-normalized candidate subsequence, squared norm, squared
        cumulative sum, batch row, and memoized pair distance instead of
        rebuilding them.  Purely accelerative: every cached quantity is
        the exact float the uncontexted path computes.  This is the
        largest artifact family the context holds (one normalized copy
        of every distinct candidate); use :meth:`clear` between
        unrelated studies if memory matters.
        """
        from repro.core.rra import _CandidateSet

        key = (
            "rra_candidates",
            self._series_key(series),
            tuple((iv.start, iv.end) for iv in intervals),
        )
        return self.memo(
            key,
            lambda: _CandidateSet(
                series, intervals, stats=self.series_stats(series)
            ),
        )

    def approx_normalized_rows(
        self, series: np.ndarray, window: int, sample_stride: int
    ) -> list:
        """The z-normalized sample rows behind ``approximation_distance``,
        shared across every ``paa_size`` of the same ``window``."""
        from repro.core.parameter_grid import _normalized_sample_rows

        key = (
            "approx_rows",
            self._series_key(series),
            int(window),
            int(sample_stride),
        )
        return self.memo(
            key,
            lambda: _normalized_sample_rows(series, window, sample_stride),
        )

    def __repr__(self) -> str:
        return (
            f"SearchContext(entries={len(self._memo)}, hits={self.hits}, "
            f"misses={self.misses})"
        )

"""Fingerprint-keyed result cache and cross-search memoization layer.

Two cooperating pieces make repeated and overlapping discord searches
near-free without touching the bit-identical results + call-ledger
invariant:

* :class:`~repro.cache.store.ResultCache` — a persistent,
  content-addressed, on-disk store of *completed* search results keyed
  by the checkpoint layer's SHA-256 input fingerprint.  A hit returns
  the stored discords and the stored split ledger
  (``calls == true_calls + pruned``) flagged ``from_cache=True``,
  byte-identical to a live run.
* :class:`~repro.cache.context.SearchContext` — an in-process
  memoization context owning per-series shared artifacts (cumulative
  sums, z-normalized window matrices, SAX/Haar discretizations,
  MINDIST lower-bound tables) that the engines, the pipeline, and the
  parameter-grid sweep thread through so the same intermediate is never
  computed twice for one series.

Both are opt-in: every entry point defaults to ``cache=None`` /
``context=None`` and the disabled path is byte-identical to the
pre-cache code (pinned by the golden-count suite).
"""

from repro.cache.context import SearchContext
from repro.cache.keys import (
    CACHE_KEY_VERSION,
    discord_search_key,
    ensemble_member_key,
    grid_cell_key,
    rng_fingerprint,
)
from repro.cache.results import (
    apply_ledger_delta,
    discords_from_json,
    discords_to_json,
    ledger_delta,
)
from repro.cache.store import CACHE_FORMAT, DEFAULT_MAX_BYTES, ResultCache

__all__ = [
    "CACHE_FORMAT",
    "CACHE_KEY_VERSION",
    "DEFAULT_MAX_BYTES",
    "ResultCache",
    "SearchContext",
    "apply_ledger_delta",
    "discord_search_key",
    "discords_from_json",
    "discords_to_json",
    "ensemble_member_key",
    "grid_cell_key",
    "ledger_delta",
    "rng_fingerprint",
]

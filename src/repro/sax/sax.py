"""Single-subsequence SAX transform and the MINDIST lower bound.

``sax_word`` is the classic pipeline: z-normalize, PAA, symbol lookup.
``mindist`` is the SAX lower-bounding distance between two words (Lin et
al.); the paper's EXACT/MINDIST numerosity-reduction options need it to
decide whether two consecutive words are "equal enough" to merge.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.exceptions import ParameterError
from repro.sax.alphabet import breakpoints, symbol_index, symbols_for_values
from repro.timeseries.paa import paa
from repro.timeseries.znorm import znorm


def sax_word(values: np.ndarray, w: int, alpha: int, *, normalize: bool = True) -> str:
    """Discretize one subsequence into a SAX word of length *w*.

    Parameters
    ----------
    values:
        The raw subsequence.
    w:
        PAA size (number of letters in the output word).
    alpha:
        Alphabet size.
    normalize:
        Z-normalize before PAA (the default, and what the paper does).
    """
    values = np.asarray(values, dtype=float)
    if normalize:
        values = znorm(values)
    means = paa(values, w)
    return symbols_for_values(means, alpha)


@lru_cache(maxsize=None)
def symbol_distance_matrix(alpha: int) -> np.ndarray:
    """The (alpha, alpha) MINDIST cell-distance lookup table.

    ``table[r, c] = 0`` when ``|r - c| <= 1`` (adjacent regions touch),
    otherwise the gap between the closest breakpoints of the two regions.
    """
    cuts = breakpoints(alpha)
    table = np.zeros((alpha, alpha), dtype=float)
    for r in range(alpha):
        for c in range(alpha):
            if abs(r - c) > 1:
                table[r, c] = cuts[max(r, c) - 1] - cuts[min(r, c)]
    return table


def mindist(word_a: str, word_b: str, alpha: int, n: int) -> float:
    """SAX MINDIST lower bound between two words of equal length.

    Parameters
    ----------
    word_a, word_b:
        SAX words of the same length *w*.
    alpha:
        Alphabet size both words were produced with.
    n:
        Original subsequence length (needed for the sqrt(n/w) scale).
    """
    if len(word_a) != len(word_b):
        raise ParameterError(
            f"mindist requires equal word lengths, got {len(word_a)} vs {len(word_b)}"
        )
    if not word_a:
        raise ParameterError("mindist requires non-empty words")
    w = len(word_a)
    table = symbol_distance_matrix(alpha)
    total = 0.0
    for sym_a, sym_b in zip(word_a, word_b):
        cell = table[symbol_index(sym_a), symbol_index(sym_b)]
        total += cell * cell
    return float(np.sqrt(n / w) * np.sqrt(total))

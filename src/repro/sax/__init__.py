"""SAX (Symbolic Aggregate approXimation) discretization.

Implements the discretization front-end of the paper (Section 3.1–3.2):
z-normalized sliding windows are reduced with PAA, mapped to symbols via
Gaussian equiprobable breakpoints, and the resulting word stream is
compacted with numerosity reduction so that Sequitur sees one token per
*shape change* rather than one per point.
"""

from repro.sax.alphabet import (
    MAX_ALPHABET_SIZE,
    MIN_ALPHABET_SIZE,
    alphabet_letters,
    breakpoints,
    breakpoints_array,
    symbol_for_value,
    symbols_for_values,
)
from repro.sax.sax import sax_word, mindist, symbol_distance_matrix
from repro.sax.mindist import (
    letter_indices,
    mindist_sq_one_vs_block,
    sq_cell_table,
)
from repro.sax.discretize import (
    NumerosityReduction,
    SAXWord,
    Discretization,
    discretize,
)

__all__ = [
    "MAX_ALPHABET_SIZE",
    "MIN_ALPHABET_SIZE",
    "breakpoints",
    "breakpoints_array",
    "alphabet_letters",
    "symbol_for_value",
    "symbols_for_values",
    "sax_word",
    "mindist",
    "symbol_distance_matrix",
    "letter_indices",
    "mindist_sq_one_vs_block",
    "sq_cell_table",
    "NumerosityReduction",
    "SAXWord",
    "Discretization",
    "discretize",
]

"""Sliding-window SAX discretization with numerosity reduction.

This is the front half of both algorithms in the paper (Sections 3.1–3.2):

1. slide a window of size ``window`` across the series;
2. z-normalize each window, PAA it to ``paa_size`` segments, map the
   segment means to letters — one SAX *word* per window, remembering the
   window's starting offset;
3. apply *numerosity reduction*: consecutive identical (or, with the
   MINDIST strategy, indistinguishable) words are collapsed to their first
   occurrence.  The survivors, with their offsets, are the token stream
   handed to Sequitur — and the offsets are what later lets grammar rules
   be mapped back onto the raw series.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DiscretizationError, ParameterError
from repro.sax.alphabet import breakpoints_array
from repro.sax.sax import mindist
from repro.timeseries.paa import paa_batch
from repro.timeseries.preprocess import nonfinite_spans
from repro.timeseries.windows import sliding_windows
from repro.timeseries.znorm import DEFAULT_FLATNESS_THRESHOLD, znorm_rows


class NumerosityReduction(enum.Enum):
    """Numerosity-reduction strategy (GrammarViz 2.0 offers the same three).

    NONE
        Keep every window's word.
    EXACT
        Collapse runs of *identical* consecutive words (the paper's
        default, Section 3.2).
    MINDIST
        Collapse a word into the previous one when their SAX MINDIST
        lower bound is zero (i.e. the words are indistinguishable under
        the lower-bounding distance — a slightly more aggressive merge).
    """

    NONE = "none"
    EXACT = "exact"
    MINDIST = "mindist"


@dataclass(frozen=True)
class SAXWord:
    """One surviving SAX word: its string and where its window started."""

    word: str
    offset: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.word}@{self.offset}"


@dataclass
class Discretization:
    """The result of discretizing a series.

    Attributes
    ----------
    words:
        The numerosity-reduced SAX word sequence, in series order.
    window, paa_size, alphabet_size:
        The discretization parameters used.
    series_length:
        Length of the input series (needed to map intervals back).
    strategy:
        The numerosity-reduction strategy that was applied.
    raw_word_count:
        Number of words before numerosity reduction (== number of
        sliding windows).
    token_ids:
        Dense interned id of each surviving word (``int64``, aligned
        with ``words``); ``vocabulary[token_ids[k]] == words[k].word``.
        Grammar induction consumes these directly
        (:func:`repro.grammar.sequitur.induce_grammar_interned`) so the
        word strings never need re-hashing.
    vocabulary:
        The distinct surviving word strings (sorted lexicographically).
    """

    words: list[SAXWord]
    window: int
    paa_size: int
    alphabet_size: int
    series_length: int
    strategy: NumerosityReduction
    raw_word_count: int = 0
    _offsets: np.ndarray = field(default=None, repr=False, compare=False)
    token_ids: np.ndarray = field(default=None, repr=False, compare=False)
    vocabulary: list[str] = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.words)

    @property
    def offsets(self) -> np.ndarray:
        """Array of word offsets, cached."""
        if self._offsets is None:
            object.__setattr__(
                self, "_offsets", np.array([w.offset for w in self.words], dtype=int)
            )
        return self._offsets

    def tokens(self) -> list[str]:
        """The plain word strings, in order (Sequitur's input)."""
        if self.token_ids is not None and self.vocabulary is not None:
            vocab = self.vocabulary
            return [vocab[i] for i in self.token_ids.tolist()]
        return [w.word for w in self.words]

    def span_to_interval(self, first_token: int, last_token: int) -> tuple[int, int]:
        """Map a token span [first, last] to a half-open series interval.

        The interval starts at the first token's window offset and ends at
        the end of the last token's *window* — i.e. it covers every series
        point any of the spanned windows covers, clipped to the series.
        """
        if not 0 <= first_token <= last_token < len(self.words):
            raise ParameterError(
                f"token span [{first_token}, {last_token}] out of range "
                f"for {len(self.words)} words"
            )
        start = self.words[first_token].offset
        end = min(self.words[last_token].offset + self.window, self.series_length)
        return start, end

    def reduction_ratio(self) -> float:
        """Fraction of raw words removed by numerosity reduction."""
        if self.raw_word_count == 0:
            return 0.0
        return 1.0 - len(self.words) / self.raw_word_count


def normalized_flat_windows(
    series: np.ndarray,
    window: int,
    *,
    flatness_threshold: float = DEFAULT_FLATNESS_THRESHOLD,
    normalized: np.ndarray = None,
) -> np.ndarray:
    """Z-normalized sliding windows with flat rows zeroed out.

    The ``paa_size``- and alphabet-independent front half of
    :func:`windowed_paa`: slide, z-normalize, zero out flat windows.
    Flat windows carry no shape: discretizing them as exact zeros maps
    them all to the same middle-letter word instead of flickering
    across the central breakpoint on sub-threshold noise.

    Pass *normalized* (a prebuilt ``znorm_rows`` of the same windows at
    the same threshold, e.g. a
    :class:`~repro.timeseries.kernels.WindowMatrix`'s ``normalized``)
    to skip the normalization pass; the flat-row zeroing never mutates
    it.
    """
    windows = sliding_windows(series, window)
    if normalized is None:
        normalized = znorm_rows(windows, flatness_threshold)
    flat_rows = windows.std(axis=1) < flatness_threshold
    if flat_rows.any():
        normalized = np.where(flat_rows[:, None], 0.0, normalized)
    return normalized


def windowed_paa(
    series: np.ndarray,
    window: int,
    paa_size: int,
    *,
    flatness_threshold: float = DEFAULT_FLATNESS_THRESHOLD,
    normalized_flat: np.ndarray = None,
) -> np.ndarray:
    """Per-window PAA coefficients of the z-normalized sliding windows.

    The expensive front half of :func:`discretize` — everything that
    depends only on ``(window, paa_size)`` and not on the alphabet.
    Parameter sweeps compute this once per ``(window, paa_size)`` pair
    and hand it to :func:`discretize` for each alphabet size; the
    memoization context goes further and shares *normalized_flat* (the
    output of :func:`normalized_flat_windows`) across every
    ``paa_size`` of the same ``window``.
    """
    if normalized_flat is None:
        normalized_flat = normalized_flat_windows(
            series, window, flatness_threshold=flatness_threshold
        )
    return paa_batch(normalized_flat, paa_size)


def discretize(
    series: np.ndarray,
    window: int,
    paa_size: int,
    alphabet_size: int,
    *,
    strategy: NumerosityReduction = NumerosityReduction.EXACT,
    flatness_threshold: float = DEFAULT_FLATNESS_THRESHOLD,
    paa_values: np.ndarray = None,
) -> Discretization:
    """Discretize *series* into a numerosity-reduced SAX word sequence.

    Parameters
    ----------
    series:
        One-dimensional array of scalar observations.
    window:
        Sliding-window length (the paper's "seed" size W).
    paa_size:
        Letters per word (P).
    alphabet_size:
        Alphabet size (A).
    strategy:
        Numerosity-reduction strategy; EXACT is the paper's choice.
    flatness_threshold:
        Windows whose standard deviation falls below this are treated as
        flat and discretized as the all-middle-symbol word.
    paa_values:
        Optional precomputed output of :func:`windowed_paa` for the same
        ``(series, window, paa_size, flatness_threshold)``.  Parameter
        sweeps pass it to amortize the sliding-window/PAA front half
        across alphabet sizes; shape is validated, contents trusted.

    Raises
    ------
    DiscretizationError
        If the series is shorter than the window, or contains NaN/Inf
        values (which would otherwise silently corrupt every SAX word
        whose window touches them — route dirty data through
        :func:`repro.timeseries.preprocess.quality_gate` first).
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ParameterError(f"series must be 1-d, got shape {series.shape}")
    if not np.isfinite(series).all():
        spans = nonfinite_spans(series)
        shown = ", ".join(f"[{s}, {e})" for s, e in spans[:5])
        more = f" (+{len(spans) - 5} more)" if len(spans) > 5 else ""
        raise DiscretizationError(
            f"series contains non-finite values in spans {shown}{more}; "
            f"clean it first (see repro.timeseries.preprocess.quality_gate)"
        )
    if window < 2:
        raise ParameterError(f"window must be at least 2, got {window}")
    if series.size < window:
        raise DiscretizationError(
            f"series of length {series.size} is shorter than window {window}"
        )
    if paa_size > window:
        raise ParameterError(
            f"PAA size {paa_size} exceeds window length {window}"
        )
    # Validate alphabet early (breakpoints() raises ParameterError).
    cuts = breakpoints_array(alphabet_size)

    if paa_values is None:
        paa_values = windowed_paa(
            series, window, paa_size, flatness_threshold=flatness_threshold
        )
    else:
        expected = (series.size - window + 1, paa_size)
        if tuple(paa_values.shape) != expected:
            raise ParameterError(
                f"precomputed paa_values has shape {tuple(paa_values.shape)}, "
                f"expected {expected} for window={window}, paa_size={paa_size}"
            )
    letter_idx = np.searchsorted(cuts, paa_values, side="right")

    kept = _kept_indices(letter_idx, strategy)
    kept_rows = letter_idx[kept]
    uniq_rows, inverse = np.unique(kept_rows, axis=0, return_inverse=True)
    token_ids = inverse.astype(np.int64, copy=False).ravel()

    # Word strings are built once per *distinct* surviving row — on real
    # streams that is orders of magnitude fewer joins than one per window.
    alphabet = [chr(ord("a") + i) for i in range(alphabet_size)]
    vocabulary = ["".join(alphabet[i] for i in row) for row in uniq_rows.tolist()]

    words = [
        SAXWord(vocabulary[tid], off)
        for tid, off in zip(token_ids.tolist(), kept.tolist())
    ]
    return Discretization(
        words=words,
        window=window,
        paa_size=paa_size,
        alphabet_size=alphabet_size,
        series_length=series.size,
        strategy=strategy,
        raw_word_count=letter_idx.shape[0],
        _offsets=kept.astype(int, copy=False),
        token_ids=token_ids,
        vocabulary=vocabulary,
    )


def _kept_indices(
    letter_idx: np.ndarray, strategy: NumerosityReduction
) -> np.ndarray:
    """Surviving window indices, computed on integer letter rows.

    Equivalent to :func:`_reduce` over the word strings (each letter
    maps to exactly one index, so row equality == word equality), but
    EXACT reduction vectorizes: a word survives iff its row differs from
    the previous row, and comparing to the previous *kept* word equals
    comparing to the previous *raw* word by induction (a dropped word is
    identical to the last kept one).

    MINDIST keeps a word iff its lower-bound distance to the last kept
    word is positive, which for the SAX distance table means some letter
    pair is at least two apart — collapses are not transitive, so this
    stays a sequential scan (over plain Python ints, not array rows).
    """
    n = letter_idx.shape[0]
    if strategy is NumerosityReduction.NONE or n == 0:
        return np.arange(n, dtype=np.int64)
    if strategy is NumerosityReduction.EXACT:
        changed = np.flatnonzero(np.any(letter_idx[1:] != letter_idx[:-1], axis=1))
        return np.concatenate(
            (np.zeros(1, dtype=np.int64), changed.astype(np.int64, copy=False) + 1)
        )
    if strategy is NumerosityReduction.MINDIST:
        rows = letter_idx.tolist()
        kept = [0]
        last = rows[0]
        for i in range(1, n):
            row = rows[i]
            for a, b in zip(row, last):
                if a - b > 1 or b - a > 1:
                    kept.append(i)
                    last = row
                    break
        return np.asarray(kept, dtype=np.int64)
    raise ParameterError(f"unknown numerosity reduction strategy: {strategy!r}")


def _reduce(
    raw_words: list[str],
    strategy: NumerosityReduction,
    alphabet_size: int,
    window: int,
) -> list[int]:
    """Indices of the words that survive numerosity reduction.

    Reference implementation over word strings, kept for the
    equivalence tests; :func:`discretize` uses :func:`_kept_indices`
    on the integer letter rows instead.
    """
    if strategy is NumerosityReduction.NONE or not raw_words:
        return list(range(len(raw_words)))
    kept = [0]
    if strategy is NumerosityReduction.EXACT:
        for i in range(1, len(raw_words)):
            if raw_words[i] != raw_words[kept[-1]]:
                kept.append(i)
        return kept
    if strategy is NumerosityReduction.MINDIST:
        for i in range(1, len(raw_words)):
            dist = mindist(raw_words[i], raw_words[kept[-1]], alphabet_size, window)
            if dist > 0.0:
                kept.append(i)
        return kept
    raise ParameterError(f"unknown numerosity reduction strategy: {strategy!r}")

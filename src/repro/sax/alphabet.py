"""SAX alphabet: Gaussian equiprobable breakpoints and symbol lookup.

Since z-normalized subsequences are approximately Gaussian, SAX divides
the real line into ``alpha`` regions of equal probability under N(0, 1)
and assigns one letter per region ('a' for the lowest region).  The
breakpoints are the N(0,1) quantiles at i/alpha, i = 1..alpha-1.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.stats import norm

from repro.exceptions import ParameterError

MIN_ALPHABET_SIZE = 2
MAX_ALPHABET_SIZE = 26  # one Latin letter per symbol

#: First symbol of the alphabet; region i maps to chr(ord('a') + i).
_FIRST_SYMBOL = "a"


def _validate_alphabet_size(alpha: int) -> None:
    if not MIN_ALPHABET_SIZE <= alpha <= MAX_ALPHABET_SIZE:
        raise ParameterError(
            f"alphabet size must be in [{MIN_ALPHABET_SIZE}, {MAX_ALPHABET_SIZE}], "
            f"got {alpha}"
        )


@lru_cache(maxsize=None)
def breakpoints(alpha: int) -> tuple[float, ...]:
    """The ``alpha - 1`` N(0,1) equiprobable breakpoints.

    ``breakpoints(4) == (-0.674..., 0.0, 0.674...)``.
    """
    _validate_alphabet_size(alpha)
    qs = np.arange(1, alpha) / alpha
    return tuple(float(x) for x in norm.ppf(qs))


@lru_cache(maxsize=None)
def breakpoints_array(alpha: int) -> np.ndarray:
    """:func:`breakpoints` as a cached read-only numpy array.

    Hot paths (window-by-window SAX conversion, parameter-grid sweeps)
    call ``np.searchsorted`` against the breakpoints thousands of times;
    caching the array form avoids rebuilding it on every call.
    """
    cuts = np.asarray(breakpoints(alpha), dtype=float)
    cuts.flags.writeable = False
    return cuts


@lru_cache(maxsize=None)
def alphabet_letters(alpha: int) -> tuple[str, ...]:
    """The *alpha* SAX letters, cached (``('a', 'b', ...)``)."""
    _validate_alphabet_size(alpha)
    return tuple(chr(ord(_FIRST_SYMBOL) + i) for i in range(alpha))


def symbol_for_value(value: float, alpha: int) -> str:
    """Map a single z-normalized value to its SAX letter."""
    cuts = breakpoints(alpha)
    idx = int(np.searchsorted(cuts, value, side="right"))
    return chr(ord(_FIRST_SYMBOL) + idx)


def symbols_for_values(values: np.ndarray, alpha: int) -> str:
    """Map an array of values (e.g. PAA means) to a SAX word string."""
    cuts = breakpoints_array(alpha)
    idxs = np.searchsorted(cuts, np.asarray(values, dtype=float), side="right")
    letters = alphabet_letters(alpha)
    return "".join(letters[int(i)] for i in idxs)


def symbol_index(symbol: str) -> int:
    """Inverse of the letter mapping: 'a' -> 0, 'b' -> 1, ..."""
    if len(symbol) != 1 or not symbol.islower() or not symbol.isalpha():
        raise ParameterError(f"not a SAX symbol: {symbol!r}")
    return ord(symbol) - ord(_FIRST_SYMBOL)

"""Vectorized SAX MINDIST machinery for the lower-bound pruning layer.

:func:`repro.sax.sax.mindist` is the scalar reference: the MINDIST
between two SAX *words*.  The pruning layer
(:mod:`repro.timeseries.lowerbound`) needs the same quantity for one
candidate against a whole block of windows per inner-loop step, so this
module provides the batch form operating on integer *letter-index*
arrays instead of strings:

* :func:`sq_cell_table` — the cached ``(alpha, alpha)`` table of
  *squared* breakpoint gaps (``symbol_distance_matrix`` squared);
* :func:`letter_indices` — PAA values → integer region indices, the
  array form of the string lookup in ``symbols_for_values``;
* :func:`mindist_sq_one_vs_block` — squared MINDIST of one letter row
  against a block of letter rows in one fancy-indexing pass.

Admissibility (why MINDIST never exceeds the true distance): for any
two subsequences ``a, b`` of length ``n`` with PAA means ``ā, b̄`` over
``w`` segments, per-segment Cauchy–Schwarz gives
``‖a − b‖² ≥ (n/w)·Σᵢ (āᵢ − b̄ᵢ)²`` — this holds for the library's
fractional PAA too, because every point's segment weights sum to one
and every segment aggregates exactly ``n/w`` points' worth of mass.
When two PAA values fall in SAX regions more than one apart, the gap
between the regions' closest breakpoints is at most ``|āᵢ − b̄ᵢ|``
(the values sit on opposite sides of both breakpoints), so replacing
``|āᵢ − b̄ᵢ|`` by the cell distance only shrinks the sum:
``‖a − b‖² ≥ (n/w)·Σᵢ cell(āᵢ, b̄ᵢ)² = MINDIST²``.
``tests/test_lowerbound.py`` asserts the chain on random inputs.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.sax.alphabet import breakpoints_array
from repro.sax.sax import symbol_distance_matrix


@lru_cache(maxsize=None)
def sq_cell_table(alpha: int) -> np.ndarray:
    """Cached squared MINDIST cell-distance table (read-only)."""
    table = symbol_distance_matrix(alpha) ** 2
    table.flags.writeable = False
    return table


def letter_indices(paa_values: np.ndarray, alpha: int) -> np.ndarray:
    """SAX region index of every PAA value (vectorized, any shape).

    Matches ``symbols_for_values``: region ``r`` holds values in
    ``[cut_{r-1}, cut_r)`` via ``searchsorted(..., side="right")``.
    """
    cuts = breakpoints_array(alpha)
    return np.searchsorted(cuts, np.asarray(paa_values, dtype=float), side="right")


def mindist_sq_one_vs_block(
    letters_query: np.ndarray,
    letters_block: np.ndarray,
    alpha: int,
    scale_sq: float,
) -> np.ndarray:
    """Squared MINDIST of one letter row against a block of letter rows.

    Parameters
    ----------
    letters_query:
        ``(w,)`` integer region indices of the query subsequence.
    letters_block:
        ``(b, w)`` region indices of the block.
    alpha:
        Alphabet size the indices were produced with.
    scale_sq:
        The squared length scale ``n / w`` (subsequence length over PAA
        size) multiplying the cell sum, per the MINDIST formula.

    Returns
    -------
    numpy.ndarray
        ``(b,)`` squared lower bounds — compare against a squared
        Euclidean threshold without taking square roots.
    """
    table = sq_cell_table(alpha)
    return scale_sq * table[letters_query[np.newaxis, :], letters_block].sum(axis=1)


def mindist_sq_tile(
    letters_queries: np.ndarray,
    letters_block: np.ndarray,
    alpha: int,
    scale_sq: float,
) -> np.ndarray:
    """Squared MINDIST of many letter rows against a block of letter rows.

    The tile form of :func:`mindist_sq_one_vs_block` used by the batch
    backend's stage-1 pruning: *letters_queries* is ``(c, w)`` and
    *letters_block* either ``(b, w)`` (one shared block, result
    ``(c, b)``) or ``(c, b, w)`` (a per-query block, result ``(c, b)``).
    Each output row is computed by the same table-lookup-and-sum as the
    one-vs-block kernel, so per-pair values are bit-identical to it —
    the property the batch replay's prune bookkeeping relies on.
    """
    table = sq_cell_table(alpha)
    lq = np.asarray(letters_queries)
    lb = np.asarray(letters_block)
    if lq.ndim != 2:
        raise ValueError(
            f"letters_queries must be (c, w), got shape {lq.shape}"
        )
    if lb.ndim == 2:
        cells = table[lq[:, None, :], lb[None, :, :]]
    elif lb.ndim == 3:
        cells = table[lq[:, None, :], lb]
    else:
        raise ValueError(
            f"letters_block must be (b, w) or (c, b, w), got shape {lb.shape}"
        )
    return scale_sq * cells.sum(axis=-1)

"""Exception hierarchy for the :mod:`repro` library.

Every error raised on purpose by this library derives from
:class:`ReproError`, so downstream code can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """An invalid parameter value was supplied (bad window, alphabet, ...)."""


class DiscretizationError(ReproError):
    """The SAX discretization step could not be performed."""


class GrammarError(ReproError):
    """A grammar induction invariant was violated or a rule is malformed."""


class DiscordSearchError(ReproError):
    """A discord search could not run (e.g. series shorter than window)."""


class DatasetError(ReproError):
    """A dataset generator or loader received inconsistent arguments."""


class GridCellError(ReproError):
    """One parameter-grid sweep cell failed; the message names the
    failing ``(window, paa_size, alphabet_size)`` triple so a single bad
    cell in a thousand-cell sweep is immediately localizable.

    Built with a plain message string (and the triple re-attached as
    :attr:`cell`) so instances survive the pickling round trip from a
    pool worker intact.
    """

    def __init__(self, message: str, cell: tuple = ()) -> None:
        super().__init__(message)
        self.cell = tuple(cell)

    def __reduce__(self):
        return (type(self), (self.args[0], self.cell))


class DataQualityError(ReproError):
    """The input series failed the data-quality gate (NaN/Inf/gaps)."""


class CheckpointError(ReproError):
    """A search checkpoint is missing, corrupt, or inconsistent."""


class TrajectoryError(ReproError):
    """A trajectory conversion error (bad coordinates, empty trail, ...)."""

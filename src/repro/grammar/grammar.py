"""The compressor-agnostic grammar data model.

A :class:`Grammar` is what either induction algorithm (Sequitur, Re-Pair)
returns: rule 0 is the start rule whose right-hand side derives the whole
input token sequence; every other rule encodes a repeated pattern.  Each
rule knows every position (token span) at which it occurs in the input —
the information the paper's rule density curve and RRA candidates are
built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

from repro.exceptions import GrammarError

#: Right-hand sides mix terminal tokens (str) and rule references (int).
RHSItem = Union[str, int]

START_RULE_ID = 0


@dataclass(frozen=True)
class RuleOccurrence:
    """One occurrence of a rule in the input token sequence.

    ``start`` and ``end`` are *inclusive* token indices: the occurrence
    expands to ``tokens[start : end + 1]``.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise GrammarError(f"malformed occurrence [{self.start}, {self.end}]")

    @property
    def token_length(self) -> int:
        """Number of input tokens this occurrence spans."""
        return self.end - self.start + 1


@dataclass
class GrammarRule:
    """One grammar rule.

    Attributes
    ----------
    rule_id:
        0 for the start rule; positive for induced rules (``R1``, ...).
    rhs:
        Right-hand side: a sequence of terminal tokens (str) and rule
        references (int rule ids).
    expansion:
        The rule fully expanded to terminal tokens.
    occurrences:
        Every occurrence of this rule in the input, as token spans.  For
        the start rule this is the single span covering the whole input.
    level:
        Depth of the rule in the hierarchy: 1 + max level of referenced
        rules; terminal-only rules have level 1, the start rule's level
        is informational.
    """

    rule_id: int
    rhs: list[RHSItem]
    expansion: list[str] = field(default_factory=list)
    occurrences: list[RuleOccurrence] = field(default_factory=list)
    level: int = 1

    @property
    def name(self) -> str:
        """Display name, ``R0`` / ``R1`` / ..."""
        return f"R{self.rule_id}"

    @property
    def usage(self) -> int:
        """How many times the rule occurs in the input (its frequency)."""
        return len(self.occurrences)

    @property
    def expansion_length(self) -> int:
        """Terminal length of one occurrence."""
        return len(self.expansion)

    def rhs_display(self) -> str:
        """Human-readable right-hand side, e.g. ``'R2 cba'``."""
        return " ".join(f"R{x}" if isinstance(x, int) else str(x) for x in self.rhs)

    def expansion_display(self) -> str:
        """Human-readable expansion, e.g. ``'abc abc cba'``."""
        return " ".join(self.expansion)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GrammarRule({self.name} -> {self.rhs_display()!r}, usage={self.usage})"


@dataclass
class Grammar:
    """A context-free grammar produced by an induction algorithm.

    The class validates the core structural invariant on construction:
    expanding the start rule must reproduce the input token sequence.
    """

    tokens: list[str]
    rules: dict[int, GrammarRule]
    algorithm: str = "sequitur"

    def __post_init__(self) -> None:
        if START_RULE_ID not in self.rules:
            raise GrammarError("grammar is missing the start rule R0")

    @property
    def start_rule(self) -> GrammarRule:
        return self.rules[START_RULE_ID]

    def non_start_rules(self) -> list[GrammarRule]:
        """All rules except R0, ordered by rule id."""
        return [self.rules[rid] for rid in sorted(self.rules) if rid != START_RULE_ID]

    def __len__(self) -> int:
        """Number of rules, start rule included."""
        return len(self.rules)

    def __iter__(self) -> Iterator[GrammarRule]:
        return iter(self.rules[rid] for rid in sorted(self.rules))

    def expand_rule(self, rule_id: int) -> list[str]:
        """Expand a rule (by id) to its terminal token sequence."""
        if rule_id not in self.rules:
            raise GrammarError(f"no such rule: R{rule_id}")
        return list(self.rules[rule_id].expansion)

    def grammar_size(self) -> int:
        """Total number of symbols on all right-hand sides.

        This is the standard grammar-based-compression size measure; it is
        the quantity shown on the y-axis of the paper's Figure 10.
        """
        return sum(len(rule.rhs) for rule in self.rules.values())

    def compression_ratio(self) -> float:
        """Input token count divided by grammar size (>1 = compressed)."""
        size = self.grammar_size()
        if size == 0:
            return 0.0
        return len(self.tokens) / size

    def verify(self) -> None:
        """Check structural invariants; raise :class:`GrammarError` if broken.

        * the start rule expands to the input token sequence;
        * every rule's recorded expansion matches recursive RHS expansion;
        * every occurrence span reproduces the rule's expansion;
        * every non-start rule is used at least once.
        """
        for rule in self.rules.values():
            recomputed = self._expand_rhs(rule.rhs, set())
            if recomputed != rule.expansion:
                raise GrammarError(
                    f"{rule.name}: stored expansion differs from RHS expansion"
                )
            for occ in rule.occurrences:
                if occ.end >= len(self.tokens):
                    raise GrammarError(
                        f"{rule.name}: occurrence {occ} exceeds input length"
                    )
                window = self.tokens[occ.start : occ.end + 1]
                if window != rule.expansion:
                    raise GrammarError(
                        f"{rule.name}: occurrence at {occ.start} does not match "
                        f"its expansion"
                    )
        if self.start_rule.expansion != self.tokens:
            raise GrammarError("start rule does not expand to the input")
        for rule in self.non_start_rules():
            if rule.usage < 1:
                raise GrammarError(f"{rule.name} is never used")

    def _expand_rhs(self, rhs: Sequence[RHSItem], seen: set[int]) -> list[str]:
        out: list[str] = []
        for item in rhs:
            if isinstance(item, int):
                if item in seen:
                    raise GrammarError(f"cycle through R{item}")
                sub = self.rules.get(item)
                if sub is None:
                    raise GrammarError(f"dangling rule reference R{item}")
                out.extend(self._expand_rhs(sub.rhs, seen | {item}))
            else:
                out.append(item)
        return out

    def rules_by_usage(self) -> list[GrammarRule]:
        """Non-start rules sorted by ascending usage (rarest first)."""
        return sorted(self.non_start_rules(), key=lambda r: (r.usage, r.rule_id))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Grammar(algorithm={self.algorithm!r}, rules={len(self.rules)}, "
            f"tokens={len(self.tokens)}, size={self.grammar_size()})"
        )


def compute_levels(rules: dict[int, GrammarRule]) -> None:
    """Fill in each rule's hierarchy level in place.

    Level = 1 for terminal-only rules, else 1 + max level of referenced
    rules.  The start rule gets a level too (1 + max over its references).
    """
    memo: dict[int, int] = {}

    def level_of(rule_id: int, stack: frozenset[int]) -> int:
        if rule_id in memo:
            return memo[rule_id]
        if rule_id in stack:
            raise GrammarError(f"cycle through R{rule_id}")
        rule = rules[rule_id]
        sub_levels = [
            level_of(item, stack | {rule_id})
            for item in rule.rhs
            if isinstance(item, int)
        ]
        memo[rule_id] = 1 + max(sub_levels, default=0)
        return memo[rule_id]

    for rid in rules:
        rules[rid].level = level_of(rid, frozenset())

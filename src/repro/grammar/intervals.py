"""Mapping grammar rules back onto the raw time series.

Every SAX word kept after numerosity reduction remembers the offset of
its source window, so a rule occurrence spanning tokens ``[i, j]`` maps to
the half-open series interval
``[offset(word_i), offset(word_j) + window)`` (paper Section 3.4).

This module produces the list of :class:`RuleInterval` objects that both
the rule density curve and the RRA candidate set are built from, plus the
"zero-coverage gaps": maximal stretches of the discretized series covered
by no rule at all (frequency-0 candidates, considered first by RRA).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grammar.grammar import Grammar, START_RULE_ID
from repro.sax.discretize import Discretization

__all__ = [
    "RuleInterval",
    "RuleIntervalList",
    "rule_intervals",
    "uncovered_intervals",
    "zero_coverage_gaps",
]


@dataclass(frozen=True)
class RuleInterval:
    """A rule occurrence projected onto the raw series.

    Attributes
    ----------
    rule_id:
        The grammar rule this interval belongs to; ``-1`` marks a
        zero-coverage gap (no rule covers it).
    start, end:
        Half-open series interval ``[start, end)``.
    usage:
        The rule's occurrence count (0 for gaps) — the RRA outer-loop
        sort key.
    """

    rule_id: int
    start: int
    end: int
    usage: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"malformed interval [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "RuleInterval") -> bool:
        """True when the two intervals share at least one point."""
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f"R{self.rule_id}" if self.rule_id >= 0 else "gap"
        return f"RuleInterval({tag}, [{self.start}, {self.end}), usage={self.usage})"


class RuleIntervalList(list):
    """A list of :class:`RuleInterval` with cached endpoint arrays.

    :func:`rule_intervals` returns this type so that the accumulation
    passes downstream (:func:`repro.core.rule_density.rule_density_curve`,
    :func:`zero_coverage_gaps`) can read every interval's endpoints as
    two ``int64`` arrays instead of re-reading per-object attributes on
    each call.  The arrays are built lazily on first use and reused for
    the lifetime of the list — one projected interval list typically
    serves the density curve, the gap scan, and (under a
    :class:`~repro.cache.SearchContext`) every refit of the same cell.

    The cache is invalidated by a length change (append/extend); callers
    that *replace* elements in place should not rely on it.  The arrays
    follow the list's element order at build time; the consumers here
    treat them as an order-independent endpoint multiset.
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self, iterable=()):
        super().__init__(iterable)
        self._starts: np.ndarray | None = None
        self._ends: np.ndarray | None = None

    def __reduce__(self):
        # Pickle as the plain element list (works at every protocol
        # despite __slots__); the receiving side rebuilds the endpoint
        # arrays lazily on first use.
        return (type(self), (list(self),))

    def endpoint_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, ends)`` as ``int64`` arrays, cached."""
        n = len(self)
        if self._starts is None or self._starts.size != n:
            self._starts = np.fromiter(
                (iv.start for iv in self), np.int64, count=n
            )
            self._ends = np.fromiter((iv.end for iv in self), np.int64, count=n)
        return self._starts, self._ends


def interval_endpoints(intervals) -> tuple[np.ndarray, np.ndarray]:
    """Endpoint arrays of any interval sequence, cached when possible."""
    getter = getattr(intervals, "endpoint_arrays", None)
    if getter is not None:
        return getter()
    n = len(intervals)
    starts = np.fromiter((iv.start for iv in intervals), np.int64, count=n)
    ends = np.fromiter((iv.end for iv in intervals), np.int64, count=n)
    return starts, ends


def rule_intervals(
    grammar: Grammar,
    discretization: Discretization,
    *,
    include_start_rule: bool = False,
) -> list[RuleInterval]:
    """Project every rule occurrence onto the raw series.

    Parameters
    ----------
    grammar:
        Grammar induced over ``discretization.tokens()``.
    discretization:
        The discretization that produced the grammar's input tokens.
    include_start_rule:
        The start rule R0 trivially covers everything and is excluded by
        default (as in the paper's rule counts).

    Returns
    -------
    list[RuleInterval]
        Sorted by (start, end, rule_id).
    """
    # Inlined span_to_interval: one grammar over a long stream yields
    # ~1e5 occurrences, so the per-occurrence bounds checks and function
    # calls dominate.  Occurrence spans come from the freeze and are
    # in range by construction (grammar.verify() checks this).
    offs = discretization.offsets.tolist()
    window = discretization.window
    series_length = discretization.series_length
    intervals = RuleIntervalList()
    append = intervals.append
    for rule in grammar:
        rule_id = rule.rule_id
        if rule_id == START_RULE_ID and not include_start_rule:
            continue
        usage = rule.usage
        for occ in rule.occurrences:
            end = offs[occ.end] + window
            if end > series_length:
                end = series_length
            append(RuleInterval(rule_id, offs[occ.start], end, usage=usage))
    intervals.sort(key=lambda iv: (iv.start, iv.end, iv.rule_id))
    return intervals


def uncovered_intervals(
    grammar: Grammar,
    discretization: Discretization,
) -> list[RuleInterval]:
    """Subsequences of the discretized series that are part of no rule.

    The paper's RRA candidate set is "subsequences that correspond to the
    grammar rules *plus all continuous subsequences of the discretized
    time series that do not form any rule*".  The latter are exactly the
    maximal runs of terminal tokens that remain directly in R0's
    right-hand side after induction: the compressor found no rule to put
    them in, which makes them frequency-0 (prime discord) candidates.

    Each run is projected to the series interval spanned by its tokens'
    windows, like a rule occurrence.
    """
    gaps: list[RuleInterval] = []
    token_pos = 0
    run_start: int | None = None
    for item in grammar.start_rule.rhs:
        if isinstance(item, int):
            if run_start is not None:
                start, end = discretization.span_to_interval(run_start, token_pos - 1)
                gaps.append(RuleInterval(-1, start, end, usage=0))
                run_start = None
            token_pos += grammar.rules[item].expansion_length
        else:
            if run_start is None:
                run_start = token_pos
            token_pos += 1
    if run_start is not None:
        start, end = discretization.span_to_interval(run_start, token_pos - 1)
        gaps.append(RuleInterval(-1, start, end, usage=0))
    return gaps


def zero_coverage_gaps(
    intervals: list[RuleInterval],
    series_length: int,
    *,
    min_length: int = 2,
) -> list[RuleInterval]:
    """Maximal series stretches covered by no rule interval.

    A coverage-based view of "uncovered", complementary to
    :func:`uncovered_intervals`: where that function works at the token
    level (runs of terminals left in R0), this one works in raw series
    coordinates and reports the stretches with zero rule density —
    i.e. exactly where the rule density curve is 0.  Gaps shorter than
    *min_length* points are ignored (a 1-point gap carries no shape).
    """
    n = len(intervals)
    if n:
        iv_starts, iv_ends = interval_endpoints(intervals)
        coverage = np.bincount(
            np.minimum(iv_starts, series_length), minlength=series_length + 1
        )
        coverage -= np.bincount(
            np.minimum(iv_ends, series_length), minlength=series_length + 1
        )
        covered = np.cumsum(coverage[:series_length]) > 0
    else:
        covered = np.zeros(series_length, dtype=bool)

    # Uncovered runs via edge detection on the padded mask (same trick
    # as density_minima_intervals): O(series_length), no Python scan.
    padded = np.zeros(series_length + 2, dtype=np.int8)
    padded[1:-1] = ~covered
    edges = np.diff(padded)
    run_starts = np.flatnonzero(edges == 1)
    run_ends = np.flatnonzero(edges == -1)
    return [
        RuleInterval(-1, int(s), int(e), usage=0)
        for s, e in zip(run_starts.tolist(), run_ends.tolist())
        if e - s >= min_length
    ]

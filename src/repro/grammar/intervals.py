"""Mapping grammar rules back onto the raw time series.

Every SAX word kept after numerosity reduction remembers the offset of
its source window, so a rule occurrence spanning tokens ``[i, j]`` maps to
the half-open series interval
``[offset(word_i), offset(word_j) + window)`` (paper Section 3.4).

This module produces the list of :class:`RuleInterval` objects that both
the rule density curve and the RRA candidate set are built from, plus the
"zero-coverage gaps": maximal stretches of the discretized series covered
by no rule at all (frequency-0 candidates, considered first by RRA).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grammar.grammar import Grammar, START_RULE_ID
from repro.sax.discretize import Discretization

__all__ = [
    "RuleInterval",
    "rule_intervals",
    "uncovered_intervals",
    "zero_coverage_gaps",
]


@dataclass(frozen=True)
class RuleInterval:
    """A rule occurrence projected onto the raw series.

    Attributes
    ----------
    rule_id:
        The grammar rule this interval belongs to; ``-1`` marks a
        zero-coverage gap (no rule covers it).
    start, end:
        Half-open series interval ``[start, end)``.
    usage:
        The rule's occurrence count (0 for gaps) — the RRA outer-loop
        sort key.
    """

    rule_id: int
    start: int
    end: int
    usage: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"malformed interval [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "RuleInterval") -> bool:
        """True when the two intervals share at least one point."""
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f"R{self.rule_id}" if self.rule_id >= 0 else "gap"
        return f"RuleInterval({tag}, [{self.start}, {self.end}), usage={self.usage})"


def rule_intervals(
    grammar: Grammar,
    discretization: Discretization,
    *,
    include_start_rule: bool = False,
) -> list[RuleInterval]:
    """Project every rule occurrence onto the raw series.

    Parameters
    ----------
    grammar:
        Grammar induced over ``discretization.tokens()``.
    discretization:
        The discretization that produced the grammar's input tokens.
    include_start_rule:
        The start rule R0 trivially covers everything and is excluded by
        default (as in the paper's rule counts).

    Returns
    -------
    list[RuleInterval]
        Sorted by (start, end, rule_id).
    """
    intervals: list[RuleInterval] = []
    for rule in grammar:
        if rule.rule_id == START_RULE_ID and not include_start_rule:
            continue
        for occ in rule.occurrences:
            start, end = discretization.span_to_interval(occ.start, occ.end)
            intervals.append(
                RuleInterval(rule.rule_id, start, end, usage=rule.usage)
            )
    intervals.sort(key=lambda iv: (iv.start, iv.end, iv.rule_id))
    return intervals


def uncovered_intervals(
    grammar: Grammar,
    discretization: Discretization,
) -> list[RuleInterval]:
    """Subsequences of the discretized series that are part of no rule.

    The paper's RRA candidate set is "subsequences that correspond to the
    grammar rules *plus all continuous subsequences of the discretized
    time series that do not form any rule*".  The latter are exactly the
    maximal runs of terminal tokens that remain directly in R0's
    right-hand side after induction: the compressor found no rule to put
    them in, which makes them frequency-0 (prime discord) candidates.

    Each run is projected to the series interval spanned by its tokens'
    windows, like a rule occurrence.
    """
    gaps: list[RuleInterval] = []
    token_pos = 0
    run_start: int | None = None
    for item in grammar.start_rule.rhs:
        if isinstance(item, int):
            if run_start is not None:
                start, end = discretization.span_to_interval(run_start, token_pos - 1)
                gaps.append(RuleInterval(-1, start, end, usage=0))
                run_start = None
            token_pos += grammar.rules[item].expansion_length
        else:
            if run_start is None:
                run_start = token_pos
            token_pos += 1
    if run_start is not None:
        start, end = discretization.span_to_interval(run_start, token_pos - 1)
        gaps.append(RuleInterval(-1, start, end, usage=0))
    return gaps


def zero_coverage_gaps(
    intervals: list[RuleInterval],
    series_length: int,
    *,
    min_length: int = 2,
) -> list[RuleInterval]:
    """Maximal series stretches covered by no rule interval.

    A coverage-based view of "uncovered", complementary to
    :func:`uncovered_intervals`: where that function works at the token
    level (runs of terminals left in R0), this one works in raw series
    coordinates and reports the stretches with zero rule density —
    i.e. exactly where the rule density curve is 0.  Gaps shorter than
    *min_length* points are ignored (a 1-point gap carries no shape).
    """
    coverage = np.zeros(series_length + 1, dtype=np.int64)
    for iv in intervals:
        coverage[iv.start] += 1
        coverage[min(iv.end, series_length)] -= 1
    covered = np.cumsum(coverage[:-1]) > 0

    gaps: list[RuleInterval] = []
    in_gap = False
    gap_start = 0
    for pos in range(series_length):
        if not covered[pos]:
            if not in_gap:
                in_gap = True
                gap_start = pos
        elif in_gap:
            in_gap = False
            if pos - gap_start >= min_length:
                gaps.append(RuleInterval(-1, gap_start, pos, usage=0))
    if in_gap and series_length - gap_start >= min_length:
        gaps.append(RuleInterval(-1, gap_start, series_length, usage=0))
    return gaps

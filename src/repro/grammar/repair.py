"""Re-Pair: offline most-frequent-digram grammar induction.

Re-Pair (Larsson & Moffat 1999) repeatedly replaces the most frequent
digram in the sequence with a fresh non-terminal until no digram occurs
twice.  GrammarViz 2.0 ships it alongside Sequitur; we provide it for the
ablation benchmark (same :class:`~repro.grammar.grammar.Grammar` output,
so the density/RRA pipeline is compressor-agnostic).

Unlike Sequitur, Re-Pair is offline (it sees the whole sequence) and
greedy by global frequency, which usually yields a slightly smaller
grammar with a different hierarchy.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.grammar.grammar import (
    Grammar,
    GrammarRule,
    START_RULE_ID,
    compute_levels,
)
from repro.grammar.sequitur import _fill_expansions, _fill_occurrences


def _digram_counts(seq: list) -> Counter:
    """Counts of non-overlapping digrams, greedy left-to-right.

    A run like ``a a a`` contributes one occurrence of ``(a, a)`` so that
    the count equals the number of replacements a pass would perform.
    """
    counts: Counter = Counter()
    i = 0
    previous = None
    while i < len(seq) - 1:
        digram = (seq[i], seq[i + 1])
        if digram == previous and seq[i - 1] == seq[i] == seq[i + 1]:
            # Overlapping repetition: skip, mirroring the replacement scan.
            previous = None
            i += 1
            continue
        counts[digram] += 1
        previous = digram
        i += 1
    return counts


def _replace(seq: list, digram: tuple, marker) -> list:
    """Replace non-overlapping occurrences of *digram* with *marker*."""
    out: list = []
    i = 0
    n = len(seq)
    while i < n:
        if i < n - 1 and (seq[i], seq[i + 1]) == digram:
            out.append(marker)
            i += 2
        else:
            out.append(seq[i])
            i += 1
    return out


def repair_grammar(tokens: Sequence[str]) -> Grammar:
    """Run Re-Pair over *tokens* and return the resulting grammar."""
    token_list = [str(t) for t in tokens]
    # Work sequence mixes terminal strings and integer rule ids; integers
    # are the public rule ids directly (1, 2, ...).
    seq: list = list(token_list)
    bodies: dict[int, list] = {}
    next_id = 1
    while True:
        counts = _digram_counts(seq)
        if not counts:
            break
        digram, count = max(counts.items(), key=lambda kv: (kv[1], _priority(kv[0])))
        if count < 2:
            break
        bodies[next_id] = [digram[0], digram[1]]
        seq = _replace(seq, digram, next_id)
        next_id += 1

    rules: dict[int, GrammarRule] = {
        START_RULE_ID: GrammarRule(rule_id=START_RULE_ID, rhs=list(seq))
    }
    for rule_id, body in bodies.items():
        rules[rule_id] = GrammarRule(rule_id=rule_id, rhs=list(body))

    _prune_unused(rules)
    _fill_expansions(rules)
    _fill_occurrences(rules, len(token_list))
    compute_levels(rules)
    return Grammar(tokens=token_list, rules=rules, algorithm="repair")


def _priority(digram: tuple):
    """Deterministic tie-break for equal-count digrams."""
    return tuple(("R", -x) if isinstance(x, int) else ("t", x) for x in digram)


def _prune_unused(rules: dict[int, GrammarRule]) -> None:
    """Inline rules used exactly once and drop unreachable ones.

    Re-Pair can leave a rule referenced a single time when later
    replacements absorbed its other occurrences; grammar utility (and
    our downstream rule-frequency reasoning) wants every rule used at
    least twice.
    """
    changed = True
    while changed:
        changed = False
        use_counts: Counter = Counter()
        for rule in rules.values():
            for item in rule.rhs:
                if isinstance(item, int):
                    use_counts[item] += 1
        for rule_id in list(rules):
            if rule_id == START_RULE_ID:
                continue
            uses = use_counts.get(rule_id, 0)
            if uses == 0:
                del rules[rule_id]
                changed = True
            elif uses == 1:
                body = rules[rule_id].rhs
                for host in rules.values():
                    if rule_id in host.rhs:
                        idx = host.rhs.index(rule_id)
                        host.rhs[idx : idx + 1] = body
                        break
                del rules[rule_id]
                changed = True

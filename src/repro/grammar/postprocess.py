"""Grammar post-processing: rule pruning and periodicity analysis.

GrammarViz 2.0's rule panes offer two analyses this module reproduces:

* **rule pruning** ("Prune rules" button) — the raw grammar contains
  many rules whose series coverage is entirely contained in a larger
  rule's coverage; for presentation and ranking one usually wants the
  smallest set of rules that still covers everything the grammar
  covers.  :func:`prune_rules` greedily keeps rules by descending
  coverage contribution.
* **rule periodicity** ("Rules periodicity" tab) — for recurring
  patterns the *spacing* between consecutive occurrences is itself
  informative: near-constant spacing means the pattern is periodic
  (one heartbeat per beat, one week per week).
  :func:`rule_periodicity` measures that regularity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError
from repro.grammar.grammar import Grammar, START_RULE_ID
from repro.grammar.intervals import RuleInterval, rule_intervals
from repro.sax.discretize import Discretization


@dataclass(frozen=True)
class PrunedRule:
    """One rule kept by the pruner, with its coverage contribution."""

    rule_id: int
    usage: int
    new_points: int        # points this rule covered first
    total_points: int      # points covered by all its occurrences


def prune_rules(
    grammar: Grammar,
    discretization: Discretization,
    *,
    min_new_points: int = 1,
) -> list[PrunedRule]:
    """Greedy set-cover pruning of the grammar's rules.

    Rules are considered in order of descending covered-point count;
    a rule is kept only if it covers at least *min_new_points* series
    points that no previously kept rule covers.  The result is a small
    rule set with the same total coverage — GrammarViz's "packed" rule
    view.

    Returns the kept rules, in the order they were selected.
    """
    if min_new_points < 1:
        raise ParameterError(f"min_new_points must be >= 1, got {min_new_points}")
    intervals = rule_intervals(grammar, discretization)
    by_rule: dict[int, list[RuleInterval]] = {}
    for interval in intervals:
        by_rule.setdefault(interval.rule_id, []).append(interval)

    # Build each rule's coverage mask exactly once and reuse it for both
    # the ordering key and the greedy pass (previously the masks were
    # rebuilt inside the loop, doubling the dominant cost of pruning).
    masks: dict[int, np.ndarray] = {}
    totals: dict[int, int] = {}
    for rule_id, rule_ivs in by_rule.items():
        mask = np.zeros(discretization.series_length, dtype=bool)
        for iv in rule_ivs:
            mask[iv.start : iv.end] = True
        masks[rule_id] = mask
        totals[rule_id] = int(mask.sum())

    order = sorted(by_rule, key=lambda rule_id: (-totals[rule_id], rule_id))

    covered = np.zeros(discretization.series_length, dtype=bool)
    kept: list[PrunedRule] = []
    for rule_id in order:
        mask = masks[rule_id]
        new_points = int((mask & ~covered).sum())
        if new_points >= min_new_points:
            covered |= mask
            kept.append(
                PrunedRule(
                    rule_id=rule_id,
                    usage=grammar.rules[rule_id].usage,
                    new_points=new_points,
                    total_points=totals[rule_id],
                )
            )
    return kept


@dataclass(frozen=True)
class RulePeriodicity:
    """Occurrence-spacing statistics of one rule."""

    rule_id: int
    usage: int
    mean_period: float
    period_cv: float  # coefficient of variation of the spacing

    @property
    def is_periodic(self) -> bool:
        """Near-constant spacing (CV below 20 %)."""
        return self.usage >= 3 and self.period_cv < 0.2


def rule_periodicity(
    grammar: Grammar,
    discretization: Discretization,
    *,
    min_occurrences: int = 3,
) -> list[RulePeriodicity]:
    """Spacing regularity of every rule with enough occurrences.

    The period is the spacing between consecutive occurrence *starts*
    in series coordinates; the coefficient of variation (std / mean)
    quantifies regularity.  Sorted by ascending CV (most periodic
    first).
    """
    if min_occurrences < 2:
        raise ParameterError(
            f"min_occurrences must be >= 2, got {min_occurrences}"
        )
    results: list[RulePeriodicity] = []
    for rule in grammar:
        if rule.rule_id == START_RULE_ID or rule.usage < min_occurrences:
            continue
        starts = sorted(
            discretization.span_to_interval(occ.start, occ.end)[0]
            for occ in rule.occurrences
        )
        gaps = np.diff(starts).astype(float)
        if gaps.size == 0:
            continue
        mean = float(gaps.mean())
        if mean <= 0:
            continue
        cv = float(gaps.std() / mean)
        results.append(
            RulePeriodicity(
                rule_id=rule.rule_id,
                usage=rule.usage,
                mean_period=mean,
                period_cv=cv,
            )
        )
    results.sort(key=lambda r: (r.period_cv, r.rule_id))
    return results

"""Reference Sequitur: the original object-based implementation.

This is the pre-optimization induction engine, kept verbatim as the
ground truth for the interned fast path in
:mod:`repro.grammar.sequitur`.  The equivalence tests assert that the
fast engines (C core and pure-Python array engine) produce grammars
``==`` to this one on arbitrary inputs, and the benchmark uses it as
the honest baseline.

Do not optimize this module — its value is that it stays simple and
obviously faithful to Nevill-Manning & Witten's design: each rule owns
a circular, guard-closed doubly-linked symbol list, and a global digram
index maps symbol-pair keys to the left symbol of their unique
occurrence.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.grammar.grammar import (
    Grammar,
    GrammarRule,
    RuleOccurrence,
    START_RULE_ID,
    compute_levels,
)


class _Rule:
    """Internal Sequitur rule: a circular, guard-closed symbol list."""

    __slots__ = ("ctx", "serial", "refcount", "guard")

    def __init__(self, ctx: "_Sequitur") -> None:
        self.ctx = ctx
        self.serial = ctx.next_serial()
        self.refcount = 0
        self.guard = _Symbol(ctx, guard_of=self)
        self.guard.next = self.guard
        self.guard.prev = self.guard
        ctx.rules[self.serial] = self

    def first(self) -> "_Symbol":
        return self.guard.next

    def last(self) -> "_Symbol":
        return self.guard.prev

    def reuse(self) -> None:
        self.refcount += 1

    def deuse(self) -> None:
        self.refcount -= 1

    def symbols(self) -> Iterable["_Symbol"]:
        """Iterate the body symbols, guard excluded."""
        sym = self.first()
        while not sym.is_guard:
            yield sym
            sym = sym.next

    def drop(self) -> None:
        """Remove this rule from the registry (after inlining)."""
        del self.ctx.rules[self.serial]


class _Symbol:
    """A node in a rule body: terminal, non-terminal, or guard."""

    __slots__ = ("ctx", "token", "rule", "is_guard", "owner", "prev", "next")

    def __init__(
        self,
        ctx: "_Sequitur",
        *,
        token: Optional[str] = None,
        rule: Optional[_Rule] = None,
        guard_of: Optional[_Rule] = None,
    ) -> None:
        self.ctx = ctx
        self.token = token
        self.rule = rule
        self.is_guard = guard_of is not None
        self.owner = guard_of
        self.prev: Optional[_Symbol] = None
        self.next: Optional[_Symbol] = None
        if rule is not None:
            rule.reuse()

    # -- identity -----------------------------------------------------

    @property
    def is_nonterminal(self) -> bool:
        return self.rule is not None and not self.is_guard

    def key(self):
        """Hashable identity used in digram keys."""
        if self.is_nonterminal:
            return ("R", self.rule.serial)
        return ("t", self.token)

    def digram_key(self):
        """Key of the digram (self, self.next)."""
        return (self.key(), self.next.key())

    # -- linking ------------------------------------------------------

    @staticmethod
    def join(left: "_Symbol", right: "_Symbol") -> None:
        """Link *left* -> *right*, maintaining the digram index.

        If *left* previously had a right neighbour, the old digram is
        removed from the index.  The two inner conditionals re-index the
        first pair of an overlapping triple (e.g. in ``...aaa...`` only
        the second ``aa`` is indexed; when it disappears, the first one
        must be remembered again) — this is the classic fix from the
        reference implementation.
        """
        ctx = left.ctx
        if left.next is not None:
            left.delete_digram()
            if (
                right.prev is not None
                and right.next is not None
                and not right.is_guard
                and not right.prev.is_guard
                and not right.next.is_guard
                and right.key() == right.prev.key()
                and right.key() == right.next.key()
            ):
                ctx.index[right.digram_key()] = right
            if (
                left.prev is not None
                and left.next is not None
                and not left.is_guard
                and not left.prev.is_guard
                and not left.next.is_guard
                and left.key() == left.next.key()
                and left.key() == left.prev.key()
            ):
                ctx.index[left.prev.digram_key()] = left.prev
        left.next = right
        right.prev = left

    def insert_after(self, symbol: "_Symbol") -> None:
        """Insert *symbol* immediately after self."""
        _Symbol.join(symbol, self.next)
        _Symbol.join(self, symbol)

    def delete_digram(self) -> None:
        """Remove the digram (self, self.next) from the index if present."""
        if self.is_guard or self.next is None or self.next.is_guard:
            return
        key = self.digram_key()
        if self.ctx.index.get(key) is self:
            del self.ctx.index[key]

    def unlink(self) -> None:
        """Remove self from its list with full bookkeeping.

        Mirrors the reference destructor: unlink, drop the (self, next)
        digram from the index, and decrement a referenced rule's use
        count.
        """
        _Symbol.join(self.prev, self.next)
        if not self.is_guard:
            self.delete_digram()
            if self.is_nonterminal:
                self.rule.deuse()

    # -- the Sequitur invariants ---------------------------------------

    def check(self) -> bool:
        """Enforce digram uniqueness on the digram (self, self.next).

        Returns True when a match was found and processed (the grammar
        changed), False when the digram was merely indexed.
        """
        if self.is_guard or self.next is None or self.next.is_guard:
            return False
        key = self.digram_key()
        found = self.ctx.index.get(key)
        if found is None:
            self.ctx.index[key] = self
            return False
        if found.next is not self:  # overlapping digrams (aaa) are ignored
            self._process_match(found)
        return True

    def _process_match(self, match: "_Symbol") -> None:
        """Digram (self, self.next) == digram at *match*: factor it out."""
        ctx = self.ctx
        if match.prev.is_guard and match.next.next.is_guard:
            # The match is the complete body of an existing rule: reuse it.
            rule = match.prev.owner
            self._substitute(rule)
        else:
            rule = _Rule(ctx)
            rule.last().insert_after(self.copy())
            rule.last().insert_after(self.next.copy())
            match._substitute(rule)
            self._substitute(rule)
            ctx.index[rule.first().digram_key()] = rule.first()
        # Rule utility: inline a rule that is now used only once.
        first = rule.first()
        if first.is_nonterminal and first.rule.refcount == 1:
            first.expand()

    def copy(self) -> "_Symbol":
        """A fresh symbol with the same value (bumps rule refcount)."""
        if self.is_nonterminal:
            return _Symbol(self.ctx, rule=self.rule)
        return _Symbol(self.ctx, token=self.token)

    def _substitute(self, rule: _Rule) -> None:
        """Replace the digram (self, self.next) by a reference to *rule*."""
        prev = self.prev
        prev.next.unlink()
        prev.next.unlink()
        prev.insert_after(_Symbol(self.ctx, rule=rule))
        if not prev.check():
            prev.next.check()

    def expand(self) -> None:
        """Inline the once-used rule this non-terminal refers to."""
        rule = self.rule
        left = self.prev
        right = self.next
        first = rule.first()
        last = rule.last()
        self.delete_digram()
        _Symbol.join(left, first)
        _Symbol.join(last, right)
        self.ctx.index[last.digram_key()] = last
        rule.drop()


class _Sequitur:
    """Mutable induction state: rule registry and digram index."""

    def __init__(self) -> None:
        self.rules: dict[int, _Rule] = {}
        self.index: dict[tuple, _Symbol] = {}
        self._serial = 0
        self.start = _Rule(self)

    def next_serial(self) -> int:
        serial = self._serial
        self._serial += 1
        return serial

    def push_token(self, token: str) -> None:
        """Append one input token and restore the invariants."""
        self.start.last().insert_after(_Symbol(self, token=token))
        last = self.start.last()
        if last.prev is not None and not last.prev.is_guard:
            last.prev.check()


def induce_grammar_legacy(tokens: Sequence[str]) -> Grammar:
    """Reference induction: original engine, original freeze."""
    state = _Sequitur()
    token_list = [str(t) for t in tokens]
    for token in token_list:
        state.push_token(token)
    return _freeze(state, token_list)


def _freeze(state: _Sequitur, tokens: list[str]) -> Grammar:
    """Convert mutable induction state into the immutable data model."""
    from repro.grammar.sequitur import _fill_expansions, _fill_occurrences

    id_map: dict[int, int] = {state.start.serial: START_RULE_ID}
    order: list[_Rule] = [state.start]

    # Assign public ids in pre-order of first reference from R0.
    stack = [state.start]
    visited = {state.start.serial}
    while stack:
        rule = stack.pop(0)
        for sym in rule.symbols():
            if sym.is_nonterminal and sym.rule.serial not in visited:
                visited.add(sym.rule.serial)
                id_map[sym.rule.serial] = len(order)
                order.append(sym.rule)
                stack.append(sym.rule)

    rules: dict[int, GrammarRule] = {}
    for internal in order:
        public_id = id_map[internal.serial]
        rhs: list = []
        for sym in internal.symbols():
            if sym.is_nonterminal:
                rhs.append(id_map[sym.rule.serial])
            else:
                rhs.append(sym.token)
        rules[public_id] = GrammarRule(rule_id=public_id, rhs=rhs)

    _fill_expansions(rules)
    _fill_occurrences(rules, len(tokens))
    compute_levels(rules)
    grammar = Grammar(tokens=tokens, rules=rules, algorithm="sequitur")
    return grammar

"""Sequitur: linear-time incremental grammar induction.

Implements Nevill-Manning & Witten's Sequitur algorithm (the paper's
grammar-induction procedure, Section 3.3) over arbitrary hashable string
tokens — in our pipeline, numerosity-reduced SAX words.

Sequitur maintains two invariants at all times:

* **digram uniqueness** — no pair of adjacent symbols occurs more than
  once in the grammar; a repeated digram is replaced by a non-terminal;
* **rule utility** — every rule is used at least twice; a rule whose use
  count drops to one is inlined and deleted.

This module runs the induction over *interned integer tokens*: input
tokens are mapped to dense ids once, and the invariant machinery works
on parallel ``code``/``prv``/``nxt`` arrays with a digram index keyed by
packed integer pairs instead of tuple-of-tuple string keys.  Two
bit-identical engines implement that design:

* a C core (:mod:`repro.grammar.ccore`), compiled on first use from
  ``_sequitur_core.c`` when a system compiler is available;
* :class:`_FastSequitur`, the pure-Python array engine, used as the
  fallback when the C core cannot be built or is disabled via
  ``REPRO_SEQUITUR_CORE=off``.

Both produce grammars equal to the original object-based implementation
preserved in :mod:`repro.grammar.legacy`; the equivalence tests and the
golden grammar fingerprints enforce this.

Symbol encoding shared by both engines: terminal token id ``t`` is code
``2t`` (even), a reference to rule serial ``s`` is ``2s + 1`` (odd), and
the guard node of rule serial ``s`` carries ``-s - 1`` (negative).  A
digram ``(a, b)`` is indexed under the packed key
``code(a) << 42 | code(b)``.
"""

from __future__ import annotations

import ctypes
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import GrammarError
from repro.grammar import ccore
from repro.grammar.grammar import (
    Grammar,
    GrammarRule,
    RuleOccurrence,
    START_RULE_ID,
)

_KSHIFT = 42
_NEW_OCC = RuleOccurrence.__new__
_SET = object.__setattr__


class _FastSequitur:
    """Array-based Sequitur over interned integer token codes.

    Nodes live in three parallel lists (``code``/``prv``/``nxt``); ``-1``
    means "none".  ``guards[serial]`` is the guard node of the rule with
    that serial (``-1`` once the rule has been inlined), and
    ``refcount[serial]`` its use count.  The layout and the order of
    every index/refcount update mirror the reference implementation in
    :mod:`repro.grammar.legacy` exactly, so both engines build the same
    rules in the same serial order.
    """

    __slots__ = ("code", "prv", "nxt", "guards", "refcount", "index")

    def __init__(self) -> None:
        self.code = [-1]  # node 0 = guard of the start rule (serial 0)
        self.prv = [0]
        self.nxt = [0]
        self.guards = [0]  # serial -> guard node id (-1 = dropped)
        self.refcount = [0]  # serial -> use count
        self.index: dict[int, int] = {}

    def _join(self, left: int, right: int) -> None:
        """Link *left* -> *right* with full digram-index bookkeeping."""
        code, prv, nxt, index = self.code, self.prv, self.nxt, self.index
        if nxt[left] != -1:
            lc = code[left]
            ln = nxt[left]
            if lc >= 0 and code[ln] >= 0:
                key = lc << _KSHIFT | code[ln]
                if index.get(key) == left:
                    del index[key]
            # Re-index the first pair of an overlapping triple (the
            # classic ``aaa`` fix from the reference implementation).
            rc = code[right]
            if rc >= 0:
                rp, rn = prv[right], nxt[right]
                if rp != -1 and rn != -1 and code[rp] == rc and code[rn] == rc:
                    index[rc << _KSHIFT | rc] = right
            if lc >= 0:
                lp = prv[left]
                if lp != -1 and ln != -1 and code[ln] == lc and code[lp] == lc:
                    index[lc << _KSHIFT | lc] = lp
        nxt[left] = right
        prv[right] = left

    def _check(self, i: int) -> bool:
        """Enforce digram uniqueness on the digram starting at node *i*."""
        code, nxt = self.code, self.nxt
        ci = code[i]
        if ci < 0:
            return False
        n = nxt[i]
        if n == -1 or code[n] < 0:
            return False
        key = ci << _KSHIFT | code[n]
        found = self.index.setdefault(key, i)
        if found == i:
            return False
        if nxt[found] != i:  # overlapping digrams (aaa) are ignored
            self._process_match(i, found)
        return True

    def _process_match(self, i: int, match: int) -> None:
        """Digram at *i* equals digram at *match*: factor it out."""
        code, prv, nxt = self.code, self.prv, self.nxt
        refcount, guards = self.refcount, self.guards
        if code[prv[match]] < 0 and code[nxt[nxt[match]]] < 0:
            # The match is the complete body of an existing rule: reuse it.
            serial = -code[prv[match]] - 1
            self._substitute(i, serial)
        else:
            serial = len(guards)
            guard = len(code)
            code.append(-serial - 1)
            prv.append(guard)
            nxt.append(guard)
            guards.append(guard)
            refcount.append(0)
            ca = code[i]
            cb = code[nxt[i]]
            a = guard + 1
            code.append(ca)
            prv.append(guard)
            nxt.append(guard)
            if ca & 1:
                refcount[ca >> 1] += 1
            b = a + 1
            code.append(cb)
            prv.append(a)
            nxt.append(guard)
            if cb & 1:
                refcount[cb >> 1] += 1
            nxt[guard] = a
            nxt[a] = b
            prv[guard] = b
            self._substitute(match, serial)
            self._substitute(i, serial)
            self.index[ca << _KSHIFT | cb] = a
        # Rule utility: inline a rule that is now used only once.
        first = nxt[guards[serial]]
        fc = code[first]
        if fc & 1 and fc >= 0 and refcount[fc >> 1] == 1:
            self._expand(first)

    def _substitute(self, i: int, serial: int) -> None:
        """Replace the digram starting at node *i* by a rule reference."""
        code, prv, nxt, index = self.code, self.prv, self.nxt, self.index
        p = prv[i]
        # Unlink the two digram symbols — (nxt[p], nxt[nxt[p]]) — with
        # the same bookkeeping order as the reference ``unlink``.
        for _ in (0, 1):
            d = nxt[p]
            dn = nxt[d]
            pc = code[p]
            if pc >= 0 and code[d] >= 0:
                key = pc << _KSHIFT | code[d]
                if index.get(key) == p:
                    del index[key]
            dc = code[dn]
            if dc >= 0:
                dp, dnn = prv[dn], nxt[dn]
                if dp != -1 and dnn != -1 and code[dp] == dc and code[dnn] == dc:
                    index[dc << _KSHIFT | dc] = dn
            if pc >= 0:
                pp = prv[p]
                if pp != -1 and code[d] == pc and code[pp] == pc:
                    index[pc << _KSHIFT | pc] = prv[p]
            nxt[p] = dn
            prv[dn] = p
            dc2 = code[d]
            if dc2 >= 0:
                if dn != -1 and code[dn] >= 0:
                    key = dc2 << _KSHIFT | code[dn]
                    if index.get(key) == d:
                        del index[key]
                if dc2 & 1:
                    self.refcount[dc2 >> 1] -= 1
        node = len(code)
        code.append(2 * serial + 1)
        prv.append(-1)
        nxt.append(-1)
        self.refcount[serial] += 1
        self._join(node, nxt[p])
        self._join(p, node)
        if not self._check(p):
            self._check(nxt[p])

    def _expand(self, i: int) -> None:
        """Inline the once-used rule referenced by node *i*."""
        code, prv, nxt, index = self.code, self.prv, self.nxt, self.index
        serial = code[i] >> 1
        guard = self.guards[serial]
        left, right = prv[i], nxt[i]
        first, last = nxt[guard], prv[guard]
        ci = code[i]
        if right != -1 and code[right] >= 0:
            key = ci << _KSHIFT | code[right]
            if index.get(key) == i:
                del index[key]
        self._join(left, first)
        self._join(last, right)
        ln = nxt[last]
        if code[ln] >= 0:
            index[code[last] << _KSHIFT | code[ln]] = last
        self.guards[serial] = -1
        self.refcount[serial] = 0

    def push_code(self, c: int) -> None:
        """Append one pre-doubled terminal code and restore invariants."""
        self.push_many((c,))

    def push_many(self, codes) -> None:
        """Consume pre-doubled terminal codes (``2 * token_id`` each)."""
        code, prv, nxt = self.code, self.prv, self.nxt
        setdefault = self.index.setdefault
        process = self._process_match
        guard = self.guards[0]
        for c in codes:
            node = len(code)
            last = prv[guard]
            code.append(c)
            prv.append(last)
            nxt.append(guard)
            nxt[last] = node
            prv[guard] = node
            lc = code[last]
            if lc < 0:
                continue
            key = lc << _KSHIFT | c
            found = setdefault(key, last)
            if found != last and nxt[found] != last:
                process(last, found)


# ---------------------------------------------------------------------
# Freeze: array state -> immutable Grammar
# ---------------------------------------------------------------------


def _prep_python(fs: _FastSequitur, n_tokens: int):
    """Freeze preparation on the pure-Python engine.

    Returns ``(bodies, levels, lengths, starts)`` in the shared
    materialization format: rules renumbered BFS-first from R0, each
    body a list of codes where terminal id ``t`` is ``2t`` and public
    rule id ``p`` is ``2p + 1``; ``starts[pid]`` lists the sorted
    occurrence start positions.
    """
    code, nxt, guards = fs.code, fs.nxt, fs.guards

    # BFS id assignment in order of first reference from R0 (matches the
    # legacy freeze's queue order).
    id_map = {0: START_RULE_ID}
    queue = [0]
    qi = 0
    bodies: list[list[int]] = []
    while qi < len(queue):
        serial = queue[qi]
        qi += 1
        guard = guards[serial]
        body: list[int] = []
        i = nxt[guard]
        while code[i] >= 0:
            c = code[i]
            if c & 1:
                s = c >> 1
                pid = id_map.get(s)
                if pid is None:
                    pid = id_map[s] = len(id_map)
                    queue.append(s)
                body.append(2 * pid + 1)
            else:
                body.append(c)
            i = nxt[i]
        bodies.append(body)

    n_rules = len(queue)

    # Hierarchy levels: iterative post-order DP (same values as
    # ``compute_levels`` on the finished grammar).
    levels = [0] * n_rules
    for root in range(n_rules):
        if levels[root]:
            continue
        stack = [root]
        while stack:
            top = stack[-1]
            if levels[top]:
                stack.pop()
                continue
            best = 0
            ready = True
            for c in bodies[top]:
                if c & 1:
                    lv = levels[c >> 1]
                    if not lv:
                        stack.append(c >> 1)
                        ready = False
                    elif lv > best:
                        best = lv
            if ready:
                levels[top] = best + 1
                stack.pop()

    order = sorted(range(n_rules), key=levels.__getitem__)

    # Expansion lengths + child refs, children before parents.
    lengths = [0] * n_rules
    rhs_refs: list = [None] * n_rules
    for pid in order:
        total = 0
        refs = []
        for c in bodies[pid]:
            if c & 1:
                refs.append((total, c >> 1))
                total += lengths[c >> 1]
            else:
                total += 1
        lengths[pid] = total
        rhs_refs[pid] = refs

    # Occurrence starts: parents (higher level) propagate to children.
    starts: list[list[int]] = [[] for _ in range(n_rules)]
    if n_tokens:
        starts[START_RULE_ID].append(0)
    for pid in reversed(order):
        mine = starts[pid]
        mine.sort()
        for offset, child in rhs_refs[pid]:
            cs = starts[child]
            if offset:
                for s in mine:
                    cs.append(s + offset)
            else:
                cs += mine

    return bodies, levels, lengths, starts


def _materialize(bodies, levels, lengths, starts, tokens, vocab) -> Grammar:
    """Build the immutable Grammar from shared freeze-prep arrays."""
    rules: dict[int, GrammarRule] = {}
    for pid in range(len(bodies)):
        rhs = [c >> 1 if c & 1 else vocab[c >> 1] for c in bodies[pid]]
        rule = GrammarRule(rule_id=pid, rhs=rhs)
        rule.level = levels[pid]
        length = lengths[pid]
        mine = starts[pid]
        if mine:
            s0 = mine[0]
            rule.expansion = tokens[s0 : s0 + length]
        occs = []
        last = length - 1
        ap = occs.append
        for s in mine:
            # RuleOccurrence.__new__ + setattr skips dataclass __init__
            # overhead; at ~1e5 occurrences per grammar the constructor
            # dominates the freeze otherwise.
            occ = _NEW_OCC(RuleOccurrence)
            _SET(occ, "start", s)
            _SET(occ, "end", s + last)
            ap(occ)
        rule.occurrences = occs
        rules[pid] = rule
    return Grammar(tokens=tokens, rules=rules, algorithm="sequitur")


def _induce_c(lib, codes: np.ndarray, tokens: list, vocab: list) -> Grammar:
    """Run push + freeze prep inside the C core, materialize in Python."""
    h = lib.seq_new()
    if not h or lib.seq_oom(h):
        if h:
            lib.seq_free(h)
        raise MemoryError("seq_new failed")
    try:
        rc = lib.seq_push(h, codes.ctypes.data_as(ctypes.c_void_p), codes.size)
        if rc != 0:
            raise MemoryError("seq_push failed")
        fz = lib.seq_freeze_prep(h, len(tokens))
        if not fz:
            raise MemoryError("seq_freeze_prep failed")
        try:
            if lib.seq_frozen_oom(fz):
                raise MemoryError("seq_freeze_prep out of memory")
            n_rules = lib.seq_frozen_n_rules(fz)
            nb = lib.seq_frozen_body_total(fz)
            ns = lib.seq_frozen_starts_total(fz)
            body_flat = np.ctypeslib.as_array(
                lib.seq_frozen_body_flat(fz), shape=(max(nb, 1),)
            ).tolist()
            body_off = np.ctypeslib.as_array(
                lib.seq_frozen_body_off(fz), shape=(n_rules + 1,)
            ).tolist()
            levels = np.ctypeslib.as_array(
                lib.seq_frozen_levels(fz), shape=(n_rules,)
            ).tolist()
            lengths = np.ctypeslib.as_array(
                lib.seq_frozen_lengths(fz), shape=(n_rules,)
            ).tolist()
            starts_flat = np.ctypeslib.as_array(
                lib.seq_frozen_starts_flat(fz), shape=(max(ns, 1),)
            ).tolist()
            starts_off = np.ctypeslib.as_array(
                lib.seq_frozen_starts_off(fz), shape=(n_rules + 1,)
            ).tolist()
        finally:
            lib.seq_frozen_free(fz)
    finally:
        lib.seq_free(h)

    bodies = [body_flat[body_off[p] : body_off[p + 1]] for p in range(n_rules)]
    starts = [starts_flat[starts_off[p] : starts_off[p + 1]] for p in range(n_rules)]
    return _materialize(bodies, levels, lengths, starts, tokens, vocab)


def _induce_interned(ids: np.ndarray, vocab: list, tokens: list) -> Grammar:
    """Dispatch interned induction to the C core or the Python engine."""
    codes = np.ascontiguousarray(ids, dtype=np.int64) * 2
    lib = ccore.load()
    if lib is not None:
        try:
            return _induce_c(lib, codes, tokens, vocab)
        except MemoryError:
            pass  # allocation failure inside the core: retry in Python
    fs = _FastSequitur()
    fs.push_many(codes.tolist())
    bodies, levels, lengths, starts = _prep_python(fs, len(tokens))
    return _materialize(bodies, levels, lengths, starts, tokens, vocab)


def intern_tokens(tokens: Sequence[str]) -> tuple[np.ndarray, list[str]]:
    """Map tokens to dense int ids: ``(ids, vocabulary)``.

    ``vocabulary[ids[k]] == tokens[k]`` for every position.  The
    vocabulary order (lexicographic, from :func:`numpy.unique`) is
    irrelevant to induction: grammars depend only on the equality
    structure of the sequence, not on which id a token received.
    """
    if not len(tokens):
        return np.empty(0, dtype=np.int64), []
    arr = np.asarray(tokens)
    uniq, inverse = np.unique(arr, return_inverse=True)
    return inverse.astype(np.int64, copy=False).ravel(), uniq.tolist()


def induce_grammar(tokens: Sequence[str]) -> Grammar:
    """Run Sequitur over *tokens* and return the resulting grammar.

    Parameters
    ----------
    tokens:
        The input sequence; each element is treated as an atomic terminal
        (e.g. a SAX word).  Non-string elements are coerced with ``str``.

    Returns
    -------
    Grammar
        Rules renumbered in order of first appearance in a pre-order walk
        from R0, with expansions, occurrence spans, and hierarchy levels
        filled in.
    """
    token_list = [str(t) for t in tokens]
    ids, vocab = intern_tokens(token_list)
    return _induce_interned(ids, vocab, token_list)


def induce_grammar_interned(
    token_ids: Sequence[int] | np.ndarray,
    vocabulary: Sequence[str],
    tokens: Optional[list[str]] = None,
) -> Grammar:
    """Induce from pre-interned tokens, skipping the interning pass.

    The SAX front end (:func:`repro.sax.discretize.discretize`) already
    produces dense ``token_ids`` plus a ``vocabulary``; feeding them here
    avoids re-hashing every word string.

    Parameters
    ----------
    token_ids:
        Dense int ids, each indexing *vocabulary*.
    vocabulary:
        Distinct token strings; ``vocabulary[token_ids[k]]`` is the
        *k*-th input token.
    tokens:
        Optional pre-built token-string list (must equal the decoded
        sequence); supplied by callers that already hold it.
    """
    ids = np.ascontiguousarray(token_ids, dtype=np.int64)
    vocab = list(vocabulary)
    if tokens is None:
        tokens = [vocab[i] for i in ids.tolist()]
    return _induce_interned(ids, vocab, tokens)


# ---------------------------------------------------------------------
# Shared helpers for derived engines (repair, legacy reference)
# ---------------------------------------------------------------------


def _fill_expansions(rules: dict[int, GrammarRule]) -> None:
    """Compute every rule's terminal expansion (memoized, iterative)."""
    memo: dict[int, list[str]] = {}

    def expand(rule_id: int, stack: frozenset[int]) -> list[str]:
        if rule_id in memo:
            return memo[rule_id]
        if rule_id in stack:
            raise GrammarError(f"cycle through R{rule_id}")
        out: list[str] = []
        for item in rules[rule_id].rhs:
            if isinstance(item, int):
                out.extend(expand(item, stack | {rule_id}))
            else:
                out.append(item)
        memo[rule_id] = out
        return out

    for rid in rules:
        rules[rid].expansion = list(expand(rid, frozenset()))


def _fill_occurrences(rules: dict[int, GrammarRule], token_count: int) -> None:
    """Enumerate every rule occurrence by walking the derivation tree.

    An explicit stack keeps this safe for deep grammars.  Every
    non-terminal encountered during the expansion of R0 corresponds to
    exactly one concrete occurrence of its rule in the input.
    """
    if token_count > 0:
        rules[START_RULE_ID].occurrences.append(
            RuleOccurrence(0, token_count - 1)
        )
    # Each stack entry: (rule_id, rhs position, absolute token position).
    stack: list[list] = [[START_RULE_ID, 0, 0]]
    while stack:
        frame = stack[-1]
        rule_id, rhs_pos, token_pos = frame
        rhs = rules[rule_id].rhs
        if rhs_pos >= len(rhs):
            stack.pop()
            if stack:
                stack[-1][2] = token_pos
            continue
        frame[1] += 1
        item = rhs[rhs_pos]
        if isinstance(item, int):
            sub = rules[item]
            length = len(sub.expansion)
            sub.occurrences.append(
                RuleOccurrence(token_pos, token_pos + length - 1)
            )
            stack.append([item, 0, token_pos])
        else:
            frame[2] = token_pos + 1

"""Compile-on-first-use ctypes loader for the Sequitur C core.

The fast induction path (:mod:`repro.grammar.sequitur`) runs the
digram-uniqueness loop over interned integer tokens.  The inner loop is
pure pointer chasing — parallel ``code/prv/nxt`` arrays plus an
open-addressing digram hash map — which a few hundred lines of C execute
an order of magnitude faster than CPython.  This module compiles
``_sequitur_core.c`` with whatever C compiler the host already ships
(``cc``/``gcc``/``clang``), caches the shared object keyed by the source
digest, and exposes the raw bindings.

The core is strictly optional: any failure (no compiler, read-only
filesystem, unexpected platform) degrades to ``load() -> None`` and the
callers fall back to the pure-Python fast path, which is bit-identical.

Environment knobs
-----------------
``REPRO_SEQUITUR_CORE=off``
    Never compile or load the C core (pure-Python fast path only).
``REPRO_SEQUITUR_CORE=require``
    Raise instead of silently falling back — used by the benchmark and
    the CI equivalence job so a toolchain regression cannot masquerade
    as a slow-but-green run.
``REPRO_SEQUITUR_BUILD_DIR``
    Override the build cache directory (default: ``_build/`` next to
    this file, falling back to a per-user temp dir when that is not
    writable).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional

_SOURCE = Path(__file__).with_name("_sequitur_core.c")
_ENV_GATE = "REPRO_SEQUITUR_CORE"
_ENV_BUILD_DIR = "REPRO_SEQUITUR_BUILD_DIR"

_lock = threading.Lock()
_cached: Optional[ctypes.CDLL] = None
_attempted = False


class SequiturCoreUnavailable(RuntimeError):
    """Raised when ``REPRO_SEQUITUR_CORE=require`` cannot be honoured."""


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_dirs() -> list[Path]:
    """Candidate cache directories, most preferred first."""
    dirs = []
    override = os.environ.get(_ENV_BUILD_DIR)
    if override:
        dirs.append(Path(override))
    dirs.append(_SOURCE.parent / "_build")
    dirs.append(Path(tempfile.gettempdir()) / f"repro-seqcore-{os.getuid()}")
    return dirs


def _compile(compiler: str, source: Path) -> Optional[Path]:
    digest = hashlib.sha256(source.read_bytes()).hexdigest()[:16]
    soname = f"seqcore-{digest}.so"
    for build_dir in _build_dirs():
        so_path = build_dir / soname
        if so_path.exists():
            return so_path
        try:
            build_dir.mkdir(parents=True, exist_ok=True)
            tmp = so_path.with_name(f".{soname}.{os.getpid()}.tmp")
            subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC", "-o", str(tmp), str(source)],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp, so_path)  # atomic under concurrent builders
            return so_path
        except (OSError, subprocess.SubprocessError):
            continue
    return None


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    c_ptr, c_i64, c_int = ctypes.c_void_p, ctypes.c_int64, ctypes.c_int
    i64_p = ctypes.POINTER(c_i64)

    lib.seq_new.argtypes = []
    lib.seq_new.restype = c_ptr
    lib.seq_free.argtypes = [c_ptr]
    lib.seq_free.restype = None
    lib.seq_oom.argtypes = [c_ptr]
    lib.seq_oom.restype = c_int
    lib.seq_push.argtypes = [c_ptr, c_ptr, c_i64]
    lib.seq_push.restype = c_int
    for fn in ("seq_n_nodes", "seq_n_rules"):
        getattr(lib, fn).argtypes = [c_ptr]
        getattr(lib, fn).restype = c_i64
    for fn in (
        "seq_code_ptr",
        "seq_prv_ptr",
        "seq_nxt_ptr",
        "seq_guards_ptr",
        "seq_refcount_ptr",
    ):
        getattr(lib, fn).argtypes = [c_ptr]
        getattr(lib, fn).restype = i64_p

    lib.seq_freeze_prep.argtypes = [c_ptr, c_i64]
    lib.seq_freeze_prep.restype = c_ptr
    lib.seq_frozen_free.argtypes = [c_ptr]
    lib.seq_frozen_free.restype = None
    lib.seq_frozen_oom.argtypes = [c_ptr]
    lib.seq_frozen_oom.restype = c_int
    for fn in ("seq_frozen_n_rules", "seq_frozen_body_total", "seq_frozen_starts_total"):
        getattr(lib, fn).argtypes = [c_ptr]
        getattr(lib, fn).restype = c_i64
    for fn in (
        "seq_frozen_body_flat",
        "seq_frozen_body_off",
        "seq_frozen_levels",
        "seq_frozen_lengths",
        "seq_frozen_starts_flat",
        "seq_frozen_starts_off",
    ):
        getattr(lib, fn).argtypes = [c_ptr]
        getattr(lib, fn).restype = i64_p
    return lib


def _load_uncached() -> Optional[ctypes.CDLL]:
    gate = os.environ.get(_ENV_GATE, "").strip().lower()
    if gate == "off":
        return None
    if not _SOURCE.exists():
        if gate == "require":
            raise SequiturCoreUnavailable(f"missing C source: {_SOURCE}")
        return None
    compiler = _find_compiler()
    if compiler is None:
        if gate == "require":
            raise SequiturCoreUnavailable("no C compiler (cc/gcc/clang) on PATH")
        return None
    so_path = _compile(compiler, _SOURCE)
    if so_path is None:
        if gate == "require":
            raise SequiturCoreUnavailable("compiling _sequitur_core.c failed")
        return None
    try:
        return _bind(ctypes.CDLL(str(so_path)))
    except OSError as exc:
        if gate == "require":
            raise SequiturCoreUnavailable(f"loading {so_path} failed: {exc}") from exc
        return None


def load() -> Optional[ctypes.CDLL]:
    """Return the bound C library, or None when unavailable.

    The first call compiles (or locates a cached build of) the core; the
    result — including a failure — is cached for the process lifetime.
    ``REPRO_SEQUITUR_CORE=require`` turns failures into
    :class:`SequiturCoreUnavailable` instead.
    """
    global _cached, _attempted
    with _lock:
        if not _attempted:
            _cached = _load_uncached()
            _attempted = True
        elif _cached is None and os.environ.get(_ENV_GATE, "").strip().lower() == "require":
            raise SequiturCoreUnavailable("Sequitur C core unavailable (cached failure)")
        return _cached


def reset_for_testing() -> None:
    """Drop the cached load result (tests flip the env gate)."""
    global _cached, _attempted
    with _lock:
        _cached = None
        _attempted = False

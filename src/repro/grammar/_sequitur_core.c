/* Array-based Sequitur core over interned integer tokens.
 *
 * Mirrors the pure-Python reference implementation node for node:
 * nodes live in parallel arrays (code/prv/nxt) where -1 means "none".
 * Codes: terminal token id t -> 2t (even), nonterminal rule serial
 * s -> 2s+1 (odd), guard of rule serial s -> -s-1 (negative).  The
 * digram index maps packed keys (left_code << 42 | right_code) to the
 * left node id.
 */
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define KSHIFT 42
#define EMPTY (-1)
#define TOMB (-2)

typedef struct {
    int64_t *code, *prv, *nxt;
    int64_t n_nodes, cap_nodes;
    int64_t *guards, *refcount;
    int64_t n_rules, cap_rules;
    int64_t *hkeys, *hvals;
    int64_t hcap, hlive, hused; /* live entries; live + tombstones */
    int oom;
} Seq;

/* ---------------- hash map: packed digram key -> left node -------- */

static uint64_t hash_key(int64_t key)
{
    uint64_t h = (uint64_t)key * 0x9E3779B97F4A7C15ULL;
    return h ^ (h >> 29);
}

static int map_rehash(Seq *s, int64_t newcap)
{
    int64_t *nk = malloc(newcap * sizeof(int64_t));
    int64_t *nv = malloc(newcap * sizeof(int64_t));
    int64_t i;
    if (!nk || !nv) {
        free(nk);
        free(nv);
        s->oom = 1;
        return -1;
    }
    for (i = 0; i < newcap; i++)
        nv[i] = EMPTY;
    for (i = 0; i < s->hcap; i++) {
        if (s->hvals[i] >= 0) {
            uint64_t j = hash_key(s->hkeys[i]) & (newcap - 1);
            while (nv[j] >= 0)
                j = (j + 1) & (newcap - 1);
            nk[j] = s->hkeys[i];
            nv[j] = s->hvals[i];
        }
    }
    free(s->hkeys);
    free(s->hvals);
    s->hkeys = nk;
    s->hvals = nv;
    s->hcap = newcap;
    s->hused = s->hlive;
    return 0;
}

/* slot of key, or slot of first EMPTY if absent (never TOMB for get) */
static int64_t map_find(const Seq *s, int64_t key)
{
    uint64_t mask = (uint64_t)s->hcap - 1;
    uint64_t j = hash_key(key) & mask;
    for (;;) {
        int64_t v = s->hvals[j];
        if (v == EMPTY)
            return (int64_t)j;
        if (v != TOMB && s->hkeys[j] == key)
            return (int64_t)j;
        j = (j + 1) & mask;
    }
}

static int64_t map_get(const Seq *s, int64_t key)
{
    int64_t slot = map_find(s, key);
    return s->hvals[slot] >= 0 ? s->hvals[slot] : -1;
}

static void map_put(Seq *s, int64_t key, int64_t val)
{
    uint64_t mask = (uint64_t)s->hcap - 1;
    uint64_t j = hash_key(key) & mask;
    int64_t tomb = -1;
    for (;;) {
        int64_t v = s->hvals[j];
        if (v == EMPTY) {
            if (tomb >= 0) {
                j = (uint64_t)tomb;
            } else {
                s->hused++;
            }
            s->hkeys[j] = key;
            s->hvals[j] = val;
            s->hlive++;
            if (s->hused * 4 >= s->hcap * 3)
                map_rehash(s, s->hcap * 2);
            return;
        }
        if (v == TOMB) {
            if (tomb < 0)
                tomb = (int64_t)j;
        } else if (s->hkeys[j] == key) {
            s->hvals[j] = val;
            return;
        }
        j = (j + 1) & mask;
    }
}

/* del index[key] only when it currently points at node */
static void map_del_if(Seq *s, int64_t key, int64_t node)
{
    int64_t slot = map_find(s, key);
    if (s->hvals[slot] == node) {
        s->hvals[slot] = TOMB;
        s->hlive--;
    }
}

/* index.setdefault(key, node): existing value, or -1 after inserting */
static int64_t map_setdefault(Seq *s, int64_t key, int64_t node)
{
    int64_t slot = map_find(s, key);
    if (s->hvals[slot] >= 0)
        return s->hvals[slot];
    map_put(s, key, node);
    return -1;
}

/* ---------------- node / rule storage ------------------------------ */

static int grow_nodes(Seq *s)
{
    int64_t cap = s->cap_nodes * 2;
    int64_t *c = realloc(s->code, cap * sizeof(int64_t));
    int64_t *p = realloc(s->prv, cap * sizeof(int64_t));
    int64_t *n = realloc(s->nxt, cap * sizeof(int64_t));
    if (c)
        s->code = c;
    if (p)
        s->prv = p;
    if (n)
        s->nxt = n;
    if (!c || !p || !n) {
        s->oom = 1;
        return -1;
    }
    s->cap_nodes = cap;
    return 0;
}

static int64_t new_node(Seq *s, int64_t code, int64_t prv, int64_t nxt)
{
    int64_t i;
    if (s->n_nodes == s->cap_nodes && grow_nodes(s) < 0)
        return -1;
    i = s->n_nodes++;
    s->code[i] = code;
    s->prv[i] = prv;
    s->nxt[i] = nxt;
    return i;
}

static int grow_rules(Seq *s)
{
    int64_t cap = s->cap_rules * 2;
    int64_t *g = realloc(s->guards, cap * sizeof(int64_t));
    int64_t *r = realloc(s->refcount, cap * sizeof(int64_t));
    if (g)
        s->guards = g;
    if (r)
        s->refcount = r;
    if (!g || !r) {
        s->oom = 1;
        return -1;
    }
    s->cap_rules = cap;
    return 0;
}

/* ---------------- sequitur invariants ------------------------------ */

static void substitute(Seq *s, int64_t i, int64_t serial);
static void process_match(Seq *s, int64_t i, int64_t match);

/* full-bookkeeping link used on slow paths */
static void join_nodes(Seq *s, int64_t left, int64_t right)
{
    int64_t *code = s->code, *prv = s->prv, *nxt = s->nxt;
    if (nxt[left] != -1) {
        int64_t lc = code[left];
        int64_t ln = nxt[left];
        int64_t rc = code[right];
        if (lc >= 0 && code[ln] >= 0)
            map_del_if(s, (lc << KSHIFT) | code[ln], left);
        if (rc >= 0) {
            int64_t rp = prv[right], rn = nxt[right];
            if (rp != -1 && rn != -1 && code[rp] == rc && code[rn] == rc)
                map_put(s, (rc << KSHIFT) | rc, right);
        }
        if (lc >= 0) {
            int64_t lp = prv[left];
            if (lp != -1 && ln != -1 && code[ln] == lc && code[lp] == lc)
                map_put(s, (lc << KSHIFT) | lc, lp);
        }
    }
    nxt[left] = right;
    prv[right] = left;
}

static int check_digram(Seq *s, int64_t i)
{
    int64_t *code = s->code, *nxt = s->nxt;
    int64_t ci = code[i], n, key, found;
    if (ci < 0)
        return 0;
    n = nxt[i];
    if (n == -1 || code[n] < 0)
        return 0;
    key = (ci << KSHIFT) | code[n];
    found = map_setdefault(s, key, i);
    if (found < 0 || found == i)
        return 0;
    if (nxt[found] != i)
        process_match(s, i, found);
    return 1;
}

static void expand_rule(Seq *s, int64_t i)
{
    int64_t *code = s->code, *prv = s->prv, *nxt = s->nxt;
    int64_t serial = code[i] >> 1;
    int64_t guard = s->guards[serial];
    int64_t left = prv[i], right = nxt[i];
    int64_t first = nxt[guard], last = prv[guard];
    int64_t ln;
    if (right != -1 && code[right] >= 0)
        map_del_if(s, (code[i] << KSHIFT) | code[right], i);
    join_nodes(s, left, first);
    join_nodes(s, last, right);
    ln = nxt[last];
    if (code[ln] >= 0)
        map_put(s, (code[last] << KSHIFT) | code[ln], last);
    s->guards[serial] = -1;
    s->refcount[serial] = 0;
}

static void substitute(Seq *s, int64_t i, int64_t serial)
{
    int64_t *code = s->code, *prv = s->prv, *nxt = s->nxt;
    int64_t p = prv[i];
    int64_t node;
    int k;
    /* unlink the two digram symbols: (nxt[p], nxt[nxt[p]]) */
    for (k = 0; k < 2; k++) {
        int64_t d = nxt[p];
        int64_t dn = nxt[d];
        int64_t pc = code[p];
        int64_t dc = code[dn];
        int64_t dc2;
        /* join(p, dn) bookkeeping */
        if (pc >= 0 && code[d] >= 0)
            map_del_if(s, (pc << KSHIFT) | code[d], p);
        if (dc >= 0) {
            int64_t dp = prv[dn], dnn = nxt[dn];
            if (dp != -1 && dnn != -1 && code[dp] == dc && code[dnn] == dc)
                map_put(s, (dc << KSHIFT) | dc, dn);
        }
        if (pc >= 0) {
            int64_t pp = prv[p];
            if (pp != -1 && code[d] == pc && code[pp] == pc)
                map_put(s, (pc << KSHIFT) | pc, pp);
        }
        nxt[p] = dn;
        prv[dn] = p;
        /* drop digram (d, old next) + refcount */
        dc2 = code[d];
        if (dc2 >= 0) {
            if (dn != -1 && code[dn] >= 0)
                map_del_if(s, (dc2 << KSHIFT) | code[dn], d);
            if (dc2 & 1)
                s->refcount[dc2 >> 1]--;
        }
    }
    node = new_node(s, 2 * serial + 1, -1, -1);
    if (node < 0)
        return;
    code = s->code;
    prv = s->prv;
    nxt = s->nxt;
    s->refcount[serial]++;
    join_nodes(s, node, nxt[p]);
    join_nodes(s, p, node);
    if (!check_digram(s, p))
        check_digram(s, nxt[p]);
}

static void process_match(Seq *s, int64_t i, int64_t match)
{
    int64_t *code = s->code, *prv = s->prv, *nxt = s->nxt;
    int64_t serial, first, fc;
    if (code[prv[match]] < 0 && code[nxt[nxt[match]]] < 0) {
        serial = -code[prv[match]] - 1;
        substitute(s, i, serial);
    } else {
        int64_t guard, a, b, ca, cb;
        if (s->n_rules == s->cap_rules && grow_rules(s) < 0)
            return;
        serial = s->n_rules++;
        ca = code[i];
        cb = code[nxt[i]];
        guard = new_node(s, -serial - 1, -1, -1);
        a = new_node(s, ca, guard, -1);
        b = new_node(s, cb, a, -1);
        if (guard < 0 || a < 0 || b < 0)
            return;
        code = s->code;
        prv = s->prv;
        nxt = s->nxt;
        nxt[guard] = a;
        nxt[a] = b;
        nxt[b] = guard;
        prv[guard] = b;
        s->guards[serial] = guard;
        s->refcount[serial] = 0;
        if (ca & 1)
            s->refcount[ca >> 1]++;
        if (cb & 1)
            s->refcount[cb >> 1]++;
        substitute(s, match, serial);
        substitute(s, i, serial);
        map_put(s, (ca << KSHIFT) | cb, a);
    }
    first = s->nxt[s->guards[serial]];
    fc = s->code[first];
    if (fc >= 0 && (fc & 1) && s->refcount[fc >> 1] == 1)
        expand_rule(s, first);
}

/* ---------------- public API ---------------------------------------- */

Seq *seq_new(void)
{
    Seq *s = calloc(1, sizeof(Seq));
    int64_t i;
    if (!s)
        return NULL;
    s->cap_nodes = 1024;
    s->code = malloc(s->cap_nodes * sizeof(int64_t));
    s->prv = malloc(s->cap_nodes * sizeof(int64_t));
    s->nxt = malloc(s->cap_nodes * sizeof(int64_t));
    s->cap_rules = 64;
    s->guards = malloc(s->cap_rules * sizeof(int64_t));
    s->refcount = malloc(s->cap_rules * sizeof(int64_t));
    s->hcap = 1024;
    s->hkeys = malloc(s->hcap * sizeof(int64_t));
    s->hvals = malloc(s->hcap * sizeof(int64_t));
    if (!s->code || !s->prv || !s->nxt || !s->guards || !s->refcount
        || !s->hkeys || !s->hvals) {
        s->oom = 1;
        return s; /* caller checks seq_oom */
    }
    for (i = 0; i < s->hcap; i++)
        s->hvals[i] = EMPTY;
    /* node 0 = guard of the start rule (serial 0) */
    s->code[0] = -1;
    s->prv[0] = 0;
    s->nxt[0] = 0;
    s->n_nodes = 1;
    s->guards[0] = 0;
    s->refcount[0] = 0;
    s->n_rules = 1;
    return s;
}

void seq_free(Seq *s)
{
    if (!s)
        return;
    free(s->code);
    free(s->prv);
    free(s->nxt);
    free(s->guards);
    free(s->refcount);
    free(s->hkeys);
    free(s->hvals);
    free(s);
}

int seq_oom(const Seq *s)
{
    return s->oom;
}

/* push pre-doubled terminal codes (2 * token_id each) */
int seq_push(Seq *s, const int64_t *codes, int64_t n)
{
    int64_t t;
    int64_t guard = s->guards[0];
    for (t = 0; t < n; t++) {
        int64_t c = codes[t];
        int64_t last = s->prv[guard];
        int64_t node = new_node(s, c, last, guard);
        int64_t lc, key, found;
        if (node < 0)
            return -1;
        s->nxt[last] = node;
        s->prv[guard] = node;
        lc = s->code[last];
        if (lc < 0)
            continue;
        key = (lc << KSHIFT) | c;
        found = map_setdefault(s, key, last);
        if (found >= 0 && found != last && s->nxt[found] != last)
            process_match(s, last, found);
        if (s->oom)
            return -1;
    }
    return 0;
}

int64_t seq_n_nodes(const Seq *s) { return s->n_nodes; }
int64_t seq_n_rules(const Seq *s) { return s->n_rules; }
const int64_t *seq_code_ptr(const Seq *s) { return s->code; }
const int64_t *seq_prv_ptr(const Seq *s) { return s->prv; }
const int64_t *seq_nxt_ptr(const Seq *s) { return s->nxt; }
const int64_t *seq_guards_ptr(const Seq *s) { return s->guards; }
const int64_t *seq_refcount_ptr(const Seq *s) { return s->refcount; }

/* ---------------- freeze prep --------------------------------------
 * Computes everything the immutable Grammar needs that is pure integer
 * work: BFS rule renumbering (matching the reference freeze order),
 * flattened rule bodies, rule levels, expansion lengths, and sorted
 * occurrence start offsets.  Python only materializes objects.
 */

typedef struct {
    int64_t n_rules;
    int64_t *body_flat;  /* terminal t -> 2t, rule pid p -> 2p+1 */
    int64_t *body_off;   /* n_rules + 1 */
    int64_t *levels;     /* n_rules */
    int64_t *lengths;    /* n_rules: expansion length */
    int64_t *starts_flat;/* sorted occurrence starts, concatenated */
    int64_t *starts_off; /* n_rules + 1 */
    int oom;
} Frozen;

static int cmp_i64(const void *a, const void *b)
{
    int64_t x = *(const int64_t *)a, y = *(const int64_t *)b;
    return (x > y) - (x < y);
}

void seq_frozen_free(Frozen *f)
{
    if (!f)
        return;
    free(f->body_flat);
    free(f->body_off);
    free(f->levels);
    free(f->lengths);
    free(f->starts_flat);
    free(f->starts_off);
    free(f);
}

Frozen *seq_freeze_prep(const Seq *s, int64_t n_tokens)
{
    Frozen *f = calloc(1, sizeof(Frozen));
    int64_t *id_map = NULL, *queue = NULL, *stack = NULL, *order = NULL;
    int64_t *counts = NULL, *fill = NULL;
    int64_t n_serials = s->n_rules;
    int64_t n_rules = 0, total_body = 0, total_starts = 0;
    int64_t qi, pid, i;

    if (!f)
        return NULL;
    id_map = malloc(n_serials * sizeof(int64_t));
    queue = malloc(n_serials * sizeof(int64_t));
    if (!id_map || !queue)
        goto oom;
    for (i = 0; i < n_serials; i++)
        id_map[i] = -1;

    /* BFS over live rules from serial 0, assigning ids in first-seen
     * order; also measure total body size. */
    id_map[0] = 0;
    queue[0] = 0;
    n_rules = 1;
    for (qi = 0; qi < n_rules; qi++) {
        int64_t guard = s->guards[queue[qi]];
        int64_t node = s->nxt[guard];
        while (s->code[node] >= 0) {
            int64_t c = s->code[node];
            total_body++;
            if (c & 1) {
                int64_t serial = c >> 1;
                if (id_map[serial] < 0) {
                    id_map[serial] = n_rules;
                    queue[n_rules++] = serial;
                }
            }
            node = s->nxt[node];
        }
    }

    f->n_rules = n_rules;
    f->body_flat = malloc((total_body ? total_body : 1) * sizeof(int64_t));
    f->body_off = malloc((n_rules + 1) * sizeof(int64_t));
    f->levels = calloc(n_rules, sizeof(int64_t));
    f->lengths = calloc(n_rules, sizeof(int64_t));
    f->starts_off = malloc((n_rules + 1) * sizeof(int64_t));
    if (!f->body_flat || !f->body_off || !f->levels || !f->lengths
        || !f->starts_off)
        goto oom;

    /* flatten bodies with serials remapped to public ids */
    total_body = 0;
    for (pid = 0; pid < n_rules; pid++) {
        int64_t guard = s->guards[queue[pid]];
        int64_t node = s->nxt[guard];
        f->body_off[pid] = total_body;
        while (s->code[node] >= 0) {
            int64_t c = s->code[node];
            f->body_flat[total_body++] =
                (c & 1) ? 2 * id_map[c >> 1] + 1 : c;
            node = s->nxt[node];
        }
    }
    f->body_off[n_rules] = total_body;

    /* levels: iterative post-order DP */
    stack = malloc((total_body + n_rules + 1) * sizeof(int64_t));
    if (!stack)
        goto oom;
    for (pid = 0; pid < n_rules; pid++) {
        int64_t sp = 0;
        if (f->levels[pid])
            continue;
        stack[sp++] = pid;
        while (sp > 0) {
            int64_t top = stack[sp - 1];
            int64_t best = 0, ready = 1, k;
            if (f->levels[top]) {
                sp--;
                continue;
            }
            for (k = f->body_off[top]; k < f->body_off[top + 1]; k++) {
                int64_t c = f->body_flat[k];
                if (c & 1) {
                    int64_t lv = f->levels[c >> 1];
                    if (!lv) {
                        stack[sp++] = c >> 1;
                        ready = 0;
                    } else if (lv > best) {
                        best = lv;
                    }
                }
            }
            if (ready) {
                f->levels[top] = best + 1;
                sp--;
            }
        }
    }
    free(stack);
    stack = NULL;

    /* order rules by ascending level (stable counting sort) */
    {
        int64_t max_level = 0, *buckets, b;
        for (pid = 0; pid < n_rules; pid++)
            if (f->levels[pid] > max_level)
                max_level = f->levels[pid];
        buckets = calloc(max_level + 2, sizeof(int64_t));
        order = malloc(n_rules * sizeof(int64_t));
        if (!buckets || !order) {
            free(buckets);
            goto oom;
        }
        for (pid = 0; pid < n_rules; pid++)
            buckets[f->levels[pid] + 1]++;
        for (b = 1; b <= max_level + 1; b++)
            buckets[b] += buckets[b - 1];
        for (pid = 0; pid < n_rules; pid++)
            order[buckets[f->levels[pid]]++] = pid;
        free(buckets);
    }

    /* expansion lengths, children before parents */
    for (i = 0; i < n_rules; i++) {
        int64_t total = 0, k;
        pid = order[i];
        for (k = f->body_off[pid]; k < f->body_off[pid + 1]; k++) {
            int64_t c = f->body_flat[k];
            total += (c & 1) ? f->lengths[c >> 1] : 1;
        }
        f->lengths[pid] = total;
    }

    /* occurrence counts: parents propagate to children, descending
     * level */
    counts = calloc(n_rules, sizeof(int64_t));
    if (!counts)
        goto oom;
    if (n_tokens > 0)
        counts[0] = 1;
    for (i = n_rules - 1; i >= 0; i--) {
        int64_t k;
        pid = order[i];
        for (k = f->body_off[pid]; k < f->body_off[pid + 1]; k++) {
            int64_t c = f->body_flat[k];
            if (c & 1)
                counts[c >> 1] += counts[pid];
        }
    }
    for (pid = 0; pid < n_rules; pid++)
        total_starts += counts[pid];
    f->starts_off[0] = 0;
    for (pid = 0; pid < n_rules; pid++)
        f->starts_off[pid + 1] = f->starts_off[pid] + counts[pid];
    f->starts_flat =
        malloc((total_starts ? total_starts : 1) * sizeof(int64_t));
    fill = calloc(n_rules, sizeof(int64_t));
    if (!f->starts_flat || !fill)
        goto oom;

    /* propagate actual starts, descending level */
    if (n_tokens > 0) {
        f->starts_flat[0] = 0;
        fill[0] = 1;
    }
    for (i = n_rules - 1; i >= 0; i--) {
        int64_t k, off = 0;
        int64_t base, mine_n;
        pid = order[i];
        base = f->starts_off[pid];
        mine_n = fill[pid];
        for (k = f->body_off[pid]; k < f->body_off[pid + 1]; k++) {
            int64_t c = f->body_flat[k];
            if (c & 1) {
                int64_t child = c >> 1;
                int64_t dst = f->starts_off[child] + fill[child];
                int64_t m;
                for (m = 0; m < mine_n; m++)
                    f->starts_flat[dst + m] =
                        f->starts_flat[base + m] + off;
                fill[child] += mine_n;
                off += f->lengths[child];
            } else {
                off += 1;
            }
        }
    }
    free(fill);
    fill = NULL;
    free(counts);
    counts = NULL;

    /* each rule's starts slice, ascending (reference freeze order) */
    for (pid = 0; pid < n_rules; pid++) {
        int64_t lo = f->starts_off[pid], hi = f->starts_off[pid + 1];
        if (hi - lo > 1)
            qsort(f->starts_flat + lo, hi - lo, sizeof(int64_t), cmp_i64);
    }

    free(id_map);
    free(queue);
    free(order);
    return f;

oom:
    free(id_map);
    free(queue);
    free(stack);
    free(order);
    free(counts);
    free(fill);
    if (f)
        f->oom = 1;
    return f;
}

int seq_frozen_oom(const Frozen *f) { return !f || f->oom; }
int64_t seq_frozen_n_rules(const Frozen *f) { return f->n_rules; }
int64_t seq_frozen_body_total(const Frozen *f)
{
    return f->body_off[f->n_rules];
}
int64_t seq_frozen_starts_total(const Frozen *f)
{
    return f->starts_off[f->n_rules];
}
const int64_t *seq_frozen_body_flat(const Frozen *f) { return f->body_flat; }
const int64_t *seq_frozen_body_off(const Frozen *f) { return f->body_off; }
const int64_t *seq_frozen_levels(const Frozen *f) { return f->levels; }
const int64_t *seq_frozen_lengths(const Frozen *f) { return f->lengths; }
const int64_t *seq_frozen_starts_flat(const Frozen *f)
{
    return f->starts_flat;
}
const int64_t *seq_frozen_starts_off(const Frozen *f)
{
    return f->starts_off;
}

"""Context-free grammar induction over token sequences.

Sequitur (Nevill-Manning & Witten 1997) is the paper's compressor of
choice; Re-Pair is provided as an alternative offline compressor for the
ablation study.  Both produce the same :class:`~repro.grammar.grammar.Grammar`
data model, so everything downstream (rule density, RRA) is
compressor-agnostic.
"""

from repro.grammar.grammar import Grammar, GrammarRule, RuleOccurrence
from repro.grammar.sequitur import induce_grammar
from repro.grammar.repair import repair_grammar
from repro.grammar.intervals import (
    RuleInterval,
    rule_intervals,
    uncovered_intervals,
    zero_coverage_gaps,
)
from repro.grammar.postprocess import (
    PrunedRule,
    RulePeriodicity,
    prune_rules,
    rule_periodicity,
)

__all__ = [
    "Grammar",
    "GrammarRule",
    "RuleOccurrence",
    "induce_grammar",
    "repair_grammar",
    "RuleInterval",
    "rule_intervals",
    "uncovered_intervals",
    "zero_coverage_gaps",
    "PrunedRule",
    "RulePeriodicity",
    "prune_rules",
    "rule_periodicity",
]

"""Structured JSONL run reports for discord searches.

A run report is a newline-delimited JSON file with three line types
(full schema in DESIGN.md §9):

* one ``{"type": "meta", ...}`` header carrying the run parameters and
  library version;
* zero or more ``{"type": "event", ...}`` lines — the trace-event
  stream, in ``seq`` order (budget trips, checkpoint saves, rank
  completions, span boundaries);
* one ``{"type": "metrics", ...}`` footer with the final registry
  snapshot (counters, gauges, histograms, timers).

Every field is deterministic for a fixed seed **except** wall-clock
ones: event ``ts``, span/end ``seconds`` attributes, and the
``timers`` section of the footer.  :func:`deterministic_view` strips
exactly those, which is what the regression tests compare.
"""

from __future__ import annotations

import json
from typing import Iterator, Optional

from repro.observability.metrics import MetricsRegistry

__all__ = [
    "write_run_report",
    "read_run_report",
    "deterministic_view",
]

#: Format tag stamped on (and required from) every report's meta line.
REPORT_FORMAT = "repro-run-report/1"


def write_run_report(
    path: str,
    metrics: MetricsRegistry,
    *,
    meta: Optional[dict] = None,
) -> None:
    """Serialize *metrics* (snapshot + events) as a JSONL run report."""
    header = {"type": "meta", "format": REPORT_FORMAT}
    if meta:
        header.update(meta)
    with open(path, "w") as handle:
        handle.write(json.dumps(header) + "\n")
        for event in metrics.events:
            line = {"type": "event"}
            line.update(event)
            handle.write(json.dumps(line) + "\n")
        footer = {"type": "metrics"}
        footer.update(metrics.snapshot() or {})
        handle.write(json.dumps(footer) + "\n")


def read_run_report(path: str) -> Iterator[dict]:
    """Yield the parsed lines of a JSONL run report, in file order."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def deterministic_view(lines) -> list[dict]:
    """Strip the wall-clock fields from parsed report lines.

    Removes event ``ts``, any ``seconds`` attribute inside event attrs,
    and the ``timers`` footer section — everything left is identical
    across runs with the same inputs and seed.
    """
    cleaned: list[dict] = []
    for line in lines:
        entry = json.loads(json.dumps(line))  # deep copy via round-trip
        entry.pop("ts", None)
        attrs = entry.get("attrs")
        if isinstance(attrs, dict):
            attrs.pop("seconds", None)
        entry.pop("timers", None)
        cleaned.append(entry)
    return cleaned

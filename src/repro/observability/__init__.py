"""Observability: metrics, tracing spans, and JSONL run reports.

The paper's efficiency argument rests on one number — distance-function
calls (§6: "≥99% of runtime") — and four layers of machinery (vector
kernels, anytime budgets, process pools, lower-bound pruning) now sit
on top of that counter.  This package makes what a search *did* a
first-class artifact:

* :mod:`repro.observability.metrics` — a zero-dependency registry of
  counters / gauges / histograms / timers plus lightweight tracing
  spans, with a no-op :class:`NullMetrics` sink as the default;
* :mod:`repro.observability.report` — structured JSONL run reports
  (deterministic for a fixed seed, wall-time fields excluded).

Pass ``metrics=MetricsRegistry()`` to any discord engine,
``GrammarAnomalyDetector(metrics=...)``, or
``pipeline.discords(report_path=...)``; the CLI exposes the same via
``--trace`` / ``--metrics-out PATH``.  With the default (disabled)
sink, results and logical distance-call ledgers are byte-identical to
an uninstrumented run — pinned by the golden-count regression suite.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    NULL_METRICS,
    Timer,
    ensure_metrics,
)
from repro.observability.report import (
    deterministic_view,
    read_run_report,
    write_run_report,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "ensure_metrics",
    "write_run_report",
    "read_run_report",
    "deterministic_view",
]

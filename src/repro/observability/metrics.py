"""Zero-dependency metrics registry: counters, gauges, histograms, timers.

The paper's single efficiency metric is the number of distance-function
calls (Table 1); after the kernel, resilience, parallel, and pruning
layers there is a lot more to *see* about what a search did.  This
module provides the registry those layers report into:

* :class:`Counter` — monotone integers (candidates visited, early
  abandons, checkpoint writes);
* :class:`Gauge` — last-written values (grammar size, candidate count);
* :class:`Histogram` — power-of-two bucketed distributions (early-abandon
  depths, per-rank call costs);
* :class:`Timer` — accumulated wall-clock seconds (phase timings).

Everything except timers is *deterministic* for a fixed seed: counters,
gauges, and histograms only ever observe logical quantities (pair
counts, ledger splits, structure sizes), so two runs with the same
inputs produce identical snapshots.  Timers measure wall time and are
excluded from determinism guarantees — report consumers must treat any
``*_seconds`` field as informational.

Instrumentation is **disabled by default**: every instrumented function
takes ``metrics=None`` and routes through the module-level
:data:`NULL_METRICS` singleton, whose methods are no-ops and whose
``enabled`` flag lets hot loops skip even the bookkeeping that would
feed a metric.  The disabled path performs no extra distance work and no
RNG draws, so results and logical call counts are byte-identical with
or without the layer (pinned by ``tests/test_golden_counts.py``).
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.exceptions import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "ensure_metrics",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ParameterError(f"counter increment must be >= 0, got {amount}")
        self.value += int(amount)


class Gauge:
    """A last-write-wins numeric metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Power-of-two bucketed distribution of non-negative observations.

    Bucket *b* counts observations in ``[2**(b-1), 2**b)`` (bucket 0
    counts zeros and values below 1).  Alongside the buckets the exact
    count/total/min/max are kept, so the mean is not quantized.  All
    fields are integers or exact sums of observed values — deterministic
    whenever the observations are.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0:
            raise ParameterError(f"histogram values must be >= 0, got {value}")
        bucket = 0 if value < 1.0 else int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }


class Timer:
    """Accumulated wall-clock seconds (non-deterministic by nature)."""

    __slots__ = ("seconds", "count", "_started")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.count = 0
        self._started: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._started is not None:
            self.seconds += time.perf_counter() - self._started
            self._started = None
        self.count += 1

    def add(self, seconds: float) -> None:
        """Fold an externally measured duration in (worker shards)."""
        self.seconds += float(seconds)
        self.count += 1


class _NullContext:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named metrics plus the trace-event stream of one run.

    One registry is threaded through a search (``metrics=...`` on every
    engine entry point); afterwards :meth:`snapshot` returns the whole
    state as a JSON-able dict and
    :func:`repro.observability.report.write_run_report` serializes it —
    together with the event stream — as a JSONL run report.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timers: dict[str, Timer] = {}
        self.events: list[dict] = []
        self._seq = 0

    # -- metric accessors ----------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    def timer(self, name: str) -> Timer:
        metric = self._timers.get(name)
        if metric is None:
            metric = self._timers[name] = Timer()
        return metric

    # -- tracing --------------------------------------------------------

    def event(self, name: str, **attrs: Any) -> dict:
        """Record one trace event (see DESIGN.md §9 for the schema).

        ``seq`` orders events deterministically; ``ts`` is wall-clock
        and excluded from determinism guarantees.
        """
        entry = {"seq": self._seq, "name": name, "ts": time.time()}
        if attrs:
            entry["attrs"] = attrs
        self._seq += 1
        self.events.append(entry)
        return entry

    def span(self, name: str, **attrs: Any):
        """A traced region: emits ``<name>.start`` / ``<name>.end`` events.

        The end event carries the span's wall duration under
        ``seconds`` (non-deterministic; every other attribute is copied
        from the start event so the pair is self-describing).
        """
        return _Span(self, name, attrs)

    # -- persistence ----------------------------------------------------

    def snapshot(self) -> dict:
        """The registry's state as a JSON-able dict (events excluded)."""
        return {
            "counters": {k: v.value for k, v in sorted(self._counters.items())},
            "gauges": {k: v.value for k, v in sorted(self._gauges.items())},
            "histograms": {
                k: v.to_dict() for k, v in sorted(self._histograms.items())
            },
            "timers": {
                k: {"seconds": v.seconds, "count": v.count}
                for k, v in sorted(self._timers.items())
            },
        }

    def merge_snapshot(self, snap: Optional[dict]) -> "MetricsRegistry":
        """Fold a snapshot (worker shard, resumed checkpoint) into this.

        Counters, histogram buckets, and timer totals add; gauges are
        last-write-wins.  Addition is commutative and associative, so a
        parent merging per-worker snapshots in serial replay order gets
        the same totals regardless of which worker finished first —
        the metrics counterpart of ``DistanceCounter.merge``.
        """
        if not snap:
            return self
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snap.get("histograms", {}).items():
            hist = self.histogram(name)
            for bucket, count in data.get("buckets", {}).items():
                bucket = int(bucket)
                hist.buckets[bucket] = hist.buckets.get(bucket, 0) + int(count)
            hist.count += int(data.get("count", 0))
            hist.total += float(data.get("total", 0.0))
            for bound, pick in (("min", min), ("max", max)):
                value = data.get(bound)
                if value is not None:
                    current = getattr(hist, bound)
                    setattr(
                        hist,
                        bound,
                        value if current is None else pick(current, value),
                    )
        for name, data in snap.get("timers", {}).items():
            timer = self.timer(name)
            timer.seconds += float(data.get("seconds", 0.0))
            timer.count += int(data.get("count", 0))
        return self

    def restore(self, snap: Optional[dict], events: Optional[list] = None) -> None:
        """Adopt checkpointed state: merge the snapshot, replay events.

        Restored events keep their recorded ``seq``; new events continue
        after the highest one, so a resumed run's report reads as one
        continuous stream.
        """
        self.merge_snapshot(snap)
        if events:
            self.events.extend(events)
            self._seq = max(self._seq, max(e.get("seq", -1) for e in events) + 1)


class _Span:
    """Context manager behind :meth:`MetricsRegistry.span`."""

    __slots__ = ("_metrics", "_name", "_attrs", "_started")

    def __init__(self, metrics: MetricsRegistry, name: str, attrs: dict):
        self._metrics = metrics
        self._name = name
        self._attrs = attrs
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._metrics.event(self._name + ".start", **self._attrs)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        elapsed = time.perf_counter() - self._started
        self._metrics.event(self._name + ".end", seconds=elapsed, **self._attrs)


class NullMetrics:
    """The disabled sink: same interface, every operation a no-op.

    All instrumented code paths take ``metrics=None`` and resolve it to
    the shared :data:`NULL_METRICS` instance, so the default path never
    allocates, never branches on metric state beyond ``if
    metrics.enabled``, and — the property the golden-count suite pins —
    never changes results or logical call counts.
    """

    enabled = False
    events: list = []

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str):
        return _NULL_CONTEXT

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def span(self, name: str, **attrs: Any):
        return _NULL_CONTEXT

    def snapshot(self) -> Optional[dict]:
        return None

    def merge_snapshot(self, snap: Optional[dict]) -> "NullMetrics":
        return self

    def restore(self, snap: Optional[dict], events: Optional[list] = None) -> None:
        return None


#: Module-wide disabled sink; ``ensure_metrics(None)`` returns this.
NULL_METRICS = NullMetrics()


def ensure_metrics(metrics: Optional[MetricsRegistry]):
    """Resolve an optional ``metrics=`` argument to a usable sink."""
    return NULL_METRICS if metrics is None else metrics

"""Command-line interface: ``python -m repro`` / ``repro-anomaly``.

Subcommands
-----------
``find``
    Discover anomalies in a CSV/whitespace series file with both
    algorithms and print a GrammarViz-style text report.
``density``
    Print the rule density curve values (one per line), for piping into
    plotting tools.
``motifs``
    Report the top recurrent variable-length patterns (frequent rules).
``suggest``
    Suggest discretization parameters for a series (grammar health).
``ensemble``
    Run a grid of (window, PAA, alphabet) members and report the
    aggregated, parameter-free anomaly verdict with per-member provenance.
``table1``
    Regenerate the paper's Table 1 on the synthetic stand-in datasets.
``demo``
    Run the quickstart demo on a generated dataset (no input needed).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.core.ensemble import AGGREGATIONS, NORMALIZATIONS
from repro.core.pipeline import GrammarAnomalyDetector
from repro.exceptions import ReproError
from repro.timeseries.kernels import BACKENDS


def _load_series(
    path: str, column: int, *, keep_nonfinite: bool = False
) -> np.ndarray:
    """Load a 1-d series from a text file (CSV or whitespace-separated)."""
    try:
        data = np.genfromtxt(path, delimiter=None, dtype=float)
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    if data.ndim == 1:
        series = data
    else:
        if column >= data.shape[1]:
            raise ReproError(
                f"column {column} requested but file has {data.shape[1]} columns"
            )
        series = data[:, column]
    if not keep_nonfinite:
        series = series[np.isfinite(series)]
    if series.size == 0 or not np.isfinite(series).any():
        raise ReproError(f"no numeric data found in {path}")
    return series


def _format_trace(metrics) -> str:
    """Render a registry's trace-event stream for the terminal."""
    lines = []
    for event in metrics.events:
        attrs = event.get("attrs") or {}
        rendered = " ".join(f"{k}={v}" for k, v in attrs.items())
        lines.append(f"[{event['seq']:>4d}] {event['name']} {rendered}".rstrip())
    snapshot = metrics.snapshot() or {}
    for name, value in snapshot.get("counters", {}).items():
        lines.append(f"       {name} = {value}")
    return "\n".join(lines)


def _cmd_find(args: argparse.Namespace) -> int:
    from repro.observability import MetricsRegistry
    from repro.resilience import SearchBudget
    from repro.visualization.report import grammar_report

    # With an explicit quality policy the gate sees the raw values;
    # without one, the legacy behaviour (drop non-finite rows) holds.
    series = _load_series(
        args.path, args.column, keep_nonfinite=args.quality is not None
    )
    metrics = (
        MetricsRegistry() if (args.trace or args.metrics_out) else None
    )
    detector = GrammarAnomalyDetector(
        args.window,
        args.paa,
        args.alphabet,
        backend=args.backend,
        quality_policy=args.quality or "raise",
        n_workers=args.workers,
        metrics=metrics,
        cache=args.cache_dir,
    )
    result = detector.fit(series)
    anomalies = list(detector.density_anomalies(max_anomalies=args.discords))
    budget = None
    if args.deadline is not None or args.max_calls is not None:
        budget = SearchBudget(deadline=args.deadline, max_calls=args.max_calls)
    rra = detector.discords(
        num_discords=args.discords,
        budget=budget,
        checkpoint_path=args.checkpoint,
        resume_from=args.resume,
        prune=args.prune,
        report_path=args.metrics_out,
    )
    anomalies.extend(rra.discords)
    print(grammar_report(result, anomalies))
    if rra.from_cache:
        print(
            f"discord search answered from cache ({args.cache_dir})",
            file=sys.stderr,
        )
    if args.trace and metrics is not None:
        print(_format_trace(metrics), file=sys.stderr)
    if args.metrics_out:
        print(f"run report written to {args.metrics_out}", file=sys.stderr)
    if not rra.complete:
        exact = sum(rra.rank_complete)
        print(
            f"search stopped early ({rra.status.value}) after "
            f"{rra.distance_calls} distance calls: {exact} exact rank(s), "
            f"{len(rra.discords) - exact} best-so-far",
            file=sys.stderr,
        )
        if args.checkpoint:
            print(
                f"resume with: --resume {args.checkpoint} "
                f"--checkpoint {args.checkpoint}",
                file=sys.stderr,
            )
        if rra.degraded and rra.fallback:
            print(
                "degraded fallback (rule-density intervals): "
                + ", ".join(f"[{a.start}, {a.end})" for a in rra.fallback),
                file=sys.stderr,
            )
    return 0


def _parse_grid(spec: str):
    """Parse ``WINDOWS:PAAS:ALPHABETS`` (comma-separated ints) into members.

    Example: ``60,120:4,6:3,5`` → the 2x2x2 cartesian grid (minus any
    member with PAA larger than its window).
    """
    from repro.core.ensemble import ensemble_grid

    parts = spec.split(":")
    if len(parts) != 3:
        raise ReproError(
            f"--grid expects WINDOWS:PAAS:ALPHABETS (e.g. 60,120:4,6:3,5), "
            f"got {spec!r}"
        )
    try:
        axes = [
            [int(v) for v in part.split(",") if v.strip()] for part in parts
        ]
    except ValueError as exc:
        raise ReproError(f"--grid values must be integers: {exc}") from exc
    if not all(axes):
        raise ReproError(f"--grid axis is empty in {spec!r}")
    return ensemble_grid(*axes)


def _cmd_ensemble(args: argparse.Namespace) -> int:
    from repro.core.ensemble import EnsembleDetector, default_grid
    from repro.observability import MetricsRegistry
    from repro.resilience import SearchBudget

    series = _load_series(args.path, args.column)
    grid = _parse_grid(args.grid) if args.grid else default_grid(len(series))
    metrics = MetricsRegistry() if args.trace else None
    detector = EnsembleDetector(
        grid,
        normalization=args.normalize,
        aggregation=args.aggregate,
        num_discords=args.discords,
        backend=args.backend,
        n_workers=args.workers,
        metrics=metrics,
        cache=args.cache_dir,
    )
    budget = None
    if args.deadline is not None or args.max_calls is not None:
        budget = SearchBudget(deadline=args.deadline, max_calls=args.max_calls)
    result = detector.fit(series, budget=budget)

    counts = result.member_counts()
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(
        f"ensemble: {len(result.members)} members ({summary}); "
        f"aggregate={result.aggregation} normalize={result.normalization}"
    )
    print(f"{'rank':>4s} {'start':>7s} {'end':>7s} {'support':>7s} {'score':>8s}")
    for discord in result.discords:
        print(
            f"{discord.rank:>4d} {discord.start:>7d} {discord.end:>7d} "
            f"{discord.support:>7d} {discord.score:>8.4f}"
        )
    if not result.discords:
        print("(no ensemble discords)")
    if args.ledger:
        print("\nper-member ledger:", file=sys.stderr)
        for entry in result.ledger():
            print(
                f"  W={entry['window']:<5d} P={entry['paa_size']:<3d} "
                f"A={entry['alphabet_size']:<3d} {entry['status']:>9s} "
                f"calls={entry['distance_calls']}",
                file=sys.stderr,
            )
    if result.degraded:
        print(
            "ensemble degraded: some members were dropped "
            f"({summary}); the aggregate uses {result.contributing} "
            f"of {len(result.members)} members",
            file=sys.stderr,
        )
    if args.trace and metrics is not None:
        print(_format_trace(metrics), file=sys.stderr)
    return 0


def _cmd_density(args: argparse.Namespace) -> int:
    series = _load_series(args.path, args.column)
    detector = GrammarAnomalyDetector(args.window, args.paa, args.alphabet)
    detector.fit(series)
    for value in detector.density_curve():
        print(int(value))
    return 0


def _cmd_motifs(args: argparse.Namespace) -> int:
    from repro.core.motifs import find_motifs

    series = _load_series(args.path, args.column)
    detector = GrammarAnomalyDetector(args.window, args.paa, args.alphabet)
    result = detector.fit(series)
    motifs = find_motifs(
        result.grammar, result.discretization, top_k=args.top
    )
    print(f"{'rank':>4s} {'rule':>6s} {'freq':>5s} {'lengths':>12s} occurrences")
    for motif in motifs:
        lo, hi = motif.length_range
        preview = ", ".join(
            f"{s}" for s, _ in motif.occurrences[:6]
        ) + ("..." if motif.frequency > 6 else "")
        print(
            f"{motif.rank:>4d} {'R' + str(motif.rule_id):>6s} "
            f"{motif.frequency:>5d} {f'{lo}-{hi}':>12s} at {preview}"
        )
    return 0


def _cmd_suggest(args: argparse.Namespace) -> int:
    from repro.core.auto_params import dominant_period, suggest_parameters

    series = _load_series(args.path, args.column)
    period = dominant_period(series)
    if period is not None:
        print(f"dominant period: {period} points")
    else:
        print("no clear periodicity detected")
    suggestions = suggest_parameters(series, top_k=args.top)
    if not suggestions:
        print("no healthy parameter combination found; supply -w/-p/-a manually")
        return 1
    print(f"{'W':>5s} {'P':>3s} {'A':>3s} {'score':>6s} {'reduction':>10s} "
          f"{'compression':>12s} {'coverage':>9s}")
    for s in suggestions:
        print(
            f"{s.window:>5d} {s.paa_size:>3d} {s.alphabet_size:>3d} "
            f"{s.score:>6.2f} {s.reduction_ratio:>10.2f} "
            f"{s.compression_ratio:>12.2f} {s.coverage:>9.2f}"
        )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.datasets.registry import table1_rows
    from repro.discord.brute_force import brute_force_call_count
    from repro.discord.hotsax import hotsax_discords
    from repro.core.rra import find_discords

    print(
        f"{'Dataset':34s} {'Length':>8s} {'BruteForce':>12s} "
        f"{'HOTSAX':>10s} {'RRA':>10s} {'Reduction':>9s}"
    )
    for row in table1_rows():
        if args.only and row.key not in args.only:
            continue
        dataset = row.factory()
        brute = brute_force_call_count(dataset.length, row.window)
        hotsax = hotsax_discords(dataset.series, row.window, num_discords=1)
        detector = GrammarAnomalyDetector(row.window, row.paa_size, row.alphabet_size)
        fitted = detector.fit(dataset.series)
        rra = find_discords(dataset.series, fitted.candidates, num_discords=1)
        reduction = 100.0 * (1.0 - rra.distance_calls / max(1, hotsax.distance_calls))
        print(
            f"{row.display_name:34s} {dataset.length:>8d} {brute:>12d} "
            f"{hotsax.distance_calls:>10d} {rra.distance_calls:>10d} "
            f"{reduction:>8.1f}%"
        )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.datasets import sine_with_anomaly
    from repro.visualization.report import grammar_report

    dataset = sine_with_anomaly(anomaly_kind="bump", seed=args.seed)
    detector = GrammarAnomalyDetector(
        dataset.window, dataset.paa_size, dataset.alphabet_size
    )
    result = detector.fit(dataset.series)
    anomalies = list(detector.density_anomalies(max_anomalies=2))
    anomalies.extend(detector.discords(num_discords=2).discords)
    print(f"demo dataset: {dataset.description}")
    print(f"planted anomaly: {dataset.anomalies}")
    print()
    print(grammar_report(result, anomalies))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-anomaly",
        description="Grammar-based time series anomaly discovery (EDBT 2015).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sax_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--window", "-w", type=int, default=100, help="sliding window W")
        p.add_argument("--paa", "-p", type=int, default=4, help="PAA size P")
        p.add_argument("--alphabet", "-a", type=int, default=4, help="alphabet size A")
        p.add_argument("--column", "-c", type=int, default=0, help="CSV column index")

    find = sub.add_parser("find", help="discover anomalies in a series file")
    find.add_argument("path", help="CSV or whitespace-separated series file")
    add_sax_args(find)
    find.add_argument("--discords", "-k", type=int, default=3, help="discords to report")
    find.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the discord search (anytime: prints "
             "best-so-far results when it trips)",
    )
    find.add_argument(
        "--max-calls", type=int, default=None, metavar="N",
        help="distance-call budget for the discord search",
    )
    find.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="autosave search state to this JSON file so a killed run "
             "can be resumed",
    )
    find.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume from a checkpoint written by a previous run over "
             "the same inputs (bit-identical final result)",
    )
    find.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the discord search (results are "
             "bit-identical for any value; default 1 = in-process)",
    )
    find.add_argument(
        "--backend", choices=list(BACKENDS), default="kernel",
        help="distance backend: kernel (vectorized blocks), batch "
             "(tiled GEMM scans), or scalar (per-pair reference); "
             "results and call counts are identical, only speed differs",
    )
    find.add_argument(
        "--prune", action="store_true",
        help="skip true distance kernels via admissible SAX/PAA lower "
             "bounds (results and logical call counts are bit-identical; "
             "see the counter's pruning ledger)",
    )
    find.add_argument(
        "--trace", action="store_true",
        help="print the search's trace events and counters to stderr "
             "after the report",
    )
    find.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a JSONL run report (meta line, trace events, final "
             "metrics snapshot) of the discord search to PATH",
    )
    find.add_argument(
        "--quality", choices=["raise", "interpolate", "mask"], default=None,
        help="NaN/Inf policy: raise refuses dirty data, interpolate "
             "repairs gaps, mask repairs but never reports anomalies "
             "from repaired spans (default: drop non-finite rows on load)",
    )
    find.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache: an identical repeated search "
             "(same series content and parameters) is answered from DIR "
             "bit-identically instead of recomputed",
    )
    find.set_defaults(func=_cmd_find)

    ensemble = sub.add_parser(
        "ensemble",
        help="parameter-free detection: aggregate a grid of members",
    )
    ensemble.add_argument("path", help="CSV or whitespace-separated series file")
    ensemble.add_argument("--column", "-c", type=int, default=0, help="CSV column index")
    ensemble.add_argument(
        "--grid", default=None, metavar="W:P:A",
        help="member grid as WINDOWS:PAAS:ALPHABETS, each a comma list "
             "(e.g. 60,120:4,6:3,5); default: a data-driven grid from "
             "the series length",
    )
    ensemble.add_argument(
        "--aggregate", choices=list(AGGREGATIONS), default="mean",
        help="how member score curves are combined",
    )
    ensemble.add_argument(
        "--normalize", choices=list(NORMALIZATIONS), default="minmax",
        help="per-member curve normalization before aggregation",
    )
    ensemble.add_argument(
        "--discords", "-k", type=int, default=3,
        help="discords per member before merging",
    )
    ensemble.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for member evaluation (aggregate and "
             "discords are bit-identical for any value; default 1)",
    )
    ensemble.add_argument(
        "--backend", choices=list(BACKENDS), default="kernel",
        help="distance backend shared by every member",
    )
    ensemble.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget across the whole ensemble (a tripped "
             "budget yields a partial, degraded aggregate)",
    )
    ensemble.add_argument(
        "--max-calls", type=int, default=None, metavar="N",
        help="distance-call budget across the whole ensemble",
    )
    ensemble.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent per-member result cache: a warm (or grid-"
             "overlapping) rerun answers members from DIR bit-identically",
    )
    ensemble.add_argument(
        "--ledger", action="store_true",
        help="print the per-member provenance ledger to stderr",
    )
    ensemble.add_argument(
        "--trace", action="store_true",
        help="print trace events and counters to stderr",
    )
    ensemble.set_defaults(func=_cmd_ensemble)

    density = sub.add_parser("density", help="print the rule density curve")
    density.add_argument("path")
    add_sax_args(density)
    density.set_defaults(func=_cmd_density)

    motifs = sub.add_parser("motifs", help="report recurrent patterns")
    motifs.add_argument("path")
    add_sax_args(motifs)
    motifs.add_argument("--top", "-t", type=int, default=5,
                        help="motifs to report")
    motifs.set_defaults(func=_cmd_motifs)

    suggest = sub.add_parser(
        "suggest", help="suggest discretization parameters for a series"
    )
    suggest.add_argument("path")
    suggest.add_argument("--column", "-c", type=int, default=0)
    suggest.add_argument("--top", "-t", type=int, default=5)
    suggest.set_defaults(func=_cmd_suggest)

    table1 = sub.add_parser("table1", help="regenerate Table 1 (synthetic stand-ins)")
    table1.add_argument("--only", nargs="*", help="restrict to these dataset keys")
    table1.set_defaults(func=_cmd_table1)

    demo = sub.add_parser("demo", help="run the quickstart demo")
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=_cmd_demo)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Result types shared by both anomaly-discovery algorithms."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ParameterError


@dataclass(frozen=True)
class Anomaly:
    """A detected anomalous interval.

    Attributes
    ----------
    start, end:
        Half-open series interval ``[start, end)``.
    score:
        Algorithm-specific anomalousness.  For the rule-density detector
        lower density = more anomalous, so the score is the *negated*
        mean rule density over the interval (higher score = more
        anomalous, uniformly across detectors).
    rank:
        0 for the strongest anomaly, 1 for the next, ...
    source:
        Which detector produced it (``"density"`` / ``"rra"`` / ...).
    """

    start: int
    end: int
    score: float
    rank: int = 0
    source: str = "density"

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ParameterError(f"malformed anomaly [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlap(self, other_start: int, other_end: int) -> int:
        """Number of points shared with ``[other_start, other_end)``."""
        return max(0, min(self.end, other_end) - max(self.start, other_start))

    def overlap_fraction(self, other_start: int, other_end: int) -> float:
        """Shared points divided by the length of the *shorter* interval.

        This is the recall-style overlap measure used for Table 1's last
        column: 100 % means one interval is contained in (or equals) the
        other.
        """
        shorter = min(self.length, other_end - other_start)
        if shorter <= 0:
            return 0.0
        return self.overlap(other_start, other_end) / shorter


@dataclass(frozen=True)
class Discord(Anomaly):
    """A discord: anomaly whose score is a nearest-non-self-match distance.

    Attributes
    ----------
    nn_distance:
        Distance to the nearest non-self match (the discord criterion);
        equal to :attr:`score`.
    rule_id:
        The grammar rule whose interval produced this candidate
        (``-1`` for zero-coverage gaps; ``None`` for detectors that do
        not use grammar intervals, e.g. HOTSAX).
    """

    nn_distance: float = 0.0
    rule_id: int | None = None
    source: str = "rra"

"""Variable-length motif discovery from the grammar (inverse problem).

The paper frames anomaly detection as "the inverse problem to motif
discovery" (§3) and builds on the authors' earlier GrammarViz work,
where Sequitur's *utility* constraint guarantees that every non-terminal
corresponds to a recurrent pattern.  This module completes the library
with that original capability: the most-used grammar rules, projected
back onto the series, are variable-length motifs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ParameterError
from repro.grammar.grammar import Grammar
from repro.grammar.intervals import rule_intervals
from repro.sax.discretize import Discretization


@dataclass(frozen=True)
class Motif:
    """A recurrent variable-length pattern.

    Attributes
    ----------
    rule_id:
        The grammar rule that encodes the pattern.
    occurrences:
        Half-open series intervals of every occurrence.
    level:
        The rule's hierarchy depth (deeper = more structured pattern).
    rank:
        0 for the strongest motif.
    """

    rule_id: int
    occurrences: tuple[tuple[int, int], ...]
    level: int
    rank: int = 0

    @property
    def frequency(self) -> int:
        """Number of occurrences."""
        return len(self.occurrences)

    @property
    def mean_length(self) -> float:
        """Average occurrence length in points."""
        return float(np.mean([end - start for start, end in self.occurrences]))

    @property
    def length_range(self) -> tuple[int, int]:
        """(min, max) occurrence length — motifs are variable-length."""
        lengths = [end - start for start, end in self.occurrences]
        return min(lengths), max(lengths)


def find_motifs(
    grammar: Grammar,
    discretization: Discretization,
    *,
    min_occurrences: int = 2,
    min_length: int = 0,
    top_k: Optional[int] = None,
) -> list[Motif]:
    """Rank grammar rules into motifs (most frequent first).

    Parameters
    ----------
    grammar:
        Grammar induced over ``discretization.tokens()``.
    discretization:
        The discretization that produced the grammar's tokens.
    min_occurrences:
        Keep only rules used at least this often (Sequitur guarantees 2).
    min_length:
        Keep only motifs whose mean occurrence length is at least this
        many points (filters trivial two-token rules if desired).
    top_k:
        Return at most this many motifs.

    Returns
    -------
    list[Motif]
        Sorted by descending frequency, ties broken by longer mean
        length then rule id; ranks assigned accordingly.
    """
    if min_occurrences < 2:
        raise ParameterError(
            f"min_occurrences must be >= 2 (rule utility), got {min_occurrences}"
        )
    intervals = rule_intervals(grammar, discretization)
    by_rule: dict[int, list[tuple[int, int]]] = {}
    for iv in intervals:
        by_rule.setdefault(iv.rule_id, []).append((iv.start, iv.end))

    candidates = []
    for rule_id, occ in by_rule.items():
        if len(occ) < min_occurrences:
            continue
        mean_length = float(np.mean([e - s for s, e in occ]))
        if mean_length < min_length:
            continue
        level = grammar.rules[rule_id].level
        candidates.append((len(occ), mean_length, rule_id, tuple(sorted(occ)), level))

    candidates.sort(key=lambda c: (-c[0], -c[1], c[2]))
    motifs = [
        Motif(rule_id=rule_id, occurrences=occ, level=level, rank=rank)
        for rank, (_, _, rule_id, occ, level) in enumerate(candidates)
    ]
    if top_k is not None:
        motifs = motifs[:top_k]
    return motifs


def motif_cover_fraction(motifs: list[Motif], series_length: int) -> float:
    """Fraction of series points covered by at least one motif occurrence.

    A diagnostic for discretization quality: on strongly periodic data a
    healthy grammar's motifs cover nearly everything except anomalies.
    """
    if series_length <= 0:
        raise ParameterError(f"series_length must be positive, got {series_length}")
    covered = np.zeros(series_length, dtype=bool)
    for motif in motifs:
        for start, end in motif.occurrences:
            covered[start : min(end, series_length)] = True
    return float(covered.mean())

"""Ensemble grammar induction: parameter-free, robust anomaly detection.

The paper's biggest practical weakness is sensitivity to the
(window, PAA, alphabet) discretization choice: a single unlucky triple
can miss an anomaly that most neighbouring parameterizations find.
Following Gao, Lin & Brif (arXiv 2001.11102), this module runs a *grid*
of discretizations — the ensemble members — through the existing
pipeline, normalizes each member's rule-density curve into anomaly
evidence, aggregates the evidence into one calibrated score curve, and
merges the members' RRA discord candidates into ranked ensemble
discords with per-member provenance.

Determinism contract
--------------------
The aggregate score curve and the ranked ensemble discords are
**bit-identical** for any ``n_workers`` and any cold/warm result-cache
state:

* every member is evaluated by the unmodified single-parameterization
  pipeline (itself bit-identical across workers/backends/caches);
* members are combined in *canonical grid order* (the order of the
  grid list), never in completion order;
* the ``mean`` aggregator sums each column in ascending value order,
  so even a hypothetical member permutation cannot shift a single ulp;
* cached member entries store the raw density curve (integers) and the
  exact discords, so a warm member contributes the same bits as a cold
  one.

Degraded-member contract
------------------------
A member that cannot contribute never takes the ensemble down:

* geometrically impossible members (window longer than the series, PAA
  larger than the window) are recorded as ``"invalid"`` and skipped;
* a member whose pipeline raises is recorded as ``"error"`` with the
  exception text;
* under a :class:`~repro.resilience.budget.SearchBudget`, a member
  whose discord search was truncated is ``"truncated"`` and members the
  budget never reached are ``"skipped"``.

The aggregate is computed over the contributing members only; any
``error``/``truncated``/``skipped`` member sets ``degraded=True`` on
the result, and the full per-member ledger is always attached.
Truncated members are never written to the result cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.cache import ResultCache, SearchContext, ensemble_member_key
from repro.cache.results import discords_from_json, discords_to_json
from repro.core.anomaly import Anomaly, Discord
from repro.core.pipeline import GrammarAnomalyDetector
from repro.exceptions import ParameterError, ReproError
from repro.observability.metrics import ensure_metrics
from repro.parallel.pool import effective_workers
from repro.resilience.budget import SearchBudget
from repro.timeseries.kernels import validate_backend

__all__ = [
    "AGGREGATIONS",
    "NORMALIZATIONS",
    "VOTE_THRESHOLD",
    "EnsembleDetector",
    "EnsembleDiscord",
    "EnsembleMember",
    "EnsembleResult",
    "MemberOutcome",
    "aggregate_score_digest",
    "aggregate_scores",
    "default_grid",
    "ensemble_grid",
    "evaluate_member",
    "normalize_density",
]

#: Supported per-member density-curve normalizers.
NORMALIZATIONS = ("minmax", "rank")

#: Supported cross-member aggregators.
AGGREGATIONS = ("mean", "median", "vote")

#: A member "votes" for a point when its normalized anomaly score
#: exceeds this threshold (the ``vote`` aggregator's cutoff).
VOTE_THRESHOLD = 0.5

#: Member statuses that contribute evidence to the aggregate.
_CONTRIBUTING = ("ok", "cached")

#: Member statuses that mark the ensemble result as degraded.
_DEGRADING = ("error", "truncated", "skipped")


@dataclass(frozen=True)
class EnsembleMember:
    """One discretization parameterization of the ensemble grid."""

    window: int
    paa_size: int
    alphabet_size: int

    def __post_init__(self) -> None:
        if self.window < 2 or self.paa_size < 1 or self.alphabet_size < 2:
            raise ParameterError(
                f"malformed ensemble member ({self.window}, "
                f"{self.paa_size}, {self.alphabet_size})"
            )

    @property
    def triple(self) -> tuple[int, int, int]:
        return (self.window, self.paa_size, self.alphabet_size)


def ensemble_grid(
    windows: Sequence[int],
    paa_sizes: Sequence[int],
    alphabet_sizes: Sequence[int],
) -> list[EnsembleMember]:
    """Cartesian member grid in canonical (window, paa, alphabet) order.

    Structurally impossible cells (``paa_size > window``) are dropped
    here; cells that are only invalid *for a particular series* (window
    not shorter than the series) are kept and classified at fit time.
    """
    members = [
        EnsembleMember(int(w), int(p), int(a))
        for w in windows
        for p in paa_sizes
        for a in alphabet_sizes
        if int(p) <= int(w)
    ]
    if not members:
        raise ParameterError("ensemble grid is empty (every cell has paa > window)")
    return members


def default_grid(series_length: int) -> list[EnsembleMember]:
    """Parameter-free default grid derived from the series length.

    Three windows on a geometric ladder between roughly 1/20 and 1/6 of
    the series (floored at 16 points), crossed with two PAA sizes and
    two alphabet sizes — 12 members whose induced grammars look at the
    series at genuinely different granularities.  Deterministic in the
    length alone.
    """
    if series_length < 32:
        raise ParameterError(
            f"series too short for an ensemble (need >= 32 points, "
            f"got {series_length})"
        )
    lo = max(16, series_length // 20)
    hi = max(lo + 1, series_length // 6)
    hi = min(hi, series_length - 1)
    mid = int(round((lo * hi) ** 0.5))
    windows = sorted({lo, mid, hi})
    return ensemble_grid(windows, (4, 6), (3, 5))


# -- normalization and aggregation ----------------------------------------


def normalize_density(density: np.ndarray, method: str) -> np.ndarray:
    """Turn one member's rule-density curve into anomaly evidence.

    Low density = poorly compressed = anomalous, so both normalizers
    *invert* the curve into a float score in ``[0, 1]`` where higher is
    more anomalous:

    ``minmax``
        ``(max - d) / (max - min)``; a constant curve carries no
        evidence and maps to all zeros.
    ``rank``
        The fraction of points with strictly greater density —
        depends only on the ordering of the curve, so it is invariant
        under any positive affine transform of the densities and
        robust to members whose absolute density scales differ wildly
        (short windows produce many more rule intervals than long
        ones).  Ties share a score; a constant curve maps to zeros.
    """
    if method not in NORMALIZATIONS:
        raise ParameterError(
            f"normalization must be one of {NORMALIZATIONS}, got {method!r}"
        )
    density = np.asarray(density, dtype=float)
    if density.size == 0:
        return np.zeros(0)
    if method == "minmax":
        lo = float(density.min())
        hi = float(density.max())
        if hi <= lo:
            return np.zeros(density.size)
        return (hi - density) / (hi - lo)
    ordered = np.sort(density)
    greater = density.size - np.searchsorted(ordered, density, side="right")
    return greater / max(1, density.size - 1)


def aggregate_scores(stack: np.ndarray, method: str) -> np.ndarray:
    """Combine an ``(n_members, n_points)`` score stack into one curve.

    ``mean``
        Per-point arithmetic mean; each column is summed in ascending
        value order so the result is bit-invariant under member
        permutation (float addition is not associative; a canonical
        summation order removes the only source of non-determinism).
    ``median``
        Per-point median — robust to a minority of wild members.
    ``vote``
        Fraction of members whose score exceeds
        :data:`VOTE_THRESHOLD`; exact (small-integer / member-count)
        arithmetic, hence trivially permutation-invariant.
    """
    if method not in AGGREGATIONS:
        raise ParameterError(
            f"aggregation must be one of {AGGREGATIONS}, got {method!r}"
        )
    stack = np.asarray(stack, dtype=float)
    if stack.ndim != 2 or stack.shape[0] == 0:
        raise ParameterError(
            f"need a non-empty 2-d score stack, got shape {stack.shape}"
        )
    if method == "mean":
        return np.sort(stack, axis=0).sum(axis=0) / stack.shape[0]
    if method == "median":
        return np.median(stack, axis=0)
    return (stack > VOTE_THRESHOLD).sum(axis=0) / stack.shape[0]


def aggregate_score_digest(scores: np.ndarray) -> str:
    """SHA-256 of the aggregate curve's little-endian float64 bytes.

    The golden ensemble suite pins this digest, so any single-ulp drift
    in any member, normalizer, or aggregator fails the regression test.
    """
    data = np.ascontiguousarray(np.asarray(scores, dtype="<f8"))
    return hashlib.sha256(data.tobytes()).hexdigest()


def _medoid_interval(votes: Sequence[tuple]) -> tuple[int, int]:
    """The vote interval the other votes corroborate most.

    Similarity is the repo-wide overlap measure — shared length over
    the *shorter* interval (the same criterion ``merge_overlap`` and
    the hit tests use) — summed against every other vote.  Votes are
    ``(member_index, W, P, A, rank, start, end, nn_distance)`` tuples
    in canonical member order; ties resolve to the earliest vote, and
    the similarity sums run in that fixed order, so the choice is
    bit-deterministic.  With one vote, that vote's interval is the
    answer.
    """
    if len(votes) == 1:
        return int(votes[0][5]), int(votes[0][6])
    best = (-1.0, 0, 0)
    for vote in votes:
        s_i, e_i = vote[5], vote[6]
        total = 0.0
        for other in votes:
            if other is vote:
                continue
            s_j, e_j = other[5], other[6]
            inter = max(0, min(e_i, e_j) - max(s_i, s_j))
            shorter = min(e_i - s_i, e_j - s_j)
            if shorter > 0:
                total += inter / shorter
        if total > best[0]:
            best = (total, int(s_i), int(e_i))
    return best[1], best[2]


# -- member evaluation ----------------------------------------------------


@dataclass
class MemberOutcome:
    """What one ensemble member produced (or why it could not).

    ``status`` is one of ``"ok"`` (evaluated live), ``"cached"``
    (answered from the result cache — same bits as a live run),
    ``"invalid"`` (geometrically impossible for this series),
    ``"error"`` (the pipeline raised; see ``error``), ``"truncated"``
    (the budget tripped mid-search) or ``"skipped"`` (the budget
    tripped before this member started).
    """

    member: EnsembleMember
    status: str
    density: Optional[np.ndarray] = field(default=None, repr=False)
    discords: list[Discord] = field(default_factory=list)
    grammar_size: int = 0
    distance_calls: int = 0
    error: Optional[str] = None
    from_cache: bool = False

    @property
    def contributing(self) -> bool:
        return self.status in _CONTRIBUTING

    def ledger_entry(self) -> dict:
        entry = {
            "window": self.member.window,
            "paa_size": self.member.paa_size,
            "alphabet_size": self.member.alphabet_size,
            "status": self.status,
            "distance_calls": int(self.distance_calls),
            "from_cache": bool(self.from_cache),
        }
        if self.error is not None:
            entry["error"] = self.error
        return entry


def evaluate_member(
    series: np.ndarray,
    member: EnsembleMember,
    *,
    num_discords: int,
    backend: str = "kernel",
    seed: int = 0,
    context: Optional[SearchContext] = None,
    metrics=None,
    budget: Optional[SearchBudget] = None,
) -> MemberOutcome:
    """Run one member through the single-parameterization pipeline.

    Shared verbatim by the serial member loop and the pool workers, so
    a member's arithmetic cannot depend on where it executes.  Never
    raises for a bad member: geometry problems come back ``"invalid"``
    and pipeline exceptions come back ``"error"``.
    """
    series = np.asarray(series, dtype=float)
    if member.window >= series.size or member.paa_size > member.window:
        return MemberOutcome(member, "invalid")
    try:
        detector = GrammarAnomalyDetector(
            member.window,
            member.paa_size,
            member.alphabet_size,
            backend=backend,
            seed=seed,
            context=context,
            metrics=metrics,
        )
        fitted = detector.fit(series)
        rra = detector.discords(num_discords=num_discords, budget=budget)
    except ReproError as exc:
        return MemberOutcome(
            member, "error", error=f"{type(exc).__name__}: {exc}"
        )
    if not rra.complete:
        return MemberOutcome(
            member,
            "truncated",
            distance_calls=int(rra.distance_calls),
        )
    return MemberOutcome(
        member,
        "ok",
        density=fitted.density,
        discords=list(rra.discords),
        grammar_size=int(fitted.grammar.grammar_size()),
        distance_calls=int(rra.distance_calls),
    )


def _member_payload(outcome: MemberOutcome) -> dict:
    """JSON-able cache entry for a completed (``"ok"``) member."""
    return {
        "window": outcome.member.window,
        "paa_size": outcome.member.paa_size,
        "alphabet_size": outcome.member.alphabet_size,
        "density": [int(v) for v in outcome.density],
        "discords": discords_to_json(outcome.discords),
        "grammar_size": int(outcome.grammar_size),
        "distance_calls": int(outcome.distance_calls),
    }


def _member_from_payload(member: EnsembleMember, payload: dict) -> MemberOutcome:
    """Rebuild a member outcome from its cache entry, bit-exactly.

    Densities are integers and discord scores survive a JSON round trip
    losslessly (Python serializes floats via ``repr``), so a cached
    member contributes the same bits as the live run that stored it.
    """
    return MemberOutcome(
        member,
        "cached",
        density=np.asarray(payload["density"], dtype=np.int64),
        discords=discords_from_json(payload["discords"]),
        grammar_size=int(payload["grammar_size"]),
        distance_calls=int(payload["distance_calls"]),
        from_cache=True,
    )


# -- results --------------------------------------------------------------


@dataclass(frozen=True)
class EnsembleDiscord(Anomaly):
    """A merged ensemble discord with per-member provenance.

    ``support`` counts the distinct members whose RRA search proposed
    an overlapping interval; ``votes`` carries one
    ``(member_index, window, paa_size, alphabet_size, rank, start, end,
    nn_distance)`` tuple per proposing member (in canonical member
    order).  ``score`` is the mean aggregate anomaly score over the
    representative interval, so the two evidence streams — density
    consensus and discord votes — meet in the ranking.
    """

    support: int = 1
    votes: tuple = ()
    source: str = "ensemble"


@dataclass
class EnsembleResult:
    """Everything one :meth:`EnsembleDetector.fit` computed.

    Attributes
    ----------
    scores:
        The calibrated aggregate anomaly-score curve (series length,
        float, higher = more anomalous).
    members:
        One :class:`MemberOutcome` per grid member, canonical order.
    discords:
        Ranked merged ensemble discords, strongest first.
    degraded:
        True when any member was lost to an error or a budget (the
        aggregate covers the surviving members only).
    normalization, aggregation:
        The knobs the curve was built with.
    """

    scores: np.ndarray = field(repr=False)
    members: list[MemberOutcome] = field(default_factory=list)
    discords: list[EnsembleDiscord] = field(default_factory=list)
    degraded: bool = False
    normalization: str = "minmax"
    aggregation: str = "mean"

    @property
    def best(self) -> Optional[EnsembleDiscord]:
        return self.discords[0] if self.discords else None

    @property
    def contributing(self) -> int:
        """How many members actually fed the aggregate."""
        return sum(1 for m in self.members if m.contributing)

    def member_counts(self) -> dict[str, int]:
        """Ledger summary: members per status."""
        counts: dict[str, int] = {}
        for outcome in self.members:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def ledger(self) -> list[dict]:
        """The per-member ledger (canonical order, JSON-able)."""
        return [outcome.ledger_entry() for outcome in self.members]

    def score_digest(self) -> str:
        """SHA-256 of the aggregate curve (golden-suite anchor)."""
        return aggregate_score_digest(self.scores)


# -- the detector ---------------------------------------------------------


class EnsembleDetector:
    """Parameter-free anomaly detection over a discretization ensemble.

    Parameters
    ----------
    grid:
        The ensemble members: an iterable of ``(window, paa_size,
        alphabet_size)`` triples or :class:`EnsembleMember` objects.
        ``None`` (the default) derives :func:`default_grid` from the
        series length at fit time — the parameter-free mode.
    normalization:
        Per-member density normalizer, ``"minmax"`` or ``"rank"``
        (see :func:`normalize_density`).
    aggregation:
        Cross-member combiner, ``"mean"``, ``"median"`` or ``"vote"``
        (see :func:`aggregate_scores`).
    num_discords:
        Discords requested from each member's RRA search (the merge
        pool; the merged ranking can be longer or shorter).
    merge_overlap:
        Two member discords merge when they share at least this
        fraction of the shorter interval (0.5 by default, the Table-1
        overlap convention).
    backend, seed:
        Forwarded to every member's pipeline.
    n_workers:
        Worker processes for the *member* fan-out (each member's inner
        search stays serial).  Any value yields a bit-identical
        aggregate: members are merged in canonical grid order.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; member
        spans, ensemble counters, and the aggregation event land here.
    cache:
        Optional persistent :class:`~repro.cache.ResultCache` (or a
        directory path).  Completed members are stored individually, so
        a warm ensemble run — or one whose grid merely overlaps an
        earlier run's — answers those members from disk, bit-identically.
        Truncated members are never stored.
    context:
        Optional :class:`~repro.cache.SearchContext`.  When omitted, a
        fit-local context is created so members sharing a (window, paa)
        pair share their discretization front half; purely accelerative.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.ensemble import EnsembleDetector
    >>> t = np.arange(3000)
    >>> series = np.sin(2 * np.pi * t / 150)
    >>> series[1500:1590] = -series[1500:1590]
    >>> result = EnsembleDetector().fit(series)
    >>> 1400 <= result.best.start <= 1590
    True
    """

    def __init__(
        self,
        grid: Optional[Iterable] = None,
        *,
        normalization: str = "minmax",
        aggregation: str = "mean",
        num_discords: int = 3,
        merge_overlap: float = 0.5,
        backend: str = "kernel",
        seed: int = 0,
        n_workers: int = 1,
        metrics=None,
        cache=None,
        context: Optional[SearchContext] = None,
    ) -> None:
        if normalization not in NORMALIZATIONS:
            raise ParameterError(
                f"normalization must be one of {NORMALIZATIONS}, "
                f"got {normalization!r}"
            )
        if aggregation not in AGGREGATIONS:
            raise ParameterError(
                f"aggregation must be one of {AGGREGATIONS}, "
                f"got {aggregation!r}"
            )
        if num_discords < 1:
            raise ParameterError(
                f"num_discords must be >= 1, got {num_discords}"
            )
        if not 0.0 < merge_overlap <= 1.0:
            raise ParameterError(
                f"merge_overlap must be in (0, 1], got {merge_overlap}"
            )
        validate_backend(backend)
        self.grid = None if grid is None else self._normalize_grid(grid)
        self.normalization = normalization
        self.aggregation = aggregation
        self.num_discords = num_discords
        self.merge_overlap = merge_overlap
        self.backend = backend
        self.seed = seed
        self.n_workers = effective_workers(n_workers)
        self.metrics = ensure_metrics(metrics)
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        if self.metrics.enabled and self.cache is not None:
            self.cache.bind_metrics(self.metrics)
        self.context = context
        self._result: Optional[EnsembleResult] = None

    @staticmethod
    def _normalize_grid(grid: Iterable) -> list[EnsembleMember]:
        members = [
            m if isinstance(m, EnsembleMember) else EnsembleMember(*map(int, m))
            for m in grid
        ]
        if not members:
            raise ParameterError("ensemble grid must contain at least one member")
        return members

    @property
    def result(self) -> EnsembleResult:
        if self._result is None:
            raise ParameterError("call fit(series) before querying the ensemble")
        return self._result

    # -- fitting --------------------------------------------------------

    def _member_key(self, series: np.ndarray, member: EnsembleMember) -> str:
        return ensemble_member_key(
            series,
            window=member.window,
            paa_size=member.paa_size,
            alphabet_size=member.alphabet_size,
            params={
                "num_discords": int(self.num_discords),
                "seed": int(self.seed),
            },
        )

    def fit(
        self,
        series: np.ndarray,
        *,
        budget: Optional[SearchBudget] = None,
    ) -> EnsembleResult:
        """Evaluate every member and aggregate their evidence.

        With a *budget*, truncation is member-grained: the budget is
        checked before each member (and threaded into each member's
        discord search), members it cuts off are recorded as
        ``"truncated"``/``"skipped"``, and the partial ensemble comes
        back ``degraded=True`` over the members that finished.
        """
        metrics = self.metrics
        series = np.asarray(series, dtype=float)
        members = self.grid if self.grid is not None else default_grid(series.size)
        outcomes: dict[int, MemberOutcome] = {}
        pending: list[tuple[int, EnsembleMember]] = []
        keys: dict[int, str] = {}
        for idx, member in enumerate(members):
            if member.window >= series.size or member.paa_size > member.window:
                outcomes[idx] = MemberOutcome(member, "invalid")
                continue
            if self.cache is not None:
                keys[idx] = self._member_key(series, member)
                payload = self.cache.get(keys[idx])
                if payload is not None:
                    outcomes[idx] = _member_from_payload(member, payload)
                    continue
            pending.append((idx, member))
        if len(outcomes) == len(members) and not any(
            o.status != "invalid" for o in outcomes.values()
        ):
            raise ParameterError(
                f"no valid ensemble member for a series of "
                f"{series.size} points (grid windows: "
                f"{sorted({m.window for m in members})})"
            )

        if pending:
            with metrics.span(
                "ensemble.members",
                pending=len(pending),
                n_workers=self.n_workers,
            ):
                if self.n_workers > 1 and len(pending) > 1:
                    evaluated = self._run_parallel(series, pending, budget)
                else:
                    evaluated = self._run_serial(series, pending, budget)
            for idx, outcome in evaluated.items():
                outcomes[idx] = outcome
                if (
                    outcome.status == "ok"
                    and self.cache is not None
                    and idx in keys
                ):
                    self.cache.put(keys[idx], _member_payload(outcome))

        ordered = [outcomes[idx] for idx in range(len(members))]
        result = self._aggregate(series, ordered)
        if metrics.enabled:
            counts = result.member_counts()
            metrics.counter("ensemble.members").inc(len(ordered))
            metrics.counter("ensemble.members_contributing").inc(
                result.contributing
            )
            metrics.counter("ensemble.members_cached").inc(
                counts.get("cached", 0)
            )
            metrics.counter("ensemble.members_dropped").inc(
                sum(counts.get(status, 0) for status in _DEGRADING)
            )
            if result.scores.size:
                metrics.gauge("ensemble.score_max").set(
                    float(result.scores.max())
                )
            metrics.event(
                "ensemble.aggregated",
                normalization=self.normalization,
                aggregation=self.aggregation,
                members=len(ordered),
                contributing=result.contributing,
                discords=len(result.discords),
                degraded=result.degraded,
            )
        self._result = result
        return result

    def _run_serial(
        self,
        series: np.ndarray,
        pending: list[tuple[int, EnsembleMember]],
        budget: Optional[SearchBudget],
    ) -> dict[int, MemberOutcome]:
        context = self.context if self.context is not None else SearchContext()
        outcomes: dict[int, MemberOutcome] = {}
        total_calls = 0
        for idx, member in pending:
            if budget is not None and budget.interrupted(total_calls) is not None:
                outcomes[idx] = MemberOutcome(member, "skipped")
                continue
            with self.metrics.span(
                "ensemble.member",
                window=member.window,
                paa_size=member.paa_size,
                alphabet_size=member.alphabet_size,
            ):
                outcome = evaluate_member(
                    series,
                    member,
                    num_discords=self.num_discords,
                    backend=self.backend,
                    seed=self.seed,
                    context=context,
                    metrics=self.metrics,
                    budget=budget,
                )
            total_calls += outcome.distance_calls
            outcomes[idx] = outcome
        return outcomes

    def _run_parallel(
        self,
        series: np.ndarray,
        pending: list[tuple[int, EnsembleMember]],
        budget: Optional[SearchBudget],
    ) -> dict[int, MemberOutcome]:
        from repro.parallel.engine import parallel_ensemble_members

        return parallel_ensemble_members(
            series,
            pending,
            num_discords=self.num_discords,
            backend=self.backend,
            seed=self.seed,
            budget=budget,
            n_workers=self.n_workers,
        )

    # -- aggregation ----------------------------------------------------

    def _aggregate(
        self, series: np.ndarray, ordered: list[MemberOutcome]
    ) -> EnsembleResult:
        contributing = [
            (idx, outcome)
            for idx, outcome in enumerate(ordered)
            if outcome.contributing
        ]
        if contributing:
            stack = np.stack(
                [
                    normalize_density(outcome.density, self.normalization)
                    for _, outcome in contributing
                ]
            )
            scores = aggregate_scores(stack, self.aggregation)
        else:
            scores = np.zeros(series.size)
        discords = self._merge_discords(contributing, scores)
        degraded = any(o.status in _DEGRADING for o in ordered)
        return EnsembleResult(
            scores=scores,
            members=ordered,
            discords=discords,
            degraded=degraded,
            normalization=self.normalization,
            aggregation=self.aggregation,
        )

    def _merge_discords(
        self,
        contributing: list[tuple[int, MemberOutcome]],
        scores: np.ndarray,
    ) -> list[EnsembleDiscord]:
        """Group overlapping member discords into ranked ensemble discords.

        Candidates are visited in canonical member order (then member
        rank order); a candidate joins the first existing group whose
        anchor interval shares >= ``merge_overlap`` of the shorter
        interval, else opens a new group anchored at the first-seen
        interval.  Each group is *reported* at its consensus interval
        (median vote start/end), and groups are ranked by member
        support, then mean aggregate score over the consensus interval,
        then position — all deterministic quantities.
        """
        groups: list[dict] = []
        for member_index, outcome in contributing:
            member = outcome.member
            for d in outcome.discords:
                vote = (
                    member_index,
                    member.window,
                    member.paa_size,
                    member.alphabet_size,
                    int(d.rank),
                    int(d.start),
                    int(d.end),
                    float(d.nn_distance),
                )
                placed = False
                for group in groups:
                    shorter = min(
                        group["end"] - group["start"], d.end - d.start
                    )
                    shared = max(
                        0, min(group["end"], d.end) - max(group["start"], d.start)
                    )
                    if shorter > 0 and shared / shorter >= self.merge_overlap:
                        group["votes"].append(vote)
                        group["members"].add(member_index)
                        placed = True
                        break
                if not placed:
                    groups.append(
                        {
                            "start": int(d.start),
                            "end": int(d.end),
                            "votes": [vote],
                            "members": {member_index},
                        }
                    )
        ranked = []
        for group in groups:
            # The reported interval is the group's MEDOID vote — the
            # member discord the other votes corroborate most — not the
            # first-seen interval the grouping anchored on, so one
            # member with an off-centre or wildly long discord can join
            # a group without dragging the reported bounds.
            start, end = _medoid_interval(group["votes"])
            window_scores = scores[start:end]
            score = float(window_scores.mean()) if window_scores.size else 0.0
            ranked.append((-len(group["members"]), -score, start, end, group))
        ranked.sort(key=lambda item: item[:4])
        return [
            EnsembleDiscord(
                start=start,
                end=end,
                score=-neg_score,
                rank=rank,
                support=-neg_support,
                votes=tuple(group["votes"]),
            )
            for rank, (neg_support, neg_score, start, end, group) in enumerate(ranked)
        ]

"""The paper's primary contribution: grammar-driven anomaly discovery.

Two algorithms (paper Section 4):

* :func:`~repro.core.rule_density.rule_density_curve` and friends — the
  approximate, linear-time rule-density detector;
* :func:`~repro.core.rra.find_discords` — RRA, the exact variable-length
  discord search.

:class:`~repro.core.pipeline.GrammarAnomalyDetector` wires SAX + Sequitur
+ both detectors into a one-call API.
"""

from repro.core.anomaly import Anomaly, Discord
from repro.core.rule_density import (
    rule_density_curve,
    density_minima_intervals,
    find_density_anomalies,
)
from repro.core.rra import RRAResult, find_discord, find_discords
from repro.core.pipeline import GrammarAnomalyDetector, PipelineResult
from repro.core.parameter_grid import GridPoint, ParameterGridStudy
from repro.core.ensemble import (
    EnsembleDetector,
    EnsembleDiscord,
    EnsembleMember,
    EnsembleResult,
    default_grid,
    ensemble_grid,
)
from repro.core.motifs import Motif, find_motifs, motif_cover_fraction
from repro.core.auto_params import (
    ParameterSuggestion,
    dominant_period,
    grammar_health,
    suggest_parameters,
)

__all__ = [
    "Anomaly",
    "Discord",
    "rule_density_curve",
    "density_minima_intervals",
    "find_density_anomalies",
    "RRAResult",
    "find_discord",
    "find_discords",
    "GrammarAnomalyDetector",
    "PipelineResult",
    "GridPoint",
    "ParameterGridStudy",
    "EnsembleDetector",
    "EnsembleDiscord",
    "EnsembleMember",
    "EnsembleResult",
    "default_grid",
    "ensemble_grid",
    "Motif",
    "find_motifs",
    "motif_cover_fraction",
    "ParameterSuggestion",
    "dominant_period",
    "grammar_health",
    "suggest_parameters",
]

"""Heuristic discretization-parameter suggestion (paper §5.2 + §7).

The paper's guidance: (a) choose the sliding window from the data's
*context* — "the length of a heartbeat in ECG data, a weekly duration in
power consumption data, or an observed phenomenon cycle length in
telemetry"; (b) sensible parameters are the ones under which the
grammar actually captures regularities (Figure 10 relates success to
grammar size and approximation precision).  The paper's future work asks
for exactly this analysis.

This module operationalizes both ideas:

* :func:`dominant_period` estimates the cycle length from the
  autocorrelation function — the "context" seed for the window;
* :func:`grammar_health` scores one (W, P, A) combination from the
  *grammar's own properties*, no ground truth needed:
  numerosity-reduction rate, compression ratio, and coverage;
* :func:`suggest_parameters` sweeps a small grid seeded by the dominant
  period and returns ranked suggestions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.rule_density import rule_density_curve
from repro.exceptions import ParameterError
from repro.grammar.intervals import rule_intervals
from repro.grammar.sequitur import induce_grammar_interned
from repro.sax.discretize import discretize


def dominant_period(
    series: np.ndarray,
    *,
    min_period: int = 4,
    max_period: Optional[int] = None,
) -> Optional[int]:
    """Dominant cycle length via the autocorrelation function.

    Returns the lag of the highest autocorrelation peak in
    ``[min_period, max_period]``, or None when the series shows no
    meaningful periodicity (peak correlation below 0.1).
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ParameterError(f"series must be 1-d, got shape {series.shape}")
    n = series.size
    if n < 4 * min_period:
        return None
    if max_period is None:
        max_period = n // 3
    max_period = min(max_period, n // 2)
    if max_period <= min_period:
        return None

    centered = series - series.mean()
    variance = float(np.dot(centered, centered))
    if variance < 1e-12:
        return None
    # FFT-based autocorrelation: O(n log n).
    size = 1 << int(np.ceil(np.log2(2 * n)))
    spectrum = np.fft.rfft(centered, size)
    acf = np.fft.irfft(spectrum * np.conj(spectrum), size)[: max_period + 1]
    acf = acf / variance

    # The ACF is maximal at lag 0 and decays smoothly, so the raw argmax
    # lands right next to 0.  The period is the first *peak after the
    # first zero crossing* (the classic pitch-detection rule).
    negatives = np.nonzero(acf[min_period:] < 0.0)[0]
    search_from = min_period + int(negatives[0]) if negatives.size else min_period
    if search_from > max_period:
        return None
    window = acf[search_from : max_period + 1]
    best_lag = int(np.argmax(window)) + search_from
    if acf[best_lag] < 0.1:
        return None
    return best_lag


@dataclass(frozen=True)
class ParameterSuggestion:
    """One scored (window, paa_size, alphabet_size) combination."""

    window: int
    paa_size: int
    alphabet_size: int
    score: float
    reduction_ratio: float
    compression_ratio: float
    coverage: float

    def as_tuple(self) -> tuple[int, int, int]:
        return self.window, self.paa_size, self.alphabet_size


def grammar_health(
    series: np.ndarray, window: int, paa_size: int, alphabet_size: int
) -> Optional[ParameterSuggestion]:
    """Score one parameter combination from grammar properties alone.

    The score combines three ground-truth-free signals, each mapped to
    [0, 1] with a plateau in its healthy band:

    * **reduction ratio** — numerosity reduction should remove a solid
      majority of raw words (healthy ~0.6–0.97): too little means the
      words flicker with noise, too much means the representation is
      degenerate (everything looks alike);
    * **compression ratio** — tokens / grammar size, capped at 4; the
      grammar must actually compress (>1) for "incompressible"
      subsequences to be meaningful;
    * **coverage** — fraction of points covered by at least one rule;
      regular data under good parameters is almost fully covered.

    Returns None when the combination is invalid for the series.
    """
    series = np.asarray(series, dtype=float)
    if paa_size > window or window >= series.size or window < 2:
        return None
    try:
        disc = discretize(series, window, paa_size, alphabet_size)
    except Exception:
        return None
    if len(disc) < 4:
        return None
    grammar = induce_grammar_interned(
        disc.token_ids, disc.vocabulary, tokens=disc.tokens()
    )
    intervals = rule_intervals(grammar, disc)
    curve = rule_density_curve(intervals, series.size)

    reduction = disc.reduction_ratio()
    compression = grammar.compression_ratio()
    coverage = float((curve > 0).mean())

    score = (
        _band(reduction, 0.60, 0.97)
        * _band(min(compression, 4.0) / 4.0, 0.30, 1.00)
        * _band(coverage, 0.85, 1.00)
    )
    return ParameterSuggestion(
        window=window,
        paa_size=paa_size,
        alphabet_size=alphabet_size,
        score=score,
        reduction_ratio=reduction,
        compression_ratio=compression,
        coverage=coverage,
    )


def _band(value: float, lo: float, hi: float) -> float:
    """1.0 inside [lo, hi], falling linearly to 0 outside."""
    if lo <= value <= hi:
        return 1.0
    if value < lo:
        return max(0.0, value / lo)
    return max(0.0, 1.0 - (value - hi) / max(1e-9, 1.0 - hi))


def suggest_parameters(
    series: np.ndarray,
    *,
    windows: Optional[Sequence[int]] = None,
    paa_sizes: Sequence[int] = (3, 4, 5, 6, 8),
    alphabet_sizes: Sequence[int] = (3, 4, 5, 6),
    top_k: int = 5,
) -> list[ParameterSuggestion]:
    """Rank (W, P, A) combinations for *series* by grammar health.

    When *windows* is not given, candidates are derived from the
    dominant autocorrelation period (the paper's "context" rule:
    window ≈ one phenomenon cycle), with fallbacks around n/20 when the
    series is aperiodic.
    """
    series = np.asarray(series, dtype=float)
    if top_k < 1:
        raise ParameterError(f"top_k must be >= 1, got {top_k}")
    if windows is None:
        period = dominant_period(series)
        if period is not None:
            windows = sorted(
                {
                    max(4, period // 2),
                    max(4, int(period * 0.8)),
                    period,
                    int(period * 1.25),
                }
            )
        else:
            base = max(8, series.size // 20)
            windows = sorted({base // 2, base, base * 2})

    suggestions = []
    for window in windows:
        for paa_size in paa_sizes:
            for alphabet_size in alphabet_sizes:
                suggestion = grammar_health(series, window, paa_size, alphabet_size)
                if suggestion is not None:
                    suggestions.append(suggestion)
    suggestions.sort(
        key=lambda s: (-s.score, -s.compression_ratio, s.window, s.paa_size)
    )
    return suggestions[:top_k]

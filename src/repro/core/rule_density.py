"""The rule density curve (paper Section 4.1).

For each point of the input series, count how many grammar-rule intervals
cover it.  Points at (or near) the curve's global minimum belong to
subsequences the grammar could not compress — algorithmically anomalous
by the paper's definition — and are reported as anomalies.

Everything here is linear in the series length plus the number of rule
intervals.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.anomaly import Anomaly
from repro.exceptions import ParameterError
from repro.grammar.intervals import RuleInterval, interval_endpoints
from repro.observability.metrics import ensure_metrics


def rule_density_curve(
    intervals: Sequence[RuleInterval],
    series_length: int,
    *,
    metrics=None,
) -> np.ndarray:
    """Compute the rule density curve.

    Parameters
    ----------
    intervals:
        Rule intervals (R0 excluded), e.g. from
        :func:`repro.grammar.intervals.rule_intervals`.
    series_length:
        Length of the raw series; the output has this length.

    Returns
    -------
    numpy.ndarray
        Integer array where element *i* is the number of rule intervals
        covering point *i*.

    Notes
    -----
    Implemented with a difference array + cumulative sum, so the cost is
    O(len(intervals) + series_length) regardless of interval lengths.
    The endpoint accumulation is a pair of :func:`numpy.bincount` calls
    over the interval endpoints — no per-interval Python iteration.
    Intervals starting at or past ``series_length`` contribute nothing
    (an empty interval list yields the all-zeros curve).
    """
    if series_length < 0:
        raise ParameterError(f"series_length must be >= 0, got {series_length}")
    n = len(intervals)
    if n == 0:
        curve = np.zeros(series_length, dtype=np.int64)
        covering = 0
    else:
        starts, ends = interval_endpoints(intervals)
        valid = starts < series_length
        if not valid.all():
            starts = starts[valid]
            ends = ends[valid]
        covering = int(starts.size)
        diff = np.bincount(starts, minlength=series_length + 1)
        diff -= np.bincount(
            np.minimum(ends, series_length), minlength=series_length + 1
        )
        curve = np.cumsum(diff[:series_length])
    metrics = ensure_metrics(metrics)
    if metrics.enabled:
        metrics.gauge("density.interval_count").set(covering)
        if curve.size:
            metrics.gauge("density.curve_min").set(float(curve.min()))
            metrics.gauge("density.curve_max").set(float(curve.max()))
    return curve


def density_minima_intervals(
    curve: np.ndarray,
    *,
    threshold: Optional[float] = None,
    min_length: int = 1,
) -> list[tuple[int, int]]:
    """Contiguous intervals where the density is at or below a threshold.

    Parameters
    ----------
    curve:
        A rule density curve.
    threshold:
        Density cutoff; defaults to the curve's global minimum (the
        paper's "global minima" intervals).  With a user threshold the
        detector reports every stretch at or below it (paper: "when
        given a fixed threshold, it simply reports contiguous points ...
        whose density is less than the threshold value").
    min_length:
        Discard intervals shorter than this many points.

    Returns
    -------
    list of (start, end) half-open intervals, in series order.

    Notes
    -----
    Runs of below-threshold points are extracted by diffing the padded
    boolean mask — a rising edge opens an interval, a falling edge
    closes it — so the scan is O(len(curve)) in vectorized numpy rather
    than a per-point Python loop.
    """
    curve = np.asarray(curve)
    if curve.size == 0:
        return []
    if threshold is None:
        threshold = float(curve.min())
    padded = np.zeros(curve.size + 2, dtype=np.int8)
    padded[1:-1] = curve <= threshold
    edges = np.diff(padded)
    starts = np.flatnonzero(edges == 1)
    ends = np.flatnonzero(edges == -1)
    return [
        (int(s), int(e))
        for s, e in zip(starts.tolist(), ends.tolist())
        if e - s >= min_length
    ]


def find_density_anomalies(
    curve: np.ndarray,
    *,
    threshold: Optional[float] = None,
    min_length: int = 1,
    max_anomalies: Optional[int] = None,
    edge_exclusion: int = 0,
    metrics=None,
) -> list[Anomaly]:
    """Rank density-minima intervals into :class:`Anomaly` objects.

    Intervals are ranked by ascending mean density (emptier = more
    anomalous), ties broken by longer first, then by position.  The
    anomaly score is the negated mean density so that a higher score
    is always more anomalous.

    Parameters
    ----------
    edge_exclusion:
        Ignore the first and last this-many points of the curve when
        searching for minima.  Rule coverage always tapers off at the
        series boundaries (few rules span them), which would otherwise
        produce spurious edge minima; one window length is a good value.
    """
    full_curve = np.asarray(curve, dtype=float)
    if edge_exclusion < 0:
        raise ParameterError(f"edge_exclusion must be >= 0, got {edge_exclusion}")
    offset = 0
    search_curve = full_curve
    if edge_exclusion and full_curve.size > 2 * edge_exclusion:
        offset = edge_exclusion
        search_curve = full_curve[edge_exclusion:-edge_exclusion]
    intervals = density_minima_intervals(
        search_curve, threshold=threshold, min_length=min_length
    )
    intervals = [(start + offset, end + offset) for start, end in intervals]
    scored = []
    for start, end in intervals:
        mean_density = float(full_curve[start:end].mean())
        scored.append((mean_density, -(end - start), start, end))
    scored.sort()
    anomalies = [
        Anomaly(
            start=start,
            end=end,
            score=-mean_density,
            rank=rank,
            source="density",
        )
        for rank, (mean_density, _neg_len, start, end) in enumerate(scored)
    ]
    if max_anomalies is not None:
        anomalies = anomalies[:max_anomalies]
    metrics = ensure_metrics(metrics)
    if metrics.enabled:
        metrics.counter("density.anomalies").inc(len(anomalies))
        metrics.event(
            "density.anomalies_found",
            count=len(anomalies),
            candidate_intervals=len(intervals),
        )
    return anomalies


def density_statistics(curve: np.ndarray) -> dict[str, float]:
    """Summary statistics of a density curve (used by reports/benches)."""
    curve = np.asarray(curve, dtype=float)
    if curve.size == 0:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "std": 0.0}
    return {
        "min": float(curve.min()),
        "max": float(curve.max()),
        "mean": float(curve.mean()),
        "std": float(curve.std()),
    }

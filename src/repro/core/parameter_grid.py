"""Discretization-parameter selection study (paper Section 5.2, Figure 10).

The paper samples the (window, PAA, alphabet) space on a dataset with a
single known true anomaly and records, for each parameter combination,
whether each algorithm recovered it.  Figure 10 plots the success region
in (approximation distance, grammar size) coordinates; the headline
number is that RRA's success region is roughly twice the density
detector's (7100 vs 1460 successful combinations in the paper's sweep).

This module provides the sweep machinery plus the two figure-axis
quantities:

* **approximation distance** — the per-window Euclidean error between
  the z-normalized window and its PAA-reconstructed approximation,
  averaged over the series (the x-axis of Figure 10);
* **grammar size** — total RHS symbol count of the induced grammar
  (the y-axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.cache import ResultCache, SearchContext, grid_cell_key
from repro.core.pipeline import GrammarAnomalyDetector
from repro.exceptions import GridCellError, ParameterError
from repro.parallel.pool import effective_workers
from repro.sax.discretize import Discretization, windowed_paa
from repro.timeseries.paa import paa
from repro.timeseries.windows import sliding_windows
from repro.timeseries.znorm import znorm


@dataclass(frozen=True)
class GridPoint:
    """One parameter combination and its outcomes.

    ``density_hit`` uses the paper-faithful density detector (plain
    global minimum, no edge handling) — the algorithm Figure 10
    measures.  ``density_hit_enhanced`` additionally applies this
    library's edge-exclusion improvement (see
    :func:`repro.core.rule_density.find_density_anomalies`), which makes
    the density detector substantially more parameter-robust.
    """

    window: int
    paa_size: int
    alphabet_size: int
    approximation_distance: float
    grammar_size: int
    density_hit: bool
    rra_hit: bool
    density_hit_enhanced: bool = False


def _normalized_sample_rows(
    series: np.ndarray, window: int, sample_stride: int
) -> list[np.ndarray]:
    """Z-normalized sampled window rows — the ``paa_size``-independent
    half of :func:`approximation_distance`, shareable across a sweep's
    alphabet and PAA loops for one window."""
    windows = sliding_windows(series, window)[::sample_stride]
    if windows.shape[0] == 0:
        raise ParameterError("series shorter than window")
    return [znorm(row) for row in windows]


def approximation_distance(
    series: np.ndarray,
    window: int,
    paa_size: int,
    *,
    sample_stride: int = 1,
    normalized_rows: Optional[list] = None,
) -> float:
    """Mean Euclidean error of the PAA approximation over all windows.

    Each window is z-normalized, reduced to ``paa_size`` segment means,
    reconstructed by repeating each mean over its segment, and compared
    with the original.  ``sample_stride`` lets large sweeps subsample
    windows; *normalized_rows* accepts the prebuilt
    :func:`_normalized_sample_rows` output (one z-normalization pass
    shared across every ``paa_size`` of the same window).
    """
    if sample_stride < 1:
        raise ParameterError(f"sample_stride must be >= 1, got {sample_stride}")
    if normalized_rows is None:
        normalized_rows = _normalized_sample_rows(series, window, sample_stride)
    total = 0.0
    for normalized in normalized_rows:
        means = paa(normalized, paa_size)
        reconstructed = _paa_reconstruct(means, window)
        total += float(np.sqrt(np.sum((normalized - reconstructed) ** 2)))
    return total / len(normalized_rows)


def _paa_reconstruct(means: np.ndarray, n: int) -> np.ndarray:
    """Stretch PAA means back to length *n* (piecewise-constant)."""
    w = means.size
    idx = np.minimum((np.arange(n) * w) // n, w - 1)
    return means[idx]


def _hit(
    found: Iterable[tuple[int, int]],
    true_start: int,
    true_end: int,
    min_overlap: float,
) -> bool:
    """True when any found interval overlaps the truth by >= min_overlap.

    Overlap is measured relative to the shorter of the two intervals, so
    a short density interval inside a long true anomaly still counts.
    """
    for start, end in found:
        shorter = min(end - start, true_end - true_start)
        if shorter <= 0:
            continue
        shared = max(0, min(end, true_end) - max(start, true_start))
        if shared / shorter >= min_overlap:
            return True
    return False


class ParameterGridStudy:
    """Sweep (window, PAA, alphabet) and measure anomaly-recovery success.

    Parameters
    ----------
    series:
        The series under study.
    true_anomaly:
        Ground truth as a half-open ``(start, end)`` interval.
    min_overlap:
        Fraction of the shorter interval that must be shared for a
        detection to count as a hit (0.5 by default).
    """

    def __init__(
        self,
        series: np.ndarray,
        true_anomaly: tuple[int, int],
        *,
        min_overlap: float = 0.5,
    ) -> None:
        self.series = np.asarray(series, dtype=float)
        if not 0 <= true_anomaly[0] < true_anomaly[1] <= self.series.size:
            raise ParameterError(f"true anomaly {true_anomaly} out of bounds")
        self.true_anomaly = true_anomaly
        self.min_overlap = min_overlap

    def _cell_key(self, window: int, paa_size: int, alphabet_size: int) -> str:
        """Result-cache key of one sweep cell (includes the study setup)."""
        return grid_cell_key(
            self.series,
            window=window,
            paa_size=paa_size,
            alphabet_size=alphabet_size,
            params={
                "true_anomaly": [int(b) for b in self.true_anomaly],
                "min_overlap": float(self.min_overlap),
            },
        )

    @staticmethod
    def _point_payload(point: GridPoint) -> dict:
        return {
            "window": int(point.window),
            "paa_size": int(point.paa_size),
            "alphabet_size": int(point.alphabet_size),
            "approximation_distance": float(point.approximation_distance),
            "grammar_size": int(point.grammar_size),
            "density_hit": bool(point.density_hit),
            "rra_hit": bool(point.rra_hit),
            "density_hit_enhanced": bool(point.density_hit_enhanced),
        }

    @staticmethod
    def _point_from_payload(payload: dict) -> GridPoint:
        return GridPoint(
            window=int(payload["window"]),
            paa_size=int(payload["paa_size"]),
            alphabet_size=int(payload["alphabet_size"]),
            approximation_distance=float(payload["approximation_distance"]),
            grammar_size=int(payload["grammar_size"]),
            density_hit=bool(payload["density_hit"]),
            rra_hit=bool(payload["rra_hit"]),
            density_hit_enhanced=bool(payload["density_hit_enhanced"]),
        )

    def evaluate_point(
        self,
        window: int,
        paa_size: int,
        alphabet_size: int,
        *,
        approx_distance: Optional[float] = None,
        paa_values: Optional[np.ndarray] = None,
        context: Optional[SearchContext] = None,
        cache: Optional[ResultCache] = None,
    ) -> Optional[GridPoint]:
        """Evaluate one parameter combination; None when it is invalid
        (window too long for the series, PAA larger than the window, ...).

        ``approx_distance`` and ``paa_values`` accept the per-
        ``(window, paa_size)`` quantities precomputed by
        :meth:`_evaluate_pair`, which are identical for every alphabet
        size and dominate the per-point cost when recomputed.
        *context* threads a :class:`~repro.cache.SearchContext` through
        the detector so per-series artifacts are shared across cells;
        *cache* short-circuits the whole cell when an identical one was
        completed before (and stores this one on completion).
        """
        if paa_size > window or window >= self.series.size:
            return None
        cell_key = None
        if cache is not None:
            cell_key = self._cell_key(window, paa_size, alphabet_size)
            payload = cache.get(cell_key)
            if payload is not None:
                return self._point_from_payload(payload)
        detector = GrammarAnomalyDetector(
            window, paa_size, alphabet_size, context=context
        )
        try:
            fitted = detector.fit(self.series, paa_values=paa_values)
        except Exception:
            return None

        # A cell whose discretization cannot be fitted is an expected
        # invalid grid point (None, above).  A cell that fits but then
        # blows up in the detectors is a genuine bug: re-raise it with
        # the failing triple attached, so one bad cell in a
        # thousand-cell sweep (possibly deep inside a pool worker) is
        # localizable from the exception message alone.
        try:
            # Symmetric criterion: each algorithm's single top-ranked
            # answer must overlap the truth (the paper counts a
            # combination as successful when the algorithm "discovered
            # the anomaly").
            from repro.core.rule_density import find_density_anomalies

            density_paper = [
                (a.start, a.end)
                for a in find_density_anomalies(
                    fitted.density, max_anomalies=1, edge_exclusion=0
                )
            ]
            density_enhanced = [
                (a.start, a.end)
                for a in detector.density_anomalies(max_anomalies=1)
            ]
            rra = detector.discords(num_discords=1)
            rra_found = [(d.start, d.end) for d in rra.discords]

            true_start, true_end = self.true_anomaly
            if approx_distance is None:
                stride = max(1, window // 4)
                approx_distance = approximation_distance(
                    self.series,
                    window,
                    paa_size,
                    sample_stride=stride,
                    normalized_rows=(
                        context.approx_normalized_rows(
                            self.series, window, stride
                        )
                        if context is not None
                        else None
                    ),
                )
        except GridCellError:
            raise
        except Exception as exc:
            cell = (int(window), int(paa_size), int(alphabet_size))
            raise GridCellError(
                f"grid cell (window={cell[0]}, paa_size={cell[1]}, "
                f"alphabet_size={cell[2]}) failed: "
                f"{type(exc).__name__}: {exc}",
                cell,
            ) from exc
        point = GridPoint(
            window=window,
            paa_size=paa_size,
            alphabet_size=alphabet_size,
            approximation_distance=approx_distance,
            grammar_size=fitted.grammar.grammar_size(),
            density_hit=_hit(density_paper, true_start, true_end, self.min_overlap),
            rra_hit=_hit(rra_found, true_start, true_end, self.min_overlap),
            density_hit_enhanced=_hit(
                density_enhanced, true_start, true_end, self.min_overlap
            ),
        )
        if cell_key is not None:
            cache.put(cell_key, self._point_payload(point))
        return point

    def _evaluate_pair(
        self,
        window: int,
        paa_size: int,
        alphabet_sizes: Sequence[int],
        *,
        context: Optional[SearchContext] = None,
        cache: Optional[ResultCache] = None,
    ) -> list[GridPoint]:
        """Evaluate every alphabet size of one ``(window, paa_size)`` pair.

        The approximation distance and the per-window PAA coefficients
        depend only on the pair, so they are computed once here — never
        once per alphabet — and shared across the alphabet loop, both
        serially and as the unit of work one parallel sweep task
        executes.  They are also computed *lazily*: a pair whose cells
        all hit the result cache never discretizes at all.  With a
        *context*, the z-normalization front half is additionally
        shared across every ``paa_size`` of the same window.
        """
        if paa_size > window or window >= self.series.size:
            return []
        approx: Optional[float] = None
        paa_values: Optional[np.ndarray] = None
        points: list[GridPoint] = []
        for alphabet_size in alphabet_sizes:
            cell_key = None
            if cache is not None:
                cell_key = self._cell_key(window, paa_size, alphabet_size)
                payload = cache.get(cell_key)
                if payload is not None:
                    points.append(self._point_from_payload(payload))
                    continue
            if paa_values is None:
                stride = max(1, window // 4)
                approx = approximation_distance(
                    self.series,
                    window,
                    paa_size,
                    sample_stride=stride,
                    normalized_rows=(
                        context.approx_normalized_rows(
                            self.series, window, stride
                        )
                        if context is not None
                        else None
                    ),
                )
                if context is not None:
                    paa_values = context.windowed_paa(
                        self.series, window, paa_size
                    )
                else:
                    paa_values = windowed_paa(self.series, window, paa_size)
            point = self.evaluate_point(
                window,
                paa_size,
                alphabet_size,
                approx_distance=approx,
                paa_values=paa_values,
                context=context,
            )
            if point is not None:
                points.append(point)
                if cell_key is not None:
                    cache.put(cell_key, self._point_payload(point))
        return points

    def sweep(
        self,
        windows: Sequence[int],
        paa_sizes: Sequence[int],
        alphabet_sizes: Sequence[int],
        *,
        n_workers: Optional[int] = 1,
        cache=None,
        context: Optional[SearchContext] = None,
    ) -> list[GridPoint]:
        """Evaluate the full cartesian grid (invalid points skipped).

        ``n_workers > 1`` evaluates one ``(window, paa_size)`` pair per
        pool task (see :mod:`repro.parallel`); the returned points are in
        the same order as the serial sweep.

        *cache* (a :class:`~repro.cache.ResultCache` or a directory
        path) persists each completed cell keyed by series content and
        cell parameters; a repeated sweep — or any sweep whose grid
        overlaps an earlier one over the same series — returns the
        stored :class:`GridPoint` for every hit.  In a parallel sweep
        the hits are resolved in the parent *before* sharding, so fully
        cached pairs never reach the pool.  *context* memoizes
        per-series artifacts across cells (serial sweeps only; pool
        workers build their own per-process context).  Both options are
        purely accelerative: the returned points are identical with or
        without them.
        """
        workers = effective_workers(n_workers)
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        if workers > 1:
            from repro.parallel.engine import (
                parallel_grid_pairs,
                parallel_grid_sweep,
            )

            if cache is None:
                return parallel_grid_sweep(
                    self, windows, paa_sizes, alphabet_sizes, n_workers=workers
                )
            # Resolve cache hits up front; only the missing cells shard.
            cells: dict[tuple, GridPoint] = {}
            keys: dict[tuple, str] = {}
            pending: list[tuple] = []
            for window in windows:
                for paa_size in paa_sizes:
                    if paa_size > window or window >= self.series.size:
                        continue
                    missing: list[int] = []
                    for alphabet_size in alphabet_sizes:
                        cell = (int(window), int(paa_size), int(alphabet_size))
                        key = self._cell_key(*cell)
                        keys[cell] = key
                        payload = cache.get(key)
                        if payload is not None:
                            cells[cell] = self._point_from_payload(payload)
                        else:
                            missing.append(int(alphabet_size))
                    if missing:
                        pending.append((int(window), int(paa_size), missing))
            if pending:
                for point in parallel_grid_pairs(
                    self, pending, n_workers=workers
                ):
                    cell = (
                        int(point.window),
                        int(point.paa_size),
                        int(point.alphabet_size),
                    )
                    cells[cell] = point
                    cache.put(keys[cell], self._point_payload(point))
            return [
                cells[cell]
                for window in windows
                for paa_size in paa_sizes
                for alphabet_size in alphabet_sizes
                if (
                    cell := (int(window), int(paa_size), int(alphabet_size))
                )
                in cells
            ]
        points: list[GridPoint] = []
        for window in windows:
            for paa_size in paa_sizes:
                points.extend(
                    self._evaluate_pair(
                        window,
                        paa_size,
                        alphabet_sizes,
                        context=context,
                        cache=cache,
                    )
                )
        return points

    @staticmethod
    def success_counts(points: Sequence[GridPoint]) -> dict[str, int]:
        """The Figure 10 headline numbers: hits per algorithm."""
        return {
            "total": len(points),
            "density_hits": sum(1 for p in points if p.density_hit),
            "rra_hits": sum(1 for p in points if p.rra_hit),
            "density_hits_enhanced": sum(
                1 for p in points if p.density_hit_enhanced
            ),
        }

"""RRA — Rare Rule Anomaly discord discovery (paper Section 4.2, Algorithm 1).

RRA is a HOTSAX-style exact discord search whose candidate set is not the
set of all fixed-length sliding windows but the *variable-length*
subsequences corresponding to grammar rules (plus the zero-coverage gaps
that never made it into any rule):

* **Outer loop** — candidates in ascending order of their rule's usage
  frequency (gaps have frequency 0 and come first): the rarer the rule,
  the more likely its subsequence is the discord, and an early good
  ``best_so_far`` maximizes later pruning.
* **Inner loop** — for a candidate from rule R, other subsequences of the
  same rule R are visited first (they are near-identical, so a small
  distance is found quickly and the candidate is abandoned early); the
  remaining candidates follow in random order.
* **Distance** — Euclidean normalized by subsequence length (paper
  Eq. 1), computed between z-normalized subsequences; unequal lengths are
  aligned by sliding the shorter inside the longer (see DESIGN.md §5).
* **Early abandoning** — the inner loop breaks as soon as a distance
  below ``best_so_far`` is seen; the candidate cannot be the discord.

Every distance is drawn through a
:class:`~repro.timeseries.distance.DistanceCounter`, so call counts are
comparable with HOTSAX and brute force (Table 1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.anomaly import Anomaly, Discord
from repro.discord.search import emit_rank_event
from repro.exceptions import CheckpointError, DiscordSearchError
from repro.grammar.intervals import RuleInterval
from repro.observability.metrics import ensure_metrics
from repro.resilience.budget import SearchBudget, SearchStatus
from repro.resilience.checkpoint import (
    load_checkpoint,
    restore_rng,
    rng_state_to_json,
    save_checkpoint,
    search_fingerprint,
)
from repro.parallel.pool import MIN_PARALLEL_CANDIDATES, effective_workers
from repro.timeseries import kernels
from repro.timeseries.distance import DistanceCounter
from repro.timeseries.kernels import validate_backend
from repro.timeseries.lowerbound import IntervalLowerBound


@dataclass
class RRAResult:
    """Outcome of an RRA search.

    Attributes
    ----------
    discords:
        Ranked discords (strongest first).
    distance_calls:
        Total distance-function invocations (Table 1 metric).
    candidate_count:
        Number of candidate intervals considered.
    status:
        How the search ended — ``COMPLETE`` (exact), or
        ``BUDGET_EXHAUSTED`` / ``CANCELLED`` with best-so-far contents.
    rank_complete:
        One flag per returned discord: True when that rank's scan
        visited every candidate (the discord is exact), False when the
        rank was truncated and its discord is only the best seen so far.
    degraded:
        True when the pipeline substituted rule-density intervals for
        missing discord ranks (see
        :meth:`repro.core.pipeline.GrammarAnomalyDetector.discords`).
    fallback:
        Ranked rule-density anomalies supplied as a degraded substitute
        for the ranks the budget did not allow RRA to compute.
    """

    discords: list[Discord] = field(default_factory=list)
    distance_calls: int = 0
    candidate_count: int = 0
    status: SearchStatus = SearchStatus.COMPLETE
    rank_complete: list[bool] = field(default_factory=list)
    degraded: bool = False
    fallback: list[Anomaly] = field(default_factory=list)
    from_cache: bool = False

    @property
    def best(self) -> Optional[Discord]:
        return self.discords[0] if self.discords else None

    @property
    def complete(self) -> bool:
        """True when the search ran to exact completion."""
        return self.status is SearchStatus.COMPLETE


@dataclass
class _RankState:
    """Mutable per-rank search state at an outer-loop boundary.

    The boundary before outer candidate *outer_index* is a deterministic
    point of the search: candidates ``outer[:outer_index]`` are fully
    processed, the counter reads *calls*, and the RNG (captured *before*
    the candidate's inner-loop shuffle) is in *rng_state*.  Restoring
    these four values and re-entering the loop reproduces the
    uninterrupted run bit-for-bit.
    """

    outer_index: int = 0
    best_dist: float = 0.0
    best_key: Optional[tuple[int, int, int]] = None
    calls: int = 0
    rng_state: Optional[dict] = None
    complete: bool = False
    #: Snapshot of the counter's split ledger at this boundary (pruned
    #: runs); checkpoints persist it so a resumed run's pruning stats
    #: carry on from where the interrupted run stopped.
    ledger: Optional[dict] = None


class _CandidateSet:
    """Candidate intervals with cached kernel statistics.

    Z-normalization of every interval comes from one O(m) pass of
    cumulative sums over the series (:class:`~repro.timeseries.kernels.
    SeriesStats`) instead of a per-window ``znorm`` call, and the
    quantities the batch distance kernels need — squared norms and
    squared cumulative sums of the normalized values — are cached per
    distinct interval.  One instance is shared across the ranks of an
    iterative :func:`find_discords` extraction.
    """

    def __init__(
        self,
        series: np.ndarray,
        intervals: Sequence[RuleInterval],
        *,
        stats: Optional[kernels.SeriesStats] = None,
    ):
        self.series = np.ascontiguousarray(series, dtype=float)
        self.intervals = list(intervals)
        # A prebuilt SeriesStats lets pool workers rebuild the cache from
        # shared-memory cumulative sums instead of re-deriving them.
        self._stats = stats if stats is not None else kernels.SeriesStats(self.series)
        self._values: dict[tuple[int, int], np.ndarray] = {}
        self._sqnorms: dict[tuple[int, int], float] = {}
        self._sq_cumsums: dict[tuple[int, int], np.ndarray] = {}
        # Pair distances are symmetric and depend only on the interval
        # positions, so each distinct unordered pair is computed once —
        # within a search and, when a SearchContext keeps this set
        # alive, across repeated searches over the same candidates.
        self._pair_distances: dict[tuple[int, int, int, int], float] = {}
        # Batch-backend structures, built lazily on first use: per-length
        # stacked matrices of every distinct same-length subsequence, and
        # per-candidate one-vs-group squared-distance rows.
        self._length_groups: dict[
            int, tuple[np.ndarray, np.ndarray, dict[tuple[int, int], int]]
        ] = {}
        self._batch_rows: dict[tuple[int, int], np.ndarray] = {}

    @property
    def stats(self) -> kernels.SeriesStats:
        """The cumulative-sum window statistics behind this cache."""
        return self._stats

    def values(self, interval: RuleInterval) -> np.ndarray:
        """Z-normalized subsequence of *interval* (cached)."""
        key = (interval.start, interval.end)
        cached = self._values.get(key)
        if cached is None:
            cached = self._stats.znorm(interval.start, interval.end)
            self._values[key] = cached
        return cached

    def sqnorm(self, interval: RuleInterval) -> float:
        """Squared L2 norm of the normalized subsequence (cached)."""
        key = (interval.start, interval.end)
        cached = self._sqnorms.get(key)
        if cached is None:
            values = self.values(interval)
            cached = float(np.dot(values, values))
            self._sqnorms[key] = cached
        return cached

    def sq_cumsum(self, interval: RuleInterval) -> np.ndarray:
        """Squared cumulative sum of the normalized subsequence (cached).

        Feeds the sliding-alignment kernel when this interval plays the
        "long" role of an unequal-length comparison.
        """
        key = (interval.start, interval.end)
        cached = self._sq_cumsums.get(key)
        if cached is None:
            cached = kernels.sq_cumsum(self.values(interval))
            self._sq_cumsums[key] = cached
        return cached

    def _length_group(
        self, length: int
    ) -> tuple[np.ndarray, np.ndarray, dict[tuple[int, int], int]]:
        """Stacked matrix of every distinct subsequence of *length*.

        Returns ``(rows, sqnorms, pos)`` where ``pos`` maps a
        ``(start, end)`` key to its row index.  Built once per length on
        first batch-backend use.
        """
        group = self._length_groups.get(length)
        if group is None:
            keys: list[tuple[int, int]] = []
            seen: set[tuple[int, int]] = set()
            for iv in self.intervals:
                key = (iv.start, iv.end)
                if iv.length != length or key in seen:
                    continue
                seen.add(key)
                keys.append(key)
            stacked = []
            for key in keys:
                values = self._values.get(key)
                if values is None:
                    values = self._stats.znorm(*key)
                    self._values[key] = values
                stacked.append(values)
            rows = np.stack(stacked)
            pos = {key: j for j, key in enumerate(keys)}
            group = (rows, kernels.row_sqnorms(rows), pos)
            self._length_groups[length] = group
        return group

    def pair_distance_batch(self, p: RuleInterval, q: RuleInterval) -> float:
        """Eq. 1 distance via cached one-vs-group rows (batch backend).

        Equal-length pairs read one entry of a per-candidate squared
        distance row computed in a single matrix-vector product against
        the candidate's whole length group — amortizing the kernel over
        every same-length comparison the search will make.  Unequal
        lengths fall back to the sliding-alignment kernel pair path.
        """
        if p.length != q.length:
            return _kernel_pair_distance(self, p, q)
        key = (p.start, p.end)
        row = self._batch_rows.get(key)
        if row is None:
            rows, sqnorms, _ = self._length_group(p.length)
            row = kernels.one_vs_all_sq_euclidean(
                self.values(p), rows, query_sqnorm=self.sqnorm(p), sqnorms=sqnorms
            )
            self._batch_rows[key] = row
        pos = self._length_groups[p.length][2]
        return float(np.sqrt(row[pos[(q.start, q.end)]] / p.length))


def _kernel_pair_distance(
    cache: _CandidateSet, p: RuleInterval, q: RuleInterval
) -> float:
    """Vectorized Eq. 1 distance between two cached candidates.

    Equal lengths use the dot-product identity with the cached squared
    norms; unequal lengths evaluate the full sliding-alignment profile
    in one shot instead of the scalar per-offset loop.  The result is
    memoized per unordered pair (the distance is symmetric by
    construction: the shorter interval always plays the query role).
    """
    pk, qk = (p.start, p.end), (q.start, q.end)
    key = pk + qk if pk <= qk else qk + pk
    memoized = cache._pair_distances.get(key)
    if memoized is not None:
        return memoized
    a = cache.values(p)
    b = cache.values(q)
    if a.size == b.size:
        sq = cache.sqnorm(p) + cache.sqnorm(q) - 2.0 * float(np.dot(a, b))
        distance = float(np.sqrt(max(sq, 0.0) / a.size))
    else:
        if a.size < b.size:
            short_iv, long_iv, short, long_ = p, q, a, b
        else:
            short_iv, long_iv, short, long_ = q, p, b, a
        distance = kernels.sliding_min_normalized_distance(
            short,
            long_,
            short_sqnorm=cache.sqnorm(short_iv),
            long_sq_cumsum=cache.sq_cumsum(long_iv),
        )
    cache._pair_distances[key] = distance
    return distance


def _is_non_self_match(p: RuleInterval, q: RuleInterval) -> bool:
    """Paper line 7: |p0 - q0| > Length(p), i.e. no trivial self match."""
    return abs(p.start - q.start) > p.length


class _InnerOrdering:
    """Precomputed same-rule buckets for the RRA inner-loop ordering.

    Built once per :func:`find_discord` invocation over the (exclusion-
    filtered) candidate list, so ordering a candidate's inner loop no
    longer rescans all candidates with a Python predicate per outer
    iteration — it concatenates a cached bucket with a cached
    complement.
    """

    #: Bucket key for gap candidates (any negative rule id).
    _GAP = -1

    def __init__(self, candidates: list[RuleInterval]):
        self._candidates = candidates
        self._same_rule: dict[int, list[RuleInterval]] = defaultdict(list)
        for iv in candidates:
            if iv.rule_id >= 0:
                self._same_rule[iv.rule_id].append(iv)
        self._rest: dict[int, list[RuleInterval]] = {}

    def _rest_for(self, candidate: RuleInterval) -> list[RuleInterval]:
        key = candidate.rule_id if candidate.rule_id >= 0 else self._GAP
        rest = self._rest.get(key)
        if rest is None:
            if key == self._GAP:
                rest = self._candidates
            else:
                rest = [iv for iv in self._candidates if iv.rule_id != key]
            self._rest[key] = rest
        return rest

    def rest_size(self, candidate: RuleInterval) -> int:
        """Length of the shuffled tail — the size of the one permutation
        ``order`` draws, which is all a parallel parent needs to advance
        its generator past a candidate without ordering it."""
        return len(self._rest_for(candidate))

    def order(
        self, candidate: RuleInterval, rng: np.random.Generator
    ) -> list[RuleInterval]:
        """Same-rule intervals first, then the rest shuffled.

        The shuffle is one ``Generator.permutation(len(rest))`` draw
        (vectorized index permutation rather than an in-place Python-list
        Fisher–Yates): faster, and its RNG consumption depends only on
        the tail *length*, so the parallel layer can replay generator
        states to any outer boundary without touching the intervals.
        """
        key = candidate.rule_id if candidate.rule_id >= 0 else self._GAP
        rest = self._rest_for(candidate)
        same_rule = self._same_rule[key] if key != self._GAP else []
        perm = rng.permutation(len(rest))
        return same_rule + [rest[j] for j in perm]


def find_discord(
    series: np.ndarray,
    intervals: Sequence[RuleInterval],
    *,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
    exclude: Sequence[tuple[int, int]] = (),
    backend: str = "kernel",
    cache: Optional[_CandidateSet] = None,
    budget: Optional[SearchBudget] = None,
    n_workers: int = 1,
    prune: bool = False,
    metrics=None,
    _state: Optional[_RankState] = None,
    _on_boundary: Optional[Callable[[_RankState, list[RuleInterval]], None]] = None,
    _lower_bound: Optional[IntervalLowerBound] = None,
) -> tuple[Optional[Discord], DistanceCounter]:
    """Find the single best variable-length discord (paper Algorithm 1).

    Parameters
    ----------
    series:
        The raw time series.
    intervals:
        Candidate intervals: rule intervals plus zero-coverage gaps.
    counter:
        Distance counter to accumulate into; a fresh one by default.
    rng:
        Source of randomness for the inner-loop ordering.
    exclude:
        Half-open ``(start, end)`` ranges; candidates overlapping any of
        them are skipped (used for iterative multi-discord extraction).
    backend:
        ``"kernel"`` (default) draws every pair distance from the
        vectorized kernels in :mod:`repro.timeseries.kernels`;
        ``"batch"`` amortizes equal-length comparisons into cached
        one-vs-group matrix products; ``"scalar"`` keeps the per-pair
        reference path.  All visit the same pairs in the same order, so
        call counts are identical.
    cache:
        Prebuilt :class:`_CandidateSet` over *series* and *intervals*,
        reused across the ranks of an iterative extraction so the znorm
        and kernel-statistic caches are computed once.
    budget:
        Optional :class:`~repro.resilience.budget.SearchBudget` checked
        once per outer candidate.  When it trips (deadline, call
        ceiling, cancellation, or a ``KeyboardInterrupt`` during the
        scan) the function returns its best-so-far discord instead of
        raising; read the outcome from ``budget.status``.  Without a
        budget the search behaves exactly as before (and a
        ``KeyboardInterrupt`` propagates, since there would be no way to
        report the truncation).
    n_workers:
        Shard the outer loop across this many worker processes (see
        :mod:`repro.parallel`).  Results — discord, rank, distance-call
        count, checkpoint contents — are bit-identical to the serial
        run for any value; 1 (the default) keeps everything in-process.
    prune:
        Opt into the admissible lower-bound cascade
        (:class:`~repro.timeseries.lowerbound.IntervalLowerBound`,
        honouring the paper's Eq. 1 length normalization): candidate
        pairs whose bound certifies ``dist >= nearest`` skip the true
        distance kernel.  Discords, distances, ranks, and the logical
        ``counter.calls`` are bit-identical; the counter's split ledger
        reports how many kernels were avoided.
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`.
        When enabled, the search counts candidates visited / abandoned /
        survived, histograms early-abandon depths, and routes budget
        trips into the trace-event stream.  The default (disabled) sink
        adds no work to the hot loop: results and logical call counts
        are byte-identical with or without it.

    Returns
    -------
    (discord or None, counter)
        None when no candidate has a non-self match (degenerate input).
    """
    validate_backend(backend)
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise DiscordSearchError(f"series must be 1-d, got shape {series.shape}")
    if counter is None:
        counter = DistanceCounter()
    if rng is None:
        rng = np.random.default_rng(0)
    # A budget or an externally owned state object gives the caller a
    # channel to observe truncation; only then may interrupts be
    # swallowed into a best-so-far return.
    has_channel = budget is not None or _state is not None
    if budget is None:
        budget = SearchBudget.unlimited()
    metrics = ensure_metrics(metrics)
    budget.bind_metrics(metrics)
    state = _state if _state is not None else _RankState()
    capture_rng = _on_boundary is not None

    candidates = [
        iv
        for iv in intervals
        if iv.end <= series.size
        and iv.length >= 2
        and not any(iv.start < ex_end and ex_start < iv.end for ex_start, ex_end in exclude)
    ]
    if not candidates:
        state.complete = True
        return None, counter

    if cache is None:
        cache = _CandidateSet(series, candidates)
    ordering = _InnerOrdering(candidates)
    use_kernel = backend != "scalar"
    use_batch = backend == "batch"
    lb = _lower_bound if prune else None
    if prune and lb is None:
        lb = IntervalLowerBound(cache)

    # Outer ordering: ascending rule usage (gaps first), deterministic
    # tie-break by position.
    outer = sorted(candidates, key=lambda iv: (iv.usage, iv.start, iv.end))
    by_key = {(iv.start, iv.end, iv.rule_id): iv for iv in candidates}

    best_dist = state.best_dist
    best_candidate: Optional[RuleInterval] = (
        by_key.get(state.best_key) if state.best_key is not None else None
    )

    instrumented = metrics.enabled
    if instrumented:
        metrics.gauge("search.candidate_count").set(len(outer))
        m_visited = metrics.counter("search.candidates_visited")
        m_abandoned = metrics.counter("search.candidates_abandoned")
        m_survived = metrics.counter("search.candidates_survived")
        m_best = metrics.counter("search.best_updates")
        m_depth = metrics.histogram("search.abandon_depth")

    workers = effective_workers(n_workers)
    if (
        workers > 1
        and len(outer) - state.outer_index >= MIN_PARALLEL_CANDIDATES
    ):
        from repro.parallel.engine import parallel_rra_rank

        parallel_rra_rank(
            cache=cache,
            ordering=ordering,
            candidates=candidates,
            outer=outer,
            state=state,
            counter=counter,
            rng=rng,
            budget=budget,
            backend=backend,
            n_workers=workers,
            has_channel=has_channel,
            capture_rng=capture_rng,
            on_boundary=_on_boundary,
            lb_config=(
                {"segments": lb.segments, "alphabet_size": lb.alphabet_size}
                if lb is not None
                else None
            ),
            metrics=metrics,
        )
        best_dist = state.best_dist
        best_candidate = (
            by_key.get(state.best_key) if state.best_key is not None else None
        )
        if best_candidate is None:
            return None, counter
        return (
            Discord(
                start=best_candidate.start,
                end=best_candidate.end,
                score=best_dist,
                rank=0,
                nn_distance=best_dist,
                rule_id=best_candidate.rule_id,
                source="rra",
            ),
            counter,
        )

    try:
        for i in range(state.outer_index, len(outer)):
            # Record the boundary *before* consuming any randomness or
            # distance calls for candidate i: this is the deterministic
            # point a checkpoint resumes from.
            state.outer_index = i
            state.calls = counter.calls
            state.ledger = counter.ledger()
            if capture_rng:
                state.rng_state = rng_state_to_json(rng)
            if budget.interrupted(counter.calls) is not None:
                break
            if _on_boundary is not None:
                _on_boundary(state, outer)
            p = outer[i]
            p_values = cache.values(p)
            nearest = float("inf")
            pruned = False
            for q in ordering.order(p, rng):
                if q is p or not _is_non_self_match(p, q):
                    continue
                if lb is not None and np.isfinite(nearest):
                    counter.lb_batch(1)
                    if lb.pair_exceeds(p, q, nearest):
                        # dist >= LB >= nearest >= best_dist: the pair
                        # can neither break nor lower nearest; skip the
                        # kernel, keep the logical call.
                        counter.pruned_batch(1)
                        continue
                if use_kernel:
                    counter.batch(1)
                    dist = (
                        cache.pair_distance_batch(p, q)
                        if use_batch
                        else _kernel_pair_distance(cache, p, q)
                    )
                else:
                    dist = counter.variable_length(
                        p_values, cache.values(q), normalize_inputs=False
                    )
                if dist < best_dist:
                    pruned = True  # p cannot beat the current best discord
                    break
                if dist < nearest:
                    nearest = dist
            if instrumented:
                m_visited.inc()
                if pruned:
                    m_abandoned.inc()
                    # state.calls still holds the boundary value, so the
                    # delta is this candidate's inner-loop cost.
                    m_depth.observe(counter.calls - state.calls)
                else:
                    m_survived.inc()
            if not pruned and np.isfinite(nearest) and nearest > best_dist:
                best_dist = nearest
                best_candidate = p
                state.best_dist = nearest
                state.best_key = (p.start, p.end, p.rule_id)
                if instrumented:
                    m_best.inc()
        else:
            state.outer_index = len(outer)
            state.calls = counter.calls
            state.ledger = counter.ledger()
            if capture_rng:
                state.rng_state = rng_state_to_json(rng)
            state.complete = True
    except KeyboardInterrupt:
        if not has_channel:
            raise
        # The aborted candidate's partial work is discarded: the state
        # still describes the last completed boundary, so a resumed run
        # replays candidate i in full and stays bit-identical.
        budget.note_cancelled()

    if best_candidate is None:
        return None, counter
    discord = Discord(
        start=best_candidate.start,
        end=best_candidate.end,
        score=best_dist,
        rank=0,
        nn_distance=best_dist,
        rule_id=best_candidate.rule_id,
        source="rra",
    )
    return discord, counter


def _discord_to_json(discord: Discord) -> dict:
    return {
        "start": discord.start,
        "end": discord.end,
        "score": discord.score,
        "rank": discord.rank,
        "nn_distance": discord.nn_distance,
        "rule_id": discord.rule_id,
    }


def _discord_from_json(data: dict) -> Discord:
    return Discord(
        start=int(data["start"]),
        end=int(data["end"]),
        score=float(data["score"]),
        rank=int(data["rank"]),
        nn_distance=float(data["nn_distance"]),
        rule_id=data["rule_id"],
        source="rra",
    )


def find_discords(
    series: np.ndarray,
    intervals: Sequence[RuleInterval],
    *,
    num_discords: int = 1,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
    backend: str = "kernel",
    budget: Optional[SearchBudget] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 32,
    resume_from: Optional[str] = None,
    n_workers: int = 1,
    prune: bool = False,
    metrics=None,
    cache=None,
    context=None,
) -> RRAResult:
    """Iteratively extract up to *num_discords* ranked discords.

    After each discovery the found interval is excluded (paper: "when run
    iteratively, excluding the current best discord from Intervals list,
    RRA outputs a ranked list of multiple co-existing discords of
    variable length").  The candidate cache (z-normalized subsequences
    and kernel statistics) is built once and shared across ranks.

    The search is *anytime*: give it a
    :class:`~repro.resilience.budget.SearchBudget` and it returns its
    best-so-far ranked list with ``status != COMPLETE`` when the budget
    trips (or on ``KeyboardInterrupt``) instead of raising.

    Parameters
    ----------
    budget:
        Wall-clock / distance-call / cancellation budget, checked at
        every outer-loop boundary.
    checkpoint_path:
        When set, the search state is autosaved to this JSON file every
        *checkpoint_every* outer candidates, after every completed rank,
        and on interruption, so a killed run can be resumed.
    checkpoint_every:
        Autosave cadence in outer-loop boundaries.
    resume_from:
        Path of a checkpoint written by a previous (interrupted) run
        over the *same* series, intervals, and parameters.  The run
        continues from the recorded boundary and its final output —
        discords and distance-call count — is bit-identical to an
        uninterrupted run.  Raises
        :class:`~repro.exceptions.CheckpointError` on a fingerprint
        mismatch.
    n_workers:
        Shard every rank's outer loop across this many worker processes
        (see :mod:`repro.parallel`).  Discords, ranks, distance-call
        counts, and checkpoints are bit-identical to the serial run for
        any value; checkpoints written by a serial run can be resumed by
        a parallel one and vice versa.
    prune:
        Opt into the admissible lower-bound cascade for every rank (see
        :func:`find_discord`).  Results and logical call counts are
        bit-identical; the pruning ledger is carried through
        checkpoints, so interrupted pruned runs resume with their stats
        intact.  Pruned and unpruned checkpoints are deliberately not
        interchangeable (the fingerprint covers *prune*).
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`.
        Each rank becomes a ``search.rank`` span closed by a
        ``search.rank_complete`` event carrying the rank's ledger slice;
        checkpoint writes/resumes and budget trips join the event
        stream, and checkpoints persist the registry snapshot so a
        resumed run's report reads as one continuous stream.
    cache:
        Optional :class:`~repro.cache.store.ResultCache`.  An identical
        previous search (same series, candidates, parameters, backend,
        prune flag, and RNG state) is served from disk: same discords,
        same split-ledger increments applied to *counter*, flagged
        ``from_cache=True`` — and the hit short-circuits checkpointing
        entirely.  Only complete, untruncated results are ever stored;
        a resumed search that runs to completion populates the cache
        with the full-run ledger, exactly as an uninterrupted run would
        have.  ``n_workers`` is deliberately not part of the key (the
        result is bit-identical across worker counts).
    context:
        Optional :class:`~repro.cache.context.SearchContext` sharing the
        series' cumulative-sum statistics across searches.
    """
    validate_backend(backend)
    series = np.asarray(series, dtype=float)
    if counter is None:
        counter = DistanceCounter()
    if rng is None:
        rng = np.random.default_rng(0)
    if num_discords < 1:
        raise DiscordSearchError(f"num_discords must be >= 1, got {num_discords}")
    if checkpoint_every < 1:
        raise DiscordSearchError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    if budget is None:
        budget = SearchBudget.unlimited()
    metrics = ensure_metrics(metrics)
    budget.bind_metrics(metrics)

    result = RRAResult(candidate_count=len(list(intervals)))
    valid = [
        iv for iv in intervals if iv.end <= series.size and iv.length >= 2
    ]

    result_cache_key: Optional[str] = None
    ledger_before: Optional[dict] = None
    if cache is not None:
        from repro.cache.keys import discord_search_key
        from repro.cache.results import (
            LEDGER_FIELDS,
            apply_ledger_delta,
            discords_to_json,
            ledger_delta,
        )

        result_cache_key = discord_search_key(
            series,
            valid,
            engine="rra",
            params={
                "num_discords": int(num_discords),
                "backend": backend,
                "prune": bool(prune),
            },
            rng=rng,
        )
        entry = cache.get(result_cache_key)
        if entry is not None:
            # Hit: the stored discords and ledger increments, applied to
            # the live counter — and no candidate set, no lower bound,
            # no checkpoint writes.
            apply_ledger_delta(counter, entry["ledger"])
            for item in entry["discords"]:
                result.discords.append(_discord_from_json(item))
                result.rank_complete.append(True)
            result.distance_calls = counter.calls
            result.from_cache = True
            return result
        ledger_before = counter.ledger()

    if context is not None:
        # The context keeps the whole candidate set (normalized values,
        # norms, batch rows, pair distances) alive across searches over
        # the same grammar — a repeated search recomputes no distances.
        candidate_cache = context.rra_candidate_set(series, valid)
    else:
        candidate_cache = _CandidateSet(series, valid)
    lower_bound = IntervalLowerBound(candidate_cache) if prune else None

    fingerprint: Optional[str] = None
    if checkpoint_path is not None or resume_from is not None:
        fingerprint = search_fingerprint(
            series,
            valid,
            {"num_discords": num_discords, "backend": backend, "prune": prune},
        )

    def _store_complete() -> None:
        """Populate the result cache with a complete, exact result."""
        if (
            result_cache_key is None
            or result.status is not SearchStatus.COMPLETE
            or not all(result.rank_complete)
        ):
            return
        cache.put(
            result_cache_key,
            {
                "engine": "rra",
                "discords": discords_to_json(result.discords),
                "ledger": ledger_delta(ledger_before, counter.ledger()),
            },
        )

    exclusions: list[tuple[int, int]] = []
    start_rank = 0
    resumed_state: Optional[_RankState] = None
    if resume_from is not None:
        data = load_checkpoint(resume_from)
        if data.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"checkpoint {resume_from} was written for different search "
                f"inputs (series/candidates/parameters changed)"
            )
        for entry in data.get("discords", []):
            result.discords.append(_discord_from_json(entry))
            result.rank_complete.append(True)
        exclusions = [tuple(pair) for pair in data.get("exclusions", [])]
        if data.get("ledger") is not None:
            counter.restore_ledger(data["ledger"])
        else:
            counter.calls = int(data["distance_calls"])
            counter.true_calls = counter.calls
        if result_cache_key is not None:
            # restore_ledger is an absolute overwrite: the counter now
            # holds the prior partial run's full tally, so a zero
            # baseline makes the stored delta equal the complete
            # cold-run ledger — exactly what an uninterrupted search
            # would have cached.
            ledger_before = {field: 0 for field in LEDGER_FIELDS}
        start_rank = int(data["rank"])
        if data.get("rng_state") is not None:
            rng = restore_rng(data["rng_state"])
        if metrics.enabled:
            metrics.restore(data.get("metrics"), data.get("metric_events"))
            metrics.event(
                "checkpoint.resumed",
                path=resume_from,
                rank=start_rank,
                outer_index=int(data["outer_index"]),
            )
        if data.get("done"):
            result.distance_calls = counter.calls
            _store_complete()
            return result
        best_key = data.get("best_key")
        resumed_state = _RankState(
            outer_index=int(data["outer_index"]),
            best_dist=float(data["best_dist"]),
            best_key=tuple(best_key) if best_key is not None else None,
            calls=counter.calls,
            ledger=counter.ledger(),
        )

    # -- checkpoint plumbing -------------------------------------------
    current_rank = [start_rank]
    boundary_count = [0]

    def _write(state: _RankState, outer: list[RuleInterval], done: bool) -> None:
        if metrics.enabled:
            # Emitted before the snapshot so the persisted event stream
            # includes its own save marker.
            metrics.event(
                "checkpoint.saved",
                rank=current_rank[0],
                outer_index=state.outer_index,
                done=done,
            )
        save_checkpoint(
            checkpoint_path,
            {
                "fingerprint": fingerprint,
                "num_discords": num_discords,
                "backend": backend,
                "discords": [
                    _discord_to_json(d)
                    for d, ok in zip(result.discords, result.rank_complete)
                    if ok
                ],
                "exclusions": [list(pair) for pair in exclusions],
                "rank": current_rank[0],
                "outer_index": state.outer_index,
                "visited": [
                    [iv.start, iv.end] for iv in outer[: state.outer_index]
                ],
                "best_dist": state.best_dist,
                "best_key": list(state.best_key) if state.best_key else None,
                "distance_calls": state.calls,
                "ledger": state.ledger,
                "rng_state": state.rng_state,
                "candidate_count": len(valid),
                "done": done,
                "status": budget.status.value,
                **(
                    {
                        "metrics": metrics.snapshot(),
                        "metric_events": metrics.events,
                    }
                    if metrics.enabled
                    else {}
                ),
            },
        )

    def _on_boundary(state: _RankState, outer: list[RuleInterval]) -> None:
        boundary_count[0] += 1
        if boundary_count[0] % checkpoint_every == 0:
            _write(state, outer, done=False)

    on_boundary = _on_boundary if checkpoint_path is not None else None
    last_outer: list[RuleInterval] = []

    for rank in range(start_rank, num_discords):
        current_rank[0] = rank
        state = resumed_state if rank == start_rank and resumed_state else _RankState()
        if checkpoint_path is not None:
            state.rng_state = rng_state_to_json(rng)
        rank_ledger = counter.ledger() if metrics.enabled else None
        with metrics.span("search.rank", source="rra", rank=rank):
            discord, counter = find_discord(
                series,
                valid,
                counter=counter,
                rng=rng,
                exclude=exclusions,
                backend=backend,
                cache=candidate_cache,
                budget=budget,
                n_workers=n_workers,
                prune=prune,
                metrics=metrics,
                _state=state,
                _on_boundary=on_boundary,
                _lower_bound=lower_bound,
            )
        if metrics.enabled:
            emit_rank_event(
                metrics, "rra", rank, rank_ledger, counter, discord,
                exact=state.complete,
            )
        if checkpoint_path is not None:
            # Only needed for the final interruption write below.
            last_outer = sorted(
                (
                    iv
                    for iv in valid
                    if not any(
                        iv.start < ex_end and ex_start < iv.end
                        for ex_start, ex_end in exclusions
                    )
                ),
                key=lambda iv: (iv.usage, iv.start, iv.end),
            )
        if not state.complete:
            result.status = budget.status
            if discord is not None:
                result.discords.append(
                    Discord(
                        start=discord.start,
                        end=discord.end,
                        score=discord.score,
                        rank=rank,
                        nn_distance=discord.nn_distance,
                        rule_id=discord.rule_id,
                        source="rra",
                    )
                )
                result.rank_complete.append(False)
            if checkpoint_path is not None:
                _write(state, last_outer, done=False)
            break
        if discord is None:
            if checkpoint_path is not None:
                current_rank[0] = rank
                _write(state, last_outer, done=True)
            break
        ranked = Discord(
            start=discord.start,
            end=discord.end,
            score=discord.score,
            rank=rank,
            nn_distance=discord.nn_distance,
            rule_id=discord.rule_id,
            source="rra",
        )
        result.discords.append(ranked)
        result.rank_complete.append(True)
        exclusions.append((discord.start, discord.end))
        if checkpoint_path is not None:
            current_rank[0] = rank + 1
            _write(
                _RankState(
                    calls=counter.calls,
                    rng_state=rng_state_to_json(rng),
                    ledger=counter.ledger(),
                ),
                [],
                done=(rank + 1 >= num_discords),
            )
    result.distance_calls = counter.calls
    _store_complete()
    return result


def nearest_neighbor_distances(
    series: np.ndarray,
    intervals: Sequence[RuleInterval],
    *,
    counter: Optional[DistanceCounter] = None,
    backend: str = "kernel",
) -> list[tuple[RuleInterval, float]]:
    """Exact nearest-non-self-match distance for every candidate interval.

    This is what the bottom panels of the paper's Figures 2, 3 and 7
    plot: a vertical line at each rule-interval start whose height is the
    distance to the interval's nearest non-self match.  O(k^2) distance
    calls — intended for analysis/visualization, not for search.

    The kernel backend goes one-vs-all: candidates of the same length
    are compared with a single matrix-vector product per query, the
    rest through the vectorized sliding-alignment kernel.  Accounting
    is unchanged — one logical call per non-self-match pair.
    """
    validate_backend(backend)
    series = np.asarray(series, dtype=float)
    if counter is None:
        counter = DistanceCounter()
    candidates = [iv for iv in intervals if iv.end <= series.size and iv.length >= 2]
    cache = _CandidateSet(series, candidates)
    results: list[tuple[RuleInterval, float]] = []

    if backend == "scalar":
        for p in candidates:
            p_values = cache.values(p)
            nearest = float("inf")
            for q in candidates:
                if q is p or not _is_non_self_match(p, q):
                    continue
                dist = counter.variable_length(
                    p_values, cache.values(q), normalize_inputs=False
                )
                if dist < nearest:
                    nearest = dist
            results.append((p, nearest))
        return results

    if not candidates:
        return results
    starts = np.asarray([iv.start for iv in candidates], dtype=np.intp)
    by_length: dict[int, list[int]] = defaultdict(list)
    for i, iv in enumerate(candidates):
        by_length[iv.length].append(i)
    group_rows: dict[int, np.ndarray] = {}
    group_sqnorms: dict[int, np.ndarray] = {}
    group_index: dict[int, np.ndarray] = {}
    for length, members in by_length.items():
        rows = np.stack([cache.values(candidates[i]) for i in members])
        group_rows[length] = rows
        group_sqnorms[length] = kernels.row_sqnorms(rows)
        group_index[length] = np.asarray(members, dtype=np.intp)

    # The batch backend turns the per-query matrix-vector products of a
    # length group into a few tiled GEMMs over the whole group, computed
    # up front.  Accounting and the visited pairs are unchanged.
    group_sq: dict[int, np.ndarray] = {}
    group_pos: dict[int, dict[int, int]] = {}
    if backend == "batch":
        for length, members in by_length.items():
            rows = group_rows[length]
            sqnorms = group_sqnorms[length]
            sq = np.empty((rows.shape[0], rows.shape[0]), dtype=float)
            for lo, hi in kernels.tile_plan(rows.shape[0], rows.shape[0]):
                sq[lo:hi] = kernels.all_pairs_sq_euclidean_tile(
                    rows[lo:hi], rows,
                    query_sqnorms=sqnorms[lo:hi], sqnorms=sqnorms,
                )
            group_sq[length] = sq
            group_pos[length] = {i: j for j, i in enumerate(members)}

    for i, p in enumerate(candidates):
        # Paper line 7 as a mask: |p0 - q0| > Length(p).  This also
        # removes p itself, so every True entry is one logical call.
        valid = np.abs(starts - p.start) > p.length
        counter.batch(int(np.count_nonzero(valid)))
        nearest = float("inf")
        p_values = cache.values(p)
        p_sqnorm = cache.sqnorm(p)

        same = group_index[p.length]
        keep = valid[same]
        if keep.any():
            if backend == "batch":
                sq = group_sq[p.length][group_pos[p.length][i]][keep]
            else:
                sq = kernels.one_vs_all_sq_euclidean(
                    p_values,
                    group_rows[p.length][keep],
                    query_sqnorm=p_sqnorm,
                    sqnorms=group_sqnorms[p.length][keep],
                )
            nearest = float(np.sqrt(sq.min() / p.length))

        for length, members in by_length.items():
            if length == p.length:
                continue
            for j in members:
                if not valid[j]:
                    continue
                dist = _kernel_pair_distance(cache, p, candidates[j])
                if dist < nearest:
                    nearest = dist
        results.append((p, nearest))
    return results

"""RRA — Rare Rule Anomaly discord discovery (paper Section 4.2, Algorithm 1).

RRA is a HOTSAX-style exact discord search whose candidate set is not the
set of all fixed-length sliding windows but the *variable-length*
subsequences corresponding to grammar rules (plus the zero-coverage gaps
that never made it into any rule):

* **Outer loop** — candidates in ascending order of their rule's usage
  frequency (gaps have frequency 0 and come first): the rarer the rule,
  the more likely its subsequence is the discord, and an early good
  ``best_so_far`` maximizes later pruning.
* **Inner loop** — for a candidate from rule R, other subsequences of the
  same rule R are visited first (they are near-identical, so a small
  distance is found quickly and the candidate is abandoned early); the
  remaining candidates follow in random order.
* **Distance** — Euclidean normalized by subsequence length (paper
  Eq. 1), computed between z-normalized subsequences; unequal lengths are
  aligned by sliding the shorter inside the longer (see DESIGN.md §5).
* **Early abandoning** — the inner loop breaks as soon as a distance
  below ``best_so_far`` is seen; the candidate cannot be the discord.

Every distance is drawn through a
:class:`~repro.timeseries.distance.DistanceCounter`, so call counts are
comparable with HOTSAX and brute force (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.anomaly import Discord
from repro.exceptions import DiscordSearchError
from repro.grammar.intervals import RuleInterval
from repro.timeseries.distance import DistanceCounter
from repro.timeseries.znorm import znorm


@dataclass
class RRAResult:
    """Outcome of an RRA search.

    Attributes
    ----------
    discords:
        Ranked discords (strongest first).
    distance_calls:
        Total distance-function invocations (Table 1 metric).
    candidate_count:
        Number of candidate intervals considered.
    """

    discords: list[Discord] = field(default_factory=list)
    distance_calls: int = 0
    candidate_count: int = 0

    @property
    def best(self) -> Optional[Discord]:
        return self.discords[0] if self.discords else None


class _CandidateSet:
    """Candidate intervals with cached z-normalized subsequences."""

    def __init__(self, series: np.ndarray, intervals: Sequence[RuleInterval]):
        self.series = series
        self.intervals = list(intervals)
        self._cache: dict[tuple[int, int], np.ndarray] = {}

    def values(self, interval: RuleInterval) -> np.ndarray:
        key = (interval.start, interval.end)
        cached = self._cache.get(key)
        if cached is None:
            cached = znorm(self.series[interval.start : interval.end])
            self._cache[key] = cached
        return cached


def _is_non_self_match(p: RuleInterval, q: RuleInterval) -> bool:
    """Paper line 7: |p0 - q0| > Length(p), i.e. no trivial self match."""
    return abs(p.start - q.start) > p.length


def _inner_order(
    candidate: RuleInterval,
    others: list[RuleInterval],
    rng: np.random.Generator,
) -> list[RuleInterval]:
    """Same-rule intervals first, then the rest shuffled."""
    same_rule = [
        iv
        for iv in others
        if iv.rule_id == candidate.rule_id and candidate.rule_id >= 0
    ]
    rest = [
        iv
        for iv in others
        if not (iv.rule_id == candidate.rule_id and candidate.rule_id >= 0)
    ]
    rng.shuffle(rest)
    return same_rule + rest


def find_discord(
    series: np.ndarray,
    intervals: Sequence[RuleInterval],
    *,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
    exclude: Sequence[tuple[int, int]] = (),
) -> tuple[Optional[Discord], DistanceCounter]:
    """Find the single best variable-length discord (paper Algorithm 1).

    Parameters
    ----------
    series:
        The raw time series.
    intervals:
        Candidate intervals: rule intervals plus zero-coverage gaps.
    counter:
        Distance counter to accumulate into; a fresh one by default.
    rng:
        Source of randomness for the inner-loop ordering.
    exclude:
        Half-open ``(start, end)`` ranges; candidates overlapping any of
        them are skipped (used for iterative multi-discord extraction).

    Returns
    -------
    (discord or None, counter)
        None when no candidate has a non-self match (degenerate input).
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise DiscordSearchError(f"series must be 1-d, got shape {series.shape}")
    if counter is None:
        counter = DistanceCounter()
    if rng is None:
        rng = np.random.default_rng(0)

    candidates = [
        iv
        for iv in intervals
        if iv.end <= series.size
        and iv.length >= 2
        and not any(iv.start < ex_end and ex_start < iv.end for ex_start, ex_end in exclude)
    ]
    if not candidates:
        return None, counter

    cache = _CandidateSet(series, candidates)

    # Outer ordering: ascending rule usage (gaps first), deterministic
    # tie-break by position.
    outer = sorted(candidates, key=lambda iv: (iv.usage, iv.start, iv.end))

    best_dist = 0.0
    best_candidate: Optional[RuleInterval] = None

    for p in outer:
        p_values = cache.values(p)
        nearest = float("inf")
        pruned = False
        for q in _inner_order(p, candidates, rng):
            if q is p or not _is_non_self_match(p, q):
                continue
            dist = counter.variable_length(
                p_values, cache.values(q), normalize_inputs=False
            )
            if dist < best_dist:
                pruned = True  # p cannot beat the current best discord
                break
            if dist < nearest:
                nearest = dist
        if not pruned and np.isfinite(nearest) and nearest > best_dist:
            best_dist = nearest
            best_candidate = p

    if best_candidate is None:
        return None, counter
    discord = Discord(
        start=best_candidate.start,
        end=best_candidate.end,
        score=best_dist,
        rank=0,
        nn_distance=best_dist,
        rule_id=best_candidate.rule_id,
        source="rra",
    )
    return discord, counter


def find_discords(
    series: np.ndarray,
    intervals: Sequence[RuleInterval],
    *,
    num_discords: int = 1,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
) -> RRAResult:
    """Iteratively extract up to *num_discords* ranked discords.

    After each discovery the found interval is excluded (paper: "when run
    iteratively, excluding the current best discord from Intervals list,
    RRA outputs a ranked list of multiple co-existing discords of
    variable length").
    """
    series = np.asarray(series, dtype=float)
    if counter is None:
        counter = DistanceCounter()
    if rng is None:
        rng = np.random.default_rng(0)
    if num_discords < 1:
        raise DiscordSearchError(f"num_discords must be >= 1, got {num_discords}")

    result = RRAResult(candidate_count=len(list(intervals)))
    exclusions: list[tuple[int, int]] = []
    for rank in range(num_discords):
        discord, counter = find_discord(
            series,
            intervals,
            counter=counter,
            rng=rng,
            exclude=exclusions,
        )
        if discord is None:
            break
        ranked = Discord(
            start=discord.start,
            end=discord.end,
            score=discord.score,
            rank=rank,
            nn_distance=discord.nn_distance,
            rule_id=discord.rule_id,
            source="rra",
        )
        result.discords.append(ranked)
        exclusions.append((discord.start, discord.end))
    result.distance_calls = counter.calls
    return result


def nearest_neighbor_distances(
    series: np.ndarray,
    intervals: Sequence[RuleInterval],
    *,
    counter: Optional[DistanceCounter] = None,
) -> list[tuple[RuleInterval, float]]:
    """Exact nearest-non-self-match distance for every candidate interval.

    This is what the bottom panels of the paper's Figures 2, 3 and 7
    plot: a vertical line at each rule-interval start whose height is the
    distance to the interval's nearest non-self match.  O(k^2) distance
    calls — intended for analysis/visualization, not for search.
    """
    series = np.asarray(series, dtype=float)
    if counter is None:
        counter = DistanceCounter()
    candidates = [iv for iv in intervals if iv.end <= series.size and iv.length >= 2]
    cache = _CandidateSet(series, candidates)
    results: list[tuple[RuleInterval, float]] = []
    for p in candidates:
        p_values = cache.values(p)
        nearest = float("inf")
        for q in candidates:
            if q is p or not _is_non_self_match(p, q):
                continue
            dist = counter.variable_length(
                p_values, cache.values(q), normalize_inputs=False
            )
            if dist < nearest:
                nearest = dist
        results.append((p, nearest))
    return results

"""RRA — Rare Rule Anomaly discord discovery (paper Section 4.2, Algorithm 1).

RRA is a HOTSAX-style exact discord search whose candidate set is not the
set of all fixed-length sliding windows but the *variable-length*
subsequences corresponding to grammar rules (plus the zero-coverage gaps
that never made it into any rule):

* **Outer loop** — candidates in ascending order of their rule's usage
  frequency (gaps have frequency 0 and come first): the rarer the rule,
  the more likely its subsequence is the discord, and an early good
  ``best_so_far`` maximizes later pruning.
* **Inner loop** — for a candidate from rule R, other subsequences of the
  same rule R are visited first (they are near-identical, so a small
  distance is found quickly and the candidate is abandoned early); the
  remaining candidates follow in random order.
* **Distance** — Euclidean normalized by subsequence length (paper
  Eq. 1), computed between z-normalized subsequences; unequal lengths are
  aligned by sliding the shorter inside the longer (see DESIGN.md §5).
* **Early abandoning** — the inner loop breaks as soon as a distance
  below ``best_so_far`` is seen; the candidate cannot be the discord.

Every distance is drawn through a
:class:`~repro.timeseries.distance.DistanceCounter`, so call counts are
comparable with HOTSAX and brute force (Table 1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.anomaly import Discord
from repro.exceptions import DiscordSearchError
from repro.grammar.intervals import RuleInterval
from repro.timeseries import kernels
from repro.timeseries.distance import DistanceCounter
from repro.timeseries.kernels import validate_backend


@dataclass
class RRAResult:
    """Outcome of an RRA search.

    Attributes
    ----------
    discords:
        Ranked discords (strongest first).
    distance_calls:
        Total distance-function invocations (Table 1 metric).
    candidate_count:
        Number of candidate intervals considered.
    """

    discords: list[Discord] = field(default_factory=list)
    distance_calls: int = 0
    candidate_count: int = 0

    @property
    def best(self) -> Optional[Discord]:
        return self.discords[0] if self.discords else None


class _CandidateSet:
    """Candidate intervals with cached kernel statistics.

    Z-normalization of every interval comes from one O(m) pass of
    cumulative sums over the series (:class:`~repro.timeseries.kernels.
    SeriesStats`) instead of a per-window ``znorm`` call, and the
    quantities the batch distance kernels need — squared norms and
    squared cumulative sums of the normalized values — are cached per
    distinct interval.  One instance is shared across the ranks of an
    iterative :func:`find_discords` extraction.
    """

    def __init__(self, series: np.ndarray, intervals: Sequence[RuleInterval]):
        self.series = np.ascontiguousarray(series, dtype=float)
        self.intervals = list(intervals)
        self._stats = kernels.SeriesStats(self.series)
        self._values: dict[tuple[int, int], np.ndarray] = {}
        self._sqnorms: dict[tuple[int, int], float] = {}
        self._sq_cumsums: dict[tuple[int, int], np.ndarray] = {}

    def values(self, interval: RuleInterval) -> np.ndarray:
        """Z-normalized subsequence of *interval* (cached)."""
        key = (interval.start, interval.end)
        cached = self._values.get(key)
        if cached is None:
            cached = self._stats.znorm(interval.start, interval.end)
            self._values[key] = cached
        return cached

    def sqnorm(self, interval: RuleInterval) -> float:
        """Squared L2 norm of the normalized subsequence (cached)."""
        key = (interval.start, interval.end)
        cached = self._sqnorms.get(key)
        if cached is None:
            values = self.values(interval)
            cached = float(np.dot(values, values))
            self._sqnorms[key] = cached
        return cached

    def sq_cumsum(self, interval: RuleInterval) -> np.ndarray:
        """Squared cumulative sum of the normalized subsequence (cached).

        Feeds the sliding-alignment kernel when this interval plays the
        "long" role of an unequal-length comparison.
        """
        key = (interval.start, interval.end)
        cached = self._sq_cumsums.get(key)
        if cached is None:
            cached = kernels.sq_cumsum(self.values(interval))
            self._sq_cumsums[key] = cached
        return cached


def _kernel_pair_distance(
    cache: _CandidateSet, p: RuleInterval, q: RuleInterval
) -> float:
    """Vectorized Eq. 1 distance between two cached candidates.

    Equal lengths use the dot-product identity with the cached squared
    norms; unequal lengths evaluate the full sliding-alignment profile
    in one shot instead of the scalar per-offset loop.
    """
    a = cache.values(p)
    b = cache.values(q)
    if a.size == b.size:
        sq = cache.sqnorm(p) + cache.sqnorm(q) - 2.0 * float(np.dot(a, b))
        return float(np.sqrt(max(sq, 0.0) / a.size))
    if a.size < b.size:
        short_iv, long_iv, short, long_ = p, q, a, b
    else:
        short_iv, long_iv, short, long_ = q, p, b, a
    return kernels.sliding_min_normalized_distance(
        short,
        long_,
        short_sqnorm=cache.sqnorm(short_iv),
        long_sq_cumsum=cache.sq_cumsum(long_iv),
    )


def _is_non_self_match(p: RuleInterval, q: RuleInterval) -> bool:
    """Paper line 7: |p0 - q0| > Length(p), i.e. no trivial self match."""
    return abs(p.start - q.start) > p.length


class _InnerOrdering:
    """Precomputed same-rule buckets for the RRA inner-loop ordering.

    Built once per :func:`find_discord` invocation over the (exclusion-
    filtered) candidate list, so ordering a candidate's inner loop no
    longer rescans all candidates with a Python predicate per outer
    iteration — it concatenates a cached bucket with a cached
    complement.
    """

    #: Bucket key for gap candidates (any negative rule id).
    _GAP = -1

    def __init__(self, candidates: list[RuleInterval]):
        self._candidates = candidates
        self._same_rule: dict[int, list[RuleInterval]] = defaultdict(list)
        for iv in candidates:
            if iv.rule_id >= 0:
                self._same_rule[iv.rule_id].append(iv)
        self._rest: dict[int, list[RuleInterval]] = {}

    def order(
        self, candidate: RuleInterval, rng: np.random.Generator
    ) -> list[RuleInterval]:
        """Same-rule intervals first, then the rest shuffled."""
        key = candidate.rule_id if candidate.rule_id >= 0 else self._GAP
        rest = self._rest.get(key)
        if rest is None:
            if key == self._GAP:
                rest = self._candidates
            else:
                rest = [iv for iv in self._candidates if iv.rule_id != key]
            self._rest[key] = rest
        same_rule = self._same_rule[key] if key != self._GAP else []
        shuffled = list(rest)
        rng.shuffle(shuffled)
        return same_rule + shuffled


def find_discord(
    series: np.ndarray,
    intervals: Sequence[RuleInterval],
    *,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
    exclude: Sequence[tuple[int, int]] = (),
    backend: str = "kernel",
    cache: Optional[_CandidateSet] = None,
) -> tuple[Optional[Discord], DistanceCounter]:
    """Find the single best variable-length discord (paper Algorithm 1).

    Parameters
    ----------
    series:
        The raw time series.
    intervals:
        Candidate intervals: rule intervals plus zero-coverage gaps.
    counter:
        Distance counter to accumulate into; a fresh one by default.
    rng:
        Source of randomness for the inner-loop ordering.
    exclude:
        Half-open ``(start, end)`` ranges; candidates overlapping any of
        them are skipped (used for iterative multi-discord extraction).
    backend:
        ``"kernel"`` (default) draws every pair distance from the
        vectorized kernels in :mod:`repro.timeseries.kernels`;
        ``"scalar"`` keeps the per-pair reference path.  Both visit the
        same pairs in the same order, so call counts are identical.
    cache:
        Prebuilt :class:`_CandidateSet` over *series* and *intervals*,
        reused across the ranks of an iterative extraction so the znorm
        and kernel-statistic caches are computed once.

    Returns
    -------
    (discord or None, counter)
        None when no candidate has a non-self match (degenerate input).
    """
    validate_backend(backend)
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise DiscordSearchError(f"series must be 1-d, got shape {series.shape}")
    if counter is None:
        counter = DistanceCounter()
    if rng is None:
        rng = np.random.default_rng(0)

    candidates = [
        iv
        for iv in intervals
        if iv.end <= series.size
        and iv.length >= 2
        and not any(iv.start < ex_end and ex_start < iv.end for ex_start, ex_end in exclude)
    ]
    if not candidates:
        return None, counter

    if cache is None:
        cache = _CandidateSet(series, candidates)
    ordering = _InnerOrdering(candidates)
    use_kernel = backend == "kernel"

    # Outer ordering: ascending rule usage (gaps first), deterministic
    # tie-break by position.
    outer = sorted(candidates, key=lambda iv: (iv.usage, iv.start, iv.end))

    best_dist = 0.0
    best_candidate: Optional[RuleInterval] = None

    for p in outer:
        p_values = cache.values(p)
        nearest = float("inf")
        pruned = False
        for q in ordering.order(p, rng):
            if q is p or not _is_non_self_match(p, q):
                continue
            if use_kernel:
                counter.batch(1)
                dist = _kernel_pair_distance(cache, p, q)
            else:
                dist = counter.variable_length(
                    p_values, cache.values(q), normalize_inputs=False
                )
            if dist < best_dist:
                pruned = True  # p cannot beat the current best discord
                break
            if dist < nearest:
                nearest = dist
        if not pruned and np.isfinite(nearest) and nearest > best_dist:
            best_dist = nearest
            best_candidate = p

    if best_candidate is None:
        return None, counter
    discord = Discord(
        start=best_candidate.start,
        end=best_candidate.end,
        score=best_dist,
        rank=0,
        nn_distance=best_dist,
        rule_id=best_candidate.rule_id,
        source="rra",
    )
    return discord, counter


def find_discords(
    series: np.ndarray,
    intervals: Sequence[RuleInterval],
    *,
    num_discords: int = 1,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
    backend: str = "kernel",
) -> RRAResult:
    """Iteratively extract up to *num_discords* ranked discords.

    After each discovery the found interval is excluded (paper: "when run
    iteratively, excluding the current best discord from Intervals list,
    RRA outputs a ranked list of multiple co-existing discords of
    variable length").  The candidate cache (z-normalized subsequences
    and kernel statistics) is built once and shared across ranks.
    """
    validate_backend(backend)
    series = np.asarray(series, dtype=float)
    if counter is None:
        counter = DistanceCounter()
    if rng is None:
        rng = np.random.default_rng(0)
    if num_discords < 1:
        raise DiscordSearchError(f"num_discords must be >= 1, got {num_discords}")

    result = RRAResult(candidate_count=len(list(intervals)))
    valid = [
        iv for iv in intervals if iv.end <= series.size and iv.length >= 2
    ]
    cache = _CandidateSet(series, valid)
    exclusions: list[tuple[int, int]] = []
    for rank in range(num_discords):
        discord, counter = find_discord(
            series,
            valid,
            counter=counter,
            rng=rng,
            exclude=exclusions,
            backend=backend,
            cache=cache,
        )
        if discord is None:
            break
        ranked = Discord(
            start=discord.start,
            end=discord.end,
            score=discord.score,
            rank=rank,
            nn_distance=discord.nn_distance,
            rule_id=discord.rule_id,
            source="rra",
        )
        result.discords.append(ranked)
        exclusions.append((discord.start, discord.end))
    result.distance_calls = counter.calls
    return result


def nearest_neighbor_distances(
    series: np.ndarray,
    intervals: Sequence[RuleInterval],
    *,
    counter: Optional[DistanceCounter] = None,
    backend: str = "kernel",
) -> list[tuple[RuleInterval, float]]:
    """Exact nearest-non-self-match distance for every candidate interval.

    This is what the bottom panels of the paper's Figures 2, 3 and 7
    plot: a vertical line at each rule-interval start whose height is the
    distance to the interval's nearest non-self match.  O(k^2) distance
    calls — intended for analysis/visualization, not for search.

    The kernel backend goes one-vs-all: candidates of the same length
    are compared with a single matrix-vector product per query, the
    rest through the vectorized sliding-alignment kernel.  Accounting
    is unchanged — one logical call per non-self-match pair.
    """
    validate_backend(backend)
    series = np.asarray(series, dtype=float)
    if counter is None:
        counter = DistanceCounter()
    candidates = [iv for iv in intervals if iv.end <= series.size and iv.length >= 2]
    cache = _CandidateSet(series, candidates)
    results: list[tuple[RuleInterval, float]] = []

    if backend == "scalar":
        for p in candidates:
            p_values = cache.values(p)
            nearest = float("inf")
            for q in candidates:
                if q is p or not _is_non_self_match(p, q):
                    continue
                dist = counter.variable_length(
                    p_values, cache.values(q), normalize_inputs=False
                )
                if dist < nearest:
                    nearest = dist
            results.append((p, nearest))
        return results

    if not candidates:
        return results
    starts = np.asarray([iv.start for iv in candidates], dtype=np.intp)
    by_length: dict[int, list[int]] = defaultdict(list)
    for i, iv in enumerate(candidates):
        by_length[iv.length].append(i)
    group_rows: dict[int, np.ndarray] = {}
    group_sqnorms: dict[int, np.ndarray] = {}
    group_index: dict[int, np.ndarray] = {}
    for length, members in by_length.items():
        rows = np.stack([cache.values(candidates[i]) for i in members])
        group_rows[length] = rows
        group_sqnorms[length] = kernels.row_sqnorms(rows)
        group_index[length] = np.asarray(members, dtype=np.intp)

    for i, p in enumerate(candidates):
        # Paper line 7 as a mask: |p0 - q0| > Length(p).  This also
        # removes p itself, so every True entry is one logical call.
        valid = np.abs(starts - p.start) > p.length
        counter.batch(int(np.count_nonzero(valid)))
        nearest = float("inf")
        p_values = cache.values(p)
        p_sqnorm = cache.sqnorm(p)

        same = group_index[p.length]
        keep = valid[same]
        if keep.any():
            sq = kernels.one_vs_all_sq_euclidean(
                p_values,
                group_rows[p.length][keep],
                query_sqnorm=p_sqnorm,
                sqnorms=group_sqnorms[p.length][keep],
            )
            nearest = float(np.sqrt(sq.min() / p.length))

        for length, members in by_length.items():
            if length == p.length:
                continue
            for j in members:
                if not valid[j]:
                    continue
                dist = _kernel_pair_distance(cache, p, candidates[j])
                if dist < nearest:
                    nearest = dist
        results.append((p, nearest))
    return results

"""End-to-end pipeline: series -> SAX -> grammar -> anomalies.

:class:`GrammarAnomalyDetector` is the library's main entry point.  It
runs the full chain of the paper once (discretization + grammar
induction + interval projection) and then answers both kinds of queries
— rule-density anomalies and RRA discords — from the shared
intermediate state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cache import ResultCache, SearchContext
from repro.core.anomaly import Anomaly, Discord
from repro.core.rra import RRAResult, find_discords, nearest_neighbor_distances
from repro.core.rule_density import find_density_anomalies, rule_density_curve
from repro.exceptions import ParameterError
from repro.grammar.grammar import Grammar
from repro.grammar.intervals import (
    RuleInterval,
    rule_intervals,
    uncovered_intervals,
)
from repro.grammar.repair import repair_grammar
from repro.grammar.sequitur import induce_grammar_interned
from repro.observability.metrics import MetricsRegistry, ensure_metrics
from repro.observability.report import write_run_report
from repro.parallel.pool import effective_workers
from repro.resilience.budget import SearchBudget
from repro.sax.discretize import Discretization, NumerosityReduction, discretize
from repro.timeseries.kernels import validate_backend
from repro.timeseries.preprocess import QUALITY_POLICIES, quality_gate


@dataclass
class PipelineResult:
    """Everything the pipeline computed for one series.

    Exposed so callers (benchmarks, visualization, notebooks) can inspect
    intermediate state: the discretization, the grammar, the projected
    rule intervals, and the density curve.
    """

    series: np.ndarray
    discretization: Discretization
    grammar: Grammar
    intervals: list[RuleInterval]
    gaps: list[RuleInterval]
    density: np.ndarray = field(repr=False, default=None)
    masked_spans: tuple[tuple[int, int], ...] = ()

    @property
    def candidates(self) -> list[RuleInterval]:
        """RRA candidate set: rule intervals plus zero-coverage gaps.

        Under the ``mask`` quality policy, candidates overlapping a
        masked (originally non-finite) span are excluded — an anomaly
        must never be reported from interpolated filler data.
        """
        pool = self.intervals + self.gaps
        if not self.masked_spans:
            return pool
        return [
            iv
            for iv in pool
            if not any(
                iv.start < end and start < iv.end
                for start, end in self.masked_spans
            )
        ]


class GrammarAnomalyDetector:
    """Grammar-compression-driven anomaly detector (the paper's framework).

    Parameters
    ----------
    window:
        Sliding-window ("seed") length W.
    paa_size:
        PAA segments per window P.
    alphabet_size:
        SAX alphabet size A.
    numerosity_reduction:
        Strategy for collapsing consecutive identical words.
    grammar_algorithm:
        ``"sequitur"`` (the paper) or ``"repair"`` (ablation).
    seed:
        Seed for the RRA inner-loop shuffle; fixed for reproducibility.
    backend:
        Distance backend for the discord queries: ``"kernel"``
        (vectorized block kernels, the default), ``"batch"`` (tiled
        GEMM scans through the array-API seam — see
        :mod:`repro.discord.batch`), or ``"scalar"`` (the per-pair
        reference path).  Results and distance-call counts are
        identical across all three; only wall time differs.
    quality_policy:
        How :meth:`fit` treats NaN/Inf values in the input series:
        ``"raise"`` (default) refuses dirty data with
        :class:`~repro.exceptions.DataQualityError`; ``"interpolate"``
        repairs gaps linearly; ``"mask"`` repairs them but excludes any
        candidate interval overlapping a repaired span, so anomalies are
        never reported from invented data.
    n_workers:
        Default worker-process count for the discord search (see
        :mod:`repro.parallel`); 1 keeps everything in-process.  Any
        value yields bit-identical results — same discords, same
        distance-call counts.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`.  When
        given, every fit and query on this detector records structured
        telemetry (phase spans, grammar-size gauges, search counters,
        trace events) into the shared registry;
        :meth:`discords` can serialize it as a JSONL run report via
        ``report_path=``.  Disabled by default — results are
        byte-identical with or without it.
    cache:
        Optional persistent result cache for :meth:`discords`: a
        :class:`~repro.cache.ResultCache` or a directory path (string /
        path-like) one is created over.  A repeated identical query —
        same series content, candidates, and parameters — returns the
        stored discords and ledger flagged ``from_cache=True``,
        bit-identical to a live run.  Disabled by default.
    context:
        Optional :class:`~repro.cache.SearchContext` memoizing
        per-series artifacts (window matrices, discretizations,
        lower-bound tables) across fits and queries.  Purely an
        in-process optimization; results are bit-identical with or
        without it.  Disabled by default.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import GrammarAnomalyDetector
    >>> t = np.arange(4000)
    >>> series = np.sin(2 * np.pi * t / 200)
    >>> series[2000:2120] = -series[2000:2120]   # plant an anomaly
    >>> detector = GrammarAnomalyDetector(window=100, paa_size=4,
    ...                                   alphabet_size=4)
    >>> fit = detector.fit(series)
    >>> discords = detector.discords(num_discords=1)
    >>> 1900 <= discords.best.start <= 2120
    True
    """

    def __init__(
        self,
        window: int,
        paa_size: int,
        alphabet_size: int,
        *,
        numerosity_reduction: NumerosityReduction = NumerosityReduction.EXACT,
        grammar_algorithm: str = "sequitur",
        seed: int = 0,
        backend: str = "kernel",
        quality_policy: str = "raise",
        n_workers: int = 1,
        metrics=None,
        cache=None,
        context: Optional[SearchContext] = None,
    ) -> None:
        if grammar_algorithm not in ("sequitur", "repair"):
            raise ParameterError(
                f"grammar_algorithm must be 'sequitur' or 'repair', "
                f"got {grammar_algorithm!r}"
            )
        if quality_policy not in QUALITY_POLICIES:
            raise ParameterError(
                f"quality_policy must be one of {QUALITY_POLICIES}, "
                f"got {quality_policy!r}"
            )
        validate_backend(backend)
        self.backend = backend
        self.n_workers = effective_workers(n_workers)
        self.quality_policy = quality_policy
        self.window = window
        self.paa_size = paa_size
        self.alphabet_size = alphabet_size
        self.numerosity_reduction = numerosity_reduction
        self.grammar_algorithm = grammar_algorithm
        self.seed = seed
        self.metrics = ensure_metrics(metrics)
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.context = context
        if self.metrics.enabled:
            if self.cache is not None:
                self.cache.bind_metrics(self.metrics)
            if self.context is not None:
                self.context.bind_metrics(self.metrics)
        self._result: Optional[PipelineResult] = None

    # -- fitting --------------------------------------------------------

    def fit(
        self, series: np.ndarray, *, paa_values: Optional[np.ndarray] = None
    ) -> PipelineResult:
        """Run discretization + grammar induction + interval projection.

        The input passes through the data-quality gate first; see the
        *quality_policy* constructor argument.  *paa_values* optionally
        carries precomputed :func:`repro.sax.discretize.windowed_paa`
        output for this series and (window, paa_size) — parameter sweeps
        use it to amortize the discretization front half across alphabet
        sizes.  Only pass it for series the quality gate leaves
        untouched (the default ``"raise"`` policy guarantees that).
        """
        metrics = self.metrics
        report = quality_gate(
            np.asarray(series, dtype=float), policy=self.quality_policy
        )
        series = report.series
        if metrics.enabled and report.bad_spans:
            metrics.event(
                "pipeline.quality_repair",
                policy=self.quality_policy,
                bad_spans=[list(span) for span in report.bad_spans],
            )
        if report.bad_spans:
            # The gate repaired the series, so any precomputed PAA matrix
            # describes the wrong data — fall back to recomputing it.
            paa_values = None
        if self.context is not None and not report.bad_spans:
            # The context memoizes the whole grammar front half per
            # (series content, window, paa_size, alphabet_size, strategy,
            # algorithm): discretization, induced grammar, occurrence
            # intervals, and uncovered gaps.  Refits, repeated sweep
            # cells, and the density/RRA queries of one fit all share a
            # single induction; the build path runs the exact same
            # arithmetic as the uncontexted branch below.
            with metrics.span("pipeline.discretize"):
                disc = self.context.sax_tokens(
                    series,
                    self.window,
                    self.paa_size,
                    self.alphabet_size,
                    self.numerosity_reduction,
                )
            with metrics.span(
                "pipeline.grammar", algorithm=self.grammar_algorithm
            ):
                disc, grammar, intervals, gaps = self.context.grammar_front(
                    series,
                    self.window,
                    self.paa_size,
                    self.alphabet_size,
                    self.numerosity_reduction,
                    self.grammar_algorithm,
                )
        else:
            with metrics.span("pipeline.discretize"):
                disc = discretize(
                    series,
                    self.window,
                    self.paa_size,
                    self.alphabet_size,
                    strategy=self.numerosity_reduction,
                    paa_values=paa_values,
                )
            with metrics.span(
                "pipeline.grammar", algorithm=self.grammar_algorithm
            ):
                if self.grammar_algorithm == "repair":
                    grammar = repair_grammar(disc.tokens())
                else:
                    grammar = induce_grammar_interned(
                        disc.token_ids, disc.vocabulary, tokens=disc.tokens()
                    )
            intervals = rule_intervals(grammar, disc)
            gaps = uncovered_intervals(grammar, disc)
        density = rule_density_curve(intervals, series.size, metrics=metrics)
        if metrics.enabled:
            metrics.gauge("pipeline.words_reduced").set(len(disc))
            metrics.gauge("pipeline.grammar_rules").set(len(grammar))
            metrics.gauge("pipeline.grammar_size").set(grammar.grammar_size())
            metrics.gauge("pipeline.rule_intervals").set(len(intervals))
            metrics.gauge("pipeline.gaps").set(len(gaps))
        self._result = PipelineResult(
            series=series,
            discretization=disc,
            grammar=grammar,
            intervals=intervals,
            gaps=gaps,
            density=density,
            masked_spans=report.bad_spans if self.quality_policy == "mask" else (),
        )
        return self._result

    @property
    def result(self) -> PipelineResult:
        if self._result is None:
            raise ParameterError("call fit(series) before querying the detector")
        return self._result

    # -- queries --------------------------------------------------------

    def density_curve(self) -> np.ndarray:
        """The rule density curve of the fitted series."""
        return self.result.density

    def density_anomalies(
        self,
        *,
        threshold: Optional[float] = None,
        min_length: int = 1,
        max_anomalies: Optional[int] = None,
        edge_exclusion: Optional[int] = None,
    ) -> list[Anomaly]:
        """Rule-density anomalies (paper Section 4.1).

        By default the first and last window-length of the curve are
        excluded from the minima search, because rule coverage always
        tapers off at the series boundaries.
        """
        if edge_exclusion is None:
            edge_exclusion = self.window
        return find_density_anomalies(
            self.result.density,
            threshold=threshold,
            min_length=min_length,
            max_anomalies=max_anomalies,
            edge_exclusion=edge_exclusion,
            metrics=self.metrics,
        )

    def discords(
        self,
        *,
        num_discords: int = 1,
        budget: Optional[SearchBudget] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 32,
        resume_from: Optional[str] = None,
        n_workers: Optional[int] = None,
        prune: bool = False,
        report_path: Optional[str] = None,
    ) -> RRAResult:
        """RRA variable-length discords (paper Section 4.2).

        Anytime and fault-tolerant: pass a
        :class:`~repro.resilience.budget.SearchBudget` to bound the
        search, and/or a *checkpoint_path* so a killed run can be
        resumed bit-identically via *resume_from* (see
        :func:`repro.core.rra.find_discords`).

        Graceful degradation: when the budget trips before every rank
        is exact, the result carries ``degraded=True`` and its
        ``fallback`` field holds ranked rule-density anomalies — the
        paper's cheap O(m) signal — so callers always get a usable
        ranked answer even from a starved search.

        *n_workers* overrides the constructor's worker count for this
        query only (``None`` keeps the detector default); any value
        returns bit-identical discords and distance-call counts.

        *prune* opts into the admissible lower-bound cascade (see
        :func:`repro.core.rra.find_discords`): most true distance
        kernels are skipped while discords, distances, ranks, and the
        logical call counts stay bit-identical.

        When the detector was built with ``cache=``, a repeated
        identical query is answered from the store: the result carries
        the cached discords and replays the stored ledger, flagged
        ``from_cache=True``, bit-identical to a live run.

        *report_path* writes a JSONL run report of this query
        (:func:`repro.observability.report.write_run_report`) — search
        telemetry, trace events, and the final ledger.  It uses the
        detector's registry when one was supplied, otherwise a
        query-local registry, so requesting a report never perturbs an
        uninstrumented detector's results.
        """
        result = self.result
        metrics = self.metrics
        if report_path is not None and not metrics.enabled:
            metrics = MetricsRegistry()
        rra = find_discords(
            result.series,
            result.candidates,
            num_discords=num_discords,
            rng=np.random.default_rng(self.seed),
            backend=self.backend,
            budget=budget,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
            n_workers=self.n_workers if n_workers is None else n_workers,
            prune=prune,
            metrics=metrics,
            cache=self.cache,
            context=self.context,
        )
        if not rra.complete:
            rra.degraded = True
            if metrics.enabled:
                metrics.event(
                    "pipeline.degraded",
                    status=rra.status.value,
                    ranks_found=len(rra.discords),
                    requested=num_discords,
                )
            rra.fallback = find_density_anomalies(
                result.density,
                max_anomalies=max(num_discords, 1),
                edge_exclusion=self.window,
                metrics=metrics,
            )
        if report_path is not None:
            write_run_report(
                report_path,
                metrics,
                meta={
                    "engine": "rra",
                    "window": self.window,
                    "paa_size": self.paa_size,
                    "alphabet_size": self.alphabet_size,
                    "num_discords": num_discords,
                    "prune": prune,
                    "seed": self.seed,
                    "backend": self.backend,
                    "distance_calls": rra.distance_calls,
                    "status": rra.status.value,
                },
            )
        return rra

    def nn_distance_profile(self) -> list[tuple[RuleInterval, float]]:
        """Nearest-non-self-match distance per candidate (figure panels)."""
        result = self.result
        return nearest_neighbor_distances(
            result.series, result.candidates, backend=self.backend
        )

    # -- summaries ------------------------------------------------------

    def summary(self) -> dict:
        """Human-oriented summary of the fitted state."""
        result = self.result
        return {
            "series_length": int(result.series.size),
            "window": self.window,
            "paa_size": self.paa_size,
            "alphabet_size": self.alphabet_size,
            "words_raw": result.discretization.raw_word_count,
            "words_reduced": len(result.discretization),
            "grammar_algorithm": self.grammar_algorithm,
            "grammar_rules": len(result.grammar),
            "grammar_size": result.grammar.grammar_size(),
            "rule_intervals": len(result.intervals),
            "zero_coverage_gaps": len(result.gaps),
        }

"""WCAD-style compression-based anomaly detection (paper reference [14]).

Keogh, Lonardi & Ratanamahatana's Window Comparison Anomaly Detection
scores each window by how poorly it compresses *together with* the rest
of the series: a window whose content is unrelated to the remainder adds
nearly its full size when concatenated, whereas a repetitive window adds
almost nothing.

We follow the paper's critique faithfully: the method needs an
off-the-shelf compressor (we use :mod:`zlib`), a window size, and *many*
compressor executions — which is exactly why the EDBT paper calls it
computationally expensive.  It is included as a related-work baseline
for the ablation bench, not as a recommended detector.

The continuous series is discretized with SAX per window (like the
original, which works on discretized data) before compression.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.anomaly import Anomaly
from repro.exceptions import ParameterError
from repro.sax.alphabet import breakpoints_array
from repro.timeseries.paa import paa_batch
from repro.timeseries.windows import sliding_windows
from repro.timeseries.znorm import znorm_rows


def _compressed_size(payload: bytes) -> int:
    return len(zlib.compress(payload, level=6))


def _discretize_whole(series: np.ndarray, window: int, paa_per_window: int, alpha: int) -> bytes:
    """Non-overlapping SAX discretization of the full series to bytes."""
    usable = (series.size // window) * window
    if usable == 0:
        raise ParameterError("series shorter than one window")
    chunks = series[:usable].reshape(-1, window)
    normalized = znorm_rows(chunks)
    paa_values = paa_batch(normalized, paa_per_window)
    cuts = breakpoints_array(alpha)
    letters = np.searchsorted(cuts, paa_values, side="right").astype(np.uint8)
    return (letters + ord("a")).tobytes()


def wcad_scores(
    series: np.ndarray,
    window: int,
    *,
    paa_per_window: int = 8,
    alphabet_size: int = 4,
) -> np.ndarray:
    """Per-window compression-based anomaly scores.

    Score of window *i* = C(rest + window_i) - C(rest), where C is the
    zlib-compressed size and *rest* is the discretized series with
    window *i* blanked out.  Higher = harder to compress with the rest =
    more anomalous.

    Returns one score per non-overlapping window (length
    ``len(series) // window``).
    """
    series = np.asarray(series, dtype=float)
    if window <= 1:
        raise ParameterError(f"window must be > 1, got {window}")
    payload = _discretize_whole(series, window, paa_per_window, alphabet_size)
    num_chunks = len(payload) // paa_per_window
    scores = np.zeros(num_chunks, dtype=float)
    for i in range(num_chunks):
        lo = i * paa_per_window
        hi = lo + paa_per_window
        rest = payload[:lo] + payload[hi:]
        chunk = payload[lo:hi]
        scores[i] = _compressed_size(rest + chunk) - _compressed_size(rest)
    return scores


def wcad_anomalies(
    series: np.ndarray,
    window: int,
    *,
    num_anomalies: int = 1,
    paa_per_window: int = 8,
    alphabet_size: int = 4,
) -> list[Anomaly]:
    """Top-k anomalies by WCAD score, as half-open series intervals."""
    if num_anomalies < 1:
        raise ParameterError(f"num_anomalies must be >= 1, got {num_anomalies}")
    scores = wcad_scores(
        series, window, paa_per_window=paa_per_window, alphabet_size=alphabet_size
    )
    order = np.argsort(-scores, kind="stable")[:num_anomalies]
    return [
        Anomaly(
            start=int(i) * window,
            end=(int(i) + 1) * window,
            score=float(scores[i]),
            rank=rank,
            source="wcad",
        )
        for rank, i in enumerate(order)
    ]

"""Related-work baselines beyond HOTSAX/brute-force.

* WCAD-style compression-based detection (Keogh, Lonardi &
  Ratanamahatana 2004 — the paper's reference [14]): score a window by
  how much it inflates the zlib-compressed size of the rest;
* time-series-bitmap change detection (Wei et al. 2005 — reference
  [30]): score a boundary by the divergence of SAX-subword statistics
  between lag and lead windows.

Both contrast with the grammar-based approach: they need a window/lead
size, score fixed positions, and cannot delimit variable-length
anomalies.
"""

from repro.baselines.wcad import wcad_scores, wcad_anomalies
from repro.baselines.bitmap import bitmap_scores, bitmap_anomalies
from repro.baselines.viztree import SAXTrie

__all__ = [
    "wcad_scores",
    "wcad_anomalies",
    "bitmap_scores",
    "bitmap_anomalies",
    "SAXTrie",
]

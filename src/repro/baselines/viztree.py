"""VizTree-style SAX subword trie (Lin et al. 2004, paper ref [18]).

VizTree visualizes a time series as a trie of its SAX words: branch
thickness encodes frequency, so *thick* paths are motifs and *thin*
paths are potential anomalies — both visible at once.  This module
provides the data structure behind that view: a frequency-annotated
trie over the sliding-window SAX words, with rare/frequent branch
queries and a text rendering.

It is a baseline/diagnostic, not a detector of the paper's caliber: the
trie sees fixed-length words only and discards their ordering, which is
precisely the information the grammar-based approach exploits (§3.1:
"the sequential ordering of SAX words provides valuable contextual
information").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.exceptions import ParameterError
from repro.sax.discretize import NumerosityReduction, discretize


@dataclass
class TrieNode:
    """One trie node: the words passing through it and their positions."""

    count: int = 0
    positions: list[int] = field(default_factory=list)
    children: dict[str, "TrieNode"] = field(default_factory=dict)


class SAXTrie:
    """Frequency trie over a series' sliding-window SAX words.

    Parameters
    ----------
    series, window, paa_size, alphabet_size:
        Discretization parameters; every window contributes its word
        (no numerosity reduction — VizTree counts raw frequencies).

    Examples
    --------
    >>> import numpy as np
    >>> t = np.arange(600)
    >>> trie = SAXTrie(np.sin(2 * np.pi * t / 60), 30, 3, 3)
    >>> trie.total_words == 600 - 30 + 1
    True
    """

    def __init__(
        self,
        series: np.ndarray,
        window: int,
        paa_size: int,
        alphabet_size: int,
    ) -> None:
        disc = discretize(
            np.asarray(series, dtype=float),
            window,
            paa_size,
            alphabet_size,
            strategy=NumerosityReduction.NONE,
        )
        self.window = window
        self.word_length = paa_size
        self.alphabet_size = alphabet_size
        self.root = TrieNode()
        self.total_words = 0
        for sax in disc.words:
            self._insert(sax.word, sax.offset)

    def _insert(self, word: str, position: int) -> None:
        node = self.root
        node.count += 1
        for letter in word:
            node = node.children.setdefault(letter, TrieNode())
            node.count += 1
        node.positions.append(position)
        self.total_words += 1

    # -- queries -----------------------------------------------------------

    def frequency(self, prefix: str) -> int:
        """How many windows' words start with *prefix* (0 if none)."""
        node = self.root
        for letter in prefix:
            child = node.children.get(letter)
            if child is None:
                return 0
            node = child
        return node.count

    def word_positions(self, word: str) -> list[int]:
        """Window start offsets of an exact word (empty if absent)."""
        if len(word) != self.word_length:
            raise ParameterError(
                f"word length {len(word)} != trie word length {self.word_length}"
            )
        node = self.root
        for letter in word:
            child = node.children.get(letter)
            if child is None:
                return []
            node = child
        return list(node.positions)

    def _leaves(self) -> Iterator[tuple[str, TrieNode]]:
        stack: list[tuple[str, TrieNode]] = [("", self.root)]
        while stack:
            prefix, node = stack.pop()
            if len(prefix) == self.word_length:
                yield prefix, node
                continue
            for letter, child in sorted(node.children.items()):
                stack.append((prefix + letter, child))

    def rare_words(self, *, max_count: Optional[int] = None) -> list[tuple[str, int]]:
        """Words with the lowest frequencies (VizTree's thin branches).

        Sorted ascending by count; *max_count* truncates by frequency.
        """
        leaves = sorted(
            ((word, node.count) for word, node in self._leaves()),
            key=lambda item: (item[1], item[0]),
        )
        if max_count is not None:
            leaves = [(w, c) for w, c in leaves if c <= max_count]
        return leaves

    def frequent_words(self, *, top_k: int = 5) -> list[tuple[str, int]]:
        """The thickest branches (motif candidates)."""
        if top_k < 1:
            raise ParameterError(f"top_k must be >= 1, got {top_k}")
        leaves = sorted(
            ((word, node.count) for word, node in self._leaves()),
            key=lambda item: (-item[1], item[0]),
        )
        return leaves[:top_k]

    def anomaly_candidates(self, *, max_candidates: int = 5) -> list[tuple[int, str, int]]:
        """(position, word, count) of the rarest words' first windows.

        This is VizTree's anomaly workflow: click the thinnest branch,
        inspect where it occurs.
        """
        if max_candidates < 1:
            raise ParameterError(
                f"max_candidates must be >= 1, got {max_candidates}"
            )
        out: list[tuple[int, str, int]] = []
        for word, count in self.rare_words():
            for position in self.word_positions(word):
                out.append((position, word, count))
                if len(out) >= max_candidates:
                    return out
        return out

    # -- rendering ---------------------------------------------------------

    def render(self, *, max_depth: Optional[int] = None) -> str:
        """ASCII rendering: one line per branch, width bar per count."""
        if max_depth is None:
            max_depth = self.word_length
        lines: list[str] = [
            f"SAX trie: {self.total_words} words of length "
            f"{self.word_length}, alphabet {self.alphabet_size}"
        ]
        total = max(1, self.root.count)

        def walk(node: TrieNode, prefix: str, depth: int) -> None:
            if depth > max_depth:
                return
            for letter, child in sorted(node.children.items()):
                share = child.count / total
                bar = "#" * max(1, int(round(share * 40)))
                lines.append(
                    f"{'  ' * depth}{prefix + letter:<{self.word_length}s} "
                    f"{child.count:>6d} {bar}"
                )
                walk(child, prefix + letter, depth + 1)

        walk(self.root, "", 0)
        return "\n".join(lines)

"""Time-series-bitmap anomaly detection (Wei et al. 2005, paper ref [30]).

Another related-work baseline: the "assumption-free" detector slides two
adjacent windows (a *lag* window of past data and a *lead* window of
incoming data) along the series, represents each by the frequency map of
SAX subwords of length L (the "bitmap": for alphabet 4 and L = 2 a 4x4
chaos-game grid, here kept as a flat frequency vector), and scores the
boundary point by the distance between the two normalized frequency
maps: a structural change makes the lead window's subword statistics
diverge from the lag's.

Strengths: parameter-light, online-friendly.  Weaknesses the paper's
approach addresses: a fixed lead/lag length must be chosen, and the
score marks *change points* rather than delimiting variable-length
anomalous subsequences.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.anomaly import Anomaly
from repro.exceptions import ParameterError
from repro.sax.sax import sax_word


def _subword_frequencies(word: str, subword_length: int) -> Counter:
    counts: Counter = Counter()
    for i in range(len(word) - subword_length + 1):
        counts[word[i : i + subword_length]] += 1
    return counts


def _bitmap_distance(a: Counter, b: Counter) -> float:
    """Euclidean distance between normalized frequency maps."""
    total_a = sum(a.values()) or 1
    total_b = sum(b.values()) or 1
    keys = set(a) | set(b)
    return float(
        np.sqrt(
            sum(
                (a[k] / total_a - b[k] / total_b) ** 2
                for k in keys
            )
        )
    )


def bitmap_scores(
    series: np.ndarray,
    *,
    lag: int = 200,
    lead: int = 100,
    alphabet_size: int = 4,
    subword_length: int = 2,
    word_fraction: int = 4,
    stride: int = 1,
) -> np.ndarray:
    """Change score for every applicable series position.

    At position *p*, the lag window ``[p - lag, p)`` and the lead window
    ``[p, p + lead)`` are discretized (one SAX letter per
    *word_fraction* points) and the distance between their subword
    frequency maps is the score of *p*.  Positions without a full
    lag+lead neighbourhood score 0.

    Returns an array of the same length as *series*.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ParameterError(f"series must be 1-d, got shape {series.shape}")
    if lag < 2 or lead < 2:
        raise ParameterError("lag and lead must both be >= 2")
    if subword_length < 1:
        raise ParameterError(f"subword_length must be >= 1, got {subword_length}")
    if stride < 1:
        raise ParameterError(f"stride must be >= 1, got {stride}")
    if series.size < lag + lead:
        raise ParameterError(
            f"series of length {series.size} shorter than lag+lead "
            f"({lag}+{lead})"
        )

    lag_letters = max(subword_length, lag // word_fraction)
    lead_letters = max(subword_length, lead // word_fraction)

    scores = np.zeros(series.size, dtype=float)
    for p in range(lag, series.size - lead + 1, stride):
        lag_word = sax_word(series[p - lag : p], lag_letters, alphabet_size)
        lead_word = sax_word(series[p : p + lead], lead_letters, alphabet_size)
        scores[p] = _bitmap_distance(
            _subword_frequencies(lag_word, subword_length),
            _subword_frequencies(lead_word, subword_length),
        )
    if stride > 1:
        # fill the gaps by carrying the last computed score forward
        last = 0.0
        for i in range(series.size):
            if scores[i] != 0.0:
                last = scores[i]
            else:
                scores[i] = last if i >= lag else 0.0
    return scores


def bitmap_anomalies(
    series: np.ndarray,
    *,
    num_anomalies: int = 1,
    lag: int = 200,
    lead: int = 100,
    alphabet_size: int = 4,
    subword_length: int = 2,
    stride: int = 4,
) -> list[Anomaly]:
    """Top-k change regions by bitmap score.

    Peaks are extracted greedily: the highest-scoring position claims a
    ``lead``-sized interval, positions within one lead-length of a
    claimed peak are suppressed, repeat.
    """
    if num_anomalies < 1:
        raise ParameterError(f"num_anomalies must be >= 1, got {num_anomalies}")
    scores = bitmap_scores(
        series,
        lag=lag,
        lead=lead,
        alphabet_size=alphabet_size,
        subword_length=subword_length,
        stride=stride,
    )
    working = scores.copy()
    anomalies: list[Anomaly] = []
    for rank in range(num_anomalies):
        peak = int(np.argmax(working))
        if working[peak] <= 0.0:
            break
        anomalies.append(
            Anomaly(
                start=peak,
                end=min(series.size, peak + lead),
                score=float(scores[peak]),
                rank=rank,
                source="bitmap",
            )
        )
        lo = max(0, peak - lead)
        hi = min(series.size, peak + lead)
        working[lo:hi] = 0.0
    return anomalies

"""Vectorized batch distance kernels for the discord searches.

The paper measures every algorithm in *distance-function calls* because
distance computation is ≥99 % of runtime.  The scalar reference
implementations in :mod:`repro.timeseries.distance` make each of those
calls a round-trip through Python; this module provides the batched
numpy primitives that the discord searches use instead, while keeping
the *logical* call accounting bit-identical (see
:meth:`repro.timeseries.distance.DistanceCounter.batch`):

* **Cumulative-sum window statistics** — mean/std of every sliding
  window (or of any ``[start, end)`` interval, via :class:`SeriesStats`)
  in O(m) total, replacing per-window ``znorm`` calls.
* **One-vs-all squared Euclidean** — the dot-product identity
  ``‖a − b‖² = ‖a‖² + ‖b‖² − 2·a·b`` turns an inner loop of pairwise
  distances into one matrix-vector product.
* **Sliding-alignment profile** — the variable-length Eq. 1 distance
  (shorter subsequence slid along the longer) for *all* offsets at once
  via :func:`numpy.correlate` plus a squared cumulative sum, replacing
  the per-offset Python loop.
* **Batch early-abandon filtering** — distances above a cutoff are
  mapped to ``inf`` wholesale, matching the scalar early-abandon
  contract (the caller only needs to know the true distance exceeds the
  cutoff).

Every kernel is an exact (to floating-point roundoff) replacement for
its scalar counterpart; ``tests/test_kernels.py`` asserts agreement to
1e-9 on random inputs and identical ``DistanceCounter`` accounting on
the discord-search fixtures.  The scalar path stays available in every
consumer via ``backend="scalar"``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ParameterError
from repro.timeseries.array_api import ArrayNamespace, resolve_namespace
from repro.timeseries.windows import num_windows, sliding_windows
from repro.timeseries.znorm import DEFAULT_FLATNESS_THRESHOLD, znorm_rows

__all__ = [
    "BACKENDS",
    "validate_backend",
    "SeriesStats",
    "WindowMatrix",
    "sliding_window_stats",
    "znorm_sliding_windows",
    "row_sqnorms",
    "sq_cumsum",
    "one_vs_all_sq_euclidean",
    "one_vs_all_euclidean",
    "all_pairs_sq_euclidean_tile",
    "tile_plan",
    "early_abandon_filter",
    "sliding_alignment_sq_profile",
    "sliding_min_normalized_distance",
    "variable_length_kernel",
    "first_below",
    "running_min_points",
]


#: Recognized distance backends for the discord searches.  ``kernel``
#: is the block-vectorized default, ``scalar`` the per-pair reference
#: path, and ``batch`` the tiled GEMM path behind the array-API seam
#: (:mod:`repro.discord.batch`).  All three visit the same pairs in the
#: same logical order, so results and call counts are identical.
BACKENDS = ("kernel", "scalar", "batch")


def validate_backend(backend: str) -> None:
    """Raise :class:`ParameterError` unless *backend* is recognized."""
    if backend not in BACKENDS:
        raise ParameterError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )


# ---------------------------------------------------------------------------
# Cumulative-sum window statistics
# ---------------------------------------------------------------------------


class SeriesStats:
    """O(1) mean/std/z-normalization of any interval after O(m) setup.

    Precomputes the cumulative sums of the series and of its squares so
    the statistics of an arbitrary ``[start, end)`` interval come from
    two subtractions instead of a fresh pass over the values.  This is
    the batch replacement for calling :func:`repro.timeseries.znorm.znorm`
    once per candidate window.
    """

    __slots__ = ("series", "_cumsum", "_sq_cumsum")

    def __init__(self, series: np.ndarray):
        series = np.ascontiguousarray(series, dtype=float)
        if series.ndim != 1:
            raise ParameterError(
                f"SeriesStats expects a 1-d series, got shape {series.shape}"
            )
        self.series = series
        self._cumsum = np.concatenate(([0.0], np.cumsum(series)))
        self._sq_cumsum = np.concatenate(([0.0], np.cumsum(series * series)))

    @classmethod
    def from_cumsums(
        cls, series: np.ndarray, cumsum: np.ndarray, sq_cumsum: np.ndarray
    ) -> "SeriesStats":
        """Adopt precomputed cumulative sums instead of recomputing them.

        The parallel workers receive the series and both cumulative-sum
        arrays through shared memory; this constructor wraps the shared
        views without copying or re-summing.
        """
        series = np.asarray(series, dtype=float)
        if series.ndim != 1:
            raise ParameterError(
                f"SeriesStats expects a 1-d series, got shape {series.shape}"
            )
        if cumsum.shape != (series.size + 1,) or sq_cumsum.shape != (series.size + 1,):
            raise ParameterError(
                f"cumulative sums must have length {series.size + 1}, got "
                f"{cumsum.shape} and {sq_cumsum.shape}"
            )
        stats = object.__new__(cls)
        stats.series = series
        stats._cumsum = np.asarray(cumsum, dtype=float)
        stats._sq_cumsum = np.asarray(sq_cumsum, dtype=float)
        return stats

    @property
    def cumsums(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(cumsum, sq_cumsum)`` arrays (for sharing with workers)."""
        return self._cumsum, self._sq_cumsum

    def _check(self, start: int, end: int) -> None:
        if not (0 <= start < end <= self.series.size):
            raise ParameterError(
                f"interval [{start}, {end}) out of bounds for series "
                f"of length {self.series.size}"
            )

    def mean(self, start: int, end: int) -> float:
        """Mean of ``series[start:end]``."""
        self._check(start, end)
        return float(self._cumsum[end] - self._cumsum[start]) / (end - start)

    def std(self, start: int, end: int) -> float:
        """Population standard deviation of ``series[start:end]``."""
        self._check(start, end)
        n = end - start
        mean = (self._cumsum[end] - self._cumsum[start]) / n
        ex2 = (self._sq_cumsum[end] - self._sq_cumsum[start]) / n
        return float(np.sqrt(max(0.0, ex2 - mean * mean)))

    def znorm(
        self,
        start: int,
        end: int,
        threshold: float = DEFAULT_FLATNESS_THRESHOLD,
    ) -> np.ndarray:
        """Z-normalized copy of ``series[start:end]`` with the flatness rule.

        Matches :func:`repro.timeseries.znorm.znorm`: intervals whose
        standard deviation falls below *threshold* are mean-centered but
        never variance-scaled.
        """
        self._check(start, end)
        std = self.std(start, end)
        mean = self.mean(start, end)
        values = self.series[start:end] - mean
        if std >= threshold:
            values /= std
        return values


def sliding_window_stats(
    series: np.ndarray,
    window: int,
    *,
    stats: Optional[SeriesStats] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Mean and population std of every sliding window in O(m).

    Returns ``(means, stds)``, each of length ``m - window + 1``,
    computed from cumulative sums rather than a per-window pass.  Pass a
    prebuilt :class:`SeriesStats` over the same series to reuse its
    cumulative sums instead of recomputing them (the results are
    bit-identical either way, since both build the same arrays).
    """
    series = np.ascontiguousarray(series, dtype=float)
    k = num_windows(series.size, window)
    if k == 0:
        return np.empty(0), np.empty(0)
    if stats is not None:
        if stats.series.size != series.size:
            raise ParameterError(
                f"stats built over a series of length {stats.series.size}, "
                f"got one of length {series.size}"
            )
        cumsum, sq = stats.cumsums
    else:
        cumsum = np.concatenate(([0.0], np.cumsum(series)))
        sq = np.concatenate(([0.0], np.cumsum(series * series)))
    means = (cumsum[window:] - cumsum[:-window]) / window
    ex2 = (sq[window:] - sq[:-window]) / window
    variances = np.clip(ex2 - means * means, 0.0, None)
    return means, np.sqrt(variances)


def znorm_sliding_windows(
    series: np.ndarray,
    window: int,
    threshold: float = DEFAULT_FLATNESS_THRESHOLD,
    *,
    stats: Optional[SeriesStats] = None,
) -> np.ndarray:
    """Z-normalized sliding-window matrix using cumulative-sum statistics.

    Equivalent (to roundoff) to
    ``znorm_rows(sliding_windows(series, window))`` but computes the
    per-window mean/std in O(m) instead of O(m·window).  A prebuilt
    *stats* over the same series skips the cumulative-sum pass entirely.
    """
    means, stds = sliding_window_stats(series, window, stats=stats)
    view = sliding_windows(series, window)
    scales = np.where(stds < threshold, 1.0, stds)
    return (view - means[:, None]) / scales[:, None]


class WindowMatrix:
    """Per-search cache of the sliding-window matrix and its statistics.

    Every fixed-length engine needs the same four artifacts — the raw
    window view, the z-normalized window matrix, the per-row squared
    norms, and (for pruning/discretization consumers) the series'
    cumulative-sum statistics.  Before this cache each rank of an
    iterated search recomputed all of them; building one
    :class:`WindowMatrix` per search and passing it down makes each a
    compute-once property.

    The normalized matrix deliberately comes from
    :func:`repro.timeseries.znorm.znorm_rows` over the window view —
    the exact arithmetic the engines always used — rather than the
    cumulative-sum shortcut, so distance trajectories (and the pinned
    golden call counts) are bit-identical to the pre-cache code.  The
    cumulative sums back :meth:`window_stats` and any consumer that
    wants interval statistics without another O(m·window) pass.
    """

    __slots__ = ("series", "window", "_stats", "_view", "_normalized", "_sqnorms")

    def __init__(
        self,
        series: np.ndarray,
        window: int,
        *,
        stats: Optional[SeriesStats] = None,
    ):
        series = np.ascontiguousarray(series, dtype=float)
        if series.ndim != 1:
            raise ParameterError(
                f"WindowMatrix expects a 1-d series, got shape {series.shape}"
            )
        if num_windows(series.size, window) == 0:
            raise ParameterError(
                f"series of length {series.size} has no windows of size {window}"
            )
        self.series = series
        self.window = window
        self._stats = stats
        self._view: Optional[np.ndarray] = None
        self._normalized: Optional[np.ndarray] = None
        self._sqnorms: Optional[np.ndarray] = None

    @property
    def stats(self) -> SeriesStats:
        """Cumulative-sum statistics of the series (built once)."""
        if self._stats is None:
            self._stats = SeriesStats(self.series)
        return self._stats

    @property
    def view(self) -> np.ndarray:
        """The raw ``(k, window)`` sliding-window view (zero-copy)."""
        if self._view is None:
            self._view = sliding_windows(self.series, self.window)
        return self._view

    @property
    def normalized(self) -> np.ndarray:
        """Z-normalized window matrix (the engines' distance substrate)."""
        if self._normalized is None:
            self._normalized = znorm_rows(self.view)
        return self._normalized

    @property
    def sqnorms(self) -> np.ndarray:
        """Squared row norms of :attr:`normalized`, computed once."""
        if self._sqnorms is None:
            self._sqnorms = row_sqnorms(self.normalized)
        return self._sqnorms

    def window_stats(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-window ``(means, stds)`` reusing the cached cumulative sums."""
        return sliding_window_stats(self.series, self.window, stats=self.stats)


# ---------------------------------------------------------------------------
# One-vs-all Euclidean kernels
# ---------------------------------------------------------------------------


def row_sqnorms(matrix: np.ndarray) -> np.ndarray:
    """Squared L2 norm of every row — precompute once per search."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ParameterError(f"row_sqnorms expects a 2-d array, got {matrix.shape}")
    return np.einsum("ij,ij->i", matrix, matrix)


def sq_cumsum(values: np.ndarray) -> np.ndarray:
    """``[0, v₀², v₀²+v₁², ...]`` — window sums of squares in O(1) each."""
    values = np.asarray(values, dtype=float)
    return np.concatenate(([0.0], np.cumsum(values * values)))


def one_vs_all_sq_euclidean(
    query: np.ndarray,
    matrix: np.ndarray,
    *,
    query_sqnorm: Optional[float] = None,
    sqnorms: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Squared Euclidean distance from *query* to every row of *matrix*.

    Uses ``‖a − b‖² = ‖a‖² + ‖b‖² − 2·a·b`` so the whole batch is one
    matrix-vector product.  Pass precomputed norms to skip their
    recomputation inside a search loop.  Results are clipped at zero
    (the identity can go epsilon-negative for near-identical rows).
    """
    query = np.asarray(query, dtype=float)
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] != query.size:
        raise ParameterError(
            f"shape mismatch: query {query.shape} vs matrix {matrix.shape}"
        )
    if query_sqnorm is None:
        query_sqnorm = float(np.dot(query, query))
    if sqnorms is None:
        sqnorms = row_sqnorms(matrix)
    sq = query_sqnorm + sqnorms - 2.0 * (matrix @ query)
    return np.clip(sq, 0.0, None)


def one_vs_all_euclidean(
    query: np.ndarray,
    matrix: np.ndarray,
    *,
    cutoff: float = float("inf"),
    query_sqnorm: Optional[float] = None,
    sqnorms: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Euclidean distances from *query* to every row, with batch abandoning.

    Distances strictly above *cutoff* come back as ``inf`` — the batch
    analogue of :func:`repro.timeseries.distance.euclidean_early_abandon`,
    whose callers only need to know the true distance exceeds the cutoff.
    """
    sq = one_vs_all_sq_euclidean(
        query, matrix, query_sqnorm=query_sqnorm, sqnorms=sqnorms
    )
    dists = np.sqrt(sq)
    return early_abandon_filter(dists, cutoff)


def tile_plan(
    n_rows: int,
    n_cols: int,
    *,
    target_elems: int = 1 << 20,
    min_rows: int = 1,
    max_rows: int = 128,
) -> list[tuple[int, int]]:
    """Partition *n_rows* candidates into GEMM-sized row tiles.

    Returns ``[(lo, hi), ...]`` half-open row slices whose tiles hold
    roughly *target_elems* matrix elements each (``rows × n_cols``),
    clamped to ``[min_rows, max_rows]`` rows per tile.  The default
    targets ~8 MB float64 tiles — big enough to keep a BLAS GEMM out of
    the per-call overhead regime, small enough to stay cache-friendly
    and to bound the memory a single tile pins.
    """
    if n_rows < 0 or n_cols < 0:
        raise ParameterError(
            f"tile_plan needs non-negative dimensions, got {n_rows}x{n_cols}"
        )
    if min_rows < 1 or max_rows < min_rows:
        raise ParameterError(
            f"tile_plan needs 1 <= min_rows <= max_rows, "
            f"got min_rows={min_rows}, max_rows={max_rows}"
        )
    if n_rows == 0:
        return []
    rows = target_elems // max(1, n_cols)
    rows = max(min_rows, min(max_rows, rows))
    return [(lo, min(lo + rows, n_rows)) for lo in range(0, n_rows, rows)]


def all_pairs_sq_euclidean_tile(
    queries: np.ndarray,
    matrix: np.ndarray,
    *,
    query_sqnorms: Optional[np.ndarray] = None,
    sqnorms: Optional[np.ndarray] = None,
    xp: Optional[ArrayNamespace] = None,
) -> np.ndarray:
    """Squared Euclidean distances from every query row to every matrix row.

    The tile form of :func:`one_vs_all_sq_euclidean`, producing the
    whole ``(q, k)`` distance tile, clipped at zero.  This is the batch
    backend's workhorse.

    On the default NumPy namespace the cross terms are computed one
    query row at a time — the exact ``matrix @ query`` product
    :func:`one_vs_all_sq_euclidean` uses — so every element is
    bit-identical to the one-vs-all kernel no matter how the queries
    are tiled.  A single multi-row GEMM is *not* equivalent: BLAS
    rounds gemm and gemv accumulations differently (observably 1 ulp
    apart for ≥ 3 query rows), and on a knife-edge score tie that ulp
    flips a strict comparison in the search replay, changing discord
    order and call ledgers with the tile shape.  Accelerator
    namespaces (CuPy/torch) keep the single ``(q, w) @ (w, k)`` GEMM
    through the array-API seam — a GPU GEMM never promised CPU-BLAS
    bit-equality in the first place.
    """
    queries = np.asarray(queries, dtype=float)
    matrix = np.asarray(matrix, dtype=float)
    if queries.ndim != 2 or matrix.ndim != 2 or queries.shape[1] != matrix.shape[1]:
        raise ParameterError(
            f"shape mismatch: queries {queries.shape} vs matrix {matrix.shape}"
        )
    if query_sqnorms is None:
        query_sqnorms = row_sqnorms(queries)
    if sqnorms is None:
        sqnorms = row_sqnorms(matrix)
    if xp is None:
        xp = resolve_namespace()
    if xp.name == "numpy":
        query_sqnorms = np.asarray(query_sqnorms, dtype=float)
        sqnorms = np.asarray(sqnorms, dtype=float)
        gram = np.empty((queries.shape[0], matrix.shape[0]))
        for i in range(queries.shape[0]):
            gram[i] = matrix @ queries[i]
        sq = query_sqnorms[:, None] + sqnorms[None, :] - 2.0 * gram
        return np.clip(sq, 0.0, None)
    a = xp.asarray(queries)
    b = xp.asarray(matrix)
    gram = xp.matmul(a, xp.transpose(b))
    sq = (
        xp.asarray(query_sqnorms)[:, None]
        + xp.asarray(sqnorms)[None, :]
        - 2.0 * gram
    )
    return xp.to_numpy(xp.clip_min(sq, 0.0))


def early_abandon_filter(dists: np.ndarray, cutoff: float) -> np.ndarray:
    """Map every distance strictly above *cutoff* to ``inf``.

    Mirrors the scalar early-abandon contract: an abandoned computation
    reports ``inf``, a surviving one reports its true value.
    """
    dists = np.asarray(dists, dtype=float)
    if not np.isfinite(cutoff):
        return dists
    return np.where(dists > cutoff, np.inf, dists)


def running_min_points(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Positions and values where the running minimum strictly decreases.

    Entry *i* is kept when ``min(values[:i+1]) < min(values[:i])`` (with
    the empty-prefix minimum taken as ``inf``, so a leading ``inf`` run
    is never kept).  This is the vectorized form of the scalar inner
    loop's ``if dist < nearest`` bookkeeping: the kept positions are
    exactly the pairs where a serial scan would have updated its
    nearest-so-far — everything the parallel replay needs to reconstruct
    any prefix of the scan.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ParameterError(
            f"running_min_points expects a 1-d array, got shape {values.shape}"
        )
    if values.size == 0:
        return np.empty(0, dtype=np.intp), np.empty(0)
    mins = np.minimum.accumulate(values)
    prev = np.concatenate(([np.inf], mins[:-1]))
    idx = np.nonzero(mins < prev)[0]
    return idx, values[idx]


def first_below(values: np.ndarray, threshold: float) -> int:
    """Index of the first entry strictly below *threshold*, or -1.

    The batched searches use this to replay the scalar inner loop's
    prune decision: the pair that would have triggered the break is the
    last one that logically "happened" (and is counted).
    """
    hits = np.nonzero(values < threshold)[0]
    return int(hits[0]) if hits.size else -1


# ---------------------------------------------------------------------------
# Sliding-alignment (variable-length, Eq. 1) kernels
# ---------------------------------------------------------------------------


def sliding_alignment_sq_profile(
    short: np.ndarray,
    long_: np.ndarray,
    *,
    short_sqnorm: Optional[float] = None,
    long_sq_cumsum: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Squared Euclidean distance of *short* against every alignment of *long_*.

    Entry ``o`` is ``‖short − long_[o : o + n]‖²`` for each of the
    ``len(long_) − n + 1`` offsets, computed in one shot: the cross
    terms via :func:`numpy.correlate` and the window energies via a
    squared cumulative sum.  Pass the precomputed pieces when scanning
    many pairs against the same sequences.
    """
    short = np.asarray(short, dtype=float)
    long_ = np.asarray(long_, dtype=float)
    n = short.size
    if n == 0 or long_.size < n:
        raise ParameterError(
            f"alignment needs 0 < len(short) <= len(long), "
            f"got {n} vs {long_.size}"
        )
    if short_sqnorm is None:
        short_sqnorm = float(np.dot(short, short))
    if long_sq_cumsum is None:
        long_sq_cumsum = sq_cumsum(long_)
    window_energy = long_sq_cumsum[n:] - long_sq_cumsum[:-n]
    cross = np.correlate(long_, short, mode="valid")
    sq = short_sqnorm + window_energy - 2.0 * cross
    return np.clip(sq, 0.0, None)


def sliding_min_normalized_distance(
    short: np.ndarray,
    long_: np.ndarray,
    *,
    short_sqnorm: Optional[float] = None,
    long_sq_cumsum: Optional[np.ndarray] = None,
) -> float:
    """Best (minimum) length-normalized distance over all alignments.

    The kernel form of the paper's Eq. 1 distance for already-normalized
    inputs: ``min over offsets of sqrt(‖short − segment‖² / len(short))``.
    """
    profile = sliding_alignment_sq_profile(
        short, long_, short_sqnorm=short_sqnorm, long_sq_cumsum=long_sq_cumsum
    )
    return float(np.sqrt(profile.min() / short.size))


def variable_length_kernel(p: np.ndarray, q: np.ndarray) -> float:
    """Kernel equivalent of ``variable_length_distance(normalize_inputs=False)``.

    Orders the pair by length and evaluates the full alignment profile
    in vectorized form; equal lengths degenerate to a single offset.
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.size == 0 or q.size == 0:
        raise ParameterError("variable_length_kernel requires non-empty inputs")
    short, long_ = (p, q) if p.size <= q.size else (q, p)
    return sliding_min_normalized_distance(short, long_)

"""Distance functions and the instrumented distance counter.

The paper compares discord-discovery algorithms by the *number of calls to
the distance function* (Table 1), noting that distance computation accounts
for up to 99 % of runtime.  Every discord algorithm in this library
therefore draws its distances through a :class:`DistanceCounter`, which
tallies calls and supports early abandoning.

Two distance flavours are used:

* plain Euclidean distance between equal-length (z-normalized)
  subsequences — used by brute force and HOTSAX;
* length-normalized Euclidean distance (paper Eq. 1) between
  variable-length subsequences — used by RRA.  For unequal lengths the
  shorter sequence is slid along the longer one and the best (minimum)
  alignment is kept; see DESIGN.md §5.

The functions here are the *scalar reference* path (``backend="scalar"``
in the discord searches); the vectorized batch equivalents live in
:mod:`repro.timeseries.kernels` and are the default backend.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.timeseries.znorm import znorm


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Plain Euclidean distance between two equal-length vectors."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ParameterError(
            f"euclidean requires equal shapes, got {a.shape} vs {b.shape}"
        )
    return float(np.sqrt(np.sum((a - b) ** 2)))


def euclidean_early_abandon(a: np.ndarray, b: np.ndarray, cutoff: float) -> float:
    """Euclidean distance with early abandoning.

    As soon as the partial sum of squared differences exceeds
    ``cutoff ** 2`` the computation stops and ``inf`` is returned; the
    caller only needs to know that the true distance is above *cutoff*.

    The scan proceeds in chunks so the common case stays vectorized.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ParameterError(
            f"euclidean requires equal shapes, got {a.shape} vs {b.shape}"
        )
    if not np.isfinite(cutoff):
        return euclidean(a, b)
    limit = cutoff * cutoff
    total = 0.0
    n = a.size
    chunk = 64
    for start in range(0, n, chunk):
        diff = a[start : start + chunk] - b[start : start + chunk]
        total += float(np.dot(diff, diff))
        if total > limit:
            return float("inf")
    return float(np.sqrt(total))


def normalized_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance divided by the square root of the length.

    This is the paper's Eq. (1):
    ``Dist(p, q) = sqrt( sum (p_i - q_i)^2 / Length(p) )``.
    Both inputs must have the same length.
    """
    a = np.asarray(a, dtype=float)
    if a.size == 0:
        raise ParameterError("normalized_euclidean requires non-empty input")
    return euclidean(a, b) / float(np.sqrt(a.size))


def variable_length_distance(
    p: np.ndarray,
    q: np.ndarray,
    *,
    normalize_inputs: bool = True,
) -> float:
    """Length-normalized distance between possibly unequal subsequences.

    Implements the RRA distance (paper Eq. 1) generalized to unequal
    lengths: the shorter subsequence slides along the longer one, each
    alignment is scored with the length-normalized Euclidean distance over
    the overlap, and the minimum is returned.  With *normalize_inputs*
    both subsequences are z-normalized first (the paper always compares
    z-normalized shapes).
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.size == 0 or q.size == 0:
        raise ParameterError("variable_length_distance requires non-empty inputs")
    if normalize_inputs:
        p = znorm(p)
        q = znorm(q)
    if p.size == q.size:
        return normalized_euclidean(p, q)
    short, long_ = (p, q) if p.size < q.size else (q, p)
    n = short.size
    best = float("inf")
    for offset in range(long_.size - n + 1):
        segment = long_[offset : offset + n]
        dist = normalized_euclidean(short, segment)
        if dist < best:
            best = dist
    return best


class DistanceCounter:
    """Counts distance-function invocations for the benchmark harness.

    One counter instance is threaded through a single discord search; its
    :attr:`calls` attribute afterwards holds the number reported in
    Table 1.  Early-abandoned computations still count as one call, same
    as in the paper's accounting (a call is a call, abandoned or not).

    The lower-bound pruning layer (:mod:`repro.timeseries.lowerbound`)
    splits the paper-faithful tally into a ledger:

    * :attr:`calls` — logical pair visits; identical with pruning on or
      off, so Table 1 accounting never shifts;
    * :attr:`true_calls` — pairs that actually reached the Euclidean
      kernel;
    * :attr:`pruned` — pairs discharged by an admissible lower bound
      before the kernel ran (``calls == true_calls + pruned`` always);
    * :attr:`lb_calls` — lower-bound evaluations *performed* (physical,
      diagnostic: parallel workers over-scan speculatively, so this may
      exceed the logical pair count; the logical split above is derived
      from the serial-order replay and is deterministic).
    """

    __slots__ = ("calls", "true_calls", "lb_calls", "pruned")

    def __init__(self) -> None:
        self.calls = 0
        self.true_calls = 0
        self.lb_calls = 0
        self.pruned = 0

    def reset(self) -> None:
        """Zero the counter (reuse between runs)."""
        self.calls = 0
        self.true_calls = 0
        self.lb_calls = 0
        self.pruned = 0

    def euclidean(self, a: np.ndarray, b: np.ndarray, cutoff: float = float("inf")) -> float:
        """Counted Euclidean distance with optional early abandoning."""
        self.calls += 1
        self.true_calls += 1
        return euclidean_early_abandon(a, b, cutoff)

    def batch(self, count: int) -> None:
        """Record *count* logical calls evaluated by a batched kernel.

        The kernel backends (:mod:`repro.timeseries.kernels`) evaluate
        many candidate pairs with one numpy operation but still account
        one logical call per pair the scalar loop would have visited —
        including the pair that triggers an early-abandon break — so
        Table 1 call counts are bit-identical across backends.
        """
        if count < 0:
            raise ParameterError(f"batch count must be >= 0, got {count}")
        self.calls += int(count)
        self.true_calls += int(count)

    def pruned_batch(self, count: int) -> None:
        """Record *count* pairs discharged by an admissible lower bound.

        Each still counts as one logical call (:attr:`calls`) so the
        paper-faithful tally is invariant under pruning; the split into
        :attr:`pruned` records that the kernel never ran for them.
        """
        if count < 0:
            raise ParameterError(f"pruned count must be >= 0, got {count}")
        self.calls += int(count)
        self.pruned += int(count)

    def lb_batch(self, count: int) -> None:
        """Record *count* physical lower-bound evaluations (diagnostic)."""
        if count < 0:
            raise ParameterError(f"lb count must be >= 0, got {count}")
        self.lb_calls += int(count)

    def variable_length(
        self,
        p: np.ndarray,
        q: np.ndarray,
        *,
        normalize_inputs: bool = True,
    ) -> float:
        """Counted variable-length (Eq. 1) distance."""
        self.calls += 1
        self.true_calls += 1
        return variable_length_distance(p, q, normalize_inputs=normalize_inputs)

    def merge(self, other: "DistanceCounter") -> "DistanceCounter":
        """Fold another counter's tally into this one (returns self).

        The parallel execution layer gives every worker shard its own
        counter; the parent merges them so the aggregate matches the
        serial run without reaching into private fields.  All four
        ledger fields travel together — a merge can never drop the
        pruning split.
        """
        if not isinstance(other, DistanceCounter):
            raise ParameterError(
                f"can only merge a DistanceCounter, got {type(other).__name__}"
            )
        self.calls += other.calls
        self.true_calls += other.true_calls
        self.lb_calls += other.lb_calls
        self.pruned += other.pruned
        return self

    def __iadd__(self, other: "DistanceCounter") -> "DistanceCounter":
        if not isinstance(other, DistanceCounter):
            return NotImplemented
        return self.merge(other)

    def ledger(self) -> dict:
        """The split ledger as a plain dict (checkpoints, benchmarks)."""
        return {
            "calls": self.calls,
            "true_calls": self.true_calls,
            "lb_calls": self.lb_calls,
            "pruned": self.pruned,
        }

    def restore_ledger(self, data: dict) -> None:
        """Restore a ledger saved by :meth:`ledger` (checkpoint resume)."""
        self.calls = int(data["calls"])
        self.true_calls = int(data.get("true_calls", data["calls"]))
        self.lb_calls = int(data.get("lb_calls", 0))
        self.pruned = int(data.get("pruned", 0))

    def __repr__(self) -> str:
        if self.pruned or self.lb_calls:
            return (
                f"DistanceCounter(calls={self.calls}, true_calls={self.true_calls}, "
                f"lb_calls={self.lb_calls}, pruned={self.pruned})"
            )
        return f"DistanceCounter(calls={self.calls})"

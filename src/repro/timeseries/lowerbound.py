"""Admissible lower-bound pruning for the discord searches.

The paper's cost metric is the number of *true* distance-function calls
(≥99 % of runtime).  This module cuts that number without changing a
single result: before the Euclidean kernel runs on a candidate pair,
a cascade of provably-admissible lower bounds tries to certify that the
pair cannot matter, in which case the kernel is skipped.

**The cascade.**  Stage 1 is the SAX MINDIST bound — per-segment
breakpoint gaps looked up in a precomputed table
(:mod:`repro.sax.mindist`), the cheapest certificate.  Stage 2, for
pairs stage 1 cannot discharge, is the PAA bound — real-valued segment
means instead of quantized regions, strictly tighter.  The scalar paths
evaluate stage 2 as a *partial-sums early abandon*: per-segment
contributions are accumulated in descending order and the walk stops at
the first prefix that already crosses the threshold.  The batch paths
evaluate whole blocks with one vectorized pass (a block is one numpy
expression either way).  Only pairs surviving both stages reach the
full kernel.

**Why results are bit-identical.**  The inner loops track
``nearest`` — the candidate's running nearest-neighbour distance — and
break when a distance drops below the search's best-so-far.  While a
candidate is alive, ``nearest >= best_so_far``.  A pair is pruned only
when its lower bound satisfies ``LB >= nearest``; then the true
distance obeys ``dist >= LB >= nearest >= best_so_far``, so it could
neither update ``nearest`` (needs ``dist < nearest``) nor trigger the
break (needs ``dist < best_so_far``).  Pruned pairs are therefore
invisible to the search trajectory: every computed distance, every
``nearest``, every discord and rank is unchanged — only the number of
true kernel invocations drops.  The block paths prune against the
``nearest`` value at block start, which is ≥ the per-pair value and so
prunes a (deterministic) subset of what the per-pair rule would.

Accounting lives in :class:`~repro.timeseries.distance.DistanceCounter`:
``calls`` keeps the paper-faithful pair-visit count (identical with
pruning on or off), while the split ledger ``true_calls`` / ``pruned``
(``calls == true_calls + pruned``) and the diagnostic ``lb_calls``
report pruning power honestly.

Two bound providers:

* :class:`WindowLowerBound` — fixed-length sliding windows (HOTSAX,
  Haar, brute force), sharing the discretization the HOTSAX bucketing
  already computed when available;
* :class:`IntervalLowerBound` — RRA's variable-length rule intervals,
  with the paper's Eq. 1 length normalization and a sliding PAA profile
  bound for unequal-length pairs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ParameterError
from repro.sax.mindist import letter_indices, mindist_sq_one_vs_block, sq_cell_table
from repro.timeseries.paa import paa_batch

__all__ = [
    "DEFAULT_PRUNE_PAA_SIZE",
    "DEFAULT_PRUNE_ALPHABET_SIZE",
    "descending_partial_exceeds",
    "WindowLowerBound",
    "IntervalLowerBound",
]

#: Default PAA size of the pruning discretization when the search has no
#: SAX words of its own to reuse (Haar, brute force, RRA).  More
#: segments tighten the bound; 8 keeps the per-pair cost trivial.
DEFAULT_PRUNE_PAA_SIZE = 8

#: Default alphabet size of the pruning discretization.  Finer regions
#: tighten stage 1 without affecting stage 2.
DEFAULT_PRUNE_ALPHABET_SIZE = 8


def descending_partial_exceeds(contributions: np.ndarray, threshold_sq: float) -> bool:
    """Stage-2 partial-sums early abandon over one pair's segments.

    Walks the non-negative per-segment contributions in descending
    order, abandoning as soon as the running sum reaches
    *threshold_sq* — the biggest contributors are checked first, so a
    prunable pair is certified after a prefix of the segments.  Returns
    True when the total (equivalently, some prefix) reaches the
    threshold.
    """
    total = 0.0
    for value in sorted(contributions, reverse=True):
        total += value
        if total >= threshold_sq:
            return True
    return False


class WindowLowerBound:
    """Cascading SAX/PAA lower bounds for equal-length window pairs.

    Built once per search from the per-window PAA values (and their SAX
    region indices); evaluating a bound is then a table lookup plus a
    row reduction.  ``scale_sq = n / w`` is the squared MINDIST length
    scale, so all comparisons stay in squared space (no square roots).
    """

    __slots__ = ("paa_values", "letters", "alphabet_size", "window", "scale_sq")

    def __init__(
        self,
        paa_values: np.ndarray,
        window: int,
        alphabet_size: int,
        *,
        letters: Optional[np.ndarray] = None,
    ):
        paa_values = np.ascontiguousarray(paa_values, dtype=float)
        if paa_values.ndim != 2:
            raise ParameterError(
                f"WindowLowerBound expects (k, w) PAA values, got {paa_values.shape}"
            )
        self.paa_values = paa_values
        self.letters = (
            letters
            if letters is not None
            else letter_indices(paa_values, alphabet_size)
        )
        if self.letters.shape != paa_values.shape:
            raise ParameterError(
                f"letters shape {self.letters.shape} does not match "
                f"PAA values {paa_values.shape}"
            )
        self.alphabet_size = alphabet_size
        self.window = window
        self.scale_sq = window / paa_values.shape[1]

    @classmethod
    def from_normalized_windows(
        cls,
        normalized: np.ndarray,
        window: int,
        *,
        paa_size: Optional[int] = None,
        alphabet_size: int = DEFAULT_PRUNE_ALPHABET_SIZE,
    ) -> "WindowLowerBound":
        """Discretize the z-normalized window matrix for pruning only.

        Used by the engines whose bucketing is not SAX-based (Haar,
        brute force); HOTSAX instead reuses the discretization its
        bucket ordering already computed.
        """
        if paa_size is None:
            paa_size = min(DEFAULT_PRUNE_PAA_SIZE, window)
        return cls(
            paa_batch(normalized, paa_size), window, alphabet_size
        )

    def block_keep(
        self,
        p: int,
        idx: np.ndarray,
        nearest: float,
        *,
        stage1_sq: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Boolean mask over *idx*: True = the true kernel must run.

        A pair is dropped when its cascaded lower bound is ``>=
        nearest`` (the caller's running nearest-neighbour distance at
        block start).  Stage 1 (MINDIST) filters the whole block; stage
        2 (PAA) only runs on stage-1 survivors.

        *stage1_sq* lets the batch backend hand in the squared MINDIST
        values it already computed for the block (via
        :func:`repro.sax.mindist.mindist_sq_tile`, bit-identical to the
        one-vs-block kernel) so the replay's prune decisions reuse the
        exact same floats as the tile classification.
        """
        threshold_sq = nearest * nearest
        if stage1_sq is None:
            stage1_sq = mindist_sq_one_vs_block(
                self.letters[p], self.letters[idx], self.alphabet_size, self.scale_sq
            )
        keep = stage1_sq < threshold_sq
        if keep.any():
            survivors = idx[keep]
            deltas = self.paa_values[survivors] - self.paa_values[p]
            paa_sq = self.scale_sq * np.einsum("ij,ij->i", deltas, deltas)
            keep[keep] = paa_sq < threshold_sq
        return keep

    def pair_exceeds(self, p: int, q: int, nearest: float) -> bool:
        """Scalar cascade for the per-pair reference path.

        Stage 1 sums the squared cell distances; stage 2 walks the PAA
        contributions in descending order with partial-sum abandoning.
        True means the pair is certified ``dist >= nearest`` and the
        kernel can be skipped.
        """
        threshold_sq = nearest * nearest
        table = sq_cell_table(self.alphabet_size)
        stage1 = self.scale_sq * float(table[self.letters[p], self.letters[q]].sum())
        if stage1 >= threshold_sq:
            return True
        contributions = self.scale_sq * (self.paa_values[p] - self.paa_values[q]) ** 2
        return descending_partial_exceeds(contributions, threshold_sq)


class _IntervalSummary:
    """Per-interval pruning statistics (integer PAA segmentation)."""

    __slots__ = ("length", "bounds", "counts", "means", "letters", "cumsum")

    def __init__(self, values: np.ndarray, segments: int, alphabet_size: int):
        n = values.size
        w = min(segments, n)
        self.length = n
        self.bounds = (np.arange(w + 1) * n) // w
        self.counts = np.diff(self.bounds).astype(float)
        sums = np.add.reduceat(values, self.bounds[:-1])
        self.means = sums / self.counts
        self.letters = letter_indices(self.means, alphabet_size)
        # Cumulative sum for the sliding-alignment bound (long role).
        self.cumsum = np.concatenate(([0.0], np.cumsum(values)))


class IntervalLowerBound:
    """Lower bounds for RRA's variable-length candidate pairs (Eq. 1).

    The RRA distance is the length-normalized Euclidean distance, with
    unequal-length pairs aligned by sliding the shorter inside the
    longer and keeping the best offset.  Bounds:

    * **equal lengths** — the SAX/PAA cascade over an *integer* PAA
      segmentation of the two z-normalized subsequences, normalized by
      ``sqrt(n)``: per-segment Cauchy–Schwarz gives
      ``dist² · n >= Σᵢ nᵢ·(āᵢ − b̄ᵢ)² >= Σᵢ nᵢ·cell²``;
    * **unequal lengths** — the sliding PAA profile: the short
      subsequence's segment means against the means of every alignment
      of the long one (all offsets from one cumulative sum), minimized
      over offsets.  Each offset's bound is admissible for that
      alignment, so the minimum lower-bounds the best alignment.

    Summaries are computed lazily per distinct ``(start, end)`` interval
    and cached, mirroring the search's candidate cache; *values_cache*
    is any object with a ``values(interval)`` method returning the
    z-normalized subsequence (the RRA ``_CandidateSet``).
    """

    __slots__ = ("_cache", "segments", "alphabet_size", "_summaries")

    def __init__(
        self,
        values_cache,
        *,
        segments: int = DEFAULT_PRUNE_PAA_SIZE,
        alphabet_size: int = DEFAULT_PRUNE_ALPHABET_SIZE,
    ):
        if segments < 1:
            raise ParameterError(f"segments must be >= 1, got {segments}")
        self._cache = values_cache
        self.segments = segments
        self.alphabet_size = alphabet_size
        self._summaries: dict[tuple[int, int], _IntervalSummary] = {}

    def _summary(self, interval) -> _IntervalSummary:
        key = (interval.start, interval.end)
        summary = self._summaries.get(key)
        if summary is None:
            summary = _IntervalSummary(
                self._cache.values(interval), self.segments, self.alphabet_size
            )
            self._summaries[key] = summary
        return summary

    def pair_exceeds(self, p, q, nearest: float) -> bool:
        """True when the cascade certifies ``eq1_dist(p, q) >= nearest``."""
        sp = self._summary(p)
        sq = self._summary(q)
        if sp.length == sq.length:
            # Equal lengths share the segmentation, so the fixed-window
            # cascade applies with the 1/n length normalization folded
            # into the threshold.
            threshold = nearest * nearest * sp.length
            table = sq_cell_table(self.alphabet_size)
            stage1 = float((sp.counts * table[sp.letters, sq.letters]).sum())
            if stage1 >= threshold:
                return True
            contributions = sp.counts * (sp.means - sq.means) ** 2
            return descending_partial_exceeds(contributions, threshold)
        short, long_ = (sp, sq) if sp.length < sq.length else (sq, sp)
        return self._sliding_exceeds(short, long_, nearest)

    @staticmethod
    def _sliding_exceeds(
        short: _IntervalSummary, long_: _IntervalSummary, nearest: float
    ) -> bool:
        """Sliding PAA profile bound for unequal-length pairs.

        Accumulates, per segment of the short subsequence, the weighted
        squared gap between its mean and the matching segment mean of
        every alignment of the long one — all offsets at once from the
        long side's cumulative sum.  Prunes when even the best offset's
        bound reaches *nearest*.
        """
        offsets = long_.length - short.length + 1
        cumsum = long_.cumsum
        acc = np.zeros(offsets)
        for i in range(short.counts.size):
            lo = int(short.bounds[i])
            hi = int(short.bounds[i + 1])
            count = short.counts[i]
            segment_means = (cumsum[hi : hi + offsets] - cumsum[lo : lo + offsets]) / count
            acc += count * (short.means[i] - segment_means) ** 2
        return float(acc.min()) >= nearest * nearest * short.length

"""Piecewise Aggregate Approximation (PAA).

PAA reduces an ``n``-point subsequence to ``w`` segment means.  It is the
dimensionality-reduction step inside SAX (Lin et al. 2002, cited by the
paper as [19]/[25]).

When ``n`` is not divisible by ``w`` we use the *fractional* PAA of the
original SAX papers: every point contributes to the segments it overlaps,
weighted by the overlapped fraction, so all segments aggregate exactly
``n / w`` points' worth of mass.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError


def paa_segment_bounds(n: int, w: int) -> list[tuple[float, float]]:
    """Fractional segment boundaries ``[(start, end), ...]`` for PAA.

    Each segment covers ``n / w`` points; boundaries may fall between
    integer sample positions.
    """
    if n <= 0:
        raise ParameterError(f"subsequence length must be positive, got {n}")
    if w <= 0:
        raise ParameterError(f"PAA size must be positive, got {w}")
    if w > n:
        raise ParameterError(f"PAA size {w} exceeds subsequence length {n}")
    seg = n / w
    return [(i * seg, (i + 1) * seg) for i in range(w)]


def paa(values: np.ndarray, w: int) -> np.ndarray:
    """Compute the *w*-segment PAA representation of *values*.

    Parameters
    ----------
    values:
        One-dimensional array (typically an already z-normalized
        subsequence).
    w:
        Number of output segments; must satisfy ``1 <= w <= len(values)``.

    Returns
    -------
    numpy.ndarray
        Array of *w* segment means.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ParameterError(f"paa expects a 1-d array, got shape {values.shape}")
    n = values.size
    if w <= 0:
        raise ParameterError(f"PAA size must be positive, got {w}")
    if w > n:
        raise ParameterError(f"PAA size {w} exceeds subsequence length {n}")
    if n == w:
        return values.copy()
    if n % w == 0:
        return values.reshape(w, n // w).mean(axis=1)
    return _fractional_paa(values, w)


def _fractional_paa(values: np.ndarray, w: int) -> np.ndarray:
    """PAA for the non-divisible case using fractional point weights."""
    n = values.size
    # Each point i is spread over the fractional segment grid: segment
    # boundaries sit at multiples of n/w in "point mass" coordinates.
    result = np.zeros(w, dtype=float)
    seg = n / w
    for i in range(n):
        left = i
        right = i + 1.0
        first_seg = int(left / seg)
        last_seg = min(int((right - 1e-12) / seg), w - 1)
        if first_seg == last_seg:
            result[first_seg] += values[i]
            continue
        for s in range(first_seg, last_seg + 1):
            seg_lo = s * seg
            seg_hi = (s + 1) * seg
            overlap = min(right, seg_hi) - max(left, seg_lo)
            if overlap > 0:
                result[s] += values[i] * overlap
    return result / seg


def paa_batch(matrix: np.ndarray, w: int) -> np.ndarray:
    """Row-wise PAA over a 2-d array of subsequences (k, n) -> (k, w).

    Fast path used by the sliding-window discretizer: when ``n % w == 0``
    this is a single vectorized reshape-mean, otherwise we fall back to a
    per-row fractional PAA.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ParameterError(f"paa_batch expects a 2-d array, got shape {matrix.shape}")
    k, n = matrix.shape
    if w <= 0:
        raise ParameterError(f"PAA size must be positive, got {w}")
    if w > n:
        raise ParameterError(f"PAA size {w} exceeds subsequence length {n}")
    if n == w:
        return matrix.copy()
    if n % w == 0:
        return matrix.reshape(k, w, n // w).mean(axis=2)
    weights = _fractional_weights(n, w)
    return matrix @ weights.T


def _fractional_weights(n: int, w: int) -> np.ndarray:
    """The (w, n) weight matrix implementing fractional PAA as a matmul."""
    seg = n / w
    weights = np.zeros((w, n), dtype=float)
    for s in range(w):
        seg_lo = s * seg
        seg_hi = (s + 1) * seg
        for i in range(int(seg_lo), min(int(np.ceil(seg_hi)), n)):
            overlap = min(i + 1.0, seg_hi) - max(float(i), seg_lo)
            if overlap > 0:
                weights[s, i] = overlap / seg
    return weights

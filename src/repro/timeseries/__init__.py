"""Time-series primitives: normalization, windows, PAA, and distances.

This subpackage provides the numeric substrate the rest of the library is
built on.  Everything operates on one-dimensional ``numpy`` arrays of
floats and is deterministic.
"""

from repro.timeseries.znorm import znorm, znorm_or_flat, znorm_rows, is_flat
from repro.timeseries.windows import (
    num_windows,
    sliding_windows,
    subsequence,
    windows_iter,
)
from repro.timeseries.paa import paa, paa_segment_bounds
from repro.timeseries.distance import (
    DistanceCounter,
    euclidean,
    euclidean_early_abandon,
    normalized_euclidean,
    variable_length_distance,
)
from repro.timeseries.kernels import (
    SeriesStats,
    one_vs_all_euclidean,
    one_vs_all_sq_euclidean,
    sliding_min_normalized_distance,
    sliding_window_stats,
    znorm_sliding_windows,
)
from repro.timeseries.preprocess import (
    clip_outliers,
    detrend,
    downsample,
    fill_missing,
    prepare,
)

__all__ = [
    "znorm",
    "znorm_or_flat",
    "znorm_rows",
    "is_flat",
    "num_windows",
    "sliding_windows",
    "subsequence",
    "windows_iter",
    "paa",
    "paa_segment_bounds",
    "DistanceCounter",
    "euclidean",
    "euclidean_early_abandon",
    "normalized_euclidean",
    "variable_length_distance",
    "IntervalLowerBound",
    "WindowLowerBound",
    "descending_partial_exceeds",
    "SeriesStats",
    "sliding_window_stats",
    "znorm_sliding_windows",
    "one_vs_all_sq_euclidean",
    "one_vs_all_euclidean",
    "sliding_min_normalized_distance",
    "fill_missing",
    "detrend",
    "downsample",
    "clip_outliers",
    "prepare",
    "IntervalLowerBound",
    "WindowLowerBound",
    "descending_partial_exceeds",
]

_LOWERBOUND_EXPORTS = (
    "IntervalLowerBound",
    "WindowLowerBound",
    "descending_partial_exceeds",
)


def __getattr__(name: str):
    # Lazy (PEP 562): lowerbound sits on top of repro.sax, which itself
    # imports this package's submodules — an eager import here would be
    # circular.
    if name in _LOWERBOUND_EXPORTS:
        from repro.timeseries import lowerbound

        return getattr(lowerbound, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""The narrow array-API seam behind the ``batch`` distance backend.

The tiled batch kernels (:func:`repro.timeseries.kernels.
all_pairs_sq_euclidean_tile` and friends) reduce the discord searches'
hot path to a handful of GEMM-shaped array operations.  Those kernels do
not call ``numpy`` directly; they go through an :class:`ArrayNamespace`
resolved here, so the same tile code runs on NumPy today and on a GPU
array library (CuPy, PyTorch) when one is installed.

Design constraints, in order:

* **NumPy is the default and the only hard dependency.**  Resolving the
  default namespace imports nothing new and adds one attribute lookup
  per tile — the pure-NumPy path pays nothing for the seam.
* **Accelerator namespaces are optional extras, detected lazily.**
  ``cupy`` / ``torch`` are imported only when explicitly requested (via
  the ``name`` argument or the ``REPRO_ARRAY_API`` environment
  variable); a missing module raises a
  :class:`~repro.exceptions.ParameterError` naming the extra to
  install, never an ``ImportError`` at import time.
* **The surface is deliberately narrow.**  Tiles need exactly: device
  transfer (:meth:`ArrayNamespace.asarray` /
  :meth:`~ArrayNamespace.to_numpy`), one GEMM
  (:meth:`~ArrayNamespace.matmul`), broadcasting arithmetic (native
  operators on the namespace's arrays), and a clip at zero
  (:meth:`~ArrayNamespace.clip_min`).  Anything an array library cannot
  express in those terms stays on the NumPy side of the seam.

Engines never touch the seam directly: they hand NumPy arrays to the
tile kernels and get NumPy arrays back, so the scan/replay machinery —
and every bit-identity guarantee it carries — is unaware of the device
the GEMM ran on.
"""

from __future__ import annotations

import importlib
import os
from typing import Optional

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "ARRAY_API_ENV",
    "ArrayNamespace",
    "NumpyNamespace",
    "CupyNamespace",
    "TorchNamespace",
    "available_namespaces",
    "resolve_namespace",
]

#: Environment variable selecting the default array namespace.
ARRAY_API_ENV = "REPRO_ARRAY_API"


class ArrayNamespace:
    """The operation surface a batch tile needs from an array library.

    Subclasses adapt one library; the base class documents (and, for
    NumPy semantics, implements) the contract:

    * :meth:`asarray` — move a NumPy array onto the library's device;
    * :meth:`matmul` — the tile GEMM (``A @ B.T`` shapes);
    * :meth:`clip_min` — elementwise lower clip (the dot-product
      identity can go epsilon-negative);
    * :meth:`to_numpy` — bring a result back as a NumPy array.

    Broadcasting arithmetic (``+``, ``-``, ``*`` with ``[:, None]`` /
    ``[None, :]`` views) is required to work natively on the library's
    arrays — true for NumPy, CuPy, and torch alike — so the tile
    expressions need no per-op indirection.
    """

    #: Registry name; also the extras name for optional backends.
    name = "abstract"

    def asarray(self, values):  # pragma: no cover - interface
        raise NotImplementedError

    def matmul(self, a, b):  # pragma: no cover - interface
        raise NotImplementedError

    def clip_min(self, values, lower: float):  # pragma: no cover - interface
        raise NotImplementedError

    def to_numpy(self, values) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def transpose(self, values):
        """Matrix transpose (the ``B.T`` of the tile GEMM)."""
        return values.T


class NumpyNamespace(ArrayNamespace):
    """The default namespace: every operation is a NumPy passthrough."""

    name = "numpy"

    def asarray(self, values):
        return np.asarray(values, dtype=float)

    def matmul(self, a, b):
        return np.matmul(a, b)

    def clip_min(self, values, lower: float):
        return np.clip(values, lower, None)

    def to_numpy(self, values) -> np.ndarray:
        return np.asarray(values)


class CupyNamespace(ArrayNamespace):
    """CuPy adapter (optional extra ``repro[cupy]``)."""

    name = "cupy"

    def __init__(self, module):
        self._cp = module

    def asarray(self, values):
        return self._cp.asarray(values, dtype=self._cp.float64)

    def matmul(self, a, b):
        return self._cp.matmul(a, b)

    def clip_min(self, values, lower: float):
        return self._cp.clip(values, lower, None)

    def to_numpy(self, values) -> np.ndarray:
        return self._cp.asnumpy(values)


class TorchNamespace(ArrayNamespace):
    """PyTorch adapter (optional extra ``repro[torch]``).

    Tensors are created on the default device; users select a GPU the
    idiomatic torch way (``torch.set_default_device``) without this
    module growing device plumbing.
    """

    name = "torch"

    def __init__(self, module):
        self._torch = module

    def asarray(self, values):
        return self._torch.as_tensor(np.ascontiguousarray(values, dtype=float))

    def matmul(self, a, b):
        return self._torch.matmul(a, b)

    def clip_min(self, values, lower: float):
        return self._torch.clamp(values, min=lower)

    def to_numpy(self, values) -> np.ndarray:
        return values.detach().cpu().numpy()

    def transpose(self, values):
        return values.mT if values.dim() >= 2 else values


#: name -> (module to import, adapter class).  NumPy needs no import.
_OPTIONAL = {
    "cupy": CupyNamespace,
    "torch": TorchNamespace,
}

_NUMPY = NumpyNamespace()
_RESOLVED: dict[str, ArrayNamespace] = {}


def available_namespaces() -> tuple[str, ...]:
    """Names that would resolve right now (``numpy`` plus importable extras)."""
    names = ["numpy"]
    for name in _OPTIONAL:
        if importlib.util.find_spec(name) is not None:
            names.append(name)
    return tuple(names)


def resolve_namespace(name: Optional[str] = None) -> ArrayNamespace:
    """Resolve an :class:`ArrayNamespace` by name.

    ``None`` reads the ``REPRO_ARRAY_API`` environment variable and
    falls back to ``"numpy"``.  Optional namespaces are imported on
    first use and cached; a missing module raises
    :class:`~repro.exceptions.ParameterError` naming the pip extra.
    """
    if name is None:
        name = os.environ.get(ARRAY_API_ENV, "numpy") or "numpy"
    if name == "numpy":
        return _NUMPY
    cached = _RESOLVED.get(name)
    if cached is not None:
        return cached
    adapter = _OPTIONAL.get(name)
    if adapter is None:
        known = ("numpy",) + tuple(_OPTIONAL)
        raise ParameterError(
            f"unknown array namespace {name!r}; expected one of {known}"
        )
    try:
        module = importlib.import_module(name)
    except ImportError as exc:
        raise ParameterError(
            f"array namespace {name!r} requested but the {name!r} package "
            f"is not installed; install the optional extra "
            f"(pip install repro[{name}]) or unset {ARRAY_API_ENV}"
        ) from exc
    namespace = adapter(module)
    _RESOLVED[name] = namespace
    return namespace

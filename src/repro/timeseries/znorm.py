"""Z-normalization of time-series subsequences.

The paper (Section 2) requires every subsequence to be z-normalized before
comparison: mean brought to zero, standard deviation to one.  Subsequences
that are (nearly) flat carry no shape, and dividing them by a tiny standard
deviation would amplify measurement noise into full-scale "shapes" that
dominate distance computations.  Following the original GrammarViz/jmotif
implementation, values whose standard deviation falls below a
*normalization threshold* are only mean-centered, never variance-scaled.
"""

from __future__ import annotations

import numpy as np

#: Below this standard deviation a subsequence is considered flat and is
#: only mean-centered.  Matches the default normalization threshold of the
#: original GrammarViz/jmotif implementation.
DEFAULT_FLATNESS_THRESHOLD = 0.01


def is_flat(values: np.ndarray, threshold: float = DEFAULT_FLATNESS_THRESHOLD) -> bool:
    """Return True when *values* has standard deviation below *threshold*."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return True
    return float(np.std(values)) < threshold


def znorm(values: np.ndarray, threshold: float = DEFAULT_FLATNESS_THRESHOLD) -> np.ndarray:
    """Z-normalize *values*: zero mean, unit standard deviation.

    Flat inputs (std below *threshold*) are mean-centered but not scaled,
    so noise on a plateau stays small instead of being blown up to unit
    variance (the "flat subsequence" pathology of discord search).

    Parameters
    ----------
    values:
        One-dimensional array of scalar observations.
    threshold:
        Standard-deviation cutoff below which the input counts as flat.

    Returns
    -------
    numpy.ndarray
        A new array; the input is never modified.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError(f"znorm expects a 1-d array, got shape {values.shape}")
    if values.size == 0:
        return values.copy()
    mean = float(np.mean(values))
    std = float(np.std(values))
    if std < threshold:
        return values - mean
    return (values - mean) / std


def znorm_or_flat(
    values: np.ndarray, threshold: float = DEFAULT_FLATNESS_THRESHOLD
) -> tuple[np.ndarray, bool]:
    """Z-normalize and also report whether the input was flat.

    Returns ``(normalized, was_flat)``.  Useful when callers want to treat
    flat segments specially (e.g. SAX maps them to the middle symbol).
    """
    values = np.asarray(values, dtype=float)
    flat = is_flat(values, threshold)
    return znorm(values, threshold), flat


def znorm_rows(
    matrix: np.ndarray, threshold: float = DEFAULT_FLATNESS_THRESHOLD
) -> np.ndarray:
    """Vectorized row-wise z-normalization with the flatness rule.

    Rows with standard deviation below *threshold* are mean-centered
    only.  Used by the sliding-window pipelines (SAX discretization,
    HOTSAX, brute force), which normalize thousands of windows at once.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"znorm_rows expects a 2-d array, got shape {matrix.shape}")
    means = matrix.mean(axis=1, keepdims=True)
    stds = matrix.std(axis=1, keepdims=True)
    safe = np.where(stds < threshold, 1.0, stds)
    return (matrix - means) / safe

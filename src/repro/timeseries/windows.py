"""Sliding-window subsequence extraction (paper Section 2).

A subsequence of a series ``T`` of length ``m`` is a contiguous sampling of
``n`` points starting at position ``p`` with ``0 <= p <= m - n`` (the paper
uses 1-based indexing; this library is 0-based throughout).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ParameterError


def num_windows(series_length: int, window: int) -> int:
    """Number of sliding windows of size *window* over a series.

    Returns 0 when the series is shorter than the window.
    """
    if window <= 0:
        raise ParameterError(f"window must be positive, got {window}")
    return max(0, series_length - window + 1)


def subsequence(series: np.ndarray, start: int, length: int) -> np.ndarray:
    """Extract the subsequence ``series[start : start + length]``.

    Raises
    ------
    ParameterError
        If the requested range does not fully lie inside the series.
    """
    series = np.asarray(series, dtype=float)
    if length <= 0:
        raise ParameterError(f"subsequence length must be positive, got {length}")
    if start < 0 or start + length > series.size:
        raise ParameterError(
            f"subsequence [{start}, {start + length}) out of bounds "
            f"for series of length {series.size}"
        )
    return series[start : start + length]


def sliding_windows(series: np.ndarray, window: int) -> np.ndarray:
    """All sliding windows of *series* as a 2-d view of shape (k, window).

    The result is a read-only stride view — no copy is made.  Use
    ``.copy()`` on a row before mutating it.
    """
    series = np.ascontiguousarray(series, dtype=float)
    k = num_windows(series.size, window)
    if k == 0:
        return np.empty((0, window), dtype=float)
    view = np.lib.stride_tricks.sliding_window_view(series, window)
    view.flags.writeable = False
    return view


def windows_iter(series: np.ndarray, window: int) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(start, window_values)`` for every sliding window."""
    view = sliding_windows(series, window)
    for start in range(view.shape[0]):
        yield start, view[start]

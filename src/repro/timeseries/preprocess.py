"""Series preprocessing utilities: missing values, detrending, resampling.

Real-world inputs (the CLI's CSV files, sensor exports) carry NaNs,
slow drifts, and oversampled resolutions.  These helpers normalize such
series *before* the discretization pipeline; they are deliberately
simple, deterministic, and side-effect-free (every function returns a
new array).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataQualityError, ParameterError


def fill_missing(series: np.ndarray, *, method: str = "linear") -> np.ndarray:
    """Replace NaN/inf values.

    Parameters
    ----------
    series:
        One-dimensional array, possibly containing non-finite entries.
    method:
        ``"linear"`` interpolates between the nearest finite neighbours
        (edges are extended flat); ``"ffill"`` carries the last finite
        value forward (the first finite value is used for a leading
        gap); ``"zero"`` replaces non-finite entries with 0.

    Raises
    ------
    ParameterError
        If the series contains no finite value at all.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ParameterError(f"series must be 1-d, got shape {series.shape}")
    finite = np.isfinite(series)
    if finite.all():
        return series.copy()
    if not finite.any():
        raise ParameterError("series contains no finite values")

    if method == "zero":
        out = series.copy()
        out[~finite] = 0.0
        return out
    if method == "ffill":
        out = series.copy()
        last = series[np.argmax(finite)]  # first finite value
        for i in range(out.size):
            if np.isfinite(out[i]):
                last = out[i]
            else:
                out[i] = last
        return out
    if method == "linear":
        indices = np.arange(series.size)
        return np.interp(indices, indices[finite], series[finite])
    raise ParameterError(f"unknown fill method {method!r}")


def detrend(series: np.ndarray, *, kind: str = "linear") -> np.ndarray:
    """Remove a global trend.

    ``"linear"`` subtracts the least-squares line, ``"mean"`` subtracts
    the mean.  (Per-window z-normalization already handles local drift;
    global detrending helps when the drift dwarfs the signal and would
    dominate the SAX breakpoints.)
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ParameterError(f"series must be 1-d, got shape {series.shape}")
    if series.size == 0:
        return series.copy()
    if kind == "mean":
        return series - series.mean()
    if kind == "linear":
        x = np.arange(series.size, dtype=float)
        slope, intercept = np.polyfit(x, series, 1)
        return series - (slope * x + intercept)
    raise ParameterError(f"unknown detrend kind {kind!r}")


def downsample(series: np.ndarray, factor: int) -> np.ndarray:
    """Reduce resolution by averaging blocks of *factor* points.

    A trailing partial block is averaged too.  This is PAA applied to
    the whole series — the right way to reduce an oversampled input
    before discretization (plain striding would alias).
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ParameterError(f"series must be 1-d, got shape {series.shape}")
    if factor < 1:
        raise ParameterError(f"factor must be >= 1, got {factor}")
    if factor == 1 or series.size == 0:
        return series.copy()
    full = (series.size // factor) * factor
    blocks = series[:full].reshape(-1, factor).mean(axis=1)
    if full < series.size:
        blocks = np.append(blocks, series[full:].mean())
    return blocks


def clip_outliers(
    series: np.ndarray, *, z_limit: float = 6.0
) -> np.ndarray:
    """Clamp extreme point outliers to ±*z_limit* robust deviations.

    The grammar pipeline targets *structural* anomalies; a single
    corrupt sample (sensor glitch, parse error) would otherwise stretch
    the z-normalization of every window containing it.  Clipping keeps
    the point (its position still deviates) while bounding its leverage.

    Scale is measured with the median absolute deviation (scaled to be
    consistent with the standard deviation for Gaussian data) — unlike
    mean/std, the MAD is not inflated by the very outliers being
    clipped.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ParameterError(f"series must be 1-d, got shape {series.shape}")
    if z_limit <= 0:
        raise ParameterError(f"z_limit must be positive, got {z_limit}")
    if series.size == 0:
        return series.copy()
    center = float(np.median(series))
    mad = float(np.median(np.abs(series - center)))
    scale = 1.4826 * mad  # Gaussian-consistent
    if scale < 1e-12:
        return series.copy()
    lo = center - z_limit * scale
    hi = center + z_limit * scale
    return np.clip(series, lo, hi)


#: Valid values for the quality-gate *policy* argument.
QUALITY_POLICIES = ("raise", "interpolate", "mask")


def nonfinite_spans(series: np.ndarray) -> tuple[tuple[int, int], ...]:
    """Half-open ``(start, end)`` spans of consecutive non-finite values."""
    series = np.asarray(series, dtype=float)
    bad = ~np.isfinite(series)
    if not bad.any():
        return ()
    edges = np.flatnonzero(np.diff(bad.astype(np.int8)))
    starts = [0] if bad[0] else []
    starts += [int(e) + 1 for e in edges if not bad[e]]
    ends = [int(e) + 1 for e in edges if bad[e]]
    if bad[-1]:
        ends.append(series.size)
    return tuple(zip(starts, ends))


@dataclass(frozen=True)
class QualityReport:
    """Outcome of :func:`quality_gate`.

    Attributes
    ----------
    series:
        The series to hand to the pipeline (repaired under
        ``interpolate``/``mask``; a copy of the input when it was clean).
    mask:
        Boolean array, True where the *original* data was non-finite.
        All-False under the ``interpolate`` policy (the repair is
        trusted); under ``mask`` the flagged regions must be excluded
        from candidate windows by the caller.
    bad_spans:
        The non-finite runs of the original input, half-open.
    policy:
        The policy that was applied.
    """

    series: np.ndarray
    mask: np.ndarray
    bad_spans: tuple[tuple[int, int], ...]
    policy: str

    @property
    def clean(self) -> bool:
        """True when the original input had no non-finite values."""
        return not self.bad_spans


def quality_gate(
    series: np.ndarray, *, policy: str = "raise"
) -> QualityReport:
    """Screen a series for NaN/Inf gaps before the pipeline touches it.

    Policies
    --------
    ``"raise"``
        Any non-finite value raises
        :class:`~repro.exceptions.DataQualityError` naming the offending
        spans (the default: corrupt data never silently becomes SAX
        words).
    ``"interpolate"``
        Non-finite runs are linearly interpolated from their finite
        neighbours and the repaired series is treated as trustworthy
        (all-False mask).
    ``"mask"``
        Non-finite runs are interpolated so distances stay computable,
        but the returned mask flags them; callers must exclude candidate
        windows overlapping flagged regions so no anomaly is ever
        reported from invented data.
    """
    if policy not in QUALITY_POLICIES:
        raise ParameterError(
            f"quality policy must be one of {QUALITY_POLICIES}, got {policy!r}"
        )
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ParameterError(f"series must be 1-d, got shape {series.shape}")
    spans = nonfinite_spans(series)
    mask = np.zeros(series.size, dtype=bool)
    if not spans:
        return QualityReport(series.copy(), mask, (), policy)
    if policy == "raise":
        shown = ", ".join(f"[{s}, {e})" for s, e in spans[:5])
        more = f" (+{len(spans) - 5} more)" if len(spans) > 5 else ""
        raise DataQualityError(
            f"series contains {int((~np.isfinite(series)).sum())} non-finite "
            f"values in spans {shown}{more}; pass policy='interpolate' or "
            f"'mask' to proceed"
        )
    repaired = fill_missing(series, method="linear")
    if policy == "mask":
        for start, end in spans:
            mask[start:end] = True
    return QualityReport(repaired, mask, spans, policy)


def prepare(
    series: np.ndarray,
    *,
    fill: str = "linear",
    detrend_kind: str | None = None,
    downsample_factor: int = 1,
    clip_z: float | None = None,
) -> np.ndarray:
    """One-call preprocessing pipeline: fill -> clip -> detrend -> downsample."""
    out = fill_missing(series, method=fill)
    if clip_z is not None:
        out = clip_outliers(out, z_limit=clip_z)
    if detrend_kind is not None:
        out = detrend(out, kind=detrend_kind)
    if downsample_factor != 1:
        out = downsample(out, downsample_factor)
    return out

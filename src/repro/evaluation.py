"""Interval-based evaluation metrics for anomaly detectors.

Anomaly detectors in this library report half-open ``(start, end)``
intervals; ground truth (synthetic datasets) is a list of the same.
This module provides the matching and scoring rules used by the test
suite and the benchmark harness, so every experiment measures success
the same way:

* *overlap fraction* — shared points divided by the **shorter**
  interval's length (a short, precise detection inside a long true
  event counts fully, and vice versa);
* a detection *hits* a truth when the overlap fraction reaches
  ``min_overlap`` (0.5 unless stated otherwise);
* precision / recall / F1 over the bipartite hit relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ParameterError

Interval = tuple[int, int]


def _validate(interval: Interval) -> Interval:
    start, end = interval
    if end <= start:
        raise ParameterError(f"malformed interval {interval}")
    return interval


def interval_overlap(a: Interval, b: Interval) -> int:
    """Number of points shared by two half-open intervals."""
    _validate(a)
    _validate(b)
    return max(0, min(a[1], b[1]) - max(a[0], b[0]))


def overlap_fraction(a: Interval, b: Interval) -> float:
    """Shared points relative to the shorter interval (in [0, 1])."""
    shorter = min(a[1] - a[0], b[1] - b[0])
    return interval_overlap(a, b) / shorter


def is_hit(found: Interval, truth: Interval, *, min_overlap: float = 0.5) -> bool:
    """Does a detection count as recovering a true event?"""
    if not 0.0 < min_overlap <= 1.0:
        raise ParameterError(f"min_overlap must be in (0, 1], got {min_overlap}")
    return overlap_fraction(found, truth) >= min_overlap


@dataclass(frozen=True)
class DetectionScores:
    """Precision/recall/F1 of a detection set against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        reported = self.true_positives + self.false_positives
        return self.true_positives / reported if reported else 0.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r > 0 else 0.0


def score_detections(
    found: Sequence[Interval],
    truth: Sequence[Interval],
    *,
    min_overlap: float = 0.5,
) -> DetectionScores:
    """Match detections to true events and count TP/FP/FN.

    Each true event can be claimed by any number of detections (several
    detections inside one long event are not punished), but counts once
    toward recall.  A detection hitting no event is a false positive.
    """
    for interval in list(found) + list(truth):
        _validate(interval)
    matched_truths: set[int] = set()
    false_positives = 0
    for detection in found:
        hit_any = False
        for idx, event in enumerate(truth):
            if is_hit(detection, event, min_overlap=min_overlap):
                matched_truths.add(idx)
                hit_any = True
        if not hit_any:
            false_positives += 1
    return DetectionScores(
        true_positives=len(matched_truths),
        false_positives=false_positives,
        false_negatives=len(truth) - len(matched_truths),
    )


def detection_delays(
    alarms: Sequence[tuple[Interval, int]],
    truth: Sequence[Interval],
    *,
    min_overlap: float = 0.3,
) -> list[int]:
    """Streaming metric: delay (points) from event start to its alarm.

    Parameters
    ----------
    alarms:
        ``((start, end), detected_at)`` pairs, as produced from
        :class:`repro.streaming.StreamAlarm` objects.
    truth:
        True event intervals.

    Returns one delay per *recovered* event — the earliest alarm that
    hits it; unrecovered events contribute nothing (use
    :func:`score_detections` for recall).
    """
    delays = []
    for event in truth:
        _validate(event)
        hit_times = [
            detected_at
            for interval, detected_at in alarms
            if is_hit(interval, event, min_overlap=min_overlap)
        ]
        if hit_times:
            delays.append(min(hit_times) - event[0])
    return delays

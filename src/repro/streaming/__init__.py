"""Streaming (online) grammar-based anomaly detection.

The paper's future-work section (§7) observes that both pipeline stages
— sliding-window SAX and Sequitur — process the input strictly left to
right, which "suggests the possibility of early anomaly detection in
real-time data streams".  This subpackage builds that system:

* :class:`~repro.streaming.window_stats.RollingStats` — O(1) rolling
  mean/std over the active window;
* :class:`~repro.streaming.online_sax.OnlineDiscretizer` — push one
  point, get back at most one numerosity-reduced SAX word;
* :class:`~repro.streaming.online_sequitur.IncrementalSequitur` — push
  tokens as they arrive into a live Sequitur state, snapshot a full
  :class:`~repro.grammar.grammar.Grammar` on demand;
* :class:`~repro.streaming.detector.StreamingAnomalyDetector` — the
  end-to-end online detector: values in, :class:`StreamAlarm`s out.
"""

from repro.streaming.window_stats import RollingStats
from repro.streaming.online_sax import OnlineDiscretizer
from repro.streaming.online_sequitur import IncrementalSequitur
from repro.streaming.detector import StreamAlarm, StreamingAnomalyDetector

__all__ = [
    "RollingStats",
    "OnlineDiscretizer",
    "IncrementalSequitur",
    "StreamAlarm",
    "StreamingAnomalyDetector",
]

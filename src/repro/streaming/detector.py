"""End-to-end streaming anomaly detector.

Values flow through the online discretizer into a live Sequitur
grammar.  Periodically (every ``check_every`` emitted tokens) the
detector inspects the live start rule for *matured* uncovered token
runs: terminals that are still part of no rule even though at least
``confirmation_tokens`` further tokens have been processed since.  By
the paper's argument such tokens are algorithmically anomalous — the
compressor had ample opportunity to fold them into a rule and could
not.  Each newly matured run is reported once, as a
:class:`StreamAlarm` carrying the corresponding raw-series interval.

The confirmation lag is the streaming trade-off: a *small* lag reports
anomalies quickly but may flag fresh tokens that simply have not
repeated yet; a *large* lag approaches the offline result.  The
detection-delay benchmark (bench_streaming.py) quantifies this.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.exceptions import CheckpointError, DataQualityError, ParameterError
from repro.sax.discretize import NumerosityReduction, SAXWord
from repro.streaming.online_sax import OnlineDiscretizer
from repro.streaming.online_sequitur import IncrementalSequitur

logger = logging.getLogger(__name__)

#: Format tag of :meth:`StreamingAnomalyDetector.snapshot` documents.
SNAPSHOT_FORMAT = "repro-streaming-snapshot/1"

#: Valid values for the *nonfinite_policy* argument.
NONFINITE_POLICIES = ("raise", "skip")


@dataclass(frozen=True)
class StreamAlarm:
    """One reported anomaly in the stream.

    Attributes
    ----------
    start, end:
        Half-open raw-series interval covered by the anomalous tokens'
        windows.
    first_token, last_token:
        Inclusive indices of the uncovered token run.
    detected_at:
        Stream position (number of points consumed) when the alarm
        fired; ``detected_at - start`` is the detection delay.
    """

    start: int
    end: int
    first_token: int
    last_token: int
    detected_at: int

    @property
    def delay(self) -> int:
        """Points between the anomaly's start and its detection."""
        return self.detected_at - self.start


class StreamingAnomalyDetector:
    """Online grammar-based anomaly detection (paper §7 future work).

    Parameters
    ----------
    window, paa_size, alphabet_size:
        Discretization parameters (as in the offline detector).
    confirmation_tokens:
        An uncovered token run is only reported once this many tokens
        have been emitted *after* it (maturity lag).
    check_every:
        Inspect the grammar every this-many emitted tokens.
    min_run_tokens:
        Ignore uncovered runs shorter than this many tokens.  The
        default of 2 filters the single-token gaps that measurement
        noise produces (one odd word that never repeats) while real
        anomalies — which disrupt several consecutive windows — span
        many tokens.
    numerosity_reduction:
        Token-stream compaction strategy.
    nonfinite_policy:
        What :meth:`push` does with a NaN/Inf value: ``"raise"``
        (default) raises :class:`~repro.exceptions.DataQualityError`;
        ``"skip"`` drops the point, logs a warning, and counts it in
        :attr:`dropped_points` — the stream continues as if the point
        never arrived.

    Examples
    --------
    >>> import numpy as np
    >>> detector = StreamingAnomalyDetector(50, 4, 4,
    ...                                     confirmation_tokens=20)
    >>> t = np.arange(4000)
    >>> series = np.sin(2 * np.pi * t / 100)
    >>> series[2000:2100] += 2.0
    >>> alarms = []
    >>> for value in series:
    ...     alarms.extend(detector.push(value))
    >>> alarms = alarms or detector.flush()
    >>> any(a.start < 2150 and 1950 < a.end for a in alarms)
    True
    """

    def __init__(
        self,
        window: int,
        paa_size: int,
        alphabet_size: int,
        *,
        confirmation_tokens: int = 25,
        check_every: int = 10,
        min_run_tokens: int = 2,
        numerosity_reduction: NumerosityReduction = NumerosityReduction.EXACT,
        nonfinite_policy: str = "raise",
    ) -> None:
        if confirmation_tokens < 1:
            raise ParameterError(
                f"confirmation_tokens must be >= 1, got {confirmation_tokens}"
            )
        if check_every < 1:
            raise ParameterError(f"check_every must be >= 1, got {check_every}")
        if min_run_tokens < 1:
            raise ParameterError(f"min_run_tokens must be >= 1, got {min_run_tokens}")
        if nonfinite_policy not in NONFINITE_POLICIES:
            raise ParameterError(
                f"nonfinite_policy must be one of {NONFINITE_POLICIES}, "
                f"got {nonfinite_policy!r}"
            )
        self.nonfinite_policy = nonfinite_policy
        self.dropped_points = 0
        self.window = window
        self.confirmation_tokens = confirmation_tokens
        self.check_every = check_every
        self.min_run_tokens = min_run_tokens
        self._discretizer = OnlineDiscretizer(
            window, paa_size, alphabet_size, strategy=numerosity_reduction
        )
        self._sequitur = IncrementalSequitur()
        self._words: list[SAXWord] = []
        self._reported: set[tuple[int, int]] = set()
        self._since_check = 0

    # -- feeding ---------------------------------------------------------

    def push(self, value: float) -> list[StreamAlarm]:
        """Consume one point; return any alarms that matured.

        Non-finite values follow the *nonfinite_policy*: raised as
        :class:`~repro.exceptions.DataQualityError`, or skipped (logged
        and counted, the stream position does not advance).
        """
        value = float(value)
        if not math.isfinite(value):
            if self.nonfinite_policy == "raise":
                raise DataQualityError(
                    f"non-finite value {value!r} pushed at stream position "
                    f"{self.points_consumed}; construct the detector with "
                    f"nonfinite_policy='skip' to drop such points"
                )
            self.dropped_points += 1
            logger.warning(
                "dropping non-finite value %r at stream position %d "
                "(%d dropped so far)",
                value,
                self.points_consumed,
                self.dropped_points,
            )
            return []
        word = self._discretizer.push(value)
        if word is None:
            return []
        self._words.append(word)
        self._sequitur.push(word.word)
        self._since_check += 1
        if self._since_check >= self.check_every:
            self._since_check = 0
            return self._collect_alarms(require_maturity=True)
        return []

    def push_many(self, values: Iterable[float]) -> list[StreamAlarm]:
        """Consume a batch of points; return all alarms raised."""
        alarms: list[StreamAlarm] = []
        for value in values:
            alarms.extend(self.push(value))
        return alarms

    def flush(self) -> list[StreamAlarm]:
        """End-of-stream: report remaining uncovered runs regardless of
        maturity (there will be no further chance to compress them)."""
        return self._collect_alarms(require_maturity=False)

    # -- state -----------------------------------------------------------

    @property
    def points_consumed(self) -> int:
        return self._discretizer.position

    @property
    def tokens_emitted(self) -> int:
        return len(self._words)

    def grammar_snapshot(self):
        """Full offline-style grammar of everything consumed so far."""
        return self._sequitur.snapshot()

    # -- snapshot / restore ----------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable state for :meth:`restore`.

        Captures the discretizer (buffer, rolling sums, numerosity
        state), the emitted words, the reported-alarm set, and the check
        cadence.  The live grammar is *not* serialized — it is rebuilt
        deterministically by replaying the token stream, which Sequitur
        guarantees reproduces the identical grammar.
        """
        return {
            "format": SNAPSHOT_FORMAT,
            "params": {
                "window": self.window,
                "paa_size": self._discretizer.paa_size,
                "alphabet_size": self._discretizer.alphabet_size,
                "confirmation_tokens": self.confirmation_tokens,
                "check_every": self.check_every,
                "min_run_tokens": self.min_run_tokens,
                "numerosity_reduction": self._discretizer.strategy.value,
                "nonfinite_policy": self.nonfinite_policy,
            },
            "discretizer": self._discretizer.state_dict(),
            "words": [[w.word, w.offset] for w in self._words],
            "reported": sorted([f, l] for f, l in self._reported),
            "since_check": self._since_check,
            "dropped_points": self.dropped_points,
        }

    @classmethod
    def restore(cls, state: dict) -> "StreamingAnomalyDetector":
        """Rebuild a detector from a :meth:`snapshot` document.

        The restored detector continues the stream exactly where the
        snapshot left off: same pending window buffer, same grammar,
        same already-reported alarms.
        """
        if not isinstance(state, dict) or state.get("format") != SNAPSHOT_FORMAT:
            raise CheckpointError(
                f"not a {SNAPSHOT_FORMAT} snapshot (format="
                f"{state.get('format') if isinstance(state, dict) else None!r})"
            )
        try:
            params = state["params"]
            detector = cls(
                int(params["window"]),
                int(params["paa_size"]),
                int(params["alphabet_size"]),
                confirmation_tokens=int(params["confirmation_tokens"]),
                check_every=int(params["check_every"]),
                min_run_tokens=int(params["min_run_tokens"]),
                numerosity_reduction=NumerosityReduction(
                    params["numerosity_reduction"]
                ),
                nonfinite_policy=str(params["nonfinite_policy"]),
            )
            detector._discretizer.load_state(state["discretizer"])
            detector._words = [
                SAXWord(str(word), int(offset)) for word, offset in state["words"]
            ]
            detector._reported = {
                (int(first), int(last)) for first, last in state["reported"]
            }
            detector._since_check = int(state["since_check"])
            detector.dropped_points = int(state.get("dropped_points", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed streaming snapshot: {exc}") from exc
        for word in detector._words:
            detector._sequitur.push(word.word)
        return detector

    # -- the detection rule -----------------------------------------------

    def _collect_alarms(self, *, require_maturity: bool) -> list[StreamAlarm]:
        alarms: list[StreamAlarm] = []
        total_tokens = len(self._words)
        for first, last in self._sequitur.uncovered_token_runs():
            if last - first + 1 < self.min_run_tokens:
                continue
            if require_maturity and total_tokens - 1 - last < self.confirmation_tokens:
                continue
            key = (first, last)
            if key in self._reported or self._is_extension_of_reported(first, last):
                continue
            self._reported.add(key)
            start = self._words[first].offset
            end = self._words[last].offset + self.window
            alarms.append(
                StreamAlarm(
                    start=start,
                    end=end,
                    first_token=first,
                    last_token=last,
                    detected_at=self.points_consumed,
                )
            )
        return alarms

    def _is_extension_of_reported(self, first: int, last: int) -> bool:
        """Suppress re-reports when a run grows or shifts slightly.

        The live R0 evolves; a previously reported run may reappear with
        a boundary moved by a token or two.  Any overlap with an
        already-reported run suppresses the new one.
        """
        for r_first, r_last in self._reported:
            if first <= r_last and r_first <= last:
                return True
        return False

"""End-to-end streaming anomaly detector.

Values flow through the online discretizer into a live Sequitur
grammar.  Periodically (every ``check_every`` emitted tokens) the
detector inspects the live start rule for *matured* uncovered token
runs: terminals that are still part of no rule even though at least
``confirmation_tokens`` further tokens have been processed since.  By
the paper's argument such tokens are algorithmically anomalous — the
compressor had ample opportunity to fold them into a rule and could
not.  Each newly matured run is reported once, as a
:class:`StreamAlarm` carrying the corresponding raw-series interval.

The confirmation lag is the streaming trade-off: a *small* lag reports
anomalies quickly but may flag fresh tokens that simply have not
repeated yet; a *large* lag approaches the offline result.  The
detection-delay benchmark (bench_streaming.py) quantifies this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.exceptions import ParameterError
from repro.sax.discretize import NumerosityReduction, SAXWord
from repro.streaming.online_sax import OnlineDiscretizer
from repro.streaming.online_sequitur import IncrementalSequitur


@dataclass(frozen=True)
class StreamAlarm:
    """One reported anomaly in the stream.

    Attributes
    ----------
    start, end:
        Half-open raw-series interval covered by the anomalous tokens'
        windows.
    first_token, last_token:
        Inclusive indices of the uncovered token run.
    detected_at:
        Stream position (number of points consumed) when the alarm
        fired; ``detected_at - start`` is the detection delay.
    """

    start: int
    end: int
    first_token: int
    last_token: int
    detected_at: int

    @property
    def delay(self) -> int:
        """Points between the anomaly's start and its detection."""
        return self.detected_at - self.start


class StreamingAnomalyDetector:
    """Online grammar-based anomaly detection (paper §7 future work).

    Parameters
    ----------
    window, paa_size, alphabet_size:
        Discretization parameters (as in the offline detector).
    confirmation_tokens:
        An uncovered token run is only reported once this many tokens
        have been emitted *after* it (maturity lag).
    check_every:
        Inspect the grammar every this-many emitted tokens.
    min_run_tokens:
        Ignore uncovered runs shorter than this many tokens.  The
        default of 2 filters the single-token gaps that measurement
        noise produces (one odd word that never repeats) while real
        anomalies — which disrupt several consecutive windows — span
        many tokens.
    numerosity_reduction:
        Token-stream compaction strategy.

    Examples
    --------
    >>> import numpy as np
    >>> detector = StreamingAnomalyDetector(50, 4, 4,
    ...                                     confirmation_tokens=20)
    >>> t = np.arange(4000)
    >>> series = np.sin(2 * np.pi * t / 100)
    >>> series[2000:2100] += 2.0
    >>> alarms = []
    >>> for value in series:
    ...     alarms.extend(detector.push(value))
    >>> alarms = alarms or detector.flush()
    >>> any(a.start < 2150 and 1950 < a.end for a in alarms)
    True
    """

    def __init__(
        self,
        window: int,
        paa_size: int,
        alphabet_size: int,
        *,
        confirmation_tokens: int = 25,
        check_every: int = 10,
        min_run_tokens: int = 2,
        numerosity_reduction: NumerosityReduction = NumerosityReduction.EXACT,
    ) -> None:
        if confirmation_tokens < 1:
            raise ParameterError(
                f"confirmation_tokens must be >= 1, got {confirmation_tokens}"
            )
        if check_every < 1:
            raise ParameterError(f"check_every must be >= 1, got {check_every}")
        if min_run_tokens < 1:
            raise ParameterError(f"min_run_tokens must be >= 1, got {min_run_tokens}")
        self.window = window
        self.confirmation_tokens = confirmation_tokens
        self.check_every = check_every
        self.min_run_tokens = min_run_tokens
        self._discretizer = OnlineDiscretizer(
            window, paa_size, alphabet_size, strategy=numerosity_reduction
        )
        self._sequitur = IncrementalSequitur()
        self._words: list[SAXWord] = []
        self._reported: set[tuple[int, int]] = set()
        self._since_check = 0

    # -- feeding ---------------------------------------------------------

    def push(self, value: float) -> list[StreamAlarm]:
        """Consume one point; return any alarms that matured."""
        word = self._discretizer.push(value)
        if word is None:
            return []
        self._words.append(word)
        self._sequitur.push(word.word)
        self._since_check += 1
        if self._since_check >= self.check_every:
            self._since_check = 0
            return self._collect_alarms(require_maturity=True)
        return []

    def push_many(self, values: Iterable[float]) -> list[StreamAlarm]:
        """Consume a batch of points; return all alarms raised."""
        alarms: list[StreamAlarm] = []
        for value in values:
            alarms.extend(self.push(value))
        return alarms

    def flush(self) -> list[StreamAlarm]:
        """End-of-stream: report remaining uncovered runs regardless of
        maturity (there will be no further chance to compress them)."""
        return self._collect_alarms(require_maturity=False)

    # -- state -----------------------------------------------------------

    @property
    def points_consumed(self) -> int:
        return self._discretizer.position

    @property
    def tokens_emitted(self) -> int:
        return len(self._words)

    def grammar_snapshot(self):
        """Full offline-style grammar of everything consumed so far."""
        return self._sequitur.snapshot()

    # -- the detection rule -----------------------------------------------

    def _collect_alarms(self, *, require_maturity: bool) -> list[StreamAlarm]:
        alarms: list[StreamAlarm] = []
        total_tokens = len(self._words)
        for first, last in self._sequitur.uncovered_token_runs():
            if last - first + 1 < self.min_run_tokens:
                continue
            if require_maturity and total_tokens - 1 - last < self.confirmation_tokens:
                continue
            key = (first, last)
            if key in self._reported or self._is_extension_of_reported(first, last):
                continue
            self._reported.add(key)
            start = self._words[first].offset
            end = self._words[last].offset + self.window
            alarms.append(
                StreamAlarm(
                    start=start,
                    end=end,
                    first_token=first,
                    last_token=last,
                    detected_at=self.points_consumed,
                )
            )
        return alarms

    def _is_extension_of_reported(self, first: int, last: int) -> bool:
        """Suppress re-reports when a run grows or shifts slightly.

        The live R0 evolves; a previously reported run may reappear with
        a boundary moved by a token or two.  Any overlap with an
        already-reported run suppresses the new one.
        """
        for r_first, r_last in self._reported:
            if first <= r_last and r_first <= last:
                return True
        return False

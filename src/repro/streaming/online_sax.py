"""Online sliding-window SAX discretization.

Push one value at a time; once the window buffer is full, each new value
produces a window, which is z-normalized (with the usual flatness rule),
PAA-reduced and symbolized — and then passed through inline numerosity
reduction, so the caller sees exactly the token stream that the offline
:func:`repro.sax.discretize.discretize` would produce for the same data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import CheckpointError, ParameterError
from repro.sax.alphabet import alphabet_letters, breakpoints_array
from repro.sax.discretize import NumerosityReduction, SAXWord
from repro.sax.sax import mindist
from repro.streaming.window_stats import RollingStats
from repro.timeseries.paa import paa
from repro.timeseries.znorm import DEFAULT_FLATNESS_THRESHOLD


class OnlineDiscretizer:
    """Streaming counterpart of :func:`repro.sax.discretize.discretize`.

    Parameters mirror the offline function.  Each :meth:`push` returns
    the emitted :class:`~repro.sax.discretize.SAXWord` (the word and the
    starting offset of its window) or None when the window is not yet
    full or numerosity reduction swallowed the word.

    Examples
    --------
    >>> disc = OnlineDiscretizer(window=4, paa_size=2, alphabet_size=3)
    >>> emitted = [disc.push(v) for v in [0, 1, 2, 3, 4, 5]]
    >>> emitted[2] is None   # window not full yet
    True
    >>> emitted[3].offset    # first full window starts at 0
    0
    """

    def __init__(
        self,
        window: int,
        paa_size: int,
        alphabet_size: int,
        *,
        strategy: NumerosityReduction = NumerosityReduction.EXACT,
        flatness_threshold: float = DEFAULT_FLATNESS_THRESHOLD,
    ) -> None:
        if window < 2:
            raise ParameterError(f"window must be at least 2, got {window}")
        if paa_size > window:
            raise ParameterError(
                f"PAA size {paa_size} exceeds window length {window}"
            )
        self.window = window
        self.paa_size = paa_size
        self.alphabet_size = alphabet_size
        self.strategy = strategy
        self.flatness_threshold = flatness_threshold
        self._cuts = breakpoints_array(alphabet_size)
        self._alphabet = list(alphabet_letters(alphabet_size))
        self._stats = RollingStats(window)
        self._position = 0  # index of the NEXT point to be pushed
        self._last_word: Optional[str] = None
        self.raw_word_count = 0
        self.emitted_count = 0

    @property
    def position(self) -> int:
        """How many points have been pushed so far."""
        return self._position

    def push(self, value: float) -> Optional[SAXWord]:
        """Consume one point; return the emitted SAX word, if any."""
        self._stats.push(float(value))
        self._position += 1
        if not self._stats.full:
            return None
        offset = self._position - self.window
        word = self._discretize_current()
        self.raw_word_count += 1
        if not self._keep(word):
            return None
        self._last_word = word
        self.emitted_count += 1
        return SAXWord(word, offset)

    def _discretize_current(self) -> str:
        values = self._stats.values()
        mean = self._stats.mean
        std = self._stats.std
        if std < self.flatness_threshold:
            # Flat windows discretize as exact zeros (see the offline
            # discretizer): one stable middle-letter word, no flicker.
            normalized = np.zeros_like(values)
        else:
            normalized = (values - mean) / std
        means = paa(normalized, self.paa_size)
        idx = np.searchsorted(self._cuts, means, side="right")
        return "".join(self._alphabet[i] for i in idx)

    # -- state (de)serialization ----------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable state for :meth:`load_state` (exact)."""
        return {
            "window": self.window,
            "paa_size": self.paa_size,
            "alphabet_size": self.alphabet_size,
            "strategy": self.strategy.value,
            "flatness_threshold": self.flatness_threshold,
            "stats": self._stats.state_dict(),
            "position": self._position,
            "last_word": self._last_word,
            "raw_word_count": self.raw_word_count,
            "emitted_count": self.emitted_count,
        }

    def load_state(self, state: dict) -> None:
        """Restore the state captured by :meth:`state_dict`.

        The discretization parameters must match this instance's —
        a snapshot is a continuation, not a reconfiguration.
        """
        expected = {
            "window": self.window,
            "paa_size": self.paa_size,
            "alphabet_size": self.alphabet_size,
            "strategy": self.strategy.value,
        }
        for key, mine in expected.items():
            if state.get(key) != mine:
                raise CheckpointError(
                    f"discretizer state mismatch on {key!r}: snapshot has "
                    f"{state.get(key)!r}, this instance has {mine!r}"
                )
        self._stats.load_state(state["stats"])
        self._position = int(state["position"])
        self._last_word = state["last_word"]
        self.raw_word_count = int(state["raw_word_count"])
        self.emitted_count = int(state["emitted_count"])

    def _keep(self, word: str) -> bool:
        """Inline numerosity reduction against the last emitted word."""
        if self._last_word is None:
            return True
        if self.strategy is NumerosityReduction.NONE:
            return True
        if self.strategy is NumerosityReduction.EXACT:
            return word != self._last_word
        if self.strategy is NumerosityReduction.MINDIST:
            return (
                mindist(word, self._last_word, self.alphabet_size, self.window)
                > 0.0
            )
        raise ParameterError(f"unknown strategy {self.strategy!r}")

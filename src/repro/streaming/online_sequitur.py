"""Incremental Sequitur: a live grammar that grows token by token.

Sequitur is inherently online — the offline :func:`induce_grammar` just
feeds tokens in a loop.  This wrapper keeps the mutable induction state
alive between pushes so a stream consumer can interleave tokens and
grammar queries.  Snapshots (full :class:`Grammar` objects with
expansions/occurrences) cost O(grammar + derivation) and are intended
for periodic, not per-token, use.

The live state is the interned array engine from
:mod:`repro.grammar.sequitur` (:class:`_FastSequitur`): tokens are
interned to dense int ids as they arrive, and the digram machinery runs
over packed integer keys.  Snapshots go through the same freeze path as
the offline engine, so a snapshot equals ``induce_grammar`` over the
same prefix — bit for bit.
"""

from __future__ import annotations

from repro.grammar.grammar import Grammar
from repro.grammar.sequitur import _FastSequitur, _materialize, _prep_python


class IncrementalSequitur:
    """A Sequitur state that accepts tokens one at a time.

    Examples
    --------
    >>> inc = IncrementalSequitur()
    >>> for token in "ab ab cd ab".split():
    ...     inc.push(token)
    >>> grammar = inc.snapshot()
    >>> grammar.start_rule.expansion
    ['ab', 'ab', 'cd', 'ab']
    """

    def __init__(self) -> None:
        self._state = _FastSequitur()
        self._intern: dict[str, int] = {}
        self._vocab: list[str] = []
        self._tokens: list[str] = []

    def push(self, token: str) -> None:
        """Append one token and restore the Sequitur invariants."""
        token = str(token)
        self._tokens.append(token)
        code = self._intern.get(token)
        if code is None:
            code = self._intern[token] = 2 * len(self._vocab)
            self._vocab.append(token)
        self._state.push_code(code)

    def push_many(self, tokens) -> None:
        """Append a batch of tokens."""
        for token in tokens:
            self.push(token)

    @property
    def token_count(self) -> int:
        """Tokens consumed so far."""
        return len(self._tokens)

    @property
    def rule_count(self) -> int:
        """Live rules (start rule included) without snapshotting."""
        return sum(1 for g in self._state.guards if g != -1)

    def tokens(self) -> list[str]:
        """The tokens consumed so far (a copy)."""
        return list(self._tokens)

    def uncovered_token_runs(self) -> list[tuple[int, int]]:
        """Maximal terminal runs in the live start rule, as token spans.

        This is the streaming detector's primary signal — computed
        directly from the live array state (no snapshot needed): a
        terminal still sitting in R0 after the stream has moved on is a
        token the grammar could not compress.

        Returns inclusive ``(first_token_index, last_token_index)``
        pairs.  Cost: O(|R0 body| + total expansion of its rule refs),
        using cached expansion lengths where possible.
        """
        state = self._state
        code, nxt = state.code, state.nxt
        runs: list[tuple[int, int]] = []
        position = 0
        run_start: int | None = None
        length_cache: dict[int, int] = {}
        i = nxt[state.guards[0]]
        while code[i] >= 0:
            c = code[i]
            if c & 1:
                if run_start is not None:
                    runs.append((run_start, position - 1))
                    run_start = None
                position += self._expansion_length(c >> 1, length_cache)
            else:
                if run_start is None:
                    run_start = position
                position += 1
            i = nxt[i]
        if run_start is not None:
            runs.append((run_start, position - 1))
        return runs

    def _expansion_length(self, serial: int, cache: dict[int, int]) -> int:
        cached = cache.get(serial)
        if cached is not None:
            return cached
        state = self._state
        code, nxt = state.code, state.nxt
        total = 0
        i = nxt[state.guards[serial]]
        while code[i] >= 0:
            c = code[i]
            if c & 1:
                total += self._expansion_length(c >> 1, cache)
            else:
                total += 1
            i = nxt[i]
        cache[serial] = total
        return total

    def snapshot(self) -> Grammar:
        """Freeze the live state into an immutable :class:`Grammar`.

        The live state is not consumed — pushing may continue afterwards.
        """
        bodies, levels, lengths, starts = _prep_python(
            self._state, len(self._tokens)
        )
        return _materialize(
            bodies, levels, lengths, starts, list(self._tokens), self._vocab
        )

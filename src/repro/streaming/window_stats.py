"""O(1) rolling mean/standard deviation for the streaming discretizer.

Maintains running sums over a fixed-size window using the *shifted-data*
formulation: sums are taken of ``value - anchor`` where the anchor is a
recent data value, so the classic catastrophic cancellation of
``E[x^2] - E[x]^2`` for large-offset data never materializes.  Residual
floating-point drift from the add/subtract updates is bounded by
periodically recomputing the sums exactly from the buffered window.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import ParameterError

#: Recompute exact sums after this many O(1) updates (drift control).
_RESYNC_EVERY = 2048


class RollingStats:
    """Rolling mean/std over the last *window* pushed values.

    Examples
    --------
    >>> stats = RollingStats(window=3)
    >>> for value in [1.0, 2.0, 3.0, 4.0]:
    ...     stats.push(value)
    >>> stats.mean  # over [2, 3, 4]
    3.0
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ParameterError(f"window must be >= 1, got {window}")
        self.window = window
        self._buffer: deque[float] = deque(maxlen=window)
        self._anchor = 0.0
        self._sum = 0.0      # sum of (value - anchor)
        self._sum_sq = 0.0   # sum of (value - anchor)^2
        self._updates = 0

    def push(self, value: float) -> None:
        """Add one value; evicts the oldest once the window is full."""
        value = float(value)
        if not np.isfinite(value):
            raise ParameterError(f"non-finite value pushed: {value}")
        if not self._buffer:
            self._anchor = value
        if len(self._buffer) == self.window:
            shifted_old = self._buffer[0] - self._anchor
            self._sum -= shifted_old
            self._sum_sq -= shifted_old * shifted_old
        self._buffer.append(value)
        shifted = value - self._anchor
        self._sum += shifted
        self._sum_sq += shifted * shifted
        self._updates += 1
        if self._updates % _RESYNC_EVERY == 0:
            self._resync()

    def _resync(self) -> None:
        """Re-anchor and recompute the sums exactly (kills drift)."""
        values = np.asarray(self._buffer, dtype=float)
        self._anchor = float(values[-1])
        shifted = values - self._anchor
        self._sum = float(shifted.sum())
        self._sum_sq = float(np.dot(shifted, shifted))

    @property
    def count(self) -> int:
        """Number of values currently in the window."""
        return len(self._buffer)

    @property
    def full(self) -> bool:
        """True once the window holds *window* values."""
        return len(self._buffer) == self.window

    @property
    def mean(self) -> float:
        if not self._buffer:
            raise ParameterError("no values pushed yet")
        return self._anchor + self._sum / len(self._buffer)

    @property
    def std(self) -> float:
        """Population standard deviation of the windowed values."""
        if not self._buffer:
            raise ParameterError("no values pushed yet")
        n = len(self._buffer)
        shifted_mean = self._sum / n
        variance = max(0.0, self._sum_sq / n - shifted_mean * shifted_mean)
        return float(np.sqrt(variance))

    def values(self) -> np.ndarray:
        """The current window contents, oldest first (a copy)."""
        return np.asarray(self._buffer, dtype=float)

    # -- exact state (de)serialization ----------------------------------

    def state_dict(self) -> dict:
        """The full internal state, JSON-serializable and exact.

        Captures the anchor and running sums verbatim (not just the
        buffer), so a restored instance produces bit-identical
        mean/std — replaying the buffer through :meth:`push` would
        re-anchor and could drift in the last ulp.
        """
        return {
            "window": self.window,
            "buffer": [float(v) for v in self._buffer],
            "anchor": self._anchor,
            "sum": self._sum,
            "sum_sq": self._sum_sq,
            "updates": self._updates,
        }

    def load_state(self, state: dict) -> None:
        """Restore the exact state captured by :meth:`state_dict`."""
        if int(state["window"]) != self.window:
            raise ParameterError(
                f"state was captured for window {state['window']}, "
                f"this instance has window {self.window}"
            )
        self._buffer = deque(
            (float(v) for v in state["buffer"]), maxlen=self.window
        )
        self._anchor = float(state["anchor"])
        self._sum = float(state["sum"])
        self._sum_sq = float(state["sum_sq"])
        self._updates = int(state["updates"])

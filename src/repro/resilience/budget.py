"""Search budgets: deadlines, call ceilings, cooperative cancellation.

A :class:`SearchBudget` is threaded through the outer loop of every
discord search (RRA, HOTSAX, Haar, brute force).  The loop asks
:meth:`SearchBudget.interrupted` once per outer candidate; the first
non-None answer ends the search, which then returns its best-so-far
result tagged with the corresponding :class:`SearchStatus`.

Budget checks are deliberately outer-loop-grained: the boundary between
two outer candidates is a deterministic point of the search (a fixed
distance-call count and RNG state), which is what makes checkpointing
and bit-identical resume possible.  A ``max_calls`` ceiling may
therefore be overshot by at most one candidate's inner loop.
"""

from __future__ import annotations

import enum
import time
from typing import Optional

from repro.exceptions import ParameterError


class SearchStatus(enum.Enum):
    """How a search ended.

    COMPLETE
        The search visited every candidate; the result is exact.
    BUDGET_EXHAUSTED
        The wall-clock deadline or the distance-call ceiling was hit;
        the result is the best answer found so far.
    CANCELLED
        A :class:`CancellationToken` fired or a ``KeyboardInterrupt``
        arrived; the result is the best answer found so far.
    """

    COMPLETE = "complete"
    BUDGET_EXHAUSTED = "budget_exhausted"
    CANCELLED = "cancelled"


class CancellationToken:
    """Cooperative cancellation flag, settable from another thread.

    Examples
    --------
    >>> token = CancellationToken()
    >>> token.cancelled
    False
    >>> token.cancel()
    >>> token.cancelled
    True
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        """Request cancellation; every budget holding this token trips."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class SearchBudget:
    """Compute budget for one (possibly multi-rank) discord search.

    Parameters
    ----------
    deadline:
        Wall-clock seconds the search may run, measured from the first
        budget check (so a budget can be built ahead of time).  None
        means no time limit.
    max_calls:
        Ceiling on the distance-call counter.  None means no limit.
    token:
        Optional :class:`CancellationToken` polled at every check.

    Notes
    -----
    The budget is *sticky*: once a check reports exhaustion or
    cancellation, every later check reports the same status, so a
    multi-rank search stops cleanly instead of restarting the next rank.
    The :attr:`status` property reads ``COMPLETE`` while nothing has
    tripped — callers stamp it on their result after the search ends.
    """

    __slots__ = (
        "deadline",
        "max_calls",
        "token",
        "_deadline_at",
        "_tripped",
        "_metrics",
    )

    def __init__(
        self,
        *,
        deadline: Optional[float] = None,
        max_calls: Optional[int] = None,
        token: Optional[CancellationToken] = None,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise ParameterError(f"deadline must be >= 0, got {deadline}")
        if max_calls is not None and max_calls < 0:
            raise ParameterError(f"max_calls must be >= 0, got {max_calls}")
        self.deadline = deadline
        self.max_calls = max_calls
        self.token = token
        self._deadline_at: Optional[float] = None
        self._tripped: Optional[SearchStatus] = None
        self._metrics = None

    def bind_metrics(self, metrics) -> None:
        """Attach an observability sink; the trip becomes a trace event.

        The search engines bind their ``metrics=`` registry here on
        entry, so the *first* exhaustion/cancellation — wherever it is
        detected — lands in the trace stream as one ``budget.tripped``
        event.  A disabled sink (``NullMetrics``) is never bound, so the
        default path carries no reference and emits nothing.
        """
        if metrics is not None and getattr(metrics, "enabled", False):
            self._metrics = metrics

    def _trip(self, status: SearchStatus, reason: str, **attrs) -> None:
        """Record the terminal status and emit its trace event once."""
        first = self._tripped is None
        self._tripped = status
        if first and self._metrics is not None:
            self._metrics.event(
                "budget.tripped", status=status.value, reason=reason, **attrs
            )

    @classmethod
    def unlimited(cls) -> "SearchBudget":
        """A budget that never trips (still honours KeyboardInterrupt)."""
        return cls()

    @property
    def limited(self) -> bool:
        """True when any of the three limits is actually set."""
        return (
            self.deadline is not None
            or self.max_calls is not None
            or self.token is not None
        )

    def interrupted(self, calls: int) -> Optional[SearchStatus]:
        """One budget check; returns the terminal status or None.

        Parameters
        ----------
        calls:
            The current distance-call count of the search.
        """
        if self._tripped is not None:
            return self._tripped
        if self.token is not None and self.token.cancelled:
            self._trip(SearchStatus.CANCELLED, "token", calls=calls)
            return self._tripped
        if self.max_calls is not None and calls >= self.max_calls:
            self._trip(
                SearchStatus.BUDGET_EXHAUSTED,
                "max_calls",
                calls=calls,
                max_calls=self.max_calls,
            )
            return self._tripped
        if self.deadline is not None:
            now = time.monotonic()
            if self._deadline_at is None:
                self._deadline_at = now + self.deadline
            elif now >= self._deadline_at:
                self._trip(
                    SearchStatus.BUDGET_EXHAUSTED,
                    "deadline",
                    calls=calls,
                    deadline=self.deadline,
                )
                return self._tripped
        return None

    def remaining_deadline(self) -> Optional[float]:
        """Seconds left on the wall-clock budget, or None when unlimited.

        Starts the deadline clock if it has not started yet (mirroring
        :meth:`interrupted`), so a budget split before its first check
        hands the full allowance to the shards.
        """
        if self.deadline is None:
            return None
        now = time.monotonic()
        if self._deadline_at is None:
            self._deadline_at = now + self.deadline
        return max(0.0, self._deadline_at - now)

    def split(self, shards: int, *, calls_spent: int = 0) -> list["SearchBudget"]:
        """Fair-share sub-budgets for *shards* parallel slices of a search.

        The remaining call allowance (``max_calls - calls_spent``) is
        divided into equal ceilings (rounded up, so the shard totals may
        overshoot the parent ceiling by at most ``shards - 1`` calls plus
        the usual one-candidate overshoot per shard); the remaining
        wall-clock deadline is handed to every shard whole, since shards
        run concurrently against the same clock.  Each sub-budget keeps a
        reference to the parent's cancellation token; the process-pool
        layer substitutes a shared event before shipping sub-budgets to
        workers (tokens do not cross process boundaries).
        """
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        share: Optional[int] = None
        if self.max_calls is not None:
            remaining = max(0, self.max_calls - calls_spent)
            share = -(-remaining // shards)
        deadline = self.remaining_deadline()
        return [
            SearchBudget(deadline=deadline, max_calls=share, token=self.token)
            for _ in range(shards)
        ]

    def note_cancelled(self) -> None:
        """Record an out-of-band cancellation (KeyboardInterrupt)."""
        self._trip(SearchStatus.CANCELLED, "keyboard_interrupt")

    def note_exhausted(self) -> None:
        """Record an out-of-band exhaustion (a worker shard's budget tripped)."""
        if self._tripped is None:
            self._trip(SearchStatus.BUDGET_EXHAUSTED, "worker_shard")

    def adopt(self, status: SearchStatus) -> None:
        """Fold a worker shard's terminal status into this budget.

        CANCELLED wins over BUDGET_EXHAUSTED (a cancellation anywhere
        means the user asked the whole search to stop); COMPLETE is a
        no-op.
        """
        if status is SearchStatus.CANCELLED:
            self._trip(SearchStatus.CANCELLED, "worker_shard")
        elif status is SearchStatus.BUDGET_EXHAUSTED:
            self.note_exhausted()

    @property
    def status(self) -> SearchStatus:
        """The search status as of now (COMPLETE while nothing tripped)."""
        return self._tripped if self._tripped is not None else SearchStatus.COMPLETE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SearchBudget(deadline={self.deadline}, "
            f"max_calls={self.max_calls}, status={self.status.value})"
        )

"""JSON checkpointing of discord-search state.

A checkpoint is a plain JSON document capturing everything an RRA run
needs to resume bit-identically: which candidates the outer loop has
visited, the best-so-far discords, the distance-call count, and the
exact NumPy RNG state.  Writes are atomic (temp file + ``os.replace``),
so a crash mid-save leaves the previous checkpoint intact.

The checkpoint carries a *fingerprint* of the search inputs (series
bytes, candidate intervals, parameters); resuming against different
inputs raises :class:`~repro.exceptions.CheckpointError` instead of
silently producing garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import weakref
from typing import Any, Sequence

import numpy as np

from repro.exceptions import CheckpointError

#: Format tag written into (and required from) every checkpoint file.
CHECKPOINT_FORMAT = "repro-search-checkpoint/1"


# -- RNG state (de)serialization ----------------------------------------


def _encode(value: Any) -> Any:
    """Recursively make a bit_generator state dict JSON-serializable."""
    if isinstance(value, dict):
        return {k: _encode(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.integer):
        return int(value)
    return value


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value["dtype"])
        return {k: _decode(v) for k, v in value.items()}
    return value


def rng_state_to_json(rng: np.random.Generator) -> dict:
    """Capture a Generator's full state as a JSON-serializable dict."""
    return {
        "bit_generator": type(rng.bit_generator).__name__,
        "state": _encode(rng.bit_generator.state),
    }


def restore_rng(state: dict) -> np.random.Generator:
    """Rebuild a Generator from :func:`rng_state_to_json` output."""
    name = state.get("bit_generator")
    factory = getattr(np.random, str(name), None)
    if factory is None:
        raise CheckpointError(f"unknown bit generator {name!r} in checkpoint")
    bit_generator = factory()
    try:
        bit_generator.state = _decode(state["state"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed RNG state in checkpoint: {exc}") from exc
    return np.random.Generator(bit_generator)


# -- input fingerprinting ----------------------------------------------

#: Per-array-object memo of series digests, keyed by ``id(array)``.  A
#: weakref finalizer evicts entries when the array dies, so a recycled
#: id can never resurface a stale digest.  Pipelines, sweeps, and the
#: result cache hash the same (large) series array over and over; this
#: reduces every hash after the first to a dict lookup.  Like any
#: identity memo it assumes the array is not mutated after first use —
#: the same assumption every search layer already makes.
_SERIES_DIGESTS: dict[int, str] = {}


def series_digest(series: np.ndarray) -> str:
    """SHA-256 hex digest of the series' float64 bytes (memoized).

    The digest is over ``np.ascontiguousarray(series, dtype=float)``
    bytes, so logically equal inputs of any layout or dtype agree.
    """
    key = None
    if isinstance(series, np.ndarray):
        key = id(series)
        cached = _SERIES_DIGESTS.get(key)
        if cached is not None:
            return cached
    digest = hashlib.sha256(
        np.ascontiguousarray(series, dtype=float).tobytes()
    ).hexdigest()
    if key is not None:
        try:
            weakref.finalize(series, _SERIES_DIGESTS.pop, key, None)
        except TypeError:  # pragma: no cover - weakref-less ndarray subclass
            pass
        else:
            _SERIES_DIGESTS[key] = digest
    return digest


def search_fingerprint(
    series: np.ndarray,
    intervals: Sequence,
    params: dict,
) -> str:
    """Digest of the search inputs, for resume-time validation.

    Covers the series content (via the memoized :func:`series_digest`),
    every candidate interval's ``(rule_id, start, end, usage)`` tuple,
    and the search parameters — anything that could change the
    visitation order or the distances.
    """
    digest = hashlib.sha256()
    digest.update(series_digest(series).encode())
    for iv in intervals:
        digest.update(
            f"{iv.rule_id},{iv.start},{iv.end},{iv.usage};".encode()
        )
    digest.update(json.dumps(params, sort_keys=True).encode())
    return digest.hexdigest()


# -- atomic JSON persistence -------------------------------------------


def save_checkpoint(path: str, data: dict) -> None:
    """Atomically write *data* as JSON to *path*.

    The document is written to a temp file in the target directory and
    moved into place, so readers never observe a half-written file and a
    crash mid-write preserves the previous checkpoint.
    """
    payload = dict(data)
    payload["format"] = CHECKPOINT_FORMAT
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(path: str) -> dict:
    """Read and validate a checkpoint document.

    Raises
    ------
    CheckpointError
        If the file is unreadable, not JSON, or not a checkpoint of the
        supported format.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path} is not a {CHECKPOINT_FORMAT} checkpoint "
            f"(format={data.get('format') if isinstance(data, dict) else None!r})"
        )
    return data

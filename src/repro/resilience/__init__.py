"""Resilience layer: anytime search budgets and checkpoint/resume.

Production deployments cannot afford a discord search that either
finishes or crashes with nothing.  This package makes every search in
the library *anytime*:

* :class:`~repro.resilience.budget.SearchBudget` — a wall-clock
  deadline, a distance-call ceiling, and a cooperative
  :class:`~repro.resilience.budget.CancellationToken`, checked inside
  the outer loop of every discord search.  On exhaustion the search
  returns its best-so-far answer, tagged with a
  :class:`~repro.resilience.budget.SearchStatus` instead of raising.
* :mod:`~repro.resilience.checkpoint` — JSON snapshots of RRA search
  state (visited candidates, best-so-far discords, distance-call count,
  RNG state) with atomic writes, so a killed run resumes where it left
  off with bit-identical final output.

See DESIGN.md §6 for the budget semantics, the checkpoint format, and
the degradation ladder.
"""

from repro.resilience.budget import (
    CancellationToken,
    SearchBudget,
    SearchStatus,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    load_checkpoint,
    restore_rng,
    rng_state_to_json,
    save_checkpoint,
    search_fingerprint,
)

__all__ = [
    "CancellationToken",
    "SearchBudget",
    "SearchStatus",
    "CHECKPOINT_FORMAT",
    "load_checkpoint",
    "restore_rng",
    "rng_state_to_json",
    "save_checkpoint",
    "search_fingerprint",
]

"""Spatial-trajectory support (paper Section 5.1).

A multi-dimensional GPS trail is flattened to a scalar series by mapping
each position to its Hilbert space-filling-curve cell index; spatial
locality is largely preserved, so trajectory anomalies become time-series
anomalies the grammar pipeline can find.
"""

from repro.trajectory.hilbert import (
    hilbert_d2xy,
    hilbert_xy2d,
    hilbert_curve_points,
)
from repro.trajectory.convert import (
    BoundingBox,
    TrajectoryPoint,
    trail_to_series,
    series_index_to_trail_slice,
)

__all__ = [
    "hilbert_d2xy",
    "hilbert_xy2d",
    "hilbert_curve_points",
    "BoundingBox",
    "TrajectoryPoint",
    "trail_to_series",
    "series_index_to_trail_slice",
]

"""The Hilbert space-filling curve (Hilbert 1891; paper Figure 6).

An order-*k* Hilbert curve visits every cell of a 2^k x 2^k grid exactly
once such that consecutive cells in the visit order are always
edge-adjacent — the locality property the paper relies on when flattening
trajectories ("points close in space are generally close in their
Hilbert values").

The conversions below are the classic iterative bit-twiddling algorithms
(`xy2d` / `d2xy`), O(order) per point.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError

#: Largest supported curve order; 2^30 cells per side is far beyond any
#: realistic trajectory resolution and keeps indices inside int64.
MAX_ORDER = 30


def _validate_order(order: int) -> int:
    if not 1 <= order <= MAX_ORDER:
        raise ParameterError(f"Hilbert order must be in [1, {MAX_ORDER}], got {order}")
    return 1 << order  # grid side length


def hilbert_xy2d(order: int, x: int, y: int) -> int:
    """Cell coordinates -> position along the order-*order* curve.

    Parameters
    ----------
    order:
        Curve order k; the grid is 2^k x 2^k.
    x, y:
        Cell coordinates in [0, 2^k).

    Returns
    -------
    int
        Visit index d in [0, 4^k).
    """
    side = _validate_order(order)
    if not (0 <= x < side and 0 <= y < side):
        raise ParameterError(f"cell ({x}, {y}) outside {side}x{side} grid")
    rx = ry = 0
    d = 0
    s = side // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s //= 2
    return d


def hilbert_d2xy(order: int, d: int) -> tuple[int, int]:
    """Position along the curve -> cell coordinates (inverse of xy2d)."""
    side = _validate_order(order)
    if not 0 <= d < side * side:
        raise ParameterError(f"index {d} outside order-{order} curve")
    x = y = 0
    t = d
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def _rotate(s: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    """Rotate/flip the quadrant so the sub-curve orientation is correct."""
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return x, y


def hilbert_curve_points(order: int) -> np.ndarray:
    """All cells of the order-*order* curve in visit order, shape (4^k, 2).

    ``hilbert_curve_points(1)`` is the paper's Figure 6 left panel:
    ``[[0, 0], [0, 1], [1, 1], [1, 0]]``.
    """
    side = _validate_order(order)
    points = np.empty((side * side, 2), dtype=np.int64)
    for d in range(side * side):
        points[d] = hilbert_d2xy(order, d)
    return points

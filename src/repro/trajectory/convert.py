"""GPS trail -> scalar time series via the Hilbert curve (paper §5.1).

The paper converts a (time, latitude, longitude) trail into a sequence of
Hilbert-cell visit indices, ordered by the recorded times, and feeds that
scalar series to the anomaly pipeline.  An order-8 curve is used for the
paper's experiments; the order is a parameter here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import TrajectoryError
from repro.trajectory.hilbert import hilbert_xy2d


@dataclass(frozen=True)
class TrajectoryPoint:
    """One GPS fix."""

    time: float
    lat: float
    lon: float


@dataclass(frozen=True)
class BoundingBox:
    """Geographic extent used to grid the trajectory manifold."""

    min_lat: float
    max_lat: float
    min_lon: float
    max_lon: float

    def __post_init__(self) -> None:
        if self.min_lat >= self.max_lat or self.min_lon >= self.max_lon:
            raise TrajectoryError(f"degenerate bounding box: {self}")

    @classmethod
    def of_trail(cls, trail: Sequence[TrajectoryPoint], margin: float = 1e-9) -> "BoundingBox":
        """Tight bounding box of a trail (tiny margin avoids edge cells)."""
        if not trail:
            raise TrajectoryError("empty trail")
        lats = [p.lat for p in trail]
        lons = [p.lon for p in trail]
        return cls(
            min_lat=min(lats) - margin,
            max_lat=max(lats) + margin,
            min_lon=min(lons) - margin,
            max_lon=max(lons) + margin,
        )

    def to_cell(self, lat: float, lon: float, side: int) -> tuple[int, int]:
        """Map a coordinate to integer grid-cell coordinates."""
        fx = (lon - self.min_lon) / (self.max_lon - self.min_lon)
        fy = (lat - self.min_lat) / (self.max_lat - self.min_lat)
        x = min(side - 1, max(0, int(fx * side)))
        y = min(side - 1, max(0, int(fy * side)))
        return x, y


def trail_to_series(
    trail: Sequence[TrajectoryPoint],
    *,
    order: int = 8,
    bbox: BoundingBox | None = None,
) -> np.ndarray:
    """Convert a GPS trail to a scalar series of Hilbert cell indices.

    Parameters
    ----------
    trail:
        GPS fixes; they are sorted by time before conversion.
    order:
        Hilbert-curve order (the paper uses 8: a 256 x 256 grid).
    bbox:
        Geographic extent of the grid; the trail's own bounding box by
        default.

    Returns
    -------
    numpy.ndarray
        Float array of cell visit indices, one per fix, in time order.
    """
    if not trail:
        raise TrajectoryError("empty trail")
    ordered = sorted(trail, key=lambda p: p.time)
    if bbox is None:
        bbox = BoundingBox.of_trail(ordered)
    side = 1 << order
    series = np.empty(len(ordered), dtype=float)
    for i, point in enumerate(ordered):
        x, y = bbox.to_cell(point.lat, point.lon, side)
        series[i] = float(hilbert_xy2d(order, x, y))
    return series


def series_index_to_trail_slice(
    trail: Sequence[TrajectoryPoint], start: int, end: int
) -> list[TrajectoryPoint]:
    """Map a series interval back to the trail fixes it covers.

    The conversion is one fix per series point, so this is a plain slice
    of the time-ordered trail — provided as a named helper because the
    mapping direction matters when presenting results (Figures 7–9 color
    the discord's trail segment on the map).
    """
    ordered = sorted(trail, key=lambda p: p.time)
    if not 0 <= start < end <= len(ordered):
        raise TrajectoryError(
            f"series interval [{start}, {end}) out of range for "
            f"trail of {len(ordered)} fixes"
        )
    return ordered[start:end]

"""Process-pool plumbing: worker lifecycle, sharding, budget transport.

This module owns everything about *running* shard tasks — the pieces the
search engines share regardless of what a shard computes:

* a fork-preferring multiprocessing context (fork inherits the parent's
  imported modules, making worker dispatch cheap; spawn is the fallback
  on platforms without it);
* contiguous slicing of an ordered candidate list into shard chunks;
* an ``Event``-backed cancellation token so a parent-side
  :class:`~repro.resilience.budget.CancellationToken` (or a
  ``KeyboardInterrupt``) reaches every worker mid-scan;
* :func:`run_tasks`, the dispatch/collect loop with cooperative
  cancellation and guaranteed pool teardown (no orphaned workers).

Budgets cross the process boundary as plain dicts
(:func:`budget_to_spec` / :func:`budget_from_spec`): deadlines travel as
remaining seconds, call ceilings as the shard's fair share, and the
cancellation token is re-bound to the pool's shared event.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
from typing import Any, Callable, Optional

from repro.exceptions import ParameterError
from repro.resilience.budget import SearchBudget

__all__ = [
    "MIN_PARALLEL_CANDIDATES",
    "effective_workers",
    "shard_slices",
    "ramped_slices",
    "strided_wave_plan",
    "EventToken",
    "budget_to_spec",
    "budget_from_spec",
    "run_tasks",
]

#: Below this many outer candidates a parallel search falls back to the
#: serial path — pool startup would dominate any conceivable win.
MIN_PARALLEL_CANDIDATES = 8

#: Chunks handed out per worker.  More than one gives the pool a little
#: load-balancing slack (chunk costs are uneven) at the price of one
#: extra payload round-trip per chunk.
CHUNKS_PER_WORKER = 2

#: First-wave chunk size of the ramped shard schedule (see
#: :func:`ramped_slices`).
RAMP_BASE_CHUNK = 8


def effective_workers(n_workers: Optional[int]) -> int:
    """Normalize an ``n_workers`` argument; ``None``/1 mean serial."""
    if n_workers is None:
        return 1
    n_workers = int(n_workers)
    if n_workers < 1:
        raise ParameterError(f"n_workers must be >= 1, got {n_workers}")
    return n_workers


def shard_slices(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into up to *chunks* contiguous slices.

    Sizes differ by at most one, earlier slices get the remainder —
    deterministic, so a resumed run re-creates the same sharding.
    """
    if total < 0 or chunks < 1:
        raise ParameterError(
            f"need total >= 0 and chunks >= 1, got {total} and {chunks}"
        )
    chunks = min(chunks, total) or 1
    base, extra = divmod(total, chunks)
    slices: list[tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        end = start + base + (1 if i < extra else 0)
        if end > start:
            slices.append((start, end))
        start = end
    return slices


def ramped_slices(
    total: int, workers: int, *, base: int = RAMP_BASE_CHUNK
) -> list[tuple[int, int]]:
    """Contiguous slices in doubling waves of up to *workers* chunks.

    The first wave's chunks hold *base* candidates each, and every later
    wave doubles the chunk size.  Dispatched wave-by-wave (see
    ``run_tasks(wave_size=workers)``), this mirrors how the serial scan
    warms up its pruning threshold: early waves are cheap even though
    their floor is stale, and by the time the big chunks run the merged
    threshold has essentially converged to the serial best — which is
    what keeps the total over-scan (and hence the parallel critical
    path) small.  Deterministic, so a resumed run re-creates the same
    schedule.
    """
    if total < 0 or workers < 1 or base < 1:
        raise ParameterError(
            f"need total >= 0, workers >= 1 and base >= 1, "
            f"got {total}, {workers} and {base}"
        )
    slices: list[tuple[int, int]] = []
    start = 0
    size = base
    while start < total:
        for _ in range(workers):
            if start >= total:
                break
            end = min(total, start + size)
            slices.append((start, end))
            start = end
        size *= 2
    return slices


#: Warm-up waves of the RRA wave plan (chunk spans 1, 2, 4, ... ranks).
RRA_WARMUP_WAVES = 3

#: Chunks per worker in the final sweep wave of the RRA wave plan.
SWEEP_CHUNKS_PER_WORKER = 4


def strided_wave_plan(
    total: int,
    workers: int,
    *,
    warmup: int = RRA_WARMUP_WAVES,
    sweep_factor: int = SWEEP_CHUNKS_PER_WORKER,
) -> list[tuple[int, int, int]]:
    """RRA wave plan: ``(lo, hi, n_chunks)`` triples over ``range(total)``.

    The ranks of each wave are dealt round-robin to its chunks (rank
    ``lo + c``, ``lo + c + n``, ... for chunk *c* of *n*): RRA's outer
    order puts the rarest rules — the expensive, hard-to-prune scans —
    first, so contiguous chunks would stack that work into the first
    chunk and the wave's critical path would equal the serial cost.

    The plan has two phases.  *Warm-up*: up to *warmup* doubling waves
    of one chunk per worker (chunk spans 1, 2, 4, ... ranks), run with
    a barrier between them so each wave inherits the previous one's
    pruning threshold — this mirrors the serial scan's threshold
    warm-up while its cost is still dominated by unprunable full scans.
    *Sweep*: one final wave over everything left, cut into
    ``sweep_factor * workers`` strided chunks.  By then the threshold
    has essentially converged, so the floor's staleness costs little,
    and the fine strided chunks let the surviving candidates buried in
    the tail — each an unsplittable near-full scan — land in different
    chunks and overlap on the worker slots instead of serializing at
    wave barriers.  Deterministic, so a resumed run re-creates the same
    schedule.
    """
    if total < 0 or workers < 1 or warmup < 0 or sweep_factor < 1:
        raise ParameterError(
            f"need total >= 0, workers >= 1, warmup >= 0 and "
            f"sweep_factor >= 1, got {total}, {workers}, {warmup} "
            f"and {sweep_factor}"
        )
    plan: list[tuple[int, int, int]] = []
    start = 0
    size = 1
    for _ in range(warmup):
        if start >= total:
            break
        end = min(total, start + size * workers)
        plan.append((start, end, min(workers, end - start)))
        start = end
        size *= 2
    if start < total:
        plan.append((start, total, min(sweep_factor * workers, total - start)))
    return plan


class EventToken:
    """Duck-typed CancellationToken backed by a multiprocessing Event.

    Workers poll it through their shard budgets exactly like an ordinary
    token; the parent (or any shard) sets the event to stop everyone.
    """

    __slots__ = ("_event",)

    def __init__(self, event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


def budget_to_spec(budget: Optional[SearchBudget]) -> Optional[dict]:
    """Serialize one shard's sub-budget (from ``SearchBudget.split``)."""
    if budget is None or not (budget.deadline is not None or budget.max_calls is not None):
        return None
    return {"deadline": budget.deadline, "max_calls": budget.max_calls}


def budget_from_spec(spec: Optional[dict]) -> SearchBudget:
    """Worker side: rebuild a shard budget, bound to the pool's event."""
    token = EventToken(_WORKER_EVENT) if _WORKER_EVENT is not None else None
    if spec is None:
        return SearchBudget(token=token)
    return SearchBudget(
        deadline=spec.get("deadline"),
        max_calls=spec.get("max_calls"),
        token=token,
    )


#: Set by the pool initializer in every worker process.
_WORKER_EVENT = None


def _init_worker(event, own_tracker: bool) -> None:
    """Pool initializer: install the cancellation event, mute SIGINT.

    Workers ignore SIGINT so a Ctrl-C in the parent's terminal (which
    the OS delivers to the whole process group) doesn't kill them with a
    traceback mid-write; the parent propagates the interrupt through the
    event instead and tears the pool down in order.  *own_tracker* is
    True for spawned workers (separate resource-tracker process), where
    shared-memory attachments must be deregistered to keep the worker's
    tracker from reaping parent-owned segments on exit.
    """
    global _WORKER_EVENT
    _WORKER_EVENT = event
    from repro.parallel.shared import set_unregister_on_attach

    set_unregister_on_attach(own_tracker)
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


def pool_context():
    """A fork context when the platform has one, else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_tasks(
    task: Callable[[dict], Any],
    payloads: list,
    *,
    n_workers: int,
    budget: Optional[SearchBudget] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
    poll_seconds: float = 0.02,
    grace_seconds: float = 5.0,
    wave_size: Optional[int | list[int]] = None,
) -> list[Any]:
    """Execute *task* over *payloads* in a worker pool; ordered results.

    Results are collected as they finish and delivered in payload order.
    ``on_result(index, result)`` fires for the longest completed *prefix*
    of payloads (in order), which is what lets the RRA engine checkpoint
    at merged chunk boundaries while later chunks are still running.

    A payload may be a zero-argument callable, resolved at *submission*
    time.  Combined with ``wave_size`` — which submits that many
    payloads at a time (or, given a list, the explicit group sizes in
    order) and waits for the whole wave to finish (and be delivered)
    before building the next — this lets the search engines hand later
    chunks the pruning threshold the earlier chunks already
    established, instead of the stale seed value.  Wave barriers make
    the per-chunk work deterministic: a chunk's payload only ever sees
    the merged state of complete earlier waves.  A wave may hold more
    chunks than the pool has workers; the pool drains it FIFO, so the
    wave's wall cost is the list-schedule makespan of its chunks.

    Cancellation paths:

    * *budget*'s token trips → the shared event is set, workers notice at
      their next outer-loop boundary and return best-so-far records;
    * ``KeyboardInterrupt`` in the parent → the event is set, finished
      shards are drained for up to *grace_seconds*, then the pool is
      terminated; the interrupt is re-raised for the caller to translate
      (engines return best-so-far when the caller holds a budget).

    The pool is always closed and joined — no orphaned workers survive
    this function, whichever path exits it.
    """
    if not payloads:
        return []
    ctx = pool_context()
    event = ctx.Event()
    results: list[Any] = [None] * len(payloads)
    done = [False] * len(payloads)
    delivered = 0

    def _deliver_prefix() -> None:
        nonlocal delivered
        while delivered < len(payloads) and done[delivered]:
            if on_result is not None:
                on_result(delivered, results[delivered])
            delivered += 1

    handles: list = []
    pool = ctx.Pool(
        processes=min(n_workers, len(payloads)),
        initializer=_init_worker,
        initargs=(event, ctx.get_start_method() != "fork"),
    )
    try:
        if isinstance(wave_size, list):
            if not wave_size or any(w < 1 for w in wave_size) or sum(
                wave_size
            ) != len(payloads):
                raise ParameterError(
                    f"wave_size groups must be >= 1 and sum to "
                    f"{len(payloads)}, got {wave_size}"
                )
            groups = wave_size
        else:
            wave = wave_size if wave_size is not None else len(payloads)
            if wave < 1:
                raise ParameterError(f"wave_size must be >= 1, got {wave}")
            groups = [
                min(wave, len(payloads) - lo)
                for lo in range(0, len(payloads), wave)
            ]
        handles = [None] * len(payloads)
        wave_start = 0
        for group in groups:
            wave_ids = range(wave_start, wave_start + group)
            wave_start += group
            for i in wave_ids:
                payload = payloads[i]
                if callable(payload):
                    payload = payload()
                handles[i] = pool.apply_async(task, (payload,))
            pending = set(wave_ids)
            while pending:
                progressed = False
                for i in sorted(pending):
                    if handles[i].ready():
                        results[i] = handles[i].get()
                        done[i] = True
                        pending.discard(i)
                        progressed = True
                _deliver_prefix()
                if not pending:
                    break
                if budget is not None and budget.token is not None:
                    if budget.token.cancelled and not event.is_set():
                        event.set()
                if not progressed:
                    time.sleep(poll_seconds)
        pool.close()
        pool.join()
        return results
    except KeyboardInterrupt:
        event.set()
        deadline = time.monotonic() + grace_seconds
        for i, handle in enumerate(handles):
            if handle is None:  # never submitted (later wave)
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                results[i] = handle.get(timeout=remaining)
                done[i] = True
            except Exception:
                break
        pool.terminate()
        pool.join()
        _deliver_prefix()
        raise
    except BaseException:
        event.set()
        pool.terminate()
        pool.join()
        raise

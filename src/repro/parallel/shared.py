"""Zero-copy array transport for the process-pool execution layer.

Workers never receive pickled series data: the parent publishes each
large array (the z-normalized window matrix, the raw series, the
cumulative-sum window statistics) once into POSIX shared memory and
ships only a tiny :class:`SharedArraySpec` (name, shape, dtype) inside
the task payload.  Workers attach read-only views by name, so sharding a
search across N processes costs one copy of the data total instead of
N + 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

__all__ = ["SharedArraySpec", "SharedArrays", "attach"]


@dataclass(frozen=True)
class SharedArraySpec:
    """Pickle-cheap handle to one array published in shared memory."""

    name: str
    shape: tuple
    dtype: str


class SharedArrays:
    """Parent-side registry of shared-memory blocks for one parallel run.

    Use as a context manager: every block created through :meth:`share`
    is closed *and unlinked* on exit, so an interrupted run never leaks
    ``/dev/shm`` segments.

    Examples
    --------
    >>> import numpy as np
    >>> with SharedArrays() as arena:
    ...     spec = arena.share(np.arange(4.0))
    ...     np.array_equal(attach(spec), np.arange(4.0))
    True
    """

    def __init__(self) -> None:
        self._blocks: list[shared_memory.SharedMemory] = []

    def share(self, array: np.ndarray) -> SharedArraySpec:
        """Publish *array* into a fresh shared-memory block."""
        array = np.ascontiguousarray(array)
        block = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[...] = array
        self._blocks.append(block)
        return SharedArraySpec(block.name, tuple(array.shape), str(array.dtype))

    def close(self) -> None:
        """Close and unlink every block this arena created."""
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except FileNotFoundError:  # already unlinked (double close)
                pass
        self._blocks.clear()

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


#: Worker-side cache of attached blocks.  The numpy views handed out by
#: :func:`attach` borrow the block's buffer, so the SharedMemory objects
#: must stay alive for the lifetime of the worker process.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}

#: Whether :func:`attach` must deregister attachments from the resource
#: tracker.  Needed only in *spawned* workers, which run their own
#: tracker process: there, the attach-time auto-registration would make
#: the worker's tracker unlink the parent-owned segment (and warn about
#: "leaked" objects) on worker exit.  *Forked* workers share the parent's
#: tracker, where the segment is legitimately registered by its creator —
#: deregistering there would strip the parent's own registration and
#: break its unlink.  The pool initializer sets this per start method.
_UNREGISTER_ON_ATTACH = False


def set_unregister_on_attach(value: bool) -> None:
    """Configure attach-time tracker deregistration (pool initializer)."""
    global _UNREGISTER_ON_ATTACH
    _UNREGISTER_ON_ATTACH = bool(value)


def attach(spec: Optional[SharedArraySpec]) -> Optional[np.ndarray]:
    """Attach to a published array by spec; returns a read-only view.

    Idempotent per process: repeated attaches to the same block (across
    the several task payloads a worker may execute) reuse one mapping.
    """
    if spec is None:
        return None
    block = _ATTACHED.get(spec.name)
    if block is None:
        block = shared_memory.SharedMemory(name=spec.name)
        if _UNREGISTER_ON_ATTACH:
            _unregister_from_tracker(block)
        _ATTACHED[spec.name] = block
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=block.buf)
    view.flags.writeable = False
    return view


def _unregister_from_tracker(block: shared_memory.SharedMemory) -> None:
    """Restore single-owner semantics for a merely-attached block.

    On Python < 3.13 attaching registers the segment with the calling
    process's resource tracker; in a spawned worker that tracker would
    unlink the parent-owned block when the worker exits.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(block._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass

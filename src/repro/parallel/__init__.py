"""Multi-core execution layer for discord searches and grid sweeps.

Shards the outer loop of every discord search (RRA, HOTSAX, Haar, brute
force) and the parameter-grid sweep across a process pool while keeping
results bit-identical to the serial run — same discords, same ranks,
same aggregated distance-call counts, for any worker count.  See
:mod:`repro.parallel.scan` for the determinism scheme and
:mod:`repro.parallel.engine` for the orchestration.

Entry points are the ordinary search functions: pass ``n_workers=...``
to :func:`repro.core.rra.find_discords`,
:func:`repro.discord.hotsax.hotsax_discords`,
:func:`repro.discord.haar.haar_discords`,
:func:`repro.discord.brute_force.brute_force_discords`,
:meth:`repro.core.parameter_grid.ParameterGridStudy.sweep`, or
``GrammarAnomalyDetector(..., n_workers=...)`` — or ``--workers`` on the
CLI.
"""

from repro.parallel.pool import (
    CHUNKS_PER_WORKER,
    MIN_PARALLEL_CANDIDATES,
    RAMP_BASE_CHUNK,
    RRA_WARMUP_WAVES,
    SWEEP_CHUNKS_PER_WORKER,
    effective_workers,
    ramped_slices,
    shard_slices,
    strided_wave_plan,
)
from repro.parallel.shared import SharedArrays, SharedArraySpec, attach

__all__ = [
    "CHUNKS_PER_WORKER",
    "MIN_PARALLEL_CANDIDATES",
    "RAMP_BASE_CHUNK",
    "RRA_WARMUP_WAVES",
    "SWEEP_CHUNKS_PER_WORKER",
    "effective_workers",
    "ramped_slices",
    "shard_slices",
    "strided_wave_plan",
    "SharedArrays",
    "SharedArraySpec",
    "attach",
]

"""Shard scanning and serial-order replay — the determinism core.

Sharding an exact discord search is subtle because the searches are
*sequential* algorithms: each outer candidate's inner loop prunes
against the best-so-far discord distance, which evolves as the outer
loop advances.  A worker that owns outer candidates ``[lo, hi)`` cannot
know the serial best-so-far at ``lo`` without running everything before
it.

The layer solves this with a *scan/replay* split:

* **Workers over-scan.**  Each worker runs the ordinary inner loop over
  its shard, pruning against a *local* threshold — the maximum of a
  seed value ``τ0`` (the nearest-neighbour distance of the first outer
  candidate, computed by the parent) and the shard's own best-so-far.
  Both are provably ≤ the serial best-so-far at every point, so the
  local scan always covers at least the pairs the serial scan visits.
* **Workers record prefix minima.**  For each candidate the worker
  records how many pairs it scanned, whether it finished, and the
  positions/values where the running minimum strictly decreased.  The
  serial scan's behaviour over any prefix is a pure function of those
  minima: the serial inner loop breaks at the first distance below the
  serial best, and the first such distance is necessarily a strict
  prefix minimum.
* **The parent replays in serial order.**  Walking the records in the
  serial outer order while carrying the true serial best-so-far yields,
  for every candidate, the exact pair count the serial loop would have
  spent and the exact best/position updates — so discords, ranks, and
  distance-call counts are bit-identical to the serial run for any
  worker count.

Early-abandoned (``inf``) distances in the scalar path never disturb
this: while a candidate is alive its abandon cutoff stays ≥ the serial
best, so any distance that could end the serial scan is fully computed
and therefore recorded.
"""

from __future__ import annotations

import math
import time
from collections import defaultdict
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.core.rra import (
    _CandidateSet,
    _InnerOrdering,
    _is_non_self_match,
    _kernel_pair_distance,
)
from repro.discord.search import _inner_sequence
from repro.exceptions import DiscordSearchError
from repro.grammar.intervals import RuleInterval
from repro.observability.metrics import MetricsRegistry, ensure_metrics
from repro.parallel.pool import budget_from_spec
from repro.parallel.shared import attach
from repro.resilience.budget import SearchBudget, SearchStatus
from repro.resilience.checkpoint import restore_rng
from repro.timeseries import kernels
from repro.timeseries.distance import variable_length_distance
from repro.timeseries.distance import euclidean_early_abandon

__all__ = [
    "CandidateScan",
    "Replay",
    "scan_fixed_positions",
    "scan_fixed_shard",
    "scan_rra_positions",
    "scan_rra_shard",
]


@dataclass
class CandidateScan:
    """One candidate's recorded inner-loop scan.

    Attributes
    ----------
    position:
        The candidate's identity for the merge: the window start for
        fixed-length searches, the outer-order rank for RRA.
    scanned:
        Number of pairs the local scan visited (logical count: pairs
        discharged by a lower bound are included).
    minima:
        ``(count, value)`` pairs — after *count* visited pairs the
        running minimum strictly dropped to *value*.  Counts are
        1-based and ascending; values strictly descending.
    complete:
        True when every non-self-match pair was visited (the local
        threshold never fired).
    pruned_prefix:
        Lower-bound bookkeeping (None when pruning was off): entry *i*
        is the number of pairs an admissible bound discharged among the
        first ``minima[i][0]`` pairs.  Because the per-pair prune
        decision depends only on the candidate's running nearest — a
        pure function of the pair order, independent of the scan's stop
        threshold — these prefix counts let the serial replay recover
        the exact true/pruned split at whatever stop point the serial
        best implies.
    pruned_total:
        Pairs discharged over the whole local scan (the complete-record
        counterpart of :attr:`pruned_prefix`).
    lb_evals:
        Physical lower-bound evaluations this scan performed
        (diagnostic; includes over-scanned pairs the replay discards).
    """

    position: int
    scanned: int
    minima: list
    complete: bool
    pruned_prefix: Optional[list] = None
    pruned_total: int = 0
    lb_evals: int = 0

    @property
    def nearest(self) -> float:
        """The local scan's final nearest-neighbour distance."""
        return self.minima[-1][1] if self.minima else float("inf")


@dataclass
class ShardResult:
    """What one shard task returns to the parent."""

    records: list = field(default_factory=list)
    processed: int = 0
    status: str = SearchStatus.COMPLETE.value
    calls: int = 0
    elapsed: float = 0.0
    #: Physical lower-bound evaluations across the shard (diagnostic).
    lb_calls: int = 0
    #: Snapshot of the worker-local metrics registry (None when the
    #: parent search runs without observability).  Merged by the parent
    #: in serial replay order; the merge is commutative, so totals are
    #: deterministic for any worker count.
    metrics: Optional[dict] = None


class Replay:
    """Serial-order merge of shard records.

    Feeds shards in serial outer order, carrying the true best-so-far.
    For each record it derives the pair count the serial scan would have
    spent (the first prefix minimum below the serial best, else the full
    scan) and applies the serial update rule.  ``feed`` returns False
    when a shard was truncated (budget/cancellation): replay must stop
    there, because later candidates' serial behaviour depends on state
    the truncated shard never produced — the merged result is then a
    best-so-far answer equal to some serial prefix of the search.
    """

    def __init__(self, *, prune: bool = True, init_best: float = -1.0):
        self.prune = prune
        self.best = init_best
        self.best_pos: Optional[int] = None
        self.calls = 0
        #: Of :attr:`calls`, how many were discharged by a lower bound
        #: (derived from the records' pruned prefixes — the serial
        #: logical split, not the workers' physical one).
        self.pruned_calls = 0
        self.complete = True
        self.status = SearchStatus.COMPLETE.value

    def feed(self, shard: ShardResult, expected: int) -> bool:
        """Merge one shard (covering *expected* outer positions).

        A truncated shard (budget/cancellation fired mid-chunk) is
        discarded whole — merging its partial prefix would leave the
        replay at a mid-chunk point whose RNG state the parent never
        captured, breaking checkpoint/resume.  Dropping it keeps the
        merged result on the previous chunk boundary.
        """
        if shard.processed < expected or shard.status != SearchStatus.COMPLETE.value:
            self.complete = False
            if shard.status != SearchStatus.COMPLETE.value:
                self.status = shard.status
            else:  # pragma: no cover - defensive: truncation implies status
                self.status = SearchStatus.BUDGET_EXHAUSTED.value
            return False
        for record in shard.records:
            self._one(record)
        return True

    def _one(self, record: CandidateScan) -> None:
        if self.prune:
            for i, (count, value) in enumerate(record.minima):
                if value < self.best:
                    # The serial scan would have pruned this candidate
                    # after exactly `count` pairs.
                    self.calls += count
                    if record.pruned_prefix is not None:
                        self.pruned_calls += record.pruned_prefix[i]
                    return
        if not record.complete:
            raise DiscordSearchError(
                "parallel scan inconsistency: a locally-pruned candidate "
                "survived the serial replay (local threshold exceeded the "
                "serial best-so-far)"
            )
        self.calls += record.scanned
        self.pruned_calls += record.pruned_total
        nearest = record.nearest
        if math.isfinite(nearest) and nearest > self.best:
            self.best = nearest
            self.best_pos = record.position


# ---------------------------------------------------------------------------
# Fixed-length engines (HOTSAX / Haar buckets, brute force)
# ---------------------------------------------------------------------------


def _record_kernel_blocks(
    normalized: np.ndarray,
    sqnorms: np.ndarray,
    p: int,
    order: Iterator[int],
    threshold: float,
    lb=None,
) -> CandidateScan:
    """Block-vectorized recording scan (mirror of ``_kernel_inner_scan``).

    With *lb* the lower-bound cascade filters each block against the
    running nearest at block start before the distance kernel runs.
    The prune decisions are a pure function of the pair order (the
    nearest trajectory does not depend on *threshold*, which only sets
    the stop point), so the recorded minima — and the pruned prefix
    counts alongside them — are exactly what any serial-threshold
    replay needs.
    """
    minima: list = []
    pruned_prefix: Optional[list] = [] if lb is not None else None
    nearest = float("inf")
    scanned = 0
    pruned_cum = 0
    lb_evals = 0
    block = 8
    p_row = normalized[p]
    p_sq = sqnorms[p]
    while True:
        idx = np.fromiter(islice(order, block), dtype=np.intp)
        if idx.size == 0:
            return CandidateScan(
                p, scanned, minima, True,
                pruned_prefix=pruned_prefix, pruned_total=pruned_cum,
                lb_evals=lb_evals,
            )
        if lb is not None and math.isfinite(nearest):
            lb_evals += idx.size
            keep_positions = np.flatnonzero(lb.block_keep(p, idx, nearest))
            survivors = idx[keep_positions]
        else:
            keep_positions = None
            survivors = idx
        if survivors.size:
            sq = kernels.one_vs_all_sq_euclidean(
                p_row,
                normalized[survivors],
                query_sqnorm=p_sq,
                sqnorms=sqnorms[survivors],
            )
            dists = np.sqrt(sq)
            hit = kernels.first_below(dists, threshold)
        else:
            dists = None
            hit = -1
        limit = hit + 1 if hit >= 0 else int(survivors.size)
        if limit:
            points, values = kernels.running_min_points(dists[:limit])
            for j, value in zip(points, values):
                value = float(value)
                if value < nearest:
                    nearest = value
                    logical_j = (
                        int(j) if keep_positions is None
                        else int(keep_positions[int(j)])
                    )
                    minima.append((scanned + logical_j + 1, value))
                    if pruned_prefix is not None:
                        # Pruned pairs among the first `logical_j + 1`
                        # of this block = logical index - survivor index.
                        pruned_prefix.append(
                            pruned_cum + (logical_j - int(j))
                        )
        if hit >= 0:
            logical_hit = (
                int(hit) if keep_positions is None
                else int(keep_positions[int(hit)])
            )
            scanned += logical_hit + 1
            pruned_cum += logical_hit - int(hit)
            return CandidateScan(
                p, scanned, minima, False,
                pruned_prefix=pruned_prefix, pruned_total=pruned_cum,
                lb_evals=lb_evals,
            )
        scanned += idx.size
        if keep_positions is not None:
            pruned_cum += int(idx.size - survivors.size)
        block = min(block * 4, 2048)


def _record_kernel_row(
    normalized: np.ndarray,
    sqnorms: np.ndarray,
    p: int,
    window: int,
    threshold: float,
    prune: bool,
    lb=None,
) -> CandidateScan:
    """Full-row recording scan for brute force (one matvec per candidate).

    With *lb* the full-row matvec would defeat the pruning, so the same
    ascending pair order is scanned in growing blocks instead (records
    are identical; a ``-inf`` threshold reproduces the non-abandoning
    variant exactly, since the break is strictly below the threshold).
    """
    k = normalized.shape[0]
    if lb is not None:
        order = (q for q in range(k) if abs(p - q) > window)
        return _record_kernel_blocks(
            normalized, sqnorms, p, order,
            threshold if prune else float("-inf"), lb=lb,
        )
    sq_row = kernels.one_vs_all_sq_euclidean(
        normalized[p], normalized, query_sqnorm=sqnorms[p], sqnorms=sqnorms
    )
    valid = np.ones(k, dtype=bool)
    valid[max(0, p - window) : p + window + 1] = False
    dists = np.sqrt(sq_row[valid])
    hit = kernels.first_below(dists, threshold) if prune else -1
    limit = hit + 1 if hit >= 0 else dists.size
    points, values = kernels.running_min_points(dists[:limit])
    minima = [(int(j) + 1, float(v)) for j, v in zip(points, values)]
    return CandidateScan(p, int(limit), minima, hit < 0)


def _record_scalar_pairs(
    normalized: np.ndarray,
    p: int,
    order: Iterable[int],
    threshold: float,
    prune: bool,
    lb=None,
) -> CandidateScan:
    """Per-pair recording scan on the scalar reference path."""
    minima: list = []
    pruned_prefix: Optional[list] = [] if lb is not None else None
    nearest = float("inf")
    scanned = 0
    pruned_cum = 0
    lb_evals = 0
    p_row = normalized[p]
    for q in order:
        if lb is not None and math.isfinite(nearest):
            lb_evals += 1
            if lb.pair_exceeds(p, q, nearest):
                # dist >= LB >= nearest: cannot be a minimum, cannot
                # stop the scan — one logical pair, no kernel.
                scanned += 1
                pruned_cum += 1
                continue
        cutoff = nearest if prune else float("inf")
        dist = euclidean_early_abandon(p_row, normalized[q], cutoff)
        scanned += 1
        if dist < nearest:
            nearest = dist
            minima.append((scanned, float(dist)))
            if pruned_prefix is not None:
                pruned_prefix.append(pruned_cum)
        if prune and dist < threshold:
            return CandidateScan(
                p, scanned, minima, False,
                pruned_prefix=pruned_prefix, pruned_total=pruned_cum,
                lb_evals=lb_evals,
            )
    return CandidateScan(
        p, scanned, minima, True,
        pruned_prefix=pruned_prefix, pruned_total=pruned_cum,
        lb_evals=lb_evals,
    )


def _scan_fixed_positions_batch(
    normalized: np.ndarray,
    sqnorms: np.ndarray,
    bucket_ids: Optional[np.ndarray],
    positions: Iterable[int],
    *,
    window: int,
    exclude: tuple,
    prune: bool,
    floor: float,
    rng: Optional[np.random.Generator],
    budget: SearchBudget,
    lb=None,
    metrics=None,
) -> ShardResult:
    """Tiled recording scan for ``backend='batch'`` shards.

    Classifies whole tiles of outer candidates with
    :class:`repro.discord.batch.TileScanner`, then records each row with
    :func:`repro.discord.batch.record_row` — producing the same
    :class:`CandidateScan` records as the kernel recording scans, so the
    replay merge is untouched.  Budget checks and the serial
    ``processed`` bookkeeping for excluded positions run per candidate,
    exactly as in :func:`scan_fixed_positions`; inner-order permutations
    are pre-drawn per tile, the same over-draw-on-truncation the
    parent's chunk pre-draws already perform (truncated shards are
    discarded whole by the replay).
    """
    from repro.discord import batch

    metrics = ensure_metrics(metrics)
    instrumented = metrics.enabled
    if instrumented:
        m_candidates = metrics.counter("worker.candidates")
        m_pairs = metrics.counter("worker.pairs")
        m_depth = metrics.histogram("worker.scan_depth")
    k = normalized.shape[0]
    buckets: Optional[dict] = None
    if bucket_ids is not None:
        buckets = defaultdict(list)
        for pos, bucket in enumerate(bucket_ids):
            buckets[int(bucket)].append(pos)
    # Bucketed (HOTSAX/Haar) shards always early-abandon; brute-force
    # shards only with *prune* — mirroring the serial engines.
    abandon = True if buckets is not None else prune

    # Split the shard into active candidates plus, for each, the number
    # of excluded positions immediately before it (those advance
    # `processed` without a budget check, as in the serial loop).
    active: list[int] = []
    pre_excluded: list[int] = []
    skipped = 0
    for p in positions:
        p = int(p)
        if any(ex_start <= p < ex_end for ex_start, ex_end in exclude):
            skipped += 1
            continue
        active.append(p)
        pre_excluded.append(skipped)
        skipped = 0
    trailing = skipped

    arange = np.arange(k, dtype=np.intp)

    def make_order(p: int) -> np.ndarray:
        if buckets is None:
            return arange[np.abs(arange - p) > window]
        same_bucket = np.asarray(
            [q for q in buckets[int(bucket_ids[p])] if q != p], dtype=np.intp
        )
        tail = rng.permutation(k)
        mask = np.ones(k, dtype=bool)
        mask[same_bucket] = False
        mask[p] = False
        rest = tail[mask[tail]]
        order = (
            np.concatenate((same_bucket, rest)) if same_bucket.size else rest
        )
        return order[np.abs(order - p) > window]

    scanner = batch.TileScanner(normalized, sqnorms, lb=lb)
    result = ShardResult()
    local_best = floor
    started = time.perf_counter()
    interrupted = False
    for lo in range(0, len(active), scanner.tile_rows):
        tile = active[lo : lo + scanner.tile_rows]
        orders = [make_order(p) for p in tile]
        tile_floor = local_best if abandon else float("-inf")
        rows = scanner.prepare(tile, orders, tile_floor)
        for j, row in enumerate(rows):
            result.processed += pre_excluded[lo + j]
            if budget.interrupted(result.calls) is not None:
                result.status = budget.status.value
                interrupted = True
                break
            threshold = local_best if abandon else float("-inf")
            record = batch.record_row(row, threshold, lb)
            result.calls += record.scanned
            result.lb_calls += record.lb_evals
            result.records.append(record)
            result.processed += 1
            if instrumented:
                m_candidates.inc()
                m_pairs.inc(record.scanned)
                m_depth.observe(record.scanned)
            if record.complete:
                nearest = record.nearest
                if math.isfinite(nearest) and nearest > local_best:
                    local_best = nearest
        if interrupted:
            break
    if not interrupted:
        result.processed += trailing
    result.elapsed = time.perf_counter() - started
    return result


def scan_fixed_positions(
    normalized: np.ndarray,
    sqnorms: Optional[np.ndarray],
    bucket_ids: Optional[np.ndarray],
    positions: Iterable[int],
    *,
    window: int,
    exclude: tuple,
    backend: str,
    prune: bool,
    floor: float,
    rng: Optional[np.random.Generator],
    budget: Optional[SearchBudget] = None,
    lb=None,
    metrics=None,
) -> ShardResult:
    """Scan one shard of a fixed-length search's outer candidates.

    *bucket_ids* present → HOTSAX/Haar semantics (same-bucket pairs
    first, shuffled tail, always pruning); absent → brute-force
    semantics (ascending pair order, pruning only with *prune*).
    *floor* is the shard's starting threshold (τ0); the shard tightens
    it with its own completed candidates.  Runs in a worker process or
    inline in the parent (the τ0 seed scan) — identical behaviour.
    *lb* (a :class:`~repro.timeseries.lowerbound.WindowLowerBound`)
    switches the recording scans to the lower-bound cascade; records
    then carry the pruned prefixes the replay needs.  *metrics* records
    the shard's *physical* work (candidates, pairs, scan depths) —
    deterministic for a fixed seed because chunk floors are resolved at
    deterministic wave boundaries, but a worker's-eye view, not the
    serial ledger the replay reconstructs.
    """
    if budget is None:
        budget = SearchBudget.unlimited()
    if backend == "batch":
        return _scan_fixed_positions_batch(
            normalized,
            sqnorms,
            bucket_ids,
            positions,
            window=window,
            exclude=exclude,
            prune=prune,
            floor=floor,
            rng=rng,
            budget=budget,
            lb=lb,
            metrics=metrics,
        )
    metrics = ensure_metrics(metrics)
    instrumented = metrics.enabled
    if instrumented:
        m_candidates = metrics.counter("worker.candidates")
        m_pairs = metrics.counter("worker.pairs")
        m_depth = metrics.histogram("worker.scan_depth")
    k = normalized.shape[0]
    buckets: Optional[dict] = None
    if bucket_ids is not None:
        buckets = defaultdict(list)
        for pos, bucket in enumerate(bucket_ids):
            buckets[int(bucket)].append(pos)
    result = ShardResult()
    local_best = floor
    started = time.perf_counter()
    for p in positions:
        p = int(p)
        if any(ex_start <= p < ex_end for ex_start, ex_end in exclude):
            result.processed += 1
            continue
        if budget.interrupted(result.calls) is not None:
            result.status = budget.status.value
            break
        if buckets is not None:
            same_bucket = [q for q in buckets[int(bucket_ids[p])] if q != p]
            tail = rng.permutation(k)
            order = (
                q for q in _inner_sequence(same_bucket, tail, p)
                if abs(p - q) > window
            )
            if backend == "kernel":
                record = _record_kernel_blocks(
                    normalized, sqnorms, p, order, local_best, lb=lb
                )
            else:
                record = _record_scalar_pairs(
                    normalized, p, order, local_best, True, lb=lb
                )
        elif backend == "kernel":
            record = _record_kernel_row(
                normalized, sqnorms, p, window, local_best, prune, lb=lb
            )
        else:
            order = (q for q in range(k) if abs(p - q) > window)
            record = _record_scalar_pairs(
                normalized, p, order, local_best, prune, lb=lb
            )
        result.calls += record.scanned
        result.lb_calls += record.lb_evals
        result.records.append(record)
        result.processed += 1
        if instrumented:
            m_candidates.inc()
            m_pairs.inc(record.scanned)
            m_depth.observe(record.scanned)
        if record.complete:
            nearest = record.nearest
            if math.isfinite(nearest) and nearest > local_best:
                local_best = nearest
    result.elapsed = time.perf_counter() - started
    return result


#: One-entry worker memos of shard artifacts that are identical across
#: every task of one parallel search.  Keys are built from the parent's
#: shared-memory block names, which are unique per run, so a task from
#: a new search simply displaces the previous run's entry.  Reuse is
#: purely physical — the artifacts are deterministic functions of the
#: shared arrays — so records, ledgers, and discords are unchanged.
_FIXED_LB_MEMO: dict = {}
_RRA_SHARD_MEMO: dict = {}


def scan_fixed_shard(payload: dict) -> ShardResult:
    """Worker entry point: attach shared arrays, scan the shard."""
    normalized = attach(payload["normalized"])
    sqnorms = attach(payload.get("sqnorms"))
    bucket_ids = attach(payload.get("bucket_ids"))
    outer = attach(payload.get("outer"))
    lo, hi = payload["slice"]
    positions = outer[lo:hi] if outer is not None else range(lo, hi)
    rng = (
        restore_rng(payload["rng_state"])
        if payload.get("rng_state") is not None
        else None
    )
    lb = None
    lb_spec = payload.get("lb")
    if lb_spec is not None:
        from repro.timeseries.lowerbound import WindowLowerBound

        lb_key = (
            lb_spec["paa_values"].name,
            lb_spec["letters"].name,
            lb_spec["window"],
            lb_spec["alphabet_size"],
        )
        lb = _FIXED_LB_MEMO.get(lb_key)
        if lb is None:
            _FIXED_LB_MEMO.clear()
            lb = WindowLowerBound(
                attach(lb_spec["paa_values"]),
                lb_spec["window"],
                lb_spec["alphabet_size"],
                letters=attach(lb_spec["letters"]),
            )
            _FIXED_LB_MEMO[lb_key] = lb
    registry = MetricsRegistry() if payload.get("metrics") else None
    result = scan_fixed_positions(
        normalized,
        sqnorms,
        bucket_ids,
        positions,
        window=payload["window"],
        exclude=tuple(tuple(pair) for pair in payload["exclude"]),
        backend=payload["backend"],
        prune=payload["prune"],
        floor=payload["floor"],
        rng=rng,
        budget=budget_from_spec(payload.get("budget")),
        lb=lb,
        metrics=registry,
    )
    if registry is not None:
        result.metrics = registry.snapshot()
    return result


# ---------------------------------------------------------------------------
# RRA (variable-length grammar-rule candidates)
# ---------------------------------------------------------------------------


def scan_rra_positions(
    cache: _CandidateSet,
    ordering: _InnerOrdering,
    candidates: list,
    outer_indices: list,
    base: int,
    *,
    backend: str,
    floor: float,
    rng: np.random.Generator,
    budget: Optional[SearchBudget] = None,
    stride: int = 1,
    offset: int = 0,
    lb=None,
    metrics=None,
) -> ShardResult:
    """Scan one shard of RRA outer candidates (records, not results).

    *outer_indices* are indices into *candidates* covering one wave of
    the serial outer order; *base* is the outer rank of the first, so
    records carry global outer ranks for the replay.  The shard *owns*
    the positions ``j`` with ``j % stride == offset`` (the round-robin
    deal that spreads the expensive front-of-order candidates across a
    wave's workers); for the others it only consumes the serial RNG's
    inner-ordering permutation, so the generator is in the exact serial
    state when each owned candidate shuffles its tail.  The default
    ``stride=1`` owns everything — a plain contiguous shard.
    """
    if budget is None:
        budget = SearchBudget.unlimited()
    metrics = ensure_metrics(metrics)
    instrumented = metrics.enabled
    if instrumented:
        m_candidates = metrics.counter("worker.candidates")
        m_pairs = metrics.counter("worker.pairs")
        m_depth = metrics.histogram("worker.scan_depth")
    use_kernel = backend != "scalar"
    use_batch = backend == "batch"
    result = ShardResult()
    local_best = floor
    started = time.perf_counter()
    for j, ci in enumerate(outer_indices):
        p = candidates[ci]
        if j % stride != offset:
            rng.permutation(ordering.rest_size(p))
            continue
        if budget.interrupted(result.calls) is not None:
            result.status = budget.status.value
            break
        p_values = cache.values(p)
        minima: list = []
        pruned_prefix: Optional[list] = [] if lb is not None else None
        nearest = float("inf")
        scanned = 0
        pruned_cum = 0
        lb_evals = 0
        complete = True
        for q in ordering.order(p, rng):
            if q is p or not _is_non_self_match(p, q):
                continue
            if lb is not None and math.isfinite(nearest):
                lb_evals += 1
                if lb.pair_exceeds(p, q, nearest):
                    scanned += 1
                    pruned_cum += 1
                    continue
            if use_kernel:
                dist = (
                    cache.pair_distance_batch(p, q)
                    if use_batch
                    else _kernel_pair_distance(cache, p, q)
                )
            else:
                dist = variable_length_distance(
                    p_values, cache.values(q), normalize_inputs=False
                )
            scanned += 1
            if dist < nearest:
                nearest = dist
                minima.append((scanned, float(dist)))
                if pruned_prefix is not None:
                    pruned_prefix.append(pruned_cum)
            if dist < local_best:
                complete = False
                break
        record = CandidateScan(
            base + j, scanned, minima, complete,
            pruned_prefix=pruned_prefix, pruned_total=pruned_cum,
            lb_evals=lb_evals,
        )
        result.calls += record.scanned
        result.lb_calls += record.lb_evals
        result.records.append(record)
        result.processed += 1
        if instrumented:
            m_candidates.inc()
            m_pairs.inc(record.scanned)
            m_depth.observe(record.scanned)
        if complete and math.isfinite(nearest) and nearest > local_best:
            local_best = nearest
    result.elapsed = time.perf_counter() - started
    return result


def scan_rra_shard(payload: dict) -> ShardResult:
    """Worker entry point for one RRA shard.

    A multi-wave RRA search sends the same worker many shards over the
    same series and candidate pool, so the rebuildable artifacts — the
    candidate-set value cache, the inner-ordering table, and the
    interval lower bound — are memoized per worker across tasks.
    """
    lb_config = payload.get("lb")
    memo_key = (
        payload["series"].name,
        tuple(tuple(c) for c in payload["candidates"]),
        (
            (lb_config["segments"], lb_config["alphabet_size"])
            if lb_config is not None
            else None
        ),
    )
    memo = _RRA_SHARD_MEMO.get(memo_key)
    if memo is None:
        series = attach(payload["series"])
        cumsum = attach(payload["cumsum"])
        sq_cumsum = attach(payload["sq_cumsum"])
        candidates = [
            RuleInterval(rule_id, start, end, usage)
            for rule_id, start, end, usage in payload["candidates"]
        ]
        stats = kernels.SeriesStats.from_cumsums(series, cumsum, sq_cumsum)
        cache = _CandidateSet(series, candidates, stats=stats)
        ordering = _InnerOrdering(candidates)
        lb = None
        if lb_config is not None:
            from repro.timeseries.lowerbound import IntervalLowerBound

            lb = IntervalLowerBound(
                cache,
                segments=lb_config["segments"],
                alphabet_size=lb_config["alphabet_size"],
            )
        _RRA_SHARD_MEMO.clear()
        _RRA_SHARD_MEMO[memo_key] = (cache, ordering, candidates, lb)
    else:
        cache, ordering, candidates, lb = memo
    registry = MetricsRegistry() if payload.get("metrics") else None
    result = scan_rra_positions(
        cache,
        ordering,
        candidates,
        payload["outer_indices"],
        payload["base"],
        backend=payload["backend"],
        floor=payload["floor"],
        rng=restore_rng(payload["rng_state"]),
        budget=budget_from_spec(payload.get("budget")),
        stride=payload.get("stride", 1),
        offset=payload.get("offset", 0),
        lb=lb,
        metrics=registry,
    )
    if registry is not None:
        result.metrics = registry.snapshot()
    return result

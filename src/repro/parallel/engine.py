"""Parallel search orchestration: seed, shard, scan, replay.

One function per search family:

* :func:`parallel_fixed_search` — the outer loop of the fixed-length
  engines (HOTSAX/Haar bucket search, brute force) sharded across a
  process pool;
* :func:`parallel_rra_rank` — one rank of the RRA variable-length
  search, with chunk-boundary checkpointing;
* :func:`parallel_grid_sweep` — the parameter-grid study fanned out one
  task per ``(window, paa_size)`` pair.

The discord searches follow the scan/replay recipe (see
:mod:`repro.parallel.scan` for the why): shard the outer candidates,
capture the serial RNG state at every shard boundary, publish the large
arrays into shared memory, and merge the workers' scan records back in
serial order.  The fixed-length engines seed a pruning threshold ``τ0``
with an inline scan of the leading candidates and then deal contiguous
ramped chunks; the RRA engine instead deals each ramped wave's ranks
round-robin across its chunks (the expensive candidates sit at the
front of the RRA outer order) and lets the first wave warm the floor up
in parallel.  Either way the merged discords, ranks, and distance-call
counts are bit-identical to the serial run for any worker count.

Budget semantics across the pool: the remaining call allowance is
fair-shared across chunks (each chunk may overshoot its share by one
candidate, and chunks run concurrently, so a ``max_calls`` parallel
search can do somewhat more physical work than the serial one — but the
*merged* result always equals a serial prefix, and only merged work is
counted).  Deadlines are handed to every chunk whole; cancellation
travels through a pool-wide event.  A truncated chunk's records are
discarded entirely, so the merged state always sits on a chunk boundary
the search can checkpoint and resume from.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.observability.metrics import ensure_metrics
from repro.parallel.pool import (
    budget_to_spec,
    ramped_slices,
    run_tasks,
    strided_wave_plan,
)
from repro.parallel.scan import (
    Replay,
    ShardResult,
    scan_fixed_positions,
    scan_fixed_shard,
    scan_rra_shard,
)
from repro.parallel.shared import SharedArrays, attach
from repro.resilience.budget import SearchBudget, SearchStatus
from repro.resilience.checkpoint import rng_state_to_json

__all__ = [
    "parallel_fixed_search",
    "parallel_rra_rank",
    "parallel_grid_pairs",
    "parallel_grid_sweep",
    "parallel_ensemble_members",
]

#: Diagnostic telemetry of the most recent parallel run in this process:
#: per-chunk worker scan seconds and the parent's seed cost.  Used by the
#: benchmark harness to report critical-path speedups on machines where
#: wall-clock parallelism is unavailable; not a stable API.
LAST_TELEMETRY: dict = {}

#: Every parallel run since the caller last cleared it (one entry per
#: rank, in execution order) — multi-rank searches produce several.
TELEMETRY_LOG: list = []


def _record_telemetry(
    kind: str,
    shards: list,
    seed_calls: int,
    wave_size: int,
    merged_calls: int,
    wave_chunks: Optional[list] = None,
) -> None:
    if wave_chunks is None:
        wave_chunks = [
            min(wave_size, len(shards) - lo)
            for lo in range(0, len(shards), max(1, wave_size))
        ]
    entry = {
        "kind": kind,
        "shard_elapsed": [s.elapsed for s in shards if s is not None],
        "shard_calls": [s.calls for s in shards if s is not None],
        "seed_calls": seed_calls,
        "wave_size": wave_size,
        "wave_chunks": wave_chunks,
        "merged_calls": merged_calls,
    }
    LAST_TELEMETRY.clear()
    LAST_TELEMETRY.update(entry)
    TELEMETRY_LOG.append(entry)


def parallel_fixed_search(
    *,
    normalized: np.ndarray,
    sqnorms: Optional[np.ndarray],
    bucket_ids: Optional[np.ndarray],
    outer: Optional[np.ndarray],
    window: int,
    exclude: tuple,
    backend: str,
    prune: bool,
    counter,
    rng: Optional[np.random.Generator],
    budget: SearchBudget,
    n_workers: int,
    has_channel: bool,
    lb=None,
    metrics=None,
) -> tuple[Optional[int], float]:
    """Sharded outer loop for the fixed-length engines.

    *bucket_ids*/*outer* present → HOTSAX/Haar bucket semantics (with
    *rng* driving the shuffled inner tails); both None → brute force
    (identity outer order, no randomness).  Returns ``(best_pos,
    best_dist)`` exactly as the serial scan would have; the *counter* is
    advanced by the serial call count and early termination is reported
    through *budget* (KeyboardInterrupt is swallowed into CANCELLED only
    when *has_channel*, mirroring the serial loops).

    *lb* (a :class:`~repro.timeseries.lowerbound.WindowLowerBound`)
    switches every shard to the lower-bound cascade.  The per-pair
    prune/compute decision depends only on the candidate's running
    nearest — a pure function of the pair order, not of any scan's stop
    threshold — so workers make exactly the serial decisions over the
    prefixes the replay keeps, and the merged ledger split
    (``true_calls``/``pruned``) is identical to the serial pruned run.
    Physical lower-bound evaluations (``lb_calls``) include worker
    over-scan and are summed as a diagnostic.

    *metrics* asks every worker to keep a local registry; the parent
    merges the snapshots in serial replay order as shards are delivered
    (``merge_snapshot`` is commutative, so the totals are deterministic
    for any worker count), and records per-chunk wall time in the
    ``parallel.worker_seconds`` timer.
    """
    k = normalized.shape[0]
    total = len(outer) if outer is not None else k
    uses_rng = bucket_ids is not None
    replay = Replay(prune=prune, init_best=-1.0)
    metrics = ensure_metrics(metrics)
    instrumented = metrics.enabled
    if instrumented:
        m_chunks = metrics.counter("parallel.chunks")
        m_worker_time = metrics.timer("parallel.worker_seconds")

    def _position(i: int) -> int:
        return int(outer[i]) if outer is not None else i

    def _account() -> None:
        counter.batch(replay.calls - replay.pruned_calls)
        counter.pruned_batch(replay.pruned_calls)

    def _finish() -> tuple[Optional[int], float]:
        _account()
        if replay.status != SearchStatus.COMPLETE.value:
            budget.adopt(SearchStatus(replay.status))
        return replay.best_pos, replay.best

    # ------------------------------------------------------------------
    # Seed: scan leading candidates inline until one survives, giving
    # every shard a pruning threshold τ0 <= the serial best-so-far.
    # ------------------------------------------------------------------
    seed_end = 0
    seed_calls = 0
    try:
        while seed_end < total:
            if budget.interrupted(counter.calls + replay.calls) is not None:
                return _finish()
            shard = scan_fixed_positions(
                normalized,
                sqnorms,
                bucket_ids,
                [_position(seed_end)],
                window=window,
                exclude=exclude,
                backend=backend,
                prune=prune,
                floor=replay.best,
                rng=rng,
                lb=lb,
                metrics=metrics,
            )
            counter.lb_batch(shard.lb_calls)
            replay.feed(shard, 1)
            seed_end += 1
            if shard.records:
                break
        seed_calls = replay.calls

        if seed_end >= total:
            return _finish()

        # --------------------------------------------------------------
        # Shard the remainder; replay the serial RNG to every chunk
        # boundary (inner-tail permutations are drawn per non-excluded
        # candidate, in serial order, so worker k's generator starts in
        # exactly the state the serial scan would have reached).
        # --------------------------------------------------------------
        slices = [
            (lo + seed_end, hi + seed_end)
            for lo, hi in ramped_slices(total - seed_end, n_workers)
        ]
        chunk_states: list = []
        for lo, hi in slices:
            chunk_states.append(rng_state_to_json(rng) if uses_rng else None)
            if uses_rng:
                for i in range(lo, hi):
                    p = _position(i)
                    if not any(s <= p < e for s, e in exclude):
                        rng.permutation(k)

        sub_specs = [
            budget_to_spec(sub)
            for sub in budget.split(
                len(slices), calls_spent=counter.calls + replay.calls
            )
        ]

        sizes = [hi - lo for lo, hi in slices]
        feeding = [True]
        shards: list = [None] * len(slices)

        def _merge(i: int, shard) -> None:
            shards[i] = shard
            counter.lb_batch(shard.lb_calls)
            if instrumented:
                m_chunks.inc()
                m_worker_time.add(shard.elapsed)
                metrics.merge_snapshot(shard.metrics)
            if feeding[0]:
                feeding[0] = replay.feed(shard, sizes[i])

        with SharedArrays() as arena:
            norm_spec = arena.share(normalized)
            sq_spec = arena.share(sqnorms) if sqnorms is not None else None
            bid_spec = arena.share(bucket_ids) if bucket_ids is not None else None
            outer_spec = (
                arena.share(np.asarray(outer, dtype=np.intp))
                if outer is not None
                else None
            )
            lb_spec = None
            if lb is not None:
                lb_spec = {
                    "paa_values": arena.share(lb.paa_values),
                    "letters": arena.share(lb.letters),
                    "window": window,
                    "alphabet_size": lb.alphabet_size,
                }
            def _payload(bounds, state, spec):
                # Resolved at submission time (run_tasks waves), so the
                # floor reflects every chunk merged so far — always <=
                # the serial best at this chunk's boundary, but far
                # tighter than the seed for late chunks.
                def build() -> dict:
                    return {
                        "normalized": norm_spec,
                        "sqnorms": sq_spec,
                        "bucket_ids": bid_spec,
                        "outer": outer_spec,
                        "slice": bounds,
                        "window": window,
                        "exclude": [list(pair) for pair in exclude],
                        "backend": backend,
                        "prune": prune,
                        "floor": replay.best,
                        "rng_state": state,
                        "budget": spec,
                        "lb": lb_spec,
                        "metrics": instrumented,
                    }

                return build

            payloads = [
                _payload((lo, hi), state, spec)
                for (lo, hi), state, spec in zip(slices, chunk_states, sub_specs)
            ]
            run_tasks(
                scan_fixed_shard,
                payloads,
                n_workers=n_workers,
                budget=budget,
                on_result=_merge,
                wave_size=n_workers,
            )
        _record_telemetry("fixed", shards, seed_calls, n_workers, replay.calls)
    except KeyboardInterrupt:
        if not has_channel:
            _account()
            raise
        budget.note_cancelled()
    return _finish()


def parallel_rra_rank(
    *,
    cache,
    ordering,
    candidates: list,
    outer: list,
    state,
    counter,
    rng: np.random.Generator,
    budget: SearchBudget,
    backend: str,
    n_workers: int,
    has_channel: bool,
    capture_rng: bool,
    on_boundary: Optional[Callable] = None,
    lb_config: Optional[dict] = None,
    metrics=None,
) -> None:
    """One RRA rank sharded across the pool; mutates *state* and *counter*.

    *lb_config* (``{"segments", "alphabet_size"}``) makes every worker
    rebuild the serial run's :class:`IntervalLowerBound` and apply the
    per-pair cascade.  As with the fixed engines, prune decisions are a
    pure function of the pair order, so the replayed prefix carries the
    exact serial true/pruned split; ``state.ledger`` is brought to every
    merged wave boundary so mid-rank checkpoints of pruned runs resume
    with their stats intact.

    Resumes from ``state.outer_index`` with ``state.best_dist`` /
    ``state.best_key`` (so checkpointed runs re-enter here exactly like
    the serial loop).  Wave boundaries play the role the per-candidate
    boundaries play serially: *state* is brought to each merged boundary
    in turn — outer index, call count, captured RNG state, best-so-far —
    and *on_boundary* fires there, so checkpoints written mid-rank are
    resumable and a truncated parallel rank equals a serial prefix.

    Sharding follows :func:`~repro.parallel.pool.strided_wave_plan`:
    a few doubling warm-up waves of one strided chunk per worker, then
    one sweep wave over the remainder cut into finer strided chunks
    that the pool drains FIFO.  Each worker consumes the serial RNG's
    inner-ordering permutation for every rank of its wave (scanning its
    own, discarding the rest), and the parent merges the wave's records
    in serial rank order at the wave barrier, so the replay is oblivious
    to the deal.  There is no inline τ0 seed scan: each wave-1 chunk
    warms its own floor up with its first completed candidate, in
    parallel, instead of the parent paying a full scan serially.
    """
    replay = Replay(prune=True, init_best=state.best_dist)
    metrics = ensure_metrics(metrics)
    instrumented = metrics.enabled
    if instrumented:
        m_chunks = metrics.counter("parallel.chunks")
        m_worker_time = metrics.timer("parallel.worker_seconds")
    base_calls = counter.calls
    base_true = counter.true_calls
    base_pruned = counter.pruned
    total = len(outer)
    index_of = {id(iv): i for i, iv in enumerate(candidates)}
    outer_indices = [index_of[id(iv)] for iv in outer]

    def _ledger() -> dict:
        # The counter itself is only advanced once the rank settles, so
        # boundary ledgers are derived from the replay's logical split
        # (lb_calls is physical and already accumulated per shard).
        return {
            "calls": base_calls + replay.calls,
            "true_calls": base_true + replay.calls - replay.pruned_calls,
            "lb_calls": counter.lb_calls,
            "pruned": base_pruned + replay.pruned_calls,
        }

    def _account() -> None:
        counter.batch(replay.calls - replay.pruned_calls)
        counter.pruned_batch(replay.pruned_calls)

    def _sync_best() -> None:
        if replay.best_pos is not None:
            best = outer[replay.best_pos]
            state.best_dist = replay.best
            state.best_key = (best.start, best.end, best.rule_id)

    truncated = False
    try:
        # Rank-start boundary: the checkpointable point before any of
        # this rank's waves run (the serial loop records the same
        # boundary before its first candidate).
        start = state.outer_index
        state.calls = base_calls
        state.ledger = _ledger()
        if capture_rng:
            state.rng_state = rng_state_to_json(rng)
        if budget.interrupted(state.calls) is not None:
            truncated = True
        elif on_boundary is not None:
            on_boundary(state, outer)

        if not truncated and start < total:
            waves = [
                (lo + start, hi + start, n)
                for lo, hi, n in strided_wave_plan(total - start, n_workers)
            ]
            # RNG states at every wave boundary (one inner-ordering
            # permutation per outer candidate, like the serial loop).
            wave_states: list = []
            for lo, hi, _ in waves:
                wave_states.append(rng_state_to_json(rng))
                for i in range(lo, hi):
                    rng.permutation(ordering.rest_size(outer[i]))
            wave_states.append(rng_state_to_json(rng))

            # Flat chunk list, wave-major: chunk c of an n-chunk wave
            # owns ranks lo+c, lo+c+n, ...  (the round-robin deal).
            chunk_meta: list = []  # (wave index, offset, n_chunks, expected)
            for w, (lo, hi, n_chunks) in enumerate(waves):
                for c in range(n_chunks):
                    chunk_meta.append((w, c, n_chunks, len(range(lo + c, hi, n_chunks))))

            sub_specs = [
                budget_to_spec(sub)
                for sub in budget.split(
                    len(chunk_meta), calls_spent=base_calls + replay.calls
                )
            ]
            cumsum, sq_cumsum = cache.stats.cumsums
            cand_tuples = [
                (iv.rule_id, iv.start, iv.end, iv.usage) for iv in candidates
            ]
            wave_chunk_counts = [n_chunks for _, _, n_chunks in waves]
            wave_buffers: list = [[] for _ in waves]
            feeding = [True]
            shards: list = [None] * len(chunk_meta)

            def _merge(i: int, shard) -> None:
                shards[i] = shard
                counter.lb_batch(shard.lb_calls)
                if instrumented:
                    m_chunks.inc()
                    m_worker_time.add(shard.elapsed)
                    metrics.merge_snapshot(shard.metrics)
                if not feeding[0]:
                    return
                w, _, _, expected = chunk_meta[i]
                wave_buffers[w].append((shard, expected))
                if len(wave_buffers[w]) < wave_chunk_counts[w]:
                    return
                # Whole wave delivered: a truncated chunk discards the
                # wave (the replay stays on the previous wave boundary);
                # otherwise the chunks' records interleave back into
                # serial rank order and merge as one unit.
                combined = ShardResult()
                for s, exp in wave_buffers[w]:
                    if s.processed < exp or s.status != SearchStatus.COMPLETE.value:
                        feeding[0] = replay.feed(s, exp)
                        return
                    combined.records.extend(s.records)
                    combined.processed += s.processed
                    combined.calls += s.calls
                combined.records.sort(key=lambda record: record.position)
                feeding[0] = replay.feed(combined, combined.processed)
                if not feeding[0]:  # pragma: no cover - defensive
                    return
                boundary = waves[w][1]
                state.outer_index = boundary
                state.calls = base_calls + replay.calls
                state.ledger = _ledger()
                if capture_rng:
                    state.rng_state = wave_states[w + 1]
                _sync_best()
                if instrumented:
                    metrics.event(
                        "parallel.wave_merged",
                        wave=w,
                        boundary=boundary,
                        calls=base_calls + replay.calls,
                    )
                if boundary < total and on_boundary is not None:
                    on_boundary(state, outer)

            with SharedArrays() as arena:
                series_spec = arena.share(cache.series)
                cs_spec = arena.share(cumsum)
                sq_spec = arena.share(sq_cumsum)
                def _payload(w, c, n_chunks, spec):
                    # Built at submission time so late waves inherit the
                    # threshold the merged waves established (see the
                    # fixed-engine counterpart).
                    def build() -> dict:
                        lo, hi, _ = waves[w]
                        return {
                            "series": series_spec,
                            "cumsum": cs_spec,
                            "sq_cumsum": sq_spec,
                            "candidates": cand_tuples,
                            "outer_indices": outer_indices[lo:hi],
                            "base": lo,
                            "stride": n_chunks,
                            "offset": c,
                            "backend": backend,
                            "floor": replay.best,
                            "rng_state": wave_states[w],
                            "budget": spec,
                            "lb": lb_config,
                            "metrics": instrumented,
                        }

                    return build

                payloads = [
                    _payload(w, c, n_chunks, spec)
                    for (w, c, n_chunks, _), spec in zip(chunk_meta, sub_specs)
                ]
                run_tasks(
                    scan_rra_shard,
                    payloads,
                    n_workers=n_workers,
                    budget=budget,
                    on_result=_merge,
                    wave_size=wave_chunk_counts,
                )
            _record_telemetry(
                "rra",
                shards,
                0,
                n_workers,
                replay.calls,
                wave_chunks=wave_chunk_counts,
            )
            truncated = not feeding[0]
    except KeyboardInterrupt:
        if not has_channel:
            _account()
            raise
        budget.note_cancelled()
        _account()
        return

    _account()
    if replay.status != SearchStatus.COMPLETE.value:
        budget.adopt(SearchStatus(replay.status))
    if not truncated and replay.complete:
        state.outer_index = total
        state.calls = base_calls + replay.calls
        state.ledger = counter.ledger()
        if capture_rng:
            state.rng_state = rng_state_to_json(rng)
        _sync_best()
        state.complete = True


# ---------------------------------------------------------------------------
# Parameter-grid sweep
# ---------------------------------------------------------------------------


#: Worker-global memoization context for grid-sweep tasks, keyed by the
#: shared-memory block name of the series it serves.  Pool workers are
#: reused across tasks, so every (window, paa_size) pair a worker
#: evaluates for one sweep shares z-normalized windows, discretizations,
#: and statistics.  One sweep runs at a time per pool, so a new series
#: simply replaces the old context.
_GRID_CONTEXTS: dict = {}


def _grid_pair_task(payload: dict) -> list:
    """Worker: evaluate one (window, paa_size) pair over all alphabets."""
    from repro.core.parameter_grid import ParameterGridStudy

    series = np.array(attach(payload["series"]))
    study = ParameterGridStudy(
        series,
        tuple(payload["true_anomaly"]),
        min_overlap=payload["min_overlap"],
    )
    context = _worker_series_context(payload["series"])
    return study._evaluate_pair(
        payload["window"],
        payload["paa_size"],
        payload["alphabet_sizes"],
        context=context,
    )


def parallel_grid_pairs(study, pairs, *, n_workers: int) -> list:
    """Fan explicit ``(window, paa_size, alphabet_sizes)`` work units out
    one pool task each.

    The generalized form of :func:`parallel_grid_sweep`: the cached
    sweep path uses it to dispatch only the cells the result cache
    could not answer, with a per-pair alphabet subset.  Point order
    matches the serial evaluation of *pairs* in the given order.
    """
    pairs = list(pairs)
    if not pairs:
        return []
    with SharedArrays() as arena:
        series_spec = arena.share(study.series)
        payloads = [
            {
                "series": series_spec,
                "true_anomaly": list(study.true_anomaly),
                "min_overlap": study.min_overlap,
                "window": int(window),
                "paa_size": int(paa_size),
                "alphabet_sizes": [int(a) for a in alphabet_sizes],
            }
            for window, paa_size, alphabet_sizes in pairs
        ]
        results = run_tasks(_grid_pair_task, payloads, n_workers=n_workers)
    points: list = []
    for pair_points in results:
        points.extend(pair_points or [])
    return points


def _worker_series_context(series_spec):
    """The worker-global :class:`SearchContext` for one shared series.

    Shared with the grid-sweep tasks: pool workers are reused across
    tasks, so every member/pair a worker evaluates for one fan-out
    shares its per-series memoized artifacts.
    """
    from repro.cache import SearchContext

    ctx_key = series_spec.name
    context = _GRID_CONTEXTS.get(ctx_key)
    if context is None:
        _GRID_CONTEXTS.clear()
        context = _GRID_CONTEXTS[ctx_key] = SearchContext()
    return context


def _ensemble_member_task(payload: dict) -> list:
    """Worker: evaluate one (window, paa_size) group of ensemble members.

    Returns ``(index, MemberOutcome)`` pairs.  A ``skip`` payload (the
    parent's budget tripped before this group was submitted) produces
    ``"skipped"`` outcomes without touching the series.
    """
    from repro.core.ensemble import (
        EnsembleMember,
        MemberOutcome,
        evaluate_member,
    )

    items = [tuple(item) for item in payload["items"]]
    if payload.get("skip"):
        return [
            (idx, MemberOutcome(EnsembleMember(w, p, a), "skipped"))
            for idx, w, p, a in items
        ]
    series = np.array(attach(payload["series"]))
    context = _worker_series_context(payload["series"])
    spec = payload.get("budget")
    budget = SearchBudget(**spec) if spec else None
    out = []
    local_calls = 0
    for idx, w, p, a in items:
        member = EnsembleMember(w, p, a)
        if budget is not None and budget.interrupted(local_calls) is not None:
            out.append((idx, MemberOutcome(member, "skipped")))
            continue
        outcome = evaluate_member(
            series,
            member,
            num_discords=payload["num_discords"],
            backend=payload["backend"],
            seed=payload["seed"],
            context=context,
            budget=budget,
        )
        local_calls += outcome.distance_calls
        out.append((idx, outcome))
    return out


def parallel_ensemble_members(
    series,
    pending,
    *,
    num_discords: int,
    backend: str,
    seed: int,
    budget,
    n_workers: int,
):
    """Fan ensemble members out one pool task per (window, paa) group.

    *pending* is a list of ``(index, EnsembleMember)`` in canonical
    grid order; the returned dict maps each index to its
    :class:`~repro.core.ensemble.MemberOutcome`.  Grouping by
    (window, paa_size) preserves the sweep layer's front-half sharing:
    every alphabet of a pair reuses one discretization pass through the
    worker's context.

    With a *budget*, groups are dispatched in canonical waves and each
    payload is resolved at submission time against the calls already
    merged from delivered groups — so a tripped call ceiling truncates
    on a group boundary ("skipped" outcomes), while deadlines and
    cancellation travel into the workers and can truncate an individual
    member mid-group.  Full (untripped) runs are bit-identical to the
    serial member loop for any worker count.
    """
    pending = list(pending)
    if not pending:
        return {}
    group_order: list[tuple[int, int]] = []
    groups: dict[tuple[int, int], list] = {}
    for idx, member in pending:
        key = (member.window, member.paa_size)
        if key not in groups:
            groups[key] = []
            group_order.append(key)
        groups[key].append((idx, member))
    state = {"calls": 0}
    outcomes: dict = {}
    with SharedArrays() as arena:
        series_spec = arena.share(
            np.ascontiguousarray(np.asarray(series, dtype=float))
        )

        def make_payload(items):
            base = {
                "series": series_spec,
                "items": [
                    (idx, m.window, m.paa_size, m.alphabet_size)
                    for idx, m in items
                ],
                "num_discords": int(num_discords),
                "backend": backend,
                "seed": int(seed),
                "budget": None,
            }
            if budget is None:
                return base

            def build():
                if budget.interrupted(state["calls"]) is not None:
                    return {**base, "skip": True}
                remaining = budget.remaining_deadline()
                spec = (
                    None
                    if remaining is None
                    else {"deadline": remaining, "max_calls": None}
                )
                return {**base, "budget": spec}

            return build

        def on_result(_index, result):
            for _idx, outcome in result or []:
                state["calls"] += outcome.distance_calls

        payloads = [make_payload(groups[key]) for key in group_order]
        results = run_tasks(
            _ensemble_member_task,
            payloads,
            n_workers=n_workers,
            budget=budget,
            on_result=on_result,
            wave_size=n_workers if budget is not None else None,
        )
    for result in results:
        for idx, outcome in result or []:
            outcomes[idx] = outcome
    return outcomes


def parallel_grid_sweep(
    study,
    windows,
    paa_sizes,
    alphabet_sizes,
    *,
    n_workers: int,
) -> list:
    """Fan the grid sweep out one pool task per (window, paa_size) pair.

    Pair order (and alphabet order within a pair) matches the serial
    triple loop, so the concatenated result list is identical to
    ``ParameterGridStudy.sweep`` run serially.
    """
    return parallel_grid_pairs(
        study,
        [(w, p, alphabet_sizes) for w in windows for p in paa_sizes],
        n_workers=n_workers,
    )

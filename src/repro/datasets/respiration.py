"""Respiration-like synthetic datasets (NPRS 43/44 rows of Table 1).

The original NPRS records measure respiration (chest expansion) of a
sleeping patient; the annotated anomalies are stretches where the patient
transitions between sleep stages and the breathing pattern changes
(shallow/irregular breathing).  The generator emits a steady breathing
oscillation with slow amplitude drift and plants a segment of shallow,
faster, irregular breathing at a known position.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, rng_of, smooth
from repro.exceptions import DatasetError


def respiration_like(
    *,
    length: int = 4000,
    breath_period: int = 160,
    anomaly_start_fraction: float = 0.55,
    anomaly_length_fraction: float = 0.08,
    seed: int | np.random.Generator | None = 0,
    name: str = "respiration_nprs43",
    window: int = 128,
    paa_size: int = 5,
    alphabet_size: int = 4,
) -> Dataset:
    """Generate a breathing signal with a sleep-stage-change anomaly.

    Parameters
    ----------
    length:
        Series length (4,000 for the NPRS-43 row, 24,125 for NPRS-44).
    breath_period:
        Samples per breath in the normal regime.
    anomaly_start_fraction, anomaly_length_fraction:
        Where the irregular-breathing segment starts and how long it is,
        as fractions of the series.
    """
    if length < 4 * breath_period:
        raise DatasetError("series too short for the breathing period")
    if not 0.0 < anomaly_start_fraction < 1.0:
        raise DatasetError("anomaly_start_fraction must be in (0, 1)")
    rng = rng_of(seed)

    t = np.arange(length, dtype=float)
    # Slow amplitude drift + steady breathing.
    amplitude = 1.0 + 0.15 * np.sin(2 * np.pi * t / (length / 3.0))
    phase_noise = smooth(rng.normal(0.0, 0.02, length), breath_period // 4)
    series = amplitude * np.sin(2 * np.pi * t / breath_period + np.cumsum(phase_noise) * 0.05)

    a_start = int(anomaly_start_fraction * length)
    a_len = max(2 * breath_period, int(anomaly_length_fraction * length))
    a_end = min(length, a_start + a_len)
    # Shallow, faster, irregular breathing inside the anomaly window.
    ta = np.arange(a_end - a_start, dtype=float)
    irregular = 0.35 * np.sin(2 * np.pi * ta / (breath_period * 0.45))
    irregular += 0.12 * np.sin(2 * np.pi * ta / (breath_period * 0.21) + 1.3)
    series[a_start:a_end] = irregular

    series += rng.normal(0.0, 0.03, length)
    return Dataset(
        name=name,
        series=series,
        anomalies=[(a_start, a_end)],
        window=window,
        paa_size=paa_size,
        alphabet_size=alphabet_size,
        description="steady breathing with a shallow-irregular anomaly segment",
    )

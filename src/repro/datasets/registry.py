"""Registry of the 14 Table 1 datasets (synthetic stand-ins).

Each :class:`TableRow` records the paper's published values (length,
discretization parameters, distance-call counts, discord lengths and
overlap) next to a factory that builds the synthetic stand-in — at a
reduced default scale so the whole table can be regenerated in minutes,
or at the paper's scale when ``paper_scale=True`` (only sensible for the
rows that are small enough to run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets.base import Dataset
from repro.datasets.ecg import ecg_qtdb_0606_like, ecg_record_like
from repro.datasets.power import dutch_power_demand_like
from repro.datasets.respiration import respiration_like
from repro.datasets.telemetry import tek_like
from repro.datasets.trajectory import commute_trail
from repro.datasets.video import video_gun_like
from repro.exceptions import DatasetError


@dataclass(frozen=True)
class PaperNumbers:
    """The row's published values, for side-by-side reporting."""

    length: int
    brute_force_calls: float
    hotsax_calls: int
    rra_calls: int
    reduction_percent: float
    hotsax_discord_length: int
    rra_discord_length: int
    overlap_percent: float


@dataclass(frozen=True)
class TableRow:
    """One row of Table 1: paper numbers + a stand-in factory."""

    key: str
    display_name: str
    window: int
    paa_size: int
    alphabet_size: int
    paper: PaperNumbers
    factory: Callable[[], Dataset]
    reduced_length: int


def _commute_dataset() -> Dataset:
    trail = commute_trail(
        num_trips=8, points_per_leg=110, detour_trip=5, gps_loss_trip=2
    )
    return trail.dataset


_ROWS: list[TableRow] = [
    TableRow(
        key="daily_commute",
        display_name="Daily commute (350,15,4)",
        window=350,
        paa_size=15,
        alphabet_size=4,
        paper=PaperNumbers(17175, 271_442_101, 879_067, 112_405, 87.2, 350, 366, 100.0),
        factory=_commute_dataset,
        reduced_length=3520,
    ),
    TableRow(
        key="dutch_power_demand",
        display_name="Dutch power demand (750,6,3)",
        window=750,
        paa_size=6,
        alphabet_size=3,
        paper=PaperNumbers(35040, 1.13e9, 6_196_356, 327_950, 95.7, 750, 773, 96.3),
        factory=lambda: dutch_power_demand_like(
            weeks=10, holiday_weeks=((4, 2), (6, 0), (8, 3))
        ),
        reduced_length=6720,
    ),
    TableRow(
        key="ecg_qtdb_0606",
        display_name="ECG 0606 (120,4,4)",
        window=120,
        paa_size=4,
        alphabet_size=4,
        paper=PaperNumbers(2300, 4_241_541, 72_390, 16_717, 76.9, 120, 127, 79.2),
        factory=lambda: ecg_qtdb_0606_like(),
        reduced_length=2300,
    ),
    TableRow(
        key="ecg_308",
        display_name="ECG 308 (300,4,4)",
        window=300,
        paa_size=4,
        alphabet_size=4,
        paper=PaperNumbers(5400, 23_044_801, 327_454, 14_655, 95.5, 300, 317, 97.7),
        factory=lambda: ecg_record_like("308", length=5400, seed=308),
        reduced_length=5400,
    ),
    TableRow(
        key="ecg_15",
        display_name="ECG 15 (300,4,4)",
        window=300,
        paa_size=4,
        alphabet_size=4,
        paper=PaperNumbers(15000, 207_374_401, 1_434_665, 111_348, 92.2, 300, 306, 65.0),
        factory=lambda: ecg_record_like("15", length=6000, seed=15),
        reduced_length=6000,
    ),
    TableRow(
        key="ecg_108",
        display_name="ECG 108 (300,4,4)",
        window=300,
        paa_size=4,
        alphabet_size=4,
        paper=PaperNumbers(21600, 441_021_001, 6_041_145, 150_184, 97.5, 300, 324, 89.7),
        factory=lambda: ecg_record_like("108", length=7200, seed=108),
        reduced_length=7200,
    ),
    TableRow(
        key="ecg_300",
        display_name="ECG 300 (300,4,4)",
        window=300,
        paa_size=4,
        alphabet_size=4,
        paper=PaperNumbers(536976, 288e9, 101_427_254, 17_712_845, 82.6, 300, 312, 83.0),
        factory=lambda: ecg_record_like("300", length=9000, num_anomalies=3, seed=300),
        reduced_length=9000,
    ),
    TableRow(
        key="ecg_318",
        display_name="ECG 318 (300,4,4)",
        window=300,
        paa_size=4,
        alphabet_size=4,
        paper=PaperNumbers(586086, 343e9, 45_513_790, 10_000_632, 78.0, 300, 312, 80.7),
        factory=lambda: ecg_record_like("318", length=9000, num_anomalies=2, seed=318),
        reduced_length=9000,
    ),
    TableRow(
        key="respiration_nprs43",
        display_name="Respiration, NPRS 43 (128,5,4)",
        window=128,
        paa_size=5,
        alphabet_size=4,
        paper=PaperNumbers(4000, 14_021_281, 89_570, 45_352, 49.3, 128, 135, 96.0),
        factory=lambda: respiration_like(length=4000, name="respiration_nprs43", seed=43),
        reduced_length=4000,
    ),
    TableRow(
        key="respiration_nprs44",
        display_name="Respiration, NPRS 44 (128,5,4)",
        window=128,
        paa_size=5,
        alphabet_size=4,
        paper=PaperNumbers(24125, 569_753_031, 1_146_145, 257_529, 77.5, 128, 141, 61.7),
        factory=lambda: respiration_like(
            length=6000, name="respiration_nprs44", seed=44,
            anomaly_start_fraction=0.7,
        ),
        reduced_length=6000,
    ),
    TableRow(
        key="video_gun",
        display_name="Video dataset (gun) (150,5,3)",
        window=150,
        paa_size=5,
        alphabet_size=3,
        paper=PaperNumbers(11251, 119_935_353, 758_456, 69_910, 90.8, 150, 163, 89.3),
        factory=lambda: video_gun_like(num_cycles=12, anomaly_cycles=(6,)),
        reduced_length=5400,
    ),
    TableRow(
        key="shuttle_TEK14",
        display_name="Shuttle telemetry, TEK14 (128,4,4)",
        window=128,
        paa_size=4,
        alphabet_size=4,
        paper=PaperNumbers(5000, 22_510_281, 691_194, 48_226, 93.0, 128, 161, 72.7),
        factory=lambda: tek_like("TEK14"),
        reduced_length=4980,
    ),
    TableRow(
        key="shuttle_TEK16",
        display_name="Shuttle telemetry, TEK16 (128,4,4)",
        window=128,
        paa_size=4,
        alphabet_size=4,
        paper=PaperNumbers(5000, 22_491_306, 61_682, 15_573, 74.8, 128, 138, 65.6),
        factory=lambda: tek_like("TEK16", seed=16),
        reduced_length=4980,
    ),
    TableRow(
        key="shuttle_TEK17",
        display_name="Shuttle telemetry, TEK17 (128,4,4)",
        window=128,
        paa_size=4,
        alphabet_size=4,
        paper=PaperNumbers(5000, 22_491_306, 164_225, 78_211, 52.4, 128, 148, 100.0),
        factory=lambda: tek_like("TEK17", seed=17),
        reduced_length=4980,
    ),
]


def table1_rows() -> list[TableRow]:
    """All 14 Table 1 rows, in paper order."""
    return list(_ROWS)


def get_row(key: str) -> TableRow:
    """Look up one Table 1 row by key."""
    for row in _ROWS:
        if row.key == key:
            return row
    raise DatasetError(
        f"unknown Table 1 dataset {key!r}; known: {[r.key for r in _ROWS]}"
    )

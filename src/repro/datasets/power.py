"""Dutch-power-demand-like synthetic dataset (paper Figures 3–4, Table 1).

The original data is the 1997 power consumption of a Dutch research
facility at 15-minute resolution: 52 weeks x 672 points, five weekday
demand peaks followed by two low weekend days.  Anomalies are weeks in
which a state holiday turns a weekday into a weekend-shaped day
(Liberation Day, Ascension Day, Good Friday, ...).

The generator reproduces that structure: a weekly template of five
peaked weekdays + flat weekend, plus planted "holiday" weeks in which a
chosen weekday is flattened.  Ground truth marks the holiday day.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, rng_of, sensor_ripple, smooth
from repro.exceptions import DatasetError

#: Points per day at 15-minute resolution.
POINTS_PER_DAY = 96
DAYS_PER_WEEK = 7
POINTS_PER_WEEK = POINTS_PER_DAY * DAYS_PER_WEEK  # 672


def _weekday_profile(rng: np.random.Generator, points: int) -> np.ndarray:
    """One working day: night trough, steep morning rise, daytime plateau."""
    x = np.linspace(0.0, 1.0, points)
    day = np.full(points, 0.2)
    plateau = (x > 0.30) & (x < 0.75)
    day[plateau] = 1.0
    day = smooth(day, max(3, points // 12))
    day += 0.03 * np.sin(x * 6 * np.pi)  # small intra-day wiggle
    day += rng.normal(0.0, 0.015, points)
    return day


def _weekend_profile(rng: np.random.Generator, points: int) -> np.ndarray:
    """A weekend (or holiday) day: low, flat demand."""
    day = np.full(points, 0.25)
    day += rng.normal(0.0, 0.015, points)
    return smooth(day, max(3, points // 24))


def dutch_power_demand_like(
    *,
    weeks: int = 52,
    holiday_weeks: tuple[tuple[int, int], ...] = ((17, 2), (18, 0), (19, 3)),
    seed: int | np.random.Generator | None = 0,
    points_per_day: int = POINTS_PER_DAY,
    window: int = 750,
    paa_size: int = 6,
    alphabet_size: int = 3,
) -> Dataset:
    """Generate a year of weekly-periodic demand with holiday anomalies.

    Parameters
    ----------
    weeks:
        Number of weeks (the paper's year has 52 -> 35,040 points at the
        default resolution... the original is 35,040 = 365 days; we use
        exact weeks for a clean template).
    holiday_weeks:
        ``(week_index, weekday_index)`` pairs: in that week, that weekday
        (0 = Monday .. 4 = Friday) is replaced by a weekend-shaped day.
        The defaults emulate the paper's spring state holidays.
    seed:
        RNG seed or generator.
    points_per_day:
        Resolution; 96 matches the original 15-minute sampling.
    """
    if weeks < 2:
        raise DatasetError(f"need at least 2 weeks, got {weeks}")
    for week, day in holiday_weeks:
        if not 0 <= week < weeks:
            raise DatasetError(f"holiday week {week} outside [0, {weeks})")
        if not 0 <= day < 5:
            raise DatasetError(f"holiday weekday {day} must be 0..4")
    rng = rng_of(seed)
    holidays = {(int(w), int(d)) for w, d in holiday_weeks}

    days: list[np.ndarray] = []
    anomalies: list[tuple[int, int]] = []
    position = 0
    for week in range(weeks):
        for weekday in range(DAYS_PER_WEEK):
            is_working_day = weekday < 5
            if is_working_day and (week, weekday) in holidays:
                day = _weekend_profile(rng, points_per_day)
                anomalies.append((position, position + points_per_day))
            elif is_working_day:
                day = _weekday_profile(rng, points_per_day)
            else:
                day = _weekend_profile(rng, points_per_day)
            days.append(day)
            position += points_per_day

    series = np.concatenate(days)
    series += sensor_ripple(series.size, amplitude=0.03, period=points_per_day / 6.0)
    return Dataset(
        name="dutch_power_demand",
        series=series,
        anomalies=anomalies,
        window=window,
        paa_size=paa_size,
        alphabet_size=alphabet_size,
        description=(
            "weekly-periodic demand (5 peaked weekdays + flat weekend) "
            "with planted holiday anomalies"
        ),
    )

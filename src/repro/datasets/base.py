"""Common dataset container and helpers for the synthetic generators.

Every generator returns a :class:`Dataset`: the series itself, the
planted ground-truth anomaly intervals, and the discretization parameters
recommended for it (mirroring the per-dataset parameters of the paper's
Table 1 and figure captions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DatasetError


@dataclass
class Dataset:
    """A synthetic evaluation dataset with ground truth.

    Attributes
    ----------
    name:
        Short identifier (matches the Table 1 row it stands in for).
    series:
        The time series.
    anomalies:
        Ground-truth half-open ``(start, end)`` intervals of planted
        anomalies, strongest first where ranking is meaningful.
    window, paa_size, alphabet_size:
        Recommended discretization parameters for this dataset.
    description:
        One-line description (which paper dataset this emulates).
    """

    name: str
    series: np.ndarray
    anomalies: list[tuple[int, int]] = field(default_factory=list)
    window: int = 100
    paa_size: int = 4
    alphabet_size: int = 4
    description: str = ""

    def __post_init__(self) -> None:
        self.series = np.asarray(self.series, dtype=float)
        if self.series.ndim != 1:
            raise DatasetError(f"{self.name}: series must be 1-d")
        for start, end in self.anomalies:
            if not 0 <= start < end <= self.series.size:
                raise DatasetError(
                    f"{self.name}: anomaly ({start}, {end}) out of bounds"
                )

    @property
    def length(self) -> int:
        return int(self.series.size)

    def contains_hit(
        self, start: int, end: int, *, min_overlap: float = 0.5
    ) -> bool:
        """Does ``[start, end)`` overlap any true anomaly enough to count?

        Overlap is measured against the shorter of the two intervals.
        """
        for a_start, a_end in self.anomalies:
            shorter = min(end - start, a_end - a_start)
            if shorter <= 0:
                continue
            shared = max(0, min(end, a_end) - max(start, a_start))
            if shared / shorter >= min_overlap:
                return True
        return False


def rng_of(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize a seed-or-generator argument into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(0 if seed is None else seed)


def smooth(values: np.ndarray, width: int) -> np.ndarray:
    """Moving-average smoothing with edge padding (shape-preserving)."""
    if width <= 1:
        return np.asarray(values, dtype=float)
    kernel = np.ones(width) / width
    padded = np.pad(values, (width // 2, width - width // 2 - 1), mode="edge")
    return np.convolve(padded, kernel, mode="valid")


def gaussian_bump(length: int, center: float, width: float, height: float) -> np.ndarray:
    """A Gaussian-shaped bump sampled over [0, length)."""
    x = np.arange(length, dtype=float)
    return height * np.exp(-0.5 * ((x - center) / width) ** 2)


def sensor_ripple(
    length: int,
    *,
    amplitude: float = 0.04,
    period: float = 40.0,
    phase: float = 0.0,
) -> np.ndarray:
    """Small periodic sensor ripple (mains hum, tremor, quantization beat).

    Quiet phases of a real signal are never i.i.d. noise: instruments
    superimpose a small repeating micro-structure.  Adding this ripple to
    a generator keeps quiet phases *matchable* (they repeat the same
    micro-pattern across cycles), which is what lets shape-based discord
    search treat them as normal — exactly as on the paper's real
    datasets.  Perfectly flat synthetic plateaus, by contrast, degenerate
    into pure noise whose z-normalized windows are all mutually distant.
    """
    if length <= 0:
        return np.zeros(0)
    t = np.arange(length, dtype=float)
    return amplitude * np.sin(2 * np.pi * t / period + phase)

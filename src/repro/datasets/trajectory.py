"""Simulated GPS commute trail (paper Section 5.1, Figures 7–9).

The paper's case study records a week of car/bicycle commutes, converts
the trail to a scalar series with an order-8 Hilbert curve, and shows
that (a) the rule density curve pinpoints a once-taken detour, and
(b) RRA's best discord is a segment travelled with a partial GPS fix.

The simulator walks a small road network: many repetitions of the same
home->work->home route, one trip with a *detour* through otherwise
unvisited territory, and one trip segment with heavy coordinate noise
(a degraded GPS fix).  Ground truth records both events in series
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import Dataset, rng_of
from repro.exceptions import DatasetError
from repro.trajectory.convert import BoundingBox, TrajectoryPoint, trail_to_series


@dataclass
class TrajectoryDataset:
    """A GPS trail together with its Hilbert-converted series."""

    trail: list[TrajectoryPoint]
    dataset: Dataset
    detour_interval: tuple[int, int]
    gps_loss_interval: tuple[int, int]
    bbox: BoundingBox = field(default=None)


def _route_waypoints(detour: bool) -> list[tuple[float, float]]:
    """Waypoints (lat, lon) of the commute; the detour adds a loop."""
    base = [
        (0.10, 0.10),  # home
        (0.10, 0.45),
        (0.35, 0.45),
        (0.35, 0.80),
        (0.70, 0.80),  # work
    ]
    if detour:
        # A unique loop through the far corner of the map.
        return base[:3] + [(0.60, 0.45), (0.90, 0.30), (0.90, 0.80), (0.70, 0.80)]
    return base


def _walk(
    waypoints: list[tuple[float, float]],
    points_per_leg: int,
    rng: np.random.Generator,
    noise: float,
) -> list[tuple[float, float]]:
    """Linear interpolation between waypoints with GPS jitter."""
    fixes: list[tuple[float, float]] = []
    for (lat0, lon0), (lat1, lon1) in zip(waypoints, waypoints[1:]):
        for frac in np.linspace(0.0, 1.0, points_per_leg, endpoint=False):
            lat = lat0 + frac * (lat1 - lat0) + rng.normal(0.0, noise)
            lon = lon0 + frac * (lon1 - lon0) + rng.normal(0.0, noise)
            fixes.append((lat, lon))
    return fixes


def commute_trail(
    *,
    num_trips: int = 20,
    points_per_leg: int = 110,
    detour_trip: int = 12,
    gps_loss_trip: int = 6,
    seed: int | np.random.Generator | None = 0,
    hilbert_order: int = 8,
    window: int = 350,
    paa_size: int = 15,
    alphabet_size: int = 4,
) -> TrajectoryDataset:
    """Simulate a commute history with a detour and a GPS-fix-loss event.

    Parameters
    ----------
    num_trips:
        Number of one-way commutes (alternating directions).
    points_per_leg:
        GPS fixes per route leg; the default trail has ~17k fixes,
        matching the scale of Table 1's "Daily commute" row.
    detour_trip:
        Index of the trip that takes the unique detour (density-curve
        ground truth).
    gps_loss_trip:
        Index of the trip whose middle is recorded with a degraded fix
        (RRA ground truth).
    """
    if not 0 <= detour_trip < num_trips or not 0 <= gps_loss_trip < num_trips:
        raise DatasetError("anomalous trip indices must be < num_trips")
    if detour_trip == gps_loss_trip:
        raise DatasetError("detour and GPS-loss trips must differ")
    rng = rng_of(seed)

    all_fixes: list[tuple[float, float]] = []
    detour_interval = (0, 0)
    gps_loss_interval = (0, 0)
    for trip in range(num_trips):
        reverse = trip % 2 == 1
        waypoints = _route_waypoints(detour=(trip == detour_trip))
        if reverse:
            waypoints = list(reversed(waypoints))
        start_idx = len(all_fixes)
        fixes = _walk(waypoints, points_per_leg, rng, noise=0.002)
        if trip == detour_trip:
            # With the detour the route has 6 legs; the detour-specific
            # legs are 2..5 on a forward trip and 0..3 when reversed.
            leg = points_per_leg
            if reverse:
                detour_interval = (start_idx, start_idx + 4 * leg)
            else:
                detour_interval = (start_idx + 2 * leg, start_idx + 6 * leg)
        if trip == gps_loss_trip:
            lo = len(fixes) // 3
            hi = 2 * len(fixes) // 3
            degraded = [
                (lat + rng.normal(0.0, 0.03), lon + rng.normal(0.0, 0.03))
                for lat, lon in fixes[lo:hi]
            ]
            fixes[lo:hi] = degraded
            gps_loss_interval = (start_idx + lo, start_idx + hi)
        all_fixes.extend(fixes)

    trail = [
        TrajectoryPoint(time=float(i), lat=lat, lon=lon)
        for i, (lat, lon) in enumerate(all_fixes)
    ]
    bbox = BoundingBox(min_lat=-0.05, max_lat=1.05, min_lon=-0.05, max_lon=1.05)
    series = trail_to_series(trail, order=hilbert_order, bbox=bbox)
    dataset = Dataset(
        name="daily_commute",
        series=series,
        anomalies=[detour_interval, gps_loss_interval],
        window=window,
        paa_size=paa_size,
        alphabet_size=alphabet_size,
        description="Hilbert-converted commute trail with detour + GPS-loss",
    )
    return TrajectoryDataset(
        trail=trail,
        dataset=dataset,
        detour_interval=detour_interval,
        gps_loss_interval=gps_loss_interval,
        bbox=bbox,
    )

"""Space-shuttle-telemetry-like synthetic datasets (TEK14/16/17 rows).

The original TEK series are Marotta valve energize/de-energize current
cycles from Space Shuttle telemetry; anomalies are cycles with a glitch
in the de-energizing ramp.  The generator repeats a cycle template
(sharp rise, decaying plateau, sharp fall, quiet phase) and plants one
of three glitch types per TEK variant, at known positions.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, gaussian_bump, rng_of, sensor_ripple, smooth
from repro.exceptions import DatasetError


def _valve_cycle(length: int, rng: np.random.Generator) -> np.ndarray:
    """One normal energize/de-energize current cycle."""
    x = np.linspace(0.0, 1.0, length)
    cycle = np.zeros(length)
    active = (x > 0.10) & (x < 0.55)
    cycle[active] = 1.0 - 0.35 * (x[active] - 0.10) / 0.45  # decaying plateau
    cycle = smooth(cycle, max(3, length // 25))
    cycle += rng.normal(0.0, 0.008, length)
    return cycle


def _glitch(kind: str, length: int, rng: np.random.Generator) -> np.ndarray:
    """An anomalous cycle of the given glitch *kind*."""
    cycle = _valve_cycle(length, rng)
    if kind == "spike":
        cycle += gaussian_bump(length, 0.62 * length, 0.030 * length, 0.8)
    elif kind == "sag":
        cycle -= gaussian_bump(length, 0.35 * length, 0.06 * length, 0.5)
    elif kind == "slow_decay":
        x = np.linspace(0.0, 1.0, length)
        tail = (x >= 0.55) & (x < 0.85)
        cycle[tail] += 0.5 * (1.0 - (x[tail] - 0.55) / 0.30)
    else:
        raise DatasetError(f"unknown glitch kind: {kind!r}")
    return cycle


_VARIANTS = {
    "TEK14": ("sag", (7,)),
    "TEK16": ("spike", (9,)),
    "TEK17": ("slow_decay", (5,)),
}


def tek_like(
    variant: str = "TEK14",
    *,
    num_cycles: int = 12,
    cycle_length: int = 423,
    seed: int | np.random.Generator | None = 0,
    window: int = 128,
    paa_size: int = 4,
    alphabet_size: int = 4,
) -> Dataset:
    """Generate a TEK-style valve-cycle series with a planted glitch.

    Parameters
    ----------
    variant:
        "TEK14", "TEK16" or "TEK17" — selects the glitch type and
        position, so the three series differ the way the originals do.
    num_cycles, cycle_length:
        Defaults give ~5,000 points, matching Table 1's TEK rows.
    """
    if variant not in _VARIANTS:
        raise DatasetError(f"unknown TEK variant {variant!r}; use {sorted(_VARIANTS)}")
    kind, anomaly_cycles = _VARIANTS[variant]
    if max(anomaly_cycles) >= num_cycles:
        raise DatasetError(
            f"{variant} plants an anomaly at cycle {max(anomaly_cycles)}; "
            f"num_cycles={num_cycles} is too small"
        )
    rng = rng_of(seed)
    anomaly_set = set(anomaly_cycles)

    pieces: list[np.ndarray] = []
    anomalies: list[tuple[int, int]] = []
    position = 0
    for cycle_idx in range(num_cycles):
        # Valve cycles are driven by a fixed-period controller: no length
        # jitter (per-cycle variability comes from noise and amplitude).
        length = cycle_length
        if cycle_idx in anomaly_set:
            piece = _glitch(kind, length, rng)
            anomalies.append(
                (position + int(0.25 * length), position + int(0.90 * length))
            )
        else:
            piece = _valve_cycle(length, rng)
        pieces.append(piece)
        position += length

    series = np.concatenate(pieces)
    series += sensor_ripple(series.size, amplitude=0.04, period=47.0)  # 47 * 9 = 423
    return Dataset(
        name=f"shuttle_{variant}",
        series=series,
        anomalies=anomalies,
        window=window,
        paa_size=paa_size,
        alphabet_size=alphabet_size,
        description=f"valve energize/de-energize cycles with a {kind} glitch",
    )

"""Generic synthetic series used by the quickstart, tests, and docs."""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, gaussian_bump, rng_of
from repro.exceptions import DatasetError


def sine_with_anomaly(
    *,
    length: int = 4000,
    period: int = 200,
    anomaly_start: int | None = None,
    anomaly_length: int = 120,
    anomaly_kind: str = "flip",
    noise: float = 0.05,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """A noisy sine wave with one planted anomaly.

    Parameters
    ----------
    anomaly_kind:
        ``"flip"`` inverts the wave inside the anomaly window,
        ``"bump"`` adds a Gaussian bump, ``"flat"`` silences the wave,
        ``"speedup"`` doubles the local frequency.
    """
    if anomaly_start is None:
        anomaly_start = length // 2
    if not 0 <= anomaly_start < anomaly_start + anomaly_length <= length:
        raise DatasetError("anomaly window out of bounds")
    rng = rng_of(seed)

    t = np.arange(length, dtype=float)
    series = np.sin(2 * np.pi * t / period)
    lo, hi = anomaly_start, anomaly_start + anomaly_length
    if anomaly_kind == "flip":
        series[lo:hi] = -series[lo:hi]
    elif anomaly_kind == "bump":
        series[lo:hi] += gaussian_bump(hi - lo, (hi - lo) / 2, (hi - lo) / 6, 2.0)
    elif anomaly_kind == "flat":
        series[lo:hi] = series[lo]
    elif anomaly_kind == "speedup":
        ta = np.arange(hi - lo, dtype=float)
        series[lo:hi] = np.sin(2 * np.pi * (2 * ta) / period + 2 * np.pi * lo / period)
    else:
        raise DatasetError(f"unknown anomaly kind: {anomaly_kind!r}")
    series += rng.normal(0.0, noise, length)

    return Dataset(
        name=f"sine_{anomaly_kind}",
        series=series,
        anomalies=[(lo, hi)],
        window=period // 2,
        paa_size=4,
        alphabet_size=4,
        description=f"noisy sine with a planted {anomaly_kind} anomaly",
    )


def random_walk(
    *, length: int = 2000, step: float = 1.0, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """A plain Gaussian random walk (no ground truth; negative control)."""
    rng = rng_of(seed)
    return np.cumsum(rng.normal(0.0, step, length))


def repeated_pattern(
    *,
    repeats: int = 30,
    pattern_length: int = 120,
    anomaly_at: int | None = None,
    noise: float = 0.02,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """A sawtooth-like repeated pattern with one odd repetition."""
    if repeats < 3:
        raise DatasetError(f"need at least 3 repeats, got {repeats}")
    if anomaly_at is None:
        anomaly_at = repeats // 2
    if not 0 <= anomaly_at < repeats:
        raise DatasetError("anomaly_at out of range")
    rng = rng_of(seed)

    x = np.linspace(0.0, 1.0, pattern_length)
    template = np.where(x < 0.7, x / 0.7, (1.0 - x) / 0.3)
    pieces = []
    anomalies = []
    position = 0
    for i in range(repeats):
        if i == anomaly_at:
            piece = template[::-1].copy()  # time-reversed repetition
            anomalies.append((position, position + pattern_length))
        else:
            piece = template.copy()
        piece += rng.normal(0.0, noise, pattern_length)
        pieces.append(piece)
        position += pattern_length

    return Dataset(
        name="repeated_pattern",
        series=np.concatenate(pieces),
        anomalies=anomalies,
        window=pattern_length // 2,
        paa_size=4,
        alphabet_size=4,
        description="repeated sawtooth with one time-reversed repetition",
    )

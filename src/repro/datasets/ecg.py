"""Synthetic electrocardiogram stand-ins for the paper's ECG datasets.

The paper evaluates on PhysioNet records (qtdb 0606, MIT-BIH 308/15/108
and ST-change 300/318).  We cannot ship PhysioNet data, so we synthesize
a quasi-periodic PQRST-like beat train and plant premature-ventricular-
contraction-like abnormal beats at known positions: a beat whose QRS
complex is widened and inverted relative to normal beats, arriving early
— the same *shape-regularity violation* the algorithms exploit on real
ECG (see DESIGN.md §3).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, gaussian_bump, rng_of
from repro.exceptions import DatasetError


def _normal_beat(length: int, rng: np.random.Generator) -> np.ndarray:
    """One PQRST-like beat of *length* samples with mild variability."""
    beat = np.zeros(length, dtype=float)
    jitter = lambda scale: 1.0 + rng.normal(0.0, scale)  # noqa: E731
    # P wave, QRS complex (Q dip, R spike, S dip), T wave.
    beat += gaussian_bump(length, 0.18 * length, 0.035 * length, 0.12 * jitter(0.05))
    beat -= gaussian_bump(length, 0.38 * length, 0.012 * length, 0.18 * jitter(0.05))
    beat += gaussian_bump(length, 0.42 * length, 0.016 * length, 1.00 * jitter(0.03))
    beat -= gaussian_bump(length, 0.47 * length, 0.014 * length, 0.25 * jitter(0.05))
    beat += gaussian_bump(length, 0.70 * length, 0.055 * length, 0.28 * jitter(0.05))
    return beat


def _pvc_beat(length: int, rng: np.random.Generator) -> np.ndarray:
    """A PVC-like abnormal beat: wide, inverted QRS, missing P wave."""
    beat = np.zeros(length, dtype=float)
    beat -= gaussian_bump(length, 0.40 * length, 0.060 * length, 0.90)
    beat += gaussian_bump(length, 0.52 * length, 0.050 * length, 0.55)
    beat += gaussian_bump(length, 0.72 * length, 0.080 * length, 0.18)
    beat += rng.normal(0.0, 0.01, length)
    return beat


def synthetic_ecg(
    *,
    num_beats: int = 20,
    beat_length: int = 115,
    anomaly_beats: tuple[int, ...] = (12,),
    noise: float = 0.02,
    seed: int | np.random.Generator | None = 0,
    name: str = "ecg",
    window: int = 120,
    paa_size: int = 4,
    alphabet_size: int = 4,
) -> Dataset:
    """Generate a beat train with PVC-like anomalies at known beats.

    Parameters
    ----------
    num_beats:
        Total number of beats.
    beat_length:
        Samples per beat (slight per-beat variation is applied).
    anomaly_beats:
        Indices of the beats replaced by abnormal PVC-like beats.
    noise:
        Standard deviation of additive Gaussian noise.
    seed:
        RNG seed (or a Generator) for reproducibility.
    name, window, paa_size, alphabet_size:
        Metadata stored on the returned :class:`Dataset`.
    """
    if num_beats < 3:
        raise DatasetError(f"need at least 3 beats, got {num_beats}")
    for idx in anomaly_beats:
        if not 0 <= idx < num_beats:
            raise DatasetError(f"anomaly beat {idx} outside [0, {num_beats})")
    rng = rng_of(seed)

    pieces: list[np.ndarray] = []
    anomaly_intervals: list[tuple[int, int]] = []
    position = 0
    anomaly_set = set(anomaly_beats)
    for beat_idx in range(num_beats):
        length = beat_length + int(rng.integers(-3, 4))
        if beat_idx in anomaly_set:
            # PVC beats arrive early (shortened coupling interval).
            length = int(length * 0.85)
            piece = _pvc_beat(length, rng)
            anomaly_intervals.append((position, position + length))
        else:
            piece = _normal_beat(length, rng)
        pieces.append(piece)
        position += length

    series = np.concatenate(pieces)
    series += rng.normal(0.0, noise, series.size)
    return Dataset(
        name=name,
        series=series,
        anomalies=anomaly_intervals,
        window=window,
        paa_size=paa_size,
        alphabet_size=alphabet_size,
        description="synthetic PQRST beat train with planted PVC-like beats",
    )


def ecg_qtdb_0606_like(seed: int = 0, *, length: int = 2300) -> Dataset:
    """Stand-in for the paper's 'ECG qtdb 0606' excerpt (Figure 2, Table 1).

    2,300 points, one subtle anomalous heartbeat, parameters (120, 4, 4).
    """
    num_beats = max(4, length // 115)
    return synthetic_ecg(
        num_beats=num_beats,
        beat_length=115,
        anomaly_beats=(num_beats // 2,),
        seed=seed,
        name="ecg_qtdb_0606",
        window=120,
        paa_size=4,
        alphabet_size=4,
    )


def ecg_subtle_st_like(
    *,
    num_beats: int = 20,
    beat_length: int = 115,
    anomaly_beat: int = 10,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """ECG with a *subtle* ST-interval anomaly (Figure 10's dataset).

    The paper's parameter-selection study uses qtdb 0606, whose single
    anomaly is a very subtle change in the ST interval — not a
    full-blown PVC.  Here one beat keeps its normal P-QRS morphology but
    gets a depressed ST segment and a flattened T wave; only the second
    half of the beat changes, and only mildly.  This is the right
    difficulty level for studying parameter sensitivity: blatant
    anomalies succeed everywhere and wash the study out.
    """
    if not 0 <= anomaly_beat < num_beats:
        raise DatasetError(f"anomaly beat {anomaly_beat} outside [0, {num_beats})")
    rng = rng_of(seed)
    pieces: list[np.ndarray] = []
    anomalies: list[tuple[int, int]] = []
    position = 0
    for beat_idx in range(num_beats):
        length = beat_length + int(rng.integers(-3, 4))
        piece = _normal_beat(length, rng)
        if beat_idx == anomaly_beat:
            piece -= gaussian_bump(length, 0.58 * length, 0.08 * length, 0.22)
            piece -= gaussian_bump(length, 0.70 * length, 0.055 * length, 0.16)
            anomalies.append(
                (position + int(0.45 * length), position + int(0.85 * length))
            )
        pieces.append(piece)
        position += length
    series = np.concatenate(pieces)
    series += rng.normal(0.0, 0.02, series.size)
    return Dataset(
        name="ecg_subtle_st",
        series=series,
        anomalies=anomalies,
        window=120,
        paa_size=4,
        alphabet_size=4,
        description="normal beats with one subtle ST-depression beat",
    )


def ecg_record_like(
    record: str,
    *,
    length: int,
    num_anomalies: int = 1,
    seed: int = 0,
    window: int = 300,
    paa_size: int = 4,
    alphabet_size: int = 4,
) -> Dataset:
    """Stand-in for the longer MIT-BIH-style records of Table 1.

    Parameters mirror the Table 1 rows: ``record`` names the row
    (e.g. "308"), *length* its point count (possibly scaled down), and
    (window, paa_size, alphabet_size) its discretization parameters.
    """
    beat_length = max(60, window // 2 - 20)
    num_beats = max(5, length // beat_length)
    if num_anomalies >= num_beats - 2:
        raise DatasetError("too many anomalies for the series length")
    rng = rng_of(seed)
    # Spread anomalies over the record, away from the very edges.
    anomaly_beats = tuple(
        sorted(
            rng.choice(
                np.arange(2, num_beats - 2), size=num_anomalies, replace=False
            ).tolist()
        )
    )
    return synthetic_ecg(
        num_beats=num_beats,
        beat_length=beat_length,
        anomaly_beats=anomaly_beats,
        seed=rng,
        name=f"ecg_{record}",
        window=window,
        paa_size=paa_size,
        alphabet_size=alphabet_size,
    )

"""Synthetic evaluation datasets with planted, annotated anomalies.

Each generator emulates one of the paper's evaluation datasets (see
DESIGN.md §3 for the substitution rationale) and returns a
:class:`~repro.datasets.base.Dataset` carrying the series, ground-truth
anomaly intervals, and the discretization parameters the paper used for
that dataset.
"""

from repro.datasets.base import Dataset
from repro.datasets.synthetic import random_walk, repeated_pattern, sine_with_anomaly
from repro.datasets.ecg import (
    ecg_qtdb_0606_like,
    ecg_record_like,
    ecg_subtle_st_like,
    synthetic_ecg,
)
from repro.datasets.power import dutch_power_demand_like
from repro.datasets.video import video_gun_like
from repro.datasets.telemetry import tek_like
from repro.datasets.respiration import respiration_like
from repro.datasets.trajectory import TrajectoryDataset, commute_trail
from repro.datasets.registry import TableRow, get_row, table1_rows

__all__ = [
    "Dataset",
    "random_walk",
    "repeated_pattern",
    "sine_with_anomaly",
    "ecg_qtdb_0606_like",
    "ecg_record_like",
    "ecg_subtle_st_like",
    "synthetic_ecg",
    "dutch_power_demand_like",
    "video_gun_like",
    "tek_like",
    "respiration_like",
    "TrajectoryDataset",
    "commute_trail",
    "TableRow",
    "get_row",
    "table1_rows",
]

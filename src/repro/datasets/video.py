"""Video-surveillance-like synthetic dataset (paper Figures 1, 11, 12).

The original "Video dataset (gun)" tracks an actor's hand centroid while
repeatedly drawing and re-holstering a replica gun; anomalies are cycles
in which the actor fumbles the motion.  The generator emits repeated
draw-aim-holster cycles (rise, plateau, fall, rest) and plants irregular
cycles: a double-dip fumble and an over-long hold.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, gaussian_bump, rng_of, sensor_ripple, smooth
from repro.exceptions import DatasetError


def _draw_cycle(length: int, rng: np.random.Generator) -> np.ndarray:
    """One normal draw-aim-holster cycle."""
    x = np.linspace(0.0, 1.0, length)
    cycle = np.zeros(length)
    rise = (x > 0.12) & (x < 0.30)
    hold = (x >= 0.30) & (x < 0.68)
    fall = (x >= 0.68) & (x < 0.86)
    cycle[rise] = (x[rise] - 0.12) / 0.18
    cycle[hold] = 1.0
    cycle[fall] = 1.0 - (x[fall] - 0.68) / 0.18
    cycle = smooth(cycle, max(3, length // 20))
    cycle += rng.normal(0.0, 0.01, length)
    return cycle


def _fumble_cycle(length: int, rng: np.random.Generator) -> np.ndarray:
    """An anomalous cycle: the hand dips mid-hold (fumbled draw)."""
    cycle = _draw_cycle(length, rng)
    cycle -= gaussian_bump(length, 0.48 * length, 0.05 * length, 0.7)
    cycle += gaussian_bump(length, 0.58 * length, 0.03 * length, 0.25)
    return cycle


def video_gun_like(
    *,
    num_cycles: int = 25,
    cycle_length: int = 450,
    anomaly_cycles: tuple[int, ...] = (11, 18),
    seed: int | np.random.Generator | None = 0,
    window: int = 150,
    paa_size: int = 5,
    alphabet_size: int = 3,
) -> Dataset:
    """Generate repeated draw cycles with planted fumbles.

    Defaults yield a series of 11,250 points, matching the scale of the
    paper's Video row in Table 1 (length 11,251, parameters 150/5/3).
    """
    if num_cycles < 3:
        raise DatasetError(f"need at least 3 cycles, got {num_cycles}")
    for idx in anomaly_cycles:
        if not 0 <= idx < num_cycles:
            raise DatasetError(f"anomaly cycle {idx} outside [0, {num_cycles})")
    rng = rng_of(seed)
    anomaly_set = set(anomaly_cycles)

    pieces: list[np.ndarray] = []
    anomalies: list[tuple[int, int]] = []
    position = 0
    for cycle_idx in range(num_cycles):
        length = cycle_length + int(rng.integers(-8, 9))
        if cycle_idx in anomaly_set:
            piece = _fumble_cycle(length, rng)
            # Ground truth covers the fumble region of the cycle.
            anomalies.append(
                (position + int(0.35 * length), position + int(0.75 * length))
            )
        else:
            piece = _draw_cycle(length, rng)
        pieces.append(piece)
        position += length

    series = np.concatenate(pieces)
    series += sensor_ripple(series.size, amplitude=0.05, period=37.0)
    return Dataset(
        name="video_gun",
        series=series,
        anomalies=anomalies,
        window=window,
        paa_size=paa_size,
        alphabet_size=alphabet_size,
        description="repeated draw-aim-holster cycles with planted fumbles",
    )

"""The shared bucket-ordered exact discord search engine.

HOTSAX (SAX words) and the Haar-transform variant (paper related work:
Fu et al. 2006, Bu et al. 2007) differ only in *how candidate windows
are grouped into buckets*; the search itself — outer loop over
candidates in ascending bucket size, inner loop visiting same-bucket
windows first with early abandoning — is identical.  This module hosts
that engine so each baseline supplies only its bucketing function.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import islice
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.anomaly import Discord
from repro.exceptions import DiscordSearchError
from repro.observability.metrics import ensure_metrics
from repro.parallel.pool import MIN_PARALLEL_CANDIDATES, effective_workers
from repro.resilience.budget import SearchBudget, SearchStatus
from repro.timeseries import kernels
from repro.timeseries.distance import DistanceCounter
from repro.timeseries.kernels import BACKENDS, validate_backend  # noqa: F401
from repro.timeseries.lowerbound import WindowLowerBound
from repro.timeseries.windows import num_windows

#: A bucketing function: (series, window) -> one hashable key per window.
BucketFn = Callable[[np.ndarray, int], Sequence[str]]


def ordered_discord_search(
    series: np.ndarray,
    window: int,
    bucket_fn: BucketFn,
    *,
    source: str,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
    exclude: tuple[tuple[int, int], ...] = (),
    backend: str = "kernel",
    budget: Optional[SearchBudget] = None,
    n_workers: int = 1,
    prune: bool = False,
    lower_bound: Optional[WindowLowerBound] = None,
    windows: Optional[kernels.WindowMatrix] = None,
    metrics=None,
) -> tuple[Optional[Discord], DistanceCounter]:
    """Exact fixed-length discord via bucket-driven loop orderings.

    Parameters
    ----------
    series, window:
        The input and the discord length.
    bucket_fn:
        Maps every sliding window to a bucket key; windows sharing a
        key are presumed similar.  Rare keys are searched first (outer),
        same-key windows are compared first (inner).
    source:
        Tag recorded on the returned :class:`Discord`.
    counter, rng, exclude:
        As in :func:`repro.discord.hotsax.hotsax_discord`.
    backend:
        ``"kernel"`` (default) evaluates the inner loop in vectorized
        blocks via :mod:`repro.timeseries.kernels`; ``"scalar"`` keeps
        the per-pair reference path.  Both visit the same pairs in the
        same order, so results and call counts are identical.
    budget:
        Optional :class:`~repro.resilience.budget.SearchBudget` checked
        once per outer candidate; when it trips (or a
        ``KeyboardInterrupt`` arrives while one was supplied) the
        best-so-far discord is returned and ``budget.status`` reports
        why the scan stopped early.
    n_workers:
        Shard the outer loop across this many worker processes (see
        :mod:`repro.parallel`).  The discord and the distance-call
        count are bit-identical to the serial scan for any value.
    prune:
        Opt into the admissible lower-bound cascade
        (:mod:`repro.timeseries.lowerbound`): candidate pairs whose
        SAX/PAA lower bound already certifies ``dist >= nearest`` skip
        the Euclidean kernel.  Results and the logical ``counter.calls``
        are bit-identical either way; the counter's split ledger
        (``true_calls`` / ``pruned``) records how many kernels were
        avoided.  The default keeps paper-faithful accounting with zero
        new work on the hot path.
    lower_bound:
        A prebuilt :class:`~repro.timeseries.lowerbound.WindowLowerBound`
        over the same sliding windows (so a caller that already
        discretized — HOTSAX — shares it).  Built on the fly from the
        normalized windows when *prune* is set without one.
    windows:
        A prebuilt :class:`~repro.timeseries.kernels.WindowMatrix` over
        the same series/window, so repeated ranks (and callers that
        already normalized the windows for bucketing) reuse one window
        matrix, one set of row norms, and one statistics pass.  Built on
        the fly when absent; results are identical either way.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`.  When
        given, the scan records candidate/abandon counters, the
        early-abandon depth histogram, and trace events (budget trips
        travel through the bound budget).  The default (``None``) routes
        through the no-op sink: results and logical call counts are
        byte-identical either way.
    """
    validate_backend(backend)
    series = np.asarray(series, dtype=float)
    k = num_windows(series.size, window)
    if k < 2:
        raise DiscordSearchError(
            f"series of length {series.size} too short for window {window}"
        )
    if counter is None:
        counter = DistanceCounter()
    if rng is None:
        rng = np.random.default_rng(0)
    has_channel = budget is not None
    if budget is None:
        budget = SearchBudget.unlimited()
    metrics = ensure_metrics(metrics)
    budget.bind_metrics(metrics)

    keys = list(bucket_fn(series, window))
    if len(keys) != k:
        raise DiscordSearchError(
            f"bucket_fn produced {len(keys)} keys for {k} windows"
        )
    buckets: dict[str, list[int]] = defaultdict(list)
    for pos, key in enumerate(keys):
        buckets[key].append(pos)

    if windows is None:
        windows = kernels.WindowMatrix(series, window)
    normalized = windows.normalized
    sqnorms = windows.sqnorms if backend in ("kernel", "batch") else None

    lb = lower_bound if prune else None
    if prune and lb is None:
        lb = WindowLowerBound.from_normalized_windows(normalized, window)

    outer = sorted(range(k), key=lambda p: (len(buckets[keys[p]]), p))

    best_dist = -1.0
    best_pos = None
    workers = effective_workers(n_workers)
    if workers > 1 and len(outer) >= MIN_PARALLEL_CANDIDATES:
        from repro.parallel.engine import parallel_fixed_search

        # Bucket keys travel to workers as small integer ids (strings
        # would bloat shared memory; the search only compares keys).
        key_ids: dict = {}
        bucket_ids = np.fromiter(
            (key_ids.setdefault(key, len(key_ids)) for key in keys),
            dtype=np.int64,
            count=k,
        )
        best_pos, best_dist = parallel_fixed_search(
            normalized=normalized,
            sqnorms=sqnorms,
            bucket_ids=bucket_ids,
            outer=np.asarray(outer, dtype=np.intp),
            window=window,
            exclude=exclude,
            backend=backend,
            prune=True,
            counter=counter,
            rng=rng,
            budget=budget,
            n_workers=workers,
            has_channel=has_channel,
            lb=lb,
            metrics=metrics,
        )
        if best_pos is None:
            return None, counter
        return (
            Discord(
                start=best_pos,
                end=best_pos + window,
                score=best_dist,
                rank=0,
                nn_distance=best_dist,
                rule_id=None,
                source=source,
            ),
            counter,
        )
    # Metric handles are hoisted out of the loop; with the disabled
    # sink they are inert null objects and the `instrumented` guard
    # keeps the hot path free of even their method calls.
    instrumented = metrics.enabled
    if instrumented:
        m_visited = metrics.counter("search.candidates_visited")
        m_abandoned = metrics.counter("search.candidates_abandoned")
        m_survived = metrics.counter("search.candidates_survived")
        m_best = metrics.counter("search.best_updates")
        m_depth = metrics.histogram("search.abandon_depth")
    try:
        if backend == "batch":
            from repro.discord import batch

            # Exclusion filtering up front is equivalent: the serial
            # loop never checks the budget for an excluded candidate.
            active = [
                p for p in outer
                if not any(s <= p < e for s, e in exclude)
            ]

            def make_order(p: int) -> np.ndarray:
                # Vectorized form of _inner_sequence + the window
                # filter: same-bucket first, then the shuffled
                # remainder, identical pair order and RNG consumption.
                same_bucket = np.asarray(
                    [q for q in buckets[keys[p]] if q != p], dtype=np.intp
                )
                tail = rng.permutation(k)
                mask = np.ones(k, dtype=bool)
                mask[same_bucket] = False
                mask[p] = False
                rest = tail[mask[tail]]
                order = (
                    np.concatenate((same_bucket, rest))
                    if same_bucket.size
                    else rest
                )
                return order[np.abs(order - p) > window]

            scanner = batch.TileScanner(normalized, sqnorms, lb=lb)
            best_dist, best_pos = batch.batch_serial_scan(
                scanner, active, make_order,
                abandon=True, counter=counter, budget=budget, lb=lb,
                metrics=metrics, init_best=best_dist,
            )
        else:
            for p in outer:
                if any(ex_start <= p < ex_end for ex_start, ex_end in exclude):
                    continue
                if budget.interrupted(counter.calls) is not None:
                    break
                if instrumented:
                    calls_at_entry = counter.calls
                nearest = float("inf")
                pruned = False
                same_bucket = [q for q in buckets[keys[p]] if q != p]
                tail = rng.permutation(k)
                if backend == "kernel":
                    order = (
                        q
                        for q in _inner_sequence(same_bucket, tail, p)
                        if abs(p - q) > window
                    )
                    if lb is None:
                        nearest, consumed, pruned = _kernel_inner_scan(
                            normalized, sqnorms, p, order, best_dist
                        )
                        counter.batch(consumed)
                    else:
                        nearest, consumed, true_count, lb_evals, pruned = (
                            _kernel_inner_scan_lb(
                                normalized, sqnorms, p, order, best_dist, lb
                            )
                        )
                        counter.batch(true_count)
                        counter.pruned_batch(consumed - true_count)
                        counter.lb_batch(lb_evals)
                else:
                    for q in _inner_sequence(same_bucket, tail, p):
                        if abs(p - q) <= window:
                            continue
                        if lb is not None and np.isfinite(nearest):
                            counter.lb_batch(1)
                            if lb.pair_exceeds(p, q, nearest):
                                # dist >= LB >= nearest >= best_dist: this
                                # pair can neither break nor lower nearest.
                                counter.pruned_batch(1)
                                continue
                        # Abandoning beyond `nearest` is lossless: while the
                        # candidate is alive, nearest >= best_dist (see
                        # hotsax.py).
                        dist = counter.euclidean(
                            normalized[p], normalized[q], cutoff=nearest
                        )
                        if dist < best_dist:
                            pruned = True
                            break
                        if dist < nearest:
                            nearest = dist
                if instrumented:
                    m_visited.inc()
                    if pruned:
                        m_abandoned.inc()
                        m_depth.observe(counter.calls - calls_at_entry)
                    else:
                        m_survived.inc()
                if not pruned and np.isfinite(nearest) and nearest > best_dist:
                    best_dist = nearest
                    best_pos = p
                    if instrumented:
                        m_best.inc()
    except KeyboardInterrupt:
        if not has_channel:
            raise
        budget.note_cancelled()

    if best_pos is None:
        return None, counter
    discord = Discord(
        start=best_pos,
        end=best_pos + window,
        score=best_dist,
        rank=0,
        nn_distance=best_dist,
        rule_id=None,
        source=source,
    )
    return discord, counter


def _kernel_inner_scan(
    normalized: np.ndarray,
    sqnorms: np.ndarray,
    p: int,
    order,
    best_dist: float,
) -> tuple[float, int, bool]:
    """Replay the scalar inner loop over lazy *order* in vectorized blocks.

    Pulls candidate positions from the *order* iterator in geometrically
    growing blocks, evaluates each block's distances to window *p* with
    one matrix-vector product, and applies the exact scalar prune logic
    to the block results in sequence.  Returns
    ``(nearest, consumed, pruned)`` where *consumed* is the number of
    pairs the scalar loop would have visited — the logical call count.

    Laziness matters as much as vectorization: a candidate pruned after
    a handful of same-bucket comparisons (the common HOTSAX case) must
    not pay for materializing its full O(k) inner ordering, so only the
    pairs actually scanned — plus bounded block speculation — are ever
    pulled from the iterator.
    """
    nearest = float("inf")
    consumed = 0
    block = 8
    p_row = normalized[p]
    p_sq = sqnorms[p]
    while True:
        idx = np.fromiter(islice(order, block), dtype=np.intp)
        if idx.size == 0:
            return nearest, consumed, False
        sq = kernels.one_vs_all_sq_euclidean(
            p_row, normalized[idx], query_sqnorm=p_sq, sqnorms=sqnorms[idx]
        )
        dists = np.sqrt(sq)
        hit = kernels.first_below(dists, best_dist)
        if hit >= 0:
            return nearest, consumed + hit + 1, True
        consumed += idx.size
        block_min = float(dists.min())
        if block_min < nearest:
            nearest = block_min
        block = min(block * 4, 2048)


def _kernel_inner_scan_lb(
    normalized: np.ndarray,
    sqnorms: np.ndarray,
    p: int,
    order,
    best_dist: float,
    lb: WindowLowerBound,
) -> tuple[float, int, int, int, bool]:
    """``_kernel_inner_scan`` with the lower-bound cascade switched on.

    Identical pair order and block schedule; within each block the
    cascade (evaluated against ``nearest`` at block start) filters which
    pairs reach the distance kernel.  Pruned pairs satisfy
    ``dist >= nearest``, so they can neither be the break pair nor lower
    the block minimum — the returned ``nearest``, logical *consumed*
    count, and stop position are bit-identical to the unpruned scan.

    Returns ``(nearest, consumed, true_count, lb_evals, stopped)`` where
    *consumed* is the logical pair count (as before), *true_count* how
    many of those actually hit the kernel, and *lb_evals* the physical
    lower-bound evaluations.
    """
    nearest = float("inf")
    consumed = 0
    true_count = 0
    lb_evals = 0
    block = 8
    p_row = normalized[p]
    p_sq = sqnorms[p]
    while True:
        idx = np.fromiter(islice(order, block), dtype=np.intp)
        if idx.size == 0:
            return nearest, consumed, true_count, lb_evals, False
        if np.isfinite(nearest):
            lb_evals += idx.size
            keep_positions = np.flatnonzero(lb.block_keep(p, idx, nearest))
            survivors = idx[keep_positions]
        else:
            keep_positions = None
            survivors = idx
        if survivors.size:
            sq = kernels.one_vs_all_sq_euclidean(
                p_row,
                normalized[survivors],
                query_sqnorm=p_sq,
                sqnorms=sqnorms[survivors],
            )
            dists = np.sqrt(sq)
            hit = kernels.first_below(dists, best_dist)
            if hit >= 0:
                logical = (
                    int(hit)
                    if keep_positions is None
                    else int(keep_positions[int(hit)])
                )
                return (
                    nearest,
                    consumed + logical + 1,
                    true_count + int(hit) + 1,
                    lb_evals,
                    True,
                )
            block_min = float(dists.min())
            if block_min < nearest:
                nearest = block_min
        consumed += idx.size
        true_count += int(survivors.size)
        block = min(block * 4, 2048)


def _inner_sequence(same_bucket: list[int], tail: np.ndarray, p: int):
    """Same-bucket positions first, then the shuffled remainder."""
    seen = set(same_bucket)
    seen.add(p)
    for q in same_bucket:
        yield q
    for q in tail:
        q = int(q)
        if q not in seen:
            yield q


def iterated_search(
    series: np.ndarray,
    window: int,
    bucket_fn: BucketFn,
    *,
    source: str,
    num_discords: int,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
    backend: str = "kernel",
    budget: Optional[SearchBudget] = None,
    n_workers: int = 1,
    prune: bool = False,
    lower_bound: Optional[WindowLowerBound] = None,
    windows: Optional[kernels.WindowMatrix] = None,
    metrics=None,
) -> tuple[list[Discord], DistanceCounter, list[bool]]:
    """Top-k discords by repeated search with window-sized exclusion.

    Returns ``(discords, counter, rank_complete)`` — the third element
    flags, per returned discord, whether its rank scanned every
    candidate (True) or was truncated by the *budget* and is only the
    best seen so far (False).  *prune* / *lower_bound* opt every rank
    into the lower-bound cascade (the bound is built once and shared
    across ranks, since the windows never change).  The
    :class:`~repro.timeseries.kernels.WindowMatrix` is likewise built
    once (or adopted from *windows*) and shared across ranks, so the
    normalization and row-norm passes run once per search rather than
    once per rank.  *metrics* wraps every rank in a ``search.rank``
    span and emits one ``search.rank_complete`` event per rank carrying
    that rank's slice of the call ledger (the paper's Table 1 number,
    per rank).
    """
    validate_backend(backend)
    series = np.asarray(series, dtype=float)
    if counter is None:
        counter = DistanceCounter()
    if rng is None:
        rng = np.random.default_rng(0)
    if num_discords < 1:
        raise DiscordSearchError(f"num_discords must be >= 1, got {num_discords}")
    if budget is None:
        budget = SearchBudget.unlimited()
    metrics = ensure_metrics(metrics)
    if windows is None and num_windows(series.size, window) >= 2:
        # Deferred for degenerate inputs so ordered_discord_search still
        # raises its own (tested) validation error.
        windows = kernels.WindowMatrix(series, window)
    if prune and lower_bound is None and windows is not None:
        lower_bound = WindowLowerBound.from_normalized_windows(
            windows.normalized, window
        )
    discords: list[Discord] = []
    rank_complete: list[bool] = []
    exclusions: list[tuple[int, int]] = []
    for rank in range(num_discords):
        rank_ledger = counter.ledger() if metrics.enabled else None
        with metrics.span("search.rank", source=source, rank=rank):
            found, counter = ordered_discord_search(
                series, window, bucket_fn,
                source=source, counter=counter, rng=rng, exclude=tuple(exclusions),
                backend=backend, budget=budget, n_workers=n_workers,
                prune=prune, lower_bound=lower_bound, windows=windows,
                metrics=metrics,
            )
        truncated = budget.status is not SearchStatus.COMPLETE
        if metrics.enabled:
            emit_rank_event(
                metrics, source, rank, rank_ledger, counter, found,
                exact=not truncated,
            )
        if found is not None:
            discords.append(
                Discord(
                    start=found.start, end=found.end, score=found.score,
                    rank=rank, nn_distance=found.nn_distance, rule_id=None,
                    source=source,
                )
            )
            rank_complete.append(not truncated)
        if truncated or found is None:
            break
        exclusions.append((found.start - window + 1, found.start + window))
    return discords, counter, rank_complete


def emit_rank_event(
    metrics,
    source: str,
    rank: int,
    ledger_before: Optional[dict],
    counter: DistanceCounter,
    found: Optional[Discord],
    *,
    exact: bool,
) -> None:
    """Emit one ``search.rank_complete`` event with the rank's ledger slice.

    The attrs carry the per-rank delta of the split call ledger
    (``calls`` / ``true_calls`` / ``pruned`` / ``lb_calls``) — the
    paper's Table 1 metric broken down by rank — plus the discord the
    rank produced.  Shared by all four engines so run reports have one
    schema.
    """
    after = counter.ledger()
    delta = {
        key: after[key] - (ledger_before or {}).get(key, 0) for key in after
    }
    attrs = {"source": source, "rank": rank, "exact": exact, "ledger": delta}
    if found is not None:
        attrs["start"] = found.start
        attrs["end"] = found.end
        attrs["score"] = found.score
    metrics.event("search.rank_complete", **attrs)

"""Haar-wavelet discord discovery (paper related work: Fu et al. 2006).

The paper's related-work section cites discord algorithms that order the
search with Haar wavelets and augmented tries ([7] Fu et al., [2] Bu et
al.'s WAT).  This baseline implements that idea on the shared
bucket-ordered engine: each z-normalized window is summarized by the
signs/magnitudes of its coarsest Haar coefficients, windows with equal
Haar words share a bucket, and the exact search proceeds as in HOTSAX.

Like HOTSAX, the algorithm is exact — only the call count depends on how
well the Haar words group similar windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.anomaly import Discord
from repro.discord.search import iterated_search, ordered_discord_search
from repro.exceptions import ParameterError
from repro.resilience.budget import SearchBudget, SearchStatus
from repro.timeseries import kernels
from repro.timeseries.distance import DistanceCounter
from repro.timeseries.windows import num_windows, sliding_windows
from repro.timeseries.znorm import znorm_rows


@dataclass
class HaarResult:
    """Outcome of a Haar-ordered discord search.

    ``status`` and ``rank_complete`` carry the anytime-truncation
    flags, exactly as on :class:`repro.discord.hotsax.HOTSAXResult`.
    """

    discords: list[Discord] = field(default_factory=list)
    distance_calls: int = 0
    window: int = 0
    status: SearchStatus = SearchStatus.COMPLETE
    rank_complete: list[bool] = field(default_factory=list)
    from_cache: bool = False

    @property
    def best(self) -> Optional[Discord]:
        return self.discords[0] if self.discords else None

    @property
    def complete(self) -> bool:
        return self.status is SearchStatus.COMPLETE


def haar_transform(values: np.ndarray) -> np.ndarray:
    """Unnormalized Haar wavelet transform (length padded to 2^k).

    Output layout: ``[overall average, coarsest detail, ..., finest
    details]`` — the standard pyramid ordering, so the leading
    coefficients describe the window's coarse shape.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ParameterError("haar_transform expects a non-empty 1-d array")
    size = 1 << int(np.ceil(np.log2(values.size)))
    padded = np.zeros(size, dtype=float)
    padded[: values.size] = values
    if values.size < size:
        padded[values.size :] = values[-1]  # edge-pad, avoids a fake step

    output = padded.copy()
    length = size
    while length > 1:
        half = length // 2
        evens = output[0:length:2].copy()
        odds = output[1:length:2].copy()
        output[:half] = (evens + odds) / 2.0
        output[half:length] = (evens - odds) / 2.0
        length = half
    return output


def _quantize(coefficient: float, scale: float) -> str:
    """Map one coefficient to one of four letters by sign/magnitude."""
    if coefficient < -scale:
        return "a"
    if coefficient < 0.0:
        return "b"
    if coefficient < scale:
        return "c"
    return "d"


def haar_words(
    series: np.ndarray,
    window: int,
    *,
    num_coefficients: int = 4,
    normalized: Optional[np.ndarray] = None,
) -> list[str]:
    """The Haar bucket key of every sliding window.

    Each window is z-normalized, Haar-transformed, and its first
    *num_coefficients* coefficients are quantized to 4 levels.  Pass a
    prebuilt z-normalized window matrix to skip that pass.
    """
    if num_coefficients < 1:
        raise ParameterError(
            f"num_coefficients must be >= 1, got {num_coefficients}"
        )
    if normalized is None:
        normalized = znorm_rows(sliding_windows(series, window))
    words = []
    for row in normalized:
        coefficients = haar_transform(row)[:num_coefficients]
        scale = max(1e-9, float(np.abs(coefficients).mean()))
        words.append("".join(_quantize(c, scale) for c in coefficients))
    return words


def _shared_bucketing(series: np.ndarray, window: int, num_coefficients: int):
    """One WindowMatrix + one Haar-word pass, shared across all ranks.

    The words are a pure function of the (unchanging) windows, so
    computing them once per search instead of once per rank is
    result-identical; degenerate inputs fall back to the lazy path so
    the search's own validation error still fires first.
    """
    if num_windows(series.size, window) < 2:
        return None, (
            lambda s, w: haar_words(s, w, num_coefficients=num_coefficients)
        )
    windows = kernels.WindowMatrix(series, window)
    words = haar_words(
        series, window,
        num_coefficients=num_coefficients, normalized=windows.normalized,
    )
    return windows, (lambda s, w: words)


def haar_discord(
    series: np.ndarray,
    window: int,
    *,
    num_coefficients: int = 4,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
    exclude: tuple[tuple[int, int], ...] = (),
    backend: str = "kernel",
    budget: Optional[SearchBudget] = None,
    n_workers: int = 1,
    prune: bool = False,
    metrics=None,
) -> tuple[Optional[Discord], DistanceCounter]:
    """Best fixed-length discord with Haar-word loop ordering (exact).

    *prune* opts into the admissible SAX/PAA lower-bound cascade (a
    pruning-only discretization of the windows; the Haar bucketing is
    untouched).  Results and logical call counts are bit-identical.
    """
    series = np.asarray(series, dtype=float)
    windows, bucket_fn = _shared_bucketing(series, window, num_coefficients)
    return ordered_discord_search(
        series,
        window,
        bucket_fn,
        source="haar",
        counter=counter,
        rng=rng,
        exclude=exclude,
        backend=backend,
        budget=budget,
        n_workers=n_workers,
        prune=prune,
        windows=windows,
        metrics=metrics,
    )


def haar_discords(
    series: np.ndarray,
    window: int,
    *,
    num_discords: int = 1,
    num_coefficients: int = 4,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
    backend: str = "kernel",
    budget: Optional[SearchBudget] = None,
    n_workers: int = 1,
    prune: bool = False,
    metrics=None,
    cache=None,
    context=None,
) -> HaarResult:
    """Ranked top-k discords with Haar-word loop ordering (anytime).

    *cache* serves an identical previous search from disk (discords +
    split ledger, ``from_cache=True``); *context* shares the window
    matrix, Haar words, and pruning tables across searches.  Both
    default to ``None`` — the unconfigured path is byte-identical to
    the pre-cache code.
    """
    if budget is None:
        budget = SearchBudget.unlimited()
    series = np.asarray(series, dtype=float)
    cache_key = None
    ledger_before = None
    if cache is not None:
        from repro.cache.keys import discord_search_key
        from repro.cache.results import (
            apply_ledger_delta,
            discords_from_json,
            discords_to_json,
            ledger_delta,
        )

        if counter is None:
            counter = DistanceCounter()
        if rng is None:
            rng = np.random.default_rng(0)
        cache_key = discord_search_key(
            series,
            (),
            engine="haar",
            params={
                "window": int(window),
                "num_discords": int(num_discords),
                "num_coefficients": int(num_coefficients),
                "backend": backend,
                "prune": bool(prune),
            },
            rng=rng,
        )
        entry = cache.get(cache_key)
        if entry is not None:
            apply_ledger_delta(counter, entry["ledger"])
            discords = discords_from_json(entry["discords"])
            return HaarResult(
                discords=discords,
                distance_calls=counter.calls,
                window=window,
                status=SearchStatus.COMPLETE,
                rank_complete=[True] * len(discords),
                from_cache=True,
            )
        ledger_before = counter.ledger()
    lower_bound = None
    if context is not None:
        windows, bucket_fn = context.haar_bucketing(
            series, window, num_coefficients
        )
        if prune:
            lower_bound = context.window_lower_bound(series, window)
    else:
        windows, bucket_fn = _shared_bucketing(series, window, num_coefficients)
    discords, counter, rank_complete = iterated_search(
        series,
        window,
        bucket_fn,
        source="haar",
        num_discords=num_discords,
        counter=counter,
        rng=rng,
        backend=backend,
        budget=budget,
        n_workers=n_workers,
        prune=prune,
        lower_bound=lower_bound,
        windows=windows,
        metrics=metrics,
    )
    if (
        cache_key is not None
        and budget.status is SearchStatus.COMPLETE
        and all(rank_complete)
    ):
        cache.put(
            cache_key,
            {
                "engine": "haar",
                "discords": discords_to_json(discords),
                "ledger": ledger_delta(ledger_before, counter.ledger()),
            },
        )
    return HaarResult(
        discords=discords,
        distance_calls=counter.calls,
        window=window,
        status=budget.status,
        rank_complete=rank_complete,
    )

"""Brute-force discord discovery (the O(m^2) baseline of Table 1).

Considers every sliding window as a candidate and scans every non-self
match for its nearest neighbour.  Early abandoning against the running
best keeps the constant factor down, but every inner comparison still
counts as one distance call — exactly the number the paper's "Brute-force"
column reports.

For the paper-scale datasets (up to 586k points, ~3.4x10^11 calls) the
search is infeasible on any machine, so :func:`brute_force_call_count`
also provides the closed-form call count that the paper tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.core.anomaly import Discord
from repro.discord.search import (
    _kernel_inner_scan_lb,
    emit_rank_event,
    validate_backend,
)
from repro.exceptions import DiscordSearchError
from repro.observability.metrics import ensure_metrics
from repro.parallel.pool import MIN_PARALLEL_CANDIDATES, effective_workers
from repro.resilience.budget import SearchBudget, SearchStatus
from repro.timeseries import kernels
from repro.timeseries.distance import DistanceCounter
from repro.timeseries.lowerbound import WindowLowerBound
from repro.timeseries.windows import num_windows


def brute_force_call_count(series_length: int, window: int) -> int:
    """Closed-form distance-call count of the full brute-force search.

    For each of the ``k = m - n + 1`` candidates, every other window at
    offset difference > n is a non-self match.  Without early abandoning
    (the paper's brute-force baseline prunes nothing), the count is::

        sum over p of |{ q : |p - q| > n }|

    Each direction contributes ``sum_{j=1}^{d} j`` pairs with
    ``d = k - n - 1``, so the total collapses to ``d * (d + 1)``.
    """
    k = num_windows(series_length, window)
    d = k - window - 1
    return d * (d + 1) if d > 0 else 0


def brute_force_discord(
    series: np.ndarray,
    window: int,
    *,
    counter: Optional[DistanceCounter] = None,
    early_abandon: bool = False,
    exclude: tuple[tuple[int, int], ...] = (),
    backend: str = "kernel",
    budget: Optional[SearchBudget] = None,
    n_workers: int = 1,
    prune: bool = False,
    lower_bound: Optional[WindowLowerBound] = None,
    windows: Optional[kernels.WindowMatrix] = None,
    metrics=None,
) -> tuple[Optional[Discord], DistanceCounter]:
    """Exact fixed-length discord by exhaustive search.

    Parameters
    ----------
    series:
        Raw time series.
    window:
        Discord length n.
    counter:
        Distance counter to accumulate into.
    early_abandon:
        When True, the inner loop breaks once a distance below the
        running best is seen (the candidate is disqualified).  The
        paper's brute-force column counts the non-abandoning variant;
        tests use the abandoning one for speed.
    exclude:
        Candidate start positions falling in any of these half-open
        ranges are skipped (multi-discord extraction).
    backend:
        ``"kernel"`` (default) computes each candidate's distance row
        with one matrix-vector product; ``"scalar"`` keeps the per-pair
        reference loop.  Results and call counts are identical.
    budget:
        Optional anytime budget, checked once per outer candidate.  On
        exhaustion (or ``KeyboardInterrupt`` while one was supplied) the
        best-so-far discord is returned and ``budget.status`` says why.
    n_workers:
        Shard the outer loop across this many worker processes (see
        :mod:`repro.parallel`); results and call counts are
        bit-identical to the serial scan for any value.
    prune:
        Opt into the admissible lower-bound cascade
        (:mod:`repro.timeseries.lowerbound`): a SAX/PAA discretization
        of the windows lets most kernel invocations be skipped while
        every pair still counts as one logical call — the paper's
        brute-force accounting (with or without *early_abandon*) is
        unchanged, as are the results.
    lower_bound:
        Prebuilt pruner to reuse across ranks; built on the fly when
        *prune* is set without one.
    windows:
        Prebuilt :class:`~repro.timeseries.kernels.WindowMatrix` to
        reuse across ranks (one normalization + row-norm pass per
        search); built on the fly when absent.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry` recording
        search telemetry (candidates visited / abandoned, abandon
        depths, budget trips).  Disabled by default; results and logical
        call counts are byte-identical either way.
    """
    validate_backend(backend)
    series = np.asarray(series, dtype=float)
    k = num_windows(series.size, window)
    if k < 2:
        raise DiscordSearchError(
            f"series of length {series.size} too short for window {window}"
        )
    if counter is None:
        counter = DistanceCounter()
    has_channel = budget is not None
    if budget is None:
        budget = SearchBudget.unlimited()
    metrics = ensure_metrics(metrics)
    budget.bind_metrics(metrics)

    if windows is None:
        windows = kernels.WindowMatrix(series, window)
    normalized = windows.normalized
    sqnorms = windows.sqnorms if backend in ("kernel", "batch") else None

    lb = lower_bound if prune else None
    if prune and lb is None:
        lb = WindowLowerBound.from_normalized_windows(normalized, window)

    best_dist = -1.0
    best_pos = None
    workers = effective_workers(n_workers)
    if workers > 1 and k >= MIN_PARALLEL_CANDIDATES:
        from repro.parallel.engine import parallel_fixed_search

        best_pos, best_dist = parallel_fixed_search(
            normalized=normalized,
            sqnorms=sqnorms,
            bucket_ids=None,
            outer=None,
            window=window,
            exclude=exclude,
            backend=backend,
            prune=early_abandon,
            counter=counter,
            rng=None,
            budget=budget,
            n_workers=workers,
            has_channel=has_channel,
            lb=lb,
            metrics=metrics,
        )
    else:
        try:
            best_dist, best_pos = _brute_force_scan(
                normalized, sqnorms, k, window, counter, budget,
                early_abandon=early_abandon, exclude=exclude, backend=backend,
                lb=lb, metrics=metrics,
            )
        except KeyboardInterrupt:
            if not has_channel:
                raise
            budget.note_cancelled()

    if best_pos is None:
        return None, counter
    discord = Discord(
        start=best_pos,
        end=best_pos + window,
        score=best_dist,
        rank=0,
        nn_distance=best_dist,
        rule_id=None,
        source="brute_force",
    )
    return discord, counter


def _brute_force_scan(
    normalized: np.ndarray,
    sqnorms: Optional[np.ndarray],
    k: int,
    window: int,
    counter: DistanceCounter,
    budget: SearchBudget,
    *,
    early_abandon: bool,
    exclude: tuple[tuple[int, int], ...],
    backend: str,
    lb: Optional[WindowLowerBound] = None,
    metrics=None,
) -> tuple[float, Optional[int]]:
    """The exhaustive outer/inner loop; returns (best_dist, best_pos)."""
    metrics = ensure_metrics(metrics)
    if backend == "batch":
        from repro.discord import batch

        active = [
            p for p in range(k)
            if not any(s <= p < e for s, e in exclude)
        ]
        arange = np.arange(k, dtype=np.intp)

        def make_order(p: int) -> np.ndarray:
            return arange[np.abs(arange - p) > window]

        scanner = batch.TileScanner(normalized, sqnorms, lb=lb)
        return batch.batch_serial_scan(
            scanner, active, make_order,
            abandon=early_abandon, counter=counter, budget=budget, lb=lb,
            metrics=metrics, init_best=-1.0, band=window,
        )
    instrumented = metrics.enabled
    if instrumented:
        m_visited = metrics.counter("search.candidates_visited")
        m_abandoned = metrics.counter("search.candidates_abandoned")
        m_survived = metrics.counter("search.candidates_survived")
        m_best = metrics.counter("search.best_updates")
        m_depth = metrics.histogram("search.abandon_depth")
    best_dist = -1.0
    best_pos = None
    for p in range(k):
        if any(ex_start <= p < ex_end for ex_start, ex_end in exclude):
            continue
        if budget.interrupted(counter.calls) is not None:
            break
        if instrumented:
            calls_at_entry = counter.calls
        nearest = float("inf")
        pruned = False
        if backend == "kernel" and lb is not None:
            # With the lower-bound cascade the full-row matvec would
            # waste the pruning (the whole row is computed up front), so
            # the candidate is scanned in the same ascending pair order
            # via growing blocks — results identical, kernels skipped.
            # A -inf threshold disables early abandoning exactly (the
            # break fires strictly below the threshold).
            order = (q for q in range(k) if abs(p - q) > window)
            threshold = best_dist if early_abandon else float("-inf")
            nearest, consumed, true_count, lb_evals, pruned = (
                _kernel_inner_scan_lb(
                    normalized, sqnorms, p, order, threshold, lb
                )
            )
            counter.batch(true_count)
            counter.pruned_batch(consumed - true_count)
            counter.lb_batch(lb_evals)
        elif backend == "kernel":
            # One matrix-vector product yields the candidate's entire
            # distance row; the scalar prune logic is replayed on it so
            # the logical call count stays identical.
            sq_row = kernels.one_vs_all_sq_euclidean(
                normalized[p], normalized, query_sqnorm=sqnorms[p], sqnorms=sqnorms
            )
            valid = np.ones(k, dtype=bool)
            valid[max(0, p - window) : p + window + 1] = False
            dists = np.sqrt(sq_row[valid])
            if early_abandon:
                hit = kernels.first_below(dists, best_dist)
                if hit >= 0:
                    counter.batch(hit + 1)
                    pruned = True
            if not pruned:
                counter.batch(dists.size)
                if dists.size:
                    nearest = float(dists.min())
        else:
            for q in range(k):
                if abs(p - q) <= window:
                    continue
                if lb is not None and np.isfinite(nearest):
                    counter.lb_batch(1)
                    if lb.pair_exceeds(p, q, nearest):
                        # dist >= LB >= nearest: cannot lower the
                        # minimum, cannot beat best_dist — skip the
                        # kernel, keep the logical call.
                        counter.pruned_batch(1)
                        continue
                # Abandoning beyond `nearest` never loses information:
                # while the candidate is alive, nearest >= best_dist, so
                # an abandoned (inf) result can trigger neither branch
                # below.
                cutoff = nearest if early_abandon else float("inf")
                dist = counter.euclidean(normalized[p], normalized[q], cutoff=cutoff)
                if early_abandon and dist < best_dist:
                    pruned = True
                    break
                if dist < nearest:
                    nearest = dist
        if instrumented:
            m_visited.inc()
            if pruned:
                m_abandoned.inc()
                m_depth.observe(counter.calls - calls_at_entry)
            else:
                m_survived.inc()
        if not pruned and np.isfinite(nearest) and nearest > best_dist:
            best_dist = nearest
            best_pos = p
            if instrumented:
                m_best.inc()
    return best_dist, best_pos


@dataclass
class BruteForceResult:
    """Outcome of a multi-discord brute-force search.

    Sequence-compatible with the plain ``list[Discord]`` the function
    used to return (``len`` / indexing / iteration all delegate to
    :attr:`discords`), plus the anytime ``status`` / ``rank_complete``
    flags shared with the other engines.
    """

    discords: list[Discord] = field(default_factory=list)
    distance_calls: int = 0
    window: int = 0
    status: SearchStatus = SearchStatus.COMPLETE
    rank_complete: list[bool] = field(default_factory=list)
    from_cache: bool = False

    @property
    def best(self) -> Optional[Discord]:
        return self.discords[0] if self.discords else None

    @property
    def complete(self) -> bool:
        return self.status is SearchStatus.COMPLETE

    def __len__(self) -> int:
        return len(self.discords)

    def __getitem__(self, index):
        return self.discords[index]

    def __iter__(self) -> Iterator[Discord]:
        return iter(self.discords)


def brute_force_discords(
    series: np.ndarray,
    window: int,
    *,
    num_discords: int = 1,
    counter: Optional[DistanceCounter] = None,
    early_abandon: bool = True,
    backend: str = "kernel",
    budget: Optional[SearchBudget] = None,
    n_workers: int = 1,
    prune: bool = False,
    metrics=None,
    cache=None,
    context=None,
) -> BruteForceResult:
    """Ranked top-k fixed-length discords by exhaustive search (anytime).

    *cache* serves an identical previous search from disk (discords +
    split ledger, ``from_cache=True``); *context* shares the window
    matrix and pruning tables across searches.  Both default to
    ``None`` — the unconfigured path is byte-identical to the pre-cache
    code.
    """
    validate_backend(backend)
    series = np.asarray(series, dtype=float)
    if counter is None:
        counter = DistanceCounter()
    if budget is None:
        budget = SearchBudget.unlimited()
    cache_key = None
    ledger_before = None
    if cache is not None:
        from repro.cache.keys import discord_search_key
        from repro.cache.results import (
            apply_ledger_delta,
            discords_from_json,
            discords_to_json,
            ledger_delta,
        )

        cache_key = discord_search_key(
            series,
            (),
            engine="brute_force",
            params={
                "window": int(window),
                "num_discords": int(num_discords),
                "early_abandon": bool(early_abandon),
                "backend": backend,
                "prune": bool(prune),
            },
        )
        entry = cache.get(cache_key)
        if entry is not None:
            apply_ledger_delta(counter, entry["ledger"])
            cached = discords_from_json(entry["discords"])
            return BruteForceResult(
                discords=cached,
                distance_calls=counter.calls,
                window=window,
                status=SearchStatus.COMPLETE,
                rank_complete=[True] * len(cached),
                from_cache=True,
            )
        ledger_before = counter.ledger()
    metrics = ensure_metrics(metrics)
    budget.bind_metrics(metrics)
    if context is not None:
        windows = context.window_matrix(series, window)
        lower_bound = (
            context.window_lower_bound(series, window) if prune else None
        )
    else:
        # Deferred for degenerate inputs so brute_force_discord still
        # raises its own (tested) validation error.
        windows = (
            kernels.WindowMatrix(series, window)
            if num_windows(series.size, window) >= 2
            else None
        )
        lower_bound = None
        if prune and windows is not None:
            lower_bound = WindowLowerBound.from_normalized_windows(
                windows.normalized, window
            )
    discords: list[Discord] = []
    rank_complete: list[bool] = []
    exclusions: list[tuple[int, int]] = []
    for rank in range(num_discords):
        rank_ledger = counter.ledger() if metrics.enabled else None
        with metrics.span("search.rank", source="brute_force", rank=rank):
            found, counter = brute_force_discord(
                series,
                window,
                counter=counter,
                early_abandon=early_abandon,
                exclude=tuple(exclusions),
                backend=backend,
                budget=budget,
                n_workers=n_workers,
                prune=prune,
                lower_bound=lower_bound,
                windows=windows,
                metrics=metrics,
            )
        truncated = budget.status is not SearchStatus.COMPLETE
        if metrics.enabled:
            emit_rank_event(
                metrics, "brute_force", rank, rank_ledger, counter, found,
                exact=not truncated,
            )
        if found is not None:
            discords.append(
                Discord(
                    start=found.start,
                    end=found.end,
                    score=found.score,
                    rank=rank,
                    nn_distance=found.nn_distance,
                    rule_id=None,
                    source="brute_force",
                )
            )
            rank_complete.append(not truncated)
        if truncated or found is None:
            break
        # Exclude a window-sized neighbourhood around the found discord so
        # the next iteration reports a genuinely different anomaly.
        exclusions.append((found.start - window + 1, found.start + window))
    if (
        cache_key is not None
        and budget.status is SearchStatus.COMPLETE
        and all(rank_complete)
    ):
        cache.put(
            cache_key,
            {
                "engine": "brute_force",
                "discords": discords_to_json(discords),
                "ledger": ledger_delta(ledger_before, counter.ledger()),
            },
        )
    return BruteForceResult(
        discords=discords,
        distance_calls=counter.calls,
        window=window,
        status=budget.status,
        rank_complete=rank_complete,
    )


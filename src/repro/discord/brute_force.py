"""Brute-force discord discovery (the O(m^2) baseline of Table 1).

Considers every sliding window as a candidate and scans every non-self
match for its nearest neighbour.  Early abandoning against the running
best keeps the constant factor down, but every inner comparison still
counts as one distance call — exactly the number the paper's "Brute-force"
column reports.

For the paper-scale datasets (up to 586k points, ~3.4x10^11 calls) the
search is infeasible on any machine, so :func:`brute_force_call_count`
also provides the closed-form call count that the paper tabulates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.anomaly import Discord
from repro.exceptions import DiscordSearchError
from repro.timeseries.distance import DistanceCounter
from repro.timeseries.windows import num_windows, sliding_windows
from repro.timeseries.znorm import znorm_rows


def brute_force_call_count(series_length: int, window: int) -> int:
    """Closed-form distance-call count of the full brute-force search.

    For each of the ``k = m - n + 1`` candidates, every other window at
    offset difference > n is a non-self match.  Without early abandoning
    (the paper's brute-force baseline prunes nothing), the count is::

        sum over p of |{ q : |p - q| > n }|

    which this function evaluates exactly.
    """
    k = num_windows(series_length, window)
    total = 0
    for p in range(k):
        left = max(0, p - window)  # matches q < p - n
        right = max(0, k - p - window - 1)  # matches q > p + n
        total += left + right
    return total


def brute_force_discord(
    series: np.ndarray,
    window: int,
    *,
    counter: Optional[DistanceCounter] = None,
    early_abandon: bool = False,
    exclude: tuple[tuple[int, int], ...] = (),
) -> tuple[Optional[Discord], DistanceCounter]:
    """Exact fixed-length discord by exhaustive search.

    Parameters
    ----------
    series:
        Raw time series.
    window:
        Discord length n.
    counter:
        Distance counter to accumulate into.
    early_abandon:
        When True, the inner loop breaks once a distance below the
        running best is seen (the candidate is disqualified).  The
        paper's brute-force column counts the non-abandoning variant;
        tests use the abandoning one for speed.
    exclude:
        Candidate start positions falling in any of these half-open
        ranges are skipped (multi-discord extraction).
    """
    series = np.asarray(series, dtype=float)
    k = num_windows(series.size, window)
    if k < 2:
        raise DiscordSearchError(
            f"series of length {series.size} too short for window {window}"
        )
    if counter is None:
        counter = DistanceCounter()

    windows = sliding_windows(series, window)
    normalized = znorm_rows(windows)

    best_dist = -1.0
    best_pos = None
    for p in range(k):
        if any(ex_start <= p < ex_end for ex_start, ex_end in exclude):
            continue
        nearest = float("inf")
        pruned = False
        for q in range(k):
            if abs(p - q) <= window:
                continue
            # Abandoning beyond `nearest` never loses information: while
            # the candidate is alive, nearest >= best_dist, so an
            # abandoned (inf) result can trigger neither branch below.
            cutoff = nearest if early_abandon else float("inf")
            dist = counter.euclidean(normalized[p], normalized[q], cutoff=cutoff)
            if early_abandon and dist < best_dist:
                pruned = True
                break
            if dist < nearest:
                nearest = dist
        if not pruned and np.isfinite(nearest) and nearest > best_dist:
            best_dist = nearest
            best_pos = p

    if best_pos is None:
        return None, counter
    discord = Discord(
        start=best_pos,
        end=best_pos + window,
        score=best_dist,
        rank=0,
        nn_distance=best_dist,
        rule_id=None,
        source="brute_force",
    )
    return discord, counter


def brute_force_discords(
    series: np.ndarray,
    window: int,
    *,
    num_discords: int = 1,
    counter: Optional[DistanceCounter] = None,
    early_abandon: bool = True,
) -> list[Discord]:
    """Ranked top-k fixed-length discords by exhaustive search."""
    series = np.asarray(series, dtype=float)
    if counter is None:
        counter = DistanceCounter()
    discords: list[Discord] = []
    exclusions: list[tuple[int, int]] = []
    for rank in range(num_discords):
        found, counter = brute_force_discord(
            series,
            window,
            counter=counter,
            early_abandon=early_abandon,
            exclude=tuple(exclusions),
        )
        if found is None:
            break
        discords.append(
            Discord(
                start=found.start,
                end=found.end,
                score=found.score,
                rank=rank,
                nn_distance=found.nn_distance,
                rule_id=None,
                source="brute_force",
            )
        )
        # Exclude a window-sized neighbourhood around the found discord so
        # the next iteration reports a genuinely different anomaly.
        exclusions.append((found.start - window + 1, found.start + window))
    return discords


"""Brute-force discord discovery (the O(m^2) baseline of Table 1).

Considers every sliding window as a candidate and scans every non-self
match for its nearest neighbour.  Early abandoning against the running
best keeps the constant factor down, but every inner comparison still
counts as one distance call — exactly the number the paper's "Brute-force"
column reports.

For the paper-scale datasets (up to 586k points, ~3.4x10^11 calls) the
search is infeasible on any machine, so :func:`brute_force_call_count`
also provides the closed-form call count that the paper tabulates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.anomaly import Discord
from repro.discord.search import validate_backend
from repro.exceptions import DiscordSearchError
from repro.timeseries import kernels
from repro.timeseries.distance import DistanceCounter
from repro.timeseries.windows import num_windows, sliding_windows
from repro.timeseries.znorm import znorm_rows


def brute_force_call_count(series_length: int, window: int) -> int:
    """Closed-form distance-call count of the full brute-force search.

    For each of the ``k = m - n + 1`` candidates, every other window at
    offset difference > n is a non-self match.  Without early abandoning
    (the paper's brute-force baseline prunes nothing), the count is::

        sum over p of |{ q : |p - q| > n }|

    Each direction contributes ``sum_{j=1}^{d} j`` pairs with
    ``d = k - n - 1``, so the total collapses to ``d * (d + 1)``.
    """
    k = num_windows(series_length, window)
    d = k - window - 1
    return d * (d + 1) if d > 0 else 0


def brute_force_discord(
    series: np.ndarray,
    window: int,
    *,
    counter: Optional[DistanceCounter] = None,
    early_abandon: bool = False,
    exclude: tuple[tuple[int, int], ...] = (),
    backend: str = "kernel",
) -> tuple[Optional[Discord], DistanceCounter]:
    """Exact fixed-length discord by exhaustive search.

    Parameters
    ----------
    series:
        Raw time series.
    window:
        Discord length n.
    counter:
        Distance counter to accumulate into.
    early_abandon:
        When True, the inner loop breaks once a distance below the
        running best is seen (the candidate is disqualified).  The
        paper's brute-force column counts the non-abandoning variant;
        tests use the abandoning one for speed.
    exclude:
        Candidate start positions falling in any of these half-open
        ranges are skipped (multi-discord extraction).
    backend:
        ``"kernel"`` (default) computes each candidate's distance row
        with one matrix-vector product; ``"scalar"`` keeps the per-pair
        reference loop.  Results and call counts are identical.
    """
    validate_backend(backend)
    series = np.asarray(series, dtype=float)
    k = num_windows(series.size, window)
    if k < 2:
        raise DiscordSearchError(
            f"series of length {series.size} too short for window {window}"
        )
    if counter is None:
        counter = DistanceCounter()

    windows = sliding_windows(series, window)
    normalized = znorm_rows(windows)
    sqnorms = kernels.row_sqnorms(normalized) if backend == "kernel" else None

    best_dist = -1.0
    best_pos = None
    for p in range(k):
        if any(ex_start <= p < ex_end for ex_start, ex_end in exclude):
            continue
        nearest = float("inf")
        pruned = False
        if backend == "kernel":
            # One matrix-vector product yields the candidate's entire
            # distance row; the scalar prune logic is replayed on it so
            # the logical call count stays identical.
            sq_row = kernels.one_vs_all_sq_euclidean(
                normalized[p], normalized, query_sqnorm=sqnorms[p], sqnorms=sqnorms
            )
            valid = np.ones(k, dtype=bool)
            valid[max(0, p - window) : p + window + 1] = False
            dists = np.sqrt(sq_row[valid])
            if early_abandon:
                hit = kernels.first_below(dists, best_dist)
                if hit >= 0:
                    counter.batch(hit + 1)
                    pruned = True
            if not pruned:
                counter.batch(dists.size)
                if dists.size:
                    nearest = float(dists.min())
        else:
            for q in range(k):
                if abs(p - q) <= window:
                    continue
                # Abandoning beyond `nearest` never loses information:
                # while the candidate is alive, nearest >= best_dist, so
                # an abandoned (inf) result can trigger neither branch
                # below.
                cutoff = nearest if early_abandon else float("inf")
                dist = counter.euclidean(normalized[p], normalized[q], cutoff=cutoff)
                if early_abandon and dist < best_dist:
                    pruned = True
                    break
                if dist < nearest:
                    nearest = dist
        if not pruned and np.isfinite(nearest) and nearest > best_dist:
            best_dist = nearest
            best_pos = p

    if best_pos is None:
        return None, counter
    discord = Discord(
        start=best_pos,
        end=best_pos + window,
        score=best_dist,
        rank=0,
        nn_distance=best_dist,
        rule_id=None,
        source="brute_force",
    )
    return discord, counter


def brute_force_discords(
    series: np.ndarray,
    window: int,
    *,
    num_discords: int = 1,
    counter: Optional[DistanceCounter] = None,
    early_abandon: bool = True,
    backend: str = "kernel",
) -> list[Discord]:
    """Ranked top-k fixed-length discords by exhaustive search."""
    validate_backend(backend)
    series = np.asarray(series, dtype=float)
    if counter is None:
        counter = DistanceCounter()
    discords: list[Discord] = []
    exclusions: list[tuple[int, int]] = []
    for rank in range(num_discords):
        found, counter = brute_force_discord(
            series,
            window,
            counter=counter,
            early_abandon=early_abandon,
            exclude=tuple(exclusions),
            backend=backend,
        )
        if found is None:
            break
        discords.append(
            Discord(
                start=found.start,
                end=found.end,
                score=found.score,
                rank=rank,
                nn_distance=found.nn_distance,
                rule_id=None,
                source="brute_force",
            )
        )
        # Exclude a window-sized neighbourhood around the found discord so
        # the next iteration reports a genuinely different anomaly.
        exclusions.append((found.start - window + 1, found.start + window))
    return discords


"""Fixed-length discord discovery baselines (brute force, HOTSAX).

These are the comparison algorithms of the paper's Table 1.  Both find
the classic Keogh-style discord: the fixed-length subsequence with the
largest Euclidean distance to its nearest non-self match.
"""

from repro.discord.brute_force import (
    brute_force_call_count,
    brute_force_discord,
    brute_force_discords,
)
from repro.discord.hotsax import HOTSAXResult, hotsax_discord, hotsax_discords
from repro.discord.haar import HaarResult, haar_discord, haar_discords

__all__ = [
    "brute_force_call_count",
    "brute_force_discord",
    "brute_force_discords",
    "HOTSAXResult",
    "hotsax_discord",
    "hotsax_discords",
    "HaarResult",
    "haar_discord",
    "haar_discords",
]

"""HOTSAX discord discovery (Keogh, Lin & Fu 2005) — Table 1 baseline.

HOTSAX accelerates brute force with two SAX-driven heuristics:

* **Outer loop** — candidate windows in ascending order of their SAX
  word's occurrence count (rare words are likely discords, so a strong
  ``best_so_far`` is found early);
* **Inner loop** — for each candidate, windows sharing the same SAX word
  are tried first (likely near matches → early abandoning), the rest in
  random order.

The search is exact: it returns the same discord as brute force, only
with far fewer distance calls.  The loop engine is shared with the
Haar-ordered baseline (:mod:`repro.discord.search`); HOTSAX contributes
the SAX-word bucketing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.anomaly import Discord
from repro.discord.search import iterated_search, ordered_discord_search
from repro.resilience.budget import SearchBudget, SearchStatus
from repro.sax.alphabet import alphabet_letters, breakpoints_array
from repro.timeseries.distance import DistanceCounter
from repro.timeseries.paa import paa_batch
from repro.timeseries.windows import sliding_windows
from repro.timeseries.znorm import znorm_rows


@dataclass
class HOTSAXResult:
    """Outcome of a HOTSAX search (discords + the Table 1 call count).

    ``status`` and the per-rank ``rank_complete`` flags report anytime
    truncation: with a tripped budget the discords are the best found
    so far rather than the exact answer.
    """

    discords: list[Discord] = field(default_factory=list)
    distance_calls: int = 0
    window: int = 0
    status: SearchStatus = SearchStatus.COMPLETE
    rank_complete: list[bool] = field(default_factory=list)

    @property
    def best(self) -> Optional[Discord]:
        return self.discords[0] if self.discords else None

    @property
    def complete(self) -> bool:
        return self.status is SearchStatus.COMPLETE


def _sax_words_per_window(
    series: np.ndarray, window: int, paa_size: int, alphabet_size: int
) -> list[str]:
    """SAX word of every sliding window (no numerosity reduction)."""
    windows = sliding_windows(series, window)
    normalized = znorm_rows(windows)
    paa_values = paa_batch(normalized, paa_size)
    cuts = breakpoints_array(alphabet_size)
    letter_idx = np.searchsorted(cuts, paa_values, side="right")
    alphabet = alphabet_letters(alphabet_size)
    return ["".join(alphabet[i] for i in row) for row in letter_idx]


def hotsax_discord(
    series: np.ndarray,
    window: int,
    *,
    paa_size: int = 3,
    alphabet_size: int = 3,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
    exclude: tuple[tuple[int, int], ...] = (),
    backend: str = "kernel",
    budget: Optional[SearchBudget] = None,
    n_workers: int = 1,
) -> tuple[Optional[Discord], DistanceCounter]:
    """Find the best fixed-length discord with the HOTSAX heuristics.

    Parameters
    ----------
    series:
        Raw time series.
    window:
        Discord length n (every candidate has exactly this length).
    paa_size, alphabet_size:
        SAX parameters for the heuristic orderings (they do not affect
        the result, only the number of distance calls).
    counter:
        Distance counter to accumulate into.
    rng:
        Randomness for the inner-loop tail ordering.
    exclude:
        Candidate start positions inside these half-open ranges are
        skipped (multi-discord extraction).
    backend:
        ``"kernel"`` (default) or ``"scalar"`` — see
        :func:`repro.discord.search.ordered_discord_search`.
    budget:
        Optional anytime budget; on exhaustion or cancellation the
        best-so-far discord is returned (``budget.status`` says why).
    """
    return ordered_discord_search(
        series,
        window,
        lambda s, w: _sax_words_per_window(s, w, paa_size, alphabet_size),
        source="hotsax",
        counter=counter,
        rng=rng,
        exclude=exclude,
        backend=backend,
        budget=budget,
        n_workers=n_workers,
    )


def hotsax_discords(
    series: np.ndarray,
    window: int,
    *,
    num_discords: int = 1,
    paa_size: int = 3,
    alphabet_size: int = 3,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
    backend: str = "kernel",
    budget: Optional[SearchBudget] = None,
    n_workers: int = 1,
) -> HOTSAXResult:
    """Ranked top-k fixed-length discords with the HOTSAX heuristics.

    Anytime: with a *budget* the result may be truncated — check
    ``result.status`` and ``result.rank_complete``.
    """
    if budget is None:
        budget = SearchBudget.unlimited()
    discords, counter, rank_complete = iterated_search(
        series,
        window,
        lambda s, w: _sax_words_per_window(s, w, paa_size, alphabet_size),
        source="hotsax",
        num_discords=num_discords,
        counter=counter,
        rng=rng,
        backend=backend,
        budget=budget,
        n_workers=n_workers,
    )
    return HOTSAXResult(
        discords=discords,
        distance_calls=counter.calls,
        window=window,
        status=budget.status,
        rank_complete=rank_complete,
    )

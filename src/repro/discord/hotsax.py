"""HOTSAX discord discovery (Keogh, Lin & Fu 2005) — Table 1 baseline.

HOTSAX accelerates brute force with two SAX-driven heuristics:

* **Outer loop** — candidate windows in ascending order of their SAX
  word's occurrence count (rare words are likely discords, so a strong
  ``best_so_far`` is found early);
* **Inner loop** — for each candidate, windows sharing the same SAX word
  are tried first (likely near matches → early abandoning), the rest in
  random order.

The search is exact: it returns the same discord as brute force, only
with far fewer distance calls.  The loop engine is shared with the
Haar-ordered baseline (:mod:`repro.discord.search`); HOTSAX contributes
the SAX-word bucketing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.anomaly import Discord
from repro.discord.search import iterated_search, ordered_discord_search
from repro.resilience.budget import SearchBudget, SearchStatus
from repro.sax.alphabet import alphabet_letters
from repro.sax.mindist import letter_indices
from repro.timeseries import kernels
from repro.timeseries.distance import DistanceCounter
from repro.timeseries.lowerbound import WindowLowerBound
from repro.timeseries.paa import paa_batch
from repro.timeseries.windows import num_windows, sliding_windows
from repro.timeseries.znorm import znorm_rows


@dataclass
class HOTSAXResult:
    """Outcome of a HOTSAX search (discords + the Table 1 call count).

    ``status`` and the per-rank ``rank_complete`` flags report anytime
    truncation: with a tripped budget the discords are the best found
    so far rather than the exact answer.
    """

    discords: list[Discord] = field(default_factory=list)
    distance_calls: int = 0
    window: int = 0
    status: SearchStatus = SearchStatus.COMPLETE
    rank_complete: list[bool] = field(default_factory=list)
    from_cache: bool = False

    @property
    def best(self) -> Optional[Discord]:
        return self.discords[0] if self.discords else None

    @property
    def complete(self) -> bool:
        return self.status is SearchStatus.COMPLETE


class SAXWindowDiscretization:
    """One-shot SAX discretization of every sliding window, kept around.

    The per-window PAA values, SAX letter indices, and joined words are
    all computed in a single pass and cached on the search, so HOTSAX's
    bucket ordering and the MINDIST pruning stage share them instead of
    re-discretizing — once per search rather than once per rank and once
    per consumer.
    """

    __slots__ = ("window", "paa_size", "alphabet_size", "paa_values", "letters", "words")

    def __init__(
        self,
        series: np.ndarray,
        window: int,
        paa_size: int,
        alphabet_size: int,
        *,
        normalized: Optional[np.ndarray] = None,
    ):
        if normalized is None:
            normalized = znorm_rows(sliding_windows(series, window))
        self.window = window
        self.paa_size = paa_size
        self.alphabet_size = alphabet_size
        self.paa_values = paa_batch(normalized, paa_size)
        self.letters = letter_indices(self.paa_values, alphabet_size)
        alphabet = alphabet_letters(alphabet_size)
        self.words = ["".join(alphabet[i] for i in row) for row in self.letters]

    def lower_bound(self) -> WindowLowerBound:
        """A MINDIST/PAA pruner over this discretization (zero recompute)."""
        return WindowLowerBound(
            self.paa_values, self.window, self.alphabet_size, letters=self.letters
        )


def _sax_words_per_window(
    series: np.ndarray, window: int, paa_size: int, alphabet_size: int
) -> list[str]:
    """SAX word of every sliding window (no numerosity reduction)."""
    return SAXWindowDiscretization(series, window, paa_size, alphabet_size).words


def _pruning_bound(
    series: np.ndarray,
    window: int,
    disc: SAXWindowDiscretization,
    prune_paa_size: Optional[int],
    prune_alphabet_size: Optional[int],
    *,
    normalized: Optional[np.ndarray] = None,
) -> WindowLowerBound:
    """The pruner for a HOTSAX search: shared discretization by default.

    With no explicit pruning parameters the bound reuses the search's
    own SAX words (free); explicit *prune_paa_size* /
    *prune_alphabet_size* build a finer discretization used only for
    pruning — tighter bounds at one extra PAA pass, without disturbing
    the bucket ordering (and hence the call count).
    """
    if prune_paa_size is None and prune_alphabet_size is None:
        return disc.lower_bound()
    from repro.timeseries.lowerbound import (
        DEFAULT_PRUNE_ALPHABET_SIZE,
        DEFAULT_PRUNE_PAA_SIZE,
    )

    paa = min(window, prune_paa_size or DEFAULT_PRUNE_PAA_SIZE)
    alpha = prune_alphabet_size or DEFAULT_PRUNE_ALPHABET_SIZE
    return SAXWindowDiscretization(
        series, window, paa, alpha, normalized=normalized
    ).lower_bound()


def _context_pruning_bound(
    context,
    series: np.ndarray,
    window: int,
    paa_size: int,
    alphabet_size: int,
    prune_paa_size: Optional[int],
    prune_alphabet_size: Optional[int],
) -> WindowLowerBound:
    """:func:`_pruning_bound` semantics via a shared
    :class:`~repro.cache.context.SearchContext` — the same
    discretization parameters resolve to the same memoized tables."""
    if prune_paa_size is None and prune_alphabet_size is None:
        return context.sax_lower_bound(series, window, paa_size, alphabet_size)
    from repro.timeseries.lowerbound import (
        DEFAULT_PRUNE_ALPHABET_SIZE,
        DEFAULT_PRUNE_PAA_SIZE,
    )

    paa = min(window, prune_paa_size or DEFAULT_PRUNE_PAA_SIZE)
    alpha = prune_alphabet_size or DEFAULT_PRUNE_ALPHABET_SIZE
    return context.sax_lower_bound(series, window, paa, alpha)


def hotsax_discord(
    series: np.ndarray,
    window: int,
    *,
    paa_size: int = 3,
    alphabet_size: int = 3,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
    exclude: tuple[tuple[int, int], ...] = (),
    backend: str = "kernel",
    budget: Optional[SearchBudget] = None,
    n_workers: int = 1,
    prune: bool = False,
    prune_paa_size: Optional[int] = None,
    prune_alphabet_size: Optional[int] = None,
    metrics=None,
) -> tuple[Optional[Discord], DistanceCounter]:
    """Find the best fixed-length discord with the HOTSAX heuristics.

    Parameters
    ----------
    series:
        Raw time series.
    window:
        Discord length n (every candidate has exactly this length).
    paa_size, alphabet_size:
        SAX parameters for the heuristic orderings (they do not affect
        the result, only the number of distance calls).
    counter:
        Distance counter to accumulate into.
    rng:
        Randomness for the inner-loop tail ordering.
    exclude:
        Candidate start positions inside these half-open ranges are
        skipped (multi-discord extraction).
    backend:
        ``"kernel"`` (default) or ``"scalar"`` — see
        :func:`repro.discord.search.ordered_discord_search`.
    budget:
        Optional anytime budget; on exhaustion or cancellation the
        best-so-far discord is returned (``budget.status`` says why).
    prune:
        Opt into the admissible MINDIST/PAA pruning cascade.  Discords,
        distances, and ``counter.calls`` are bit-identical; only the
        number of true kernel invocations drops (see the counter's
        split ledger).  By default the cascade reuses this search's own
        SAX discretization; *prune_paa_size* / *prune_alphabet_size*
        request a finer pruning-only discretization.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry` recording
        search telemetry (see
        :func:`repro.discord.search.ordered_discord_search`).  Disabled
        by default; results are byte-identical either way.
    """
    series = np.asarray(series, dtype=float)
    windows = (
        kernels.WindowMatrix(series, window)
        if num_windows(series.size, window) >= 2
        else None
    )
    normalized = windows.normalized if windows is not None else None
    disc = SAXWindowDiscretization(
        series, window, paa_size, alphabet_size, normalized=normalized
    )
    lower_bound = (
        _pruning_bound(
            series, window, disc, prune_paa_size, prune_alphabet_size,
            normalized=normalized,
        )
        if prune
        else None
    )
    return ordered_discord_search(
        series,
        window,
        lambda s, w: disc.words,
        source="hotsax",
        counter=counter,
        rng=rng,
        exclude=exclude,
        backend=backend,
        budget=budget,
        n_workers=n_workers,
        prune=prune,
        lower_bound=lower_bound,
        windows=windows,
        metrics=metrics,
    )


def hotsax_discords(
    series: np.ndarray,
    window: int,
    *,
    num_discords: int = 1,
    paa_size: int = 3,
    alphabet_size: int = 3,
    counter: Optional[DistanceCounter] = None,
    rng: Optional[np.random.Generator] = None,
    backend: str = "kernel",
    budget: Optional[SearchBudget] = None,
    n_workers: int = 1,
    prune: bool = False,
    prune_paa_size: Optional[int] = None,
    prune_alphabet_size: Optional[int] = None,
    metrics=None,
    cache=None,
    context=None,
) -> HOTSAXResult:
    """Ranked top-k fixed-length discords with the HOTSAX heuristics.

    Anytime: with a *budget* the result may be truncated — check
    ``result.status`` and ``result.rank_complete``.  The SAX
    discretization (and, with *prune*, the lower-bound tables derived
    from it) is computed once and shared across all ranks.

    *cache* (a :class:`~repro.cache.store.ResultCache`) serves an
    identical previous search from disk — same discords, same split
    ledger applied to *counter*, flagged ``from_cache=True``; only
    complete, untruncated results are ever stored.  *context* (a
    :class:`~repro.cache.context.SearchContext`) shares the window
    matrix, SAX discretization, and pruning tables across searches.
    Both default to ``None`` — the unconfigured path is byte-identical
    to the pre-cache code.
    """
    if budget is None:
        budget = SearchBudget.unlimited()
    series = np.asarray(series, dtype=float)
    cache_key = None
    ledger_before = None
    if cache is not None:
        from repro.cache.keys import discord_search_key
        from repro.cache.results import (
            apply_ledger_delta,
            discords_from_json,
            discords_to_json,
            ledger_delta,
        )

        if counter is None:
            counter = DistanceCounter()
        if rng is None:
            rng = np.random.default_rng(0)
        cache_key = discord_search_key(
            series,
            (),
            engine="hotsax",
            params={
                "window": int(window),
                "num_discords": int(num_discords),
                "paa_size": int(paa_size),
                "alphabet_size": int(alphabet_size),
                "backend": backend,
                "prune": bool(prune),
                "prune_paa_size": prune_paa_size,
                "prune_alphabet_size": prune_alphabet_size,
            },
            rng=rng,
        )
        entry = cache.get(cache_key)
        if entry is not None:
            apply_ledger_delta(counter, entry["ledger"])
            discords = discords_from_json(entry["discords"])
            return HOTSAXResult(
                discords=discords,
                distance_calls=counter.calls,
                window=window,
                status=SearchStatus.COMPLETE,
                rank_complete=[True] * len(discords),
                from_cache=True,
            )
        ledger_before = counter.ledger()
    if context is not None:
        windows = context.window_matrix(series, window)
        disc = context.sax_discretization(
            series, window, paa_size, alphabet_size
        )
        lower_bound = (
            _context_pruning_bound(
                context, series, window, paa_size, alphabet_size,
                prune_paa_size, prune_alphabet_size,
            )
            if prune
            else None
        )
    else:
        windows = (
            kernels.WindowMatrix(series, window)
            if num_windows(series.size, window) >= 2
            else None
        )
        normalized = windows.normalized if windows is not None else None
        disc = SAXWindowDiscretization(
            series, window, paa_size, alphabet_size, normalized=normalized
        )
        lower_bound = (
            _pruning_bound(
                series, window, disc, prune_paa_size, prune_alphabet_size,
                normalized=normalized,
            )
            if prune
            else None
        )
    discords, counter, rank_complete = iterated_search(
        series,
        window,
        lambda s, w: disc.words,
        source="hotsax",
        num_discords=num_discords,
        counter=counter,
        rng=rng,
        backend=backend,
        budget=budget,
        n_workers=n_workers,
        prune=prune,
        lower_bound=lower_bound,
        windows=windows,
        metrics=metrics,
    )
    if (
        cache_key is not None
        and budget.status is SearchStatus.COMPLETE
        and all(rank_complete)
    ):
        cache.put(
            cache_key,
            {
                "engine": "hotsax",
                "discords": discords_to_json(discords),
                "ledger": ledger_delta(ledger_before, counter.ledger()),
            },
        )
    return HOTSAXResult(
        discords=discords,
        distance_calls=counter.calls,
        window=window,
        status=budget.status,
        rank_complete=rank_complete,
    )

"""Tiled GEMM scan machinery behind ``backend='batch'``.

The ``kernel`` backend made each inner scan one matrix-vector product
per block; its hot path is therefore ~one BLAS call *per candidate*,
and for large candidate sets the per-call overhead dominates.  This
module restructures the scan into *tiles*: a whole group of outer
candidates is classified together, their surviving distance rows come
from a single ``A @ B.T`` GEMM (through the array-API seam, so an
optional CuPy/torch namespace accelerates it), and each candidate's
serial trajectory is then *replayed* over the precomputed distances.

The replay is the determinism core.  Per candidate it walks the exact
block schedule of the kernel scans (8, x4 growth, 2048 cap) over the
tile's precomputed values, applying the identical nearest-so-far /
first-below / lower-bound logic — so discords, ranks, and the split
call ledger (``calls == true_calls + pruned``) match the other
backends, which the golden-count suite enforces.

Tile-wise work avoidance, all provably trajectory-preserving:

* **Early-abandon row drop** — a candidate whose first-block (head)
  minimum is already below the tile-start threshold *floor* never needs
  its tail distances: the serial threshold only grows, so the replay is
  guaranteed to break inside the head.  Its GEMM row is skipped.
* **Lower-bound row closure** (``prune`` only) — a candidate whose
  stage-1 MINDIST bound certifies every tail pair against the
  post-head nearest can skip the GEMM too: the replay's ``block_keep``
  would discard every tail block wholesale.  This is deterministically
  sound, not merely float-robust, because the closure test and the
  replay compare the *same* stage-1 values — the tile MINDIST kernel
  (:func:`repro.sax.mindist.mindist_sq_tile`) is bit-identical per
  pair to the one-vs-block kernel, and the replay receives the tile's
  values through ``block_keep(..., stage1_sq=...)``.
* Stage-2 (PAA) pruning deliberately runs only inside the replay's
  ``block_keep``, on stage-1 survivors, exactly as the kernel scan
  does — never as a tile-wise physical mask.

Two drivers share the machinery: :func:`batch_serial_scan` for the
engines' serial outer loops (updating the live counter/metrics), and
:func:`record_row` for the parallel workers (producing the same
records as the kernel recording scans, so the scan/replay merge layer
needs no changes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

from repro.exceptions import DiscordSearchError
from repro.observability.metrics import ensure_metrics
from repro.resilience.budget import SearchBudget
from repro.sax.mindist import mindist_sq_tile
from repro.timeseries import kernels
from repro.timeseries.array_api import ArrayNamespace
from repro.timeseries.distance import DistanceCounter
from repro.timeseries.lowerbound import WindowLowerBound

__all__ = [
    "HEAD_BLOCK",
    "DEFAULT_TILE_ROWS",
    "RowScan",
    "TileScanner",
    "replay_row",
    "record_row",
    "batch_serial_scan",
]

#: First block size of the kernel scans' growth schedule (8, x4, cap
#: 2048).  The tile head phase evaluates exactly this many pairs per
#: candidate before deciding whether the tail GEMM is needed.
HEAD_BLOCK = 8

#: Test hook: when set (an int), overrides the per-tile row count every
#: :class:`TileScanner` derives from :func:`repro.timeseries.kernels.
#: tile_plan`.  The equivalence tests sweep this to prove results are
#: invariant under arbitrary tile boundaries.
DEFAULT_TILE_ROWS: Optional[int] = None

_INCONSISTENT = (
    "batch tile classification inconsistency: a replay reached tail "
    "distances for a candidate the tile classifier dropped"
)


@dataclass
class RowScan:
    """One candidate's precomputed scan material within a tile.

    ``head`` always holds the first ``min(HEAD_BLOCK, len(order))``
    distances.  ``tail`` holds the remaining distances, or ``None``
    when the classifier proved they are unreachable (early-abandon
    drop) or wholly prunable (``closed``).  ``stage1`` carries the
    squared stage-1 MINDIST bounds for the tail (pruning runs only),
    so the replay's ``block_keep`` reuses the exact classification
    floats.
    """

    position: int
    order: np.ndarray
    head: np.ndarray
    tail: Optional[np.ndarray] = None
    stage1: Optional[np.ndarray] = None
    closed: bool = False


class TileScanner:
    """Classifies tiles of candidates and precomputes their distances.

    Built once per search from the z-normalized window matrix and its
    row norms (plus the active :class:`WindowLowerBound` when pruning).
    :meth:`prepare` turns one tile of (position, inner order) pairs
    into :class:`RowScan` rows ready for replay/recording.
    """

    __slots__ = ("normalized", "sqnorms", "lb", "xp", "tile_rows")

    def __init__(
        self,
        normalized: np.ndarray,
        sqnorms: np.ndarray,
        *,
        lb: Optional[WindowLowerBound] = None,
        xp: Optional[ArrayNamespace] = None,
        tile_rows: Optional[int] = None,
    ):
        self.normalized = normalized
        self.sqnorms = sqnorms
        self.lb = lb
        self.xp = xp
        if tile_rows is None:
            tile_rows = DEFAULT_TILE_ROWS
        if tile_rows is None:
            k = normalized.shape[0]
            tile_rows = kernels.tile_plan(k, k)[0][1] if k else 1
        if tile_rows < 1:
            raise DiscordSearchError(
                f"tile_rows must be >= 1, got {tile_rows}"
            )
        self.tile_rows = int(tile_rows)

    def prepare(
        self,
        positions: Iterable[int],
        orders: list,
        floor: float,
    ) -> list:
        """Classify one tile; return a :class:`RowScan` per candidate.

        *floor* is the search threshold at tile start (``-inf`` when
        early abandoning is off).  The serial threshold is monotone
        non-decreasing, so a head minimum strictly below *floor* stays
        strictly below every later threshold — those rows break inside
        the head and skip the GEMM entirely.
        """
        positions = np.asarray(list(positions), dtype=np.intp)
        n_rows = positions.size
        if n_rows == 0:
            return []
        rows: list[RowScan] = []
        open_rows: list[int] = []
        for i in range(n_rows):
            order = orders[i]
            head_order = order[:HEAD_BLOCK]
            if head_order.size:
                # The exact call the kernel backend makes for its first
                # block of 8: a matrix-vector product per candidate.  An
                # einsum (or multi-row GEMM) over the whole tile rounds
                # differently, and a 1-ulp divergence can flip a strict
                # comparison in the replay on a score tie.
                head = np.sqrt(
                    kernels.one_vs_all_sq_euclidean(
                        self.normalized[positions[i]],
                        self.normalized[head_order],
                        query_sqnorm=self.sqnorms[positions[i]],
                        sqnorms=self.sqnorms[head_order],
                    )
                )
            else:
                head = np.empty(0)
            row = RowScan(position=int(positions[i]), order=order, head=head)
            rows.append(row)
            if head.size == 0 or order.size <= HEAD_BLOCK:
                # No tail to compute; an empty array keeps the replay's
                # classification checks trivially satisfied.
                row.tail = np.empty(0)
                continue
            if float(head.min()) < floor:
                continue  # dropped: the replay breaks inside the head
            open_rows.append(i)

        if open_rows and self.lb is not None:
            lb = self.lb
            sel = positions[open_rows]
            stage1_tile = mindist_sq_tile(
                lb.letters[sel], lb.letters, lb.alphabet_size, lb.scale_sq
            )
            still_open: list[int] = []
            for j, i in enumerate(open_rows):
                row = rows[i]
                stage1 = stage1_tile[j, row.order[HEAD_BLOCK:]]
                nu = float(row.head.min())
                if bool(np.all(stage1 >= nu * nu)):
                    # Every tail block's block_keep (threshold nu**2,
                    # unchanged while everything is pruned) discards the
                    # whole block — no tail distance can ever be read.
                    row.closed = True
                else:
                    row.stage1 = stage1
                    still_open.append(i)
            open_rows = still_open

        if open_rows:
            sel = positions[open_rows]
            tile_sq = kernels.all_pairs_sq_euclidean_tile(
                self.normalized[sel],
                self.normalized,
                query_sqnorms=self.sqnorms[sel],
                sqnorms=self.sqnorms,
                xp=self.xp,
            )
            for j, i in enumerate(open_rows):
                row = rows[i]
                row.tail = np.sqrt(tile_sq[j, row.order[HEAD_BLOCK:]])
        return rows


def replay_row(
    row: RowScan,
    threshold: float,
    lb: Optional[WindowLowerBound] = None,
) -> tuple[float, int, int, int, bool]:
    """Replay one candidate's serial inner scan over precomputed values.

    Mirrors ``_kernel_inner_scan`` / ``_kernel_inner_scan_lb`` exactly
    (block schedule, first-below stop, lower-bound cascade against the
    running nearest at block start).  Returns
    ``(nearest, consumed, true_count, lb_evals, stopped)`` with the
    same meaning as the kernel scans: *consumed* is the logical pair
    count, *true_count* how many pairs reached a distance evaluation.
    """
    order = row.order
    n = order.size
    head_size = row.head.size
    nearest = float("inf")
    consumed = 0
    true_count = 0
    lb_evals = 0
    block = HEAD_BLOCK
    start = 0
    while start < n:
        size = min(block, n - start)
        if start == 0:
            keep_positions = None
            dists = row.head[:size]
        else:
            if lb is not None and math.isfinite(nearest):
                lb_evals += size
                if row.closed:
                    consumed += size
                    start += size
                    block = min(block * 4, 2048)
                    continue
                keep = lb.block_keep(
                    row.position,
                    order[start : start + size],
                    nearest,
                    stage1_sq=row.stage1[start - head_size : start - head_size + size],
                )
                keep_positions = np.flatnonzero(keep)
                if keep_positions.size == 0:
                    consumed += size
                    start += size
                    block = min(block * 4, 2048)
                    continue
            else:
                keep_positions = None
            if row.tail is None:
                raise DiscordSearchError(_INCONSISTENT)
            seg = row.tail[start - head_size : start - head_size + size]
            dists = seg if keep_positions is None else seg[keep_positions]
        hit = kernels.first_below(dists, threshold)
        if hit >= 0:
            logical = (
                int(hit) if keep_positions is None
                else int(keep_positions[int(hit)])
            )
            return (
                nearest,
                consumed + logical + 1,
                true_count + int(hit) + 1,
                lb_evals,
                True,
            )
        consumed += size
        true_count += int(dists.size)
        block_min = float(dists.min())
        if block_min < nearest:
            nearest = block_min
        start += size
        block = min(block * 4, 2048)
    return nearest, consumed, true_count, lb_evals, False


def record_row(
    row: RowScan,
    threshold: float,
    lb: Optional[WindowLowerBound] = None,
):
    """Recording replay for the parallel workers.

    Produces the same record a kernel recording scan
    (``_record_kernel_blocks`` / ``_record_kernel_row``) would: the
    logical scanned count, the strict running-minimum points, the
    completion flag, and — with *lb* — the pruned prefix counts the
    serial merge needs.  Returns a
    :class:`repro.parallel.scan.CandidateScan` (imported lazily to keep
    this module independent of the parallel layer).
    """
    from repro.parallel.scan import CandidateScan

    order = row.order
    n = order.size
    head_size = row.head.size
    minima: list = []
    pruned_prefix: Optional[list] = [] if lb is not None else None
    nearest = float("inf")
    scanned = 0
    pruned_cum = 0
    lb_evals = 0
    block = HEAD_BLOCK
    start = 0
    while start < n:
        size = min(block, n - start)
        if start == 0:
            keep_positions = None
            dists = row.head[:size]
        else:
            if lb is not None and math.isfinite(nearest):
                lb_evals += size
                if row.closed:
                    scanned += size
                    pruned_cum += size
                    start += size
                    block = min(block * 4, 2048)
                    continue
                keep = lb.block_keep(
                    row.position,
                    order[start : start + size],
                    nearest,
                    stage1_sq=row.stage1[start - head_size : start - head_size + size],
                )
                keep_positions = np.flatnonzero(keep)
                if keep_positions.size == 0:
                    scanned += size
                    pruned_cum += size
                    start += size
                    block = min(block * 4, 2048)
                    continue
            else:
                keep_positions = None
            if row.tail is None:
                raise DiscordSearchError(_INCONSISTENT)
            seg = row.tail[start - head_size : start - head_size + size]
            dists = seg if keep_positions is None else seg[keep_positions]
        hit = kernels.first_below(dists, threshold)
        limit = int(hit) + 1 if hit >= 0 else int(dists.size)
        if limit:
            points, values = kernels.running_min_points(dists[:limit])
            for j, value in zip(points, values):
                value = float(value)
                if value < nearest:
                    nearest = value
                    logical_j = (
                        int(j) if keep_positions is None
                        else int(keep_positions[int(j)])
                    )
                    minima.append((scanned + logical_j + 1, value))
                    if pruned_prefix is not None:
                        pruned_prefix.append(pruned_cum + (logical_j - int(j)))
        if hit >= 0:
            logical_hit = (
                int(hit) if keep_positions is None
                else int(keep_positions[int(hit)])
            )
            scanned += logical_hit + 1
            pruned_cum += logical_hit - int(hit)
            return CandidateScan(
                row.position, scanned, minima, False,
                pruned_prefix=pruned_prefix, pruned_total=pruned_cum,
                lb_evals=lb_evals,
            )
        scanned += size
        if keep_positions is not None:
            pruned_cum += size - int(keep_positions.size)
        start += size
        block = min(block * 4, 2048)
    return CandidateScan(
        row.position, scanned, minima, True,
        pruned_prefix=pruned_prefix, pruned_total=pruned_cum,
        lb_evals=lb_evals,
    )


def batch_serial_scan(
    scanner: TileScanner,
    positions: Iterable[int],
    make_order: Callable[[int], np.ndarray],
    *,
    abandon: bool,
    counter: DistanceCounter,
    budget: SearchBudget,
    lb: Optional[WindowLowerBound] = None,
    metrics=None,
    init_best: float = -1.0,
    band: Optional[int] = None,
) -> tuple[float, Optional[int]]:
    """Serial outer loop over tiles; returns ``(best_dist, best_pos)``.

    *positions* must already be exclusion-filtered and in serial outer
    order; *make_order* produces each candidate's full inner ordering
    (consuming the search RNG in serial order — orders for a tile are
    drawn up front, so on a budget trip the RNG sits at the tile
    boundary rather than the serial stop point, the same over-draw the
    parallel engine's chunk pre-draws already perform).  Counter and
    metrics updates replicate the serial kernel loops exactly, so the
    ledger and observability output are bit-identical.

    *band*, when given, declares that ``make_order(p)`` enumerates
    exactly the rows with ``|q - p| > band`` (brute force's trivial-match
    exclusion).  With early abandoning and the lower bound both off that
    makes the inner order irrelevant — every pair is evaluated and the
    nearest neighbour is the set minimum — so the scan takes a dense
    fast path: one GEMM per tile, a vectorized banded row minimum, and
    an arithmetic ``consumed`` count, never materializing orders or
    replaying block schedules.  The ledger is identical (``consumed ==
    order.size`` for a completed full scan) and ``sqrt`` is monotone, so
    the scores match the replay's bit for bit given the same squared
    distances.
    """
    metrics = ensure_metrics(metrics)
    instrumented = metrics.enabled
    if instrumented:
        m_visited = metrics.counter("search.candidates_visited")
        m_abandoned = metrics.counter("search.candidates_abandoned")
        m_survived = metrics.counter("search.candidates_survived")
        m_best = metrics.counter("search.best_updates")
        m_depth = metrics.histogram("search.abandon_depth")
    best = init_best
    best_pos: Optional[int] = None
    pos_list = [int(p) for p in positions]
    step = scanner.tile_rows
    if band is not None and not abandon and lb is None:
        k = scanner.normalized.shape[0]
        for lo in range(0, len(pos_list), step):
            tile = pos_list[lo : lo + step]
            sel = np.asarray(tile, dtype=np.intp)
            tile_sq = kernels.all_pairs_sq_euclidean_tile(
                scanner.normalized[sel],
                scanner.normalized,
                query_sqnorms=scanner.sqnorms[sel],
                sqnorms=scanner.sqnorms,
                xp=scanner.xp,
            )
            for j, p in enumerate(tile):
                tile_sq[j, max(0, p - band) : p + band + 1] = np.inf
            mins = tile_sq.min(axis=1)
            for j, p in enumerate(tile):
                if budget.interrupted(counter.calls) is not None:
                    return best, best_pos
                consumed = k - (min(k, p + band + 1) - max(0, p - band))
                counter.batch(consumed)
                nearest = (
                    float(np.sqrt(mins[j])) if consumed else float("inf")
                )
                if instrumented:
                    m_visited.inc()
                    m_survived.inc()
                if math.isfinite(nearest) and nearest > best:
                    best = nearest
                    best_pos = p
                    if instrumented:
                        m_best.inc()
        return best, best_pos
    for lo in range(0, len(pos_list), step):
        tile = pos_list[lo : lo + step]
        orders = [make_order(p) for p in tile]
        floor = best if abandon else float("-inf")
        rows = scanner.prepare(tile, orders, floor)
        for row in rows:
            if budget.interrupted(counter.calls) is not None:
                return best, best_pos
            threshold = best if abandon else float("-inf")
            nearest, consumed, true_count, lb_evals, stopped = replay_row(
                row, threshold, lb
            )
            if lb is not None:
                counter.batch(true_count)
                counter.pruned_batch(consumed - true_count)
                counter.lb_batch(lb_evals)
            else:
                counter.batch(consumed)
            if instrumented:
                m_visited.inc()
                if stopped:
                    m_abandoned.inc()
                    m_depth.observe(consumed)
                else:
                    m_survived.inc()
            if not stopped and math.isfinite(nearest) and nearest > best:
                best = nearest
                best_pos = row.position
                if instrumented:
                    m_best.inc()
    return best, best_pos

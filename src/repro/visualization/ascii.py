"""ASCII sparklines and density strips for terminal output."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError

#: Eight block characters, lowest to highest.
_BLOCKS = "▁▂▃▄▅▆▇█"
#: Shades used by the density strip: light = low density (anomalous).
_SHADES = " ░▒▓█"


def _bin_series(values: np.ndarray, width: int) -> np.ndarray:
    """Downsample *values* to *width* bins by averaging."""
    values = np.asarray(values, dtype=float)
    if width <= 0:
        raise ParameterError(f"width must be positive, got {width}")
    if values.size == 0:
        return np.zeros(width)
    edges = np.linspace(0, values.size, width + 1).astype(int)
    return np.array(
        [
            values[lo:hi].mean() if hi > lo else values[min(lo, values.size - 1)]
            for lo, hi in zip(edges[:-1], edges[1:])
        ]
    )


def sparkline(values: np.ndarray, width: int = 80) -> str:
    """One-line block-character sparkline of *values*.

    >>> sparkline([0, 1, 2, 3], width=4)
    '▁▃▆█'
    """
    binned = _bin_series(np.asarray(values, dtype=float), width)
    lo = float(binned.min())
    hi = float(binned.max())
    if hi - lo < 1e-12:
        return _BLOCKS[0] * width
    idx = ((binned - lo) / (hi - lo) * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[i] for i in idx)


def density_strip(curve: np.ndarray, width: int = 80) -> str:
    """Density shading: the darker the cell, the higher the rule count.

    Light/blank cells mark the algorithmically anomalous regions — this
    is the textual equivalent of GrammarViz's blue shading (Figure 12).
    """
    binned = _bin_series(np.asarray(curve, dtype=float), width)
    lo = float(binned.min())
    hi = float(binned.max())
    if hi - lo < 1e-12:
        return _SHADES[-1] * width
    idx = ((binned - lo) / (hi - lo) * (len(_SHADES) - 1)).round().astype(int)
    return "".join(_SHADES[i] for i in idx)


def marker_line(
    series_length: int, intervals: list[tuple[int, int]], width: int = 80, mark: str = "^"
) -> str:
    """A line with *mark* under every (scaled) interval, space elsewhere."""
    if series_length <= 0:
        raise ParameterError("series_length must be positive")
    cells = [" "] * width
    for start, end in intervals:
        lo = int(start / series_length * width)
        hi = max(lo + 1, int(np.ceil(end / series_length * width)))
        for i in range(lo, min(hi, width)):
            cells[i] = mark
    return "".join(cells)


def render_panels(
    series: np.ndarray,
    curve: np.ndarray,
    anomalies: list[tuple[int, int]],
    *,
    width: int = 80,
    title: str = "",
) -> str:
    """Three-panel text figure: series, rule density, anomaly markers.

    The textual analogue of the paper's Figures 1–3: top panel the data,
    middle panel the rule density curve, bottom the detected anomalies.
    """
    lines = []
    if title:
        lines.append(title)
    lines.append("series  | " + sparkline(series, width))
    lines.append("density | " + density_strip(curve, width))
    lines.append("anomaly | " + marker_line(len(series), anomalies, width))
    return "\n".join(lines)

"""Dependency-free SVG chart rendering for the figure benchmarks.

The benchmark harness regenerates the paper's figures; this module lets
it emit real charts (SVG files under ``benchmarks/figures/``) without
any plotting dependency.  The drawing vocabulary is deliberately small —
exactly what the paper's figures need:

* line panels with highlighted interval bands (Figures 1–3, 7);
* stem panels for the NN-distance profiles (Figures 2–3 bottom);
* scatter panels for the Figure 10 success regions;
* grid drawings of the Hilbert curve (Figure 6) and 2-d trajectories
  (Figures 7–9).

Coordinates follow SVG conventions (y grows downward); the chart
classes handle data-to-pixel mapping and axis drawing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence
from xml.sax.saxutils import escape

import numpy as np

from repro.exceptions import ParameterError

#: Default palette (colorblind-safe-ish).
COLOR_SERIES = "#2563eb"
COLOR_BAND = "#fecaca"
COLOR_BAND_ALT = "#bfdbfe"
COLOR_STEM = "#059669"
COLOR_AXIS = "#6b7280"
COLOR_TEXT = "#111827"
COLOR_HIT = "#16a34a"
COLOR_MISS = "#dc2626"


def _fmt(value: float) -> str:
    """Compact coordinate formatting."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


class SVGCanvas:
    """A minimal SVG document builder."""

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ParameterError(f"bad canvas size {width}x{height}")
        self.width = width
        self.height = height
        self._elements: list[str] = []

    def rect(
        self, x: float, y: float, w: float, h: float,
        *, fill: str, opacity: float = 1.0, stroke: str = "none",
    ) -> None:
        self._elements.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(w)}" '
            f'height="{_fmt(h)}" fill="{fill}" fill-opacity="{opacity}" '
            f'stroke="{stroke}"/>'
        )

    def line(
        self, x1: float, y1: float, x2: float, y2: float,
        *, stroke: str = COLOR_AXIS, width: float = 1.0,
    ) -> None:
        self._elements.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" '
            f'y2="{_fmt(y2)}" stroke="{stroke}" stroke-width="{width}"/>'
        )

    def polyline(
        self, points: Sequence[tuple[float, float]],
        *, stroke: str = COLOR_SERIES, width: float = 1.0,
    ) -> None:
        if len(points) < 2:
            return
        coords = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def circle(
        self, cx: float, cy: float, r: float,
        *, fill: str = COLOR_SERIES, opacity: float = 1.0,
    ) -> None:
        self._elements.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" '
            f'fill="{fill}" fill-opacity="{opacity}"/>'
        )

    def text(
        self, x: float, y: float, content: str,
        *, size: int = 12, fill: str = COLOR_TEXT, anchor: str = "start",
    ) -> None:
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{size}" '
            f'fill="{fill}" text-anchor="{anchor}" '
            f'font-family="sans-serif">{escape(content)}</text>'
        )

    def render(self) -> str:
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>\n{body}\n</svg>\n'
        )

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())


@dataclass
class Panel:
    """One data panel inside a figure: its own y-scale and content."""

    title: str
    kind: str = "line"  # "line" | "stems" | "steps"
    values: Optional[np.ndarray] = None             # line/steps: y per x
    stems: list[tuple[int, float]] = field(default_factory=list)
    bands: list[tuple[int, int, str]] = field(default_factory=list)
    color: str = COLOR_SERIES


class FigurePlot:
    """A stack of x-aligned panels over one series axis.

    The layout matches the paper's multi-panel figures: series on top,
    rule density below, NN-distance stems at the bottom, with anomaly
    intervals highlighted as translucent bands across panels.
    """

    def __init__(
        self,
        series_length: int,
        *,
        width: int = 900,
        panel_height: int = 120,
        margin: int = 45,
    ) -> None:
        if series_length <= 1:
            raise ParameterError("series_length must exceed 1")
        self.series_length = series_length
        self.width = width
        self.panel_height = panel_height
        self.margin = margin
        self.panels: list[Panel] = []
        self.title = ""

    # -- panel construction ------------------------------------------------

    def add_line_panel(
        self,
        title: str,
        values: np.ndarray,
        *,
        bands: Sequence[tuple[int, int, str]] = (),
        color: str = COLOR_SERIES,
        steps: bool = False,
    ) -> None:
        """A line (or step) panel; *bands* are (start, end, color)."""
        values = np.asarray(values, dtype=float)
        if values.size != self.series_length:
            raise ParameterError(
                f"panel length {values.size} != series length "
                f"{self.series_length}"
            )
        self.panels.append(
            Panel(
                title=title,
                kind="steps" if steps else "line",
                values=values,
                bands=list(bands),
                color=color,
            )
        )

    def add_stem_panel(
        self,
        title: str,
        stems: Sequence[tuple[int, float]],
        *,
        bands: Sequence[tuple[int, int, str]] = (),
        color: str = COLOR_STEM,
    ) -> None:
        """A stem panel: vertical line at x with the given height."""
        clean = [
            (int(x), float(h))
            for x, h in stems
            if 0 <= int(x) < self.series_length and math.isfinite(h)
        ]
        self.panels.append(
            Panel(title=title, kind="stems", stems=clean, bands=list(bands),
                  color=color)
        )

    # -- rendering -----------------------------------------------------------

    def _x(self, index: float) -> float:
        usable = self.width - 2 * self.margin
        return self.margin + usable * index / (self.series_length - 1)

    def render(self) -> str:
        total_height = (
            len(self.panels) * (self.panel_height + 30) + self.margin + 20
        )
        canvas = SVGCanvas(self.width, total_height)
        if self.title:
            canvas.text(self.margin, 22, self.title, size=14)
        top = self.margin
        for panel in self.panels:
            self._render_panel(canvas, panel, top)
            top += self.panel_height + 30
        return canvas.render()

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())

    def _render_panel(self, canvas: SVGCanvas, panel: Panel, top: float) -> None:
        height = self.panel_height
        bottom = top + height
        if panel.kind == "stems":
            heights = [h for _, h in panel.stems]
            lo, hi = 0.0, max(heights) if heights else 1.0
        else:
            lo = float(np.min(panel.values))
            hi = float(np.max(panel.values))
        if hi - lo < 1e-12:
            hi = lo + 1.0

        def y_of(value: float) -> float:
            return bottom - (value - lo) / (hi - lo) * height

        # bands first (under the data)
        for start, end, color in panel.bands:
            x0 = self._x(max(0, start))
            x1 = self._x(min(self.series_length - 1, end))
            canvas.rect(x0, top, max(1.0, x1 - x0), height, fill=color,
                        opacity=0.45)

        # frame + labels
        canvas.line(self.margin, bottom, self.width - self.margin, bottom)
        canvas.line(self.margin, top, self.margin, bottom)
        canvas.text(self.margin, top - 6, panel.title, size=11)
        canvas.text(self.margin - 5, bottom, _fmt(lo), size=9, anchor="end")
        canvas.text(self.margin - 5, top + 9, _fmt(hi), size=9, anchor="end")

        if panel.kind == "stems":
            for x, h in panel.stems:
                px = self._x(x)
                canvas.line(px, bottom, px, y_of(h), stroke=panel.color,
                            width=1.2)
            return

        values = panel.values
        # Downsample long series for readable output size.
        max_points = 2000
        if values.size > max_points:
            idx = np.linspace(0, values.size - 1, max_points).astype(int)
        else:
            idx = np.arange(values.size)
        points = [(self._x(int(i)), y_of(float(values[int(i)]))) for i in idx]
        if panel.kind == "steps":
            stepped: list[tuple[float, float]] = []
            for (x0, y0), (x1, _y1) in zip(points, points[1:]):
                stepped.append((x0, y0))
                stepped.append((x1, y0))
            stepped.append(points[-1])
            points = stepped
        canvas.polyline(points, stroke=panel.color, width=1.1)


def scatter_plot(
    points: Sequence[tuple[float, float, bool]],
    *,
    title: str,
    x_label: str,
    y_label: str,
    width: int = 520,
    height: int = 420,
    margin: int = 55,
) -> str:
    """A scatter chart of (x, y, hit) points — the Figure 10 panels.

    Hits are green, misses red; axes are linear with min/max labels.
    """
    if not points:
        raise ParameterError("scatter_plot needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0

    canvas = SVGCanvas(width, height)
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin

    def px(x: float) -> float:
        return margin + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return height - margin - (y - y_lo) / (y_hi - y_lo) * plot_h

    canvas.text(margin, 24, title, size=13)
    canvas.line(margin, height - margin, width - margin, height - margin)
    canvas.line(margin, margin, margin, height - margin)
    canvas.text(width // 2, height - 12, x_label, size=11, anchor="middle")
    canvas.text(14, height // 2, y_label, size=11, anchor="middle")
    canvas.text(margin, height - margin + 14, _fmt(x_lo), size=9)
    canvas.text(width - margin, height - margin + 14, _fmt(x_hi), size=9,
                anchor="end")
    canvas.text(margin - 4, height - margin, _fmt(y_lo), size=9, anchor="end")
    canvas.text(margin - 4, margin + 8, _fmt(y_hi), size=9, anchor="end")

    for x, y, hit in points:
        canvas.circle(px(x), py(y), 4.0,
                      fill=COLOR_HIT if hit else COLOR_MISS, opacity=0.8)
    return canvas.render()


def hilbert_plot(order: int, *, cell: int = 40, margin: int = 30) -> str:
    """Draw the order-*order* Hilbert curve over its grid (Figure 6)."""
    from repro.trajectory.hilbert import hilbert_curve_points

    points = hilbert_curve_points(order)
    side = 1 << order
    size = side * cell + 2 * margin
    canvas = SVGCanvas(size, size)

    def centre(x: int, y: int) -> tuple[float, float]:
        return (
            margin + x * cell + cell / 2,
            size - margin - y * cell - cell / 2,
        )

    for gx in range(side + 1):
        canvas.line(margin + gx * cell, margin, margin + gx * cell,
                    size - margin, stroke="#e5e7eb")
        canvas.line(margin, margin + gx * cell, size - margin,
                    margin + gx * cell, stroke="#e5e7eb")
    canvas.polyline([centre(int(x), int(y)) for x, y in points],
                    stroke=COLOR_SERIES, width=2.0)
    for d, (x, y) in enumerate(points):
        cx, cy = centre(int(x), int(y))
        if side <= 8:  # label cells only while readable
            canvas.text(cx, cy - 6, str(d), size=9, anchor="middle")
        canvas.circle(cx, cy, 2.5, fill=COLOR_STEM)
    return canvas.render()


def trajectory_plot(
    lats: Sequence[float],
    lons: Sequence[float],
    *,
    highlights: Sequence[tuple[int, int, str]] = (),
    title: str = "",
    width: int = 520,
    height: int = 520,
    margin: int = 40,
) -> str:
    """Draw a trail in lat/lon space with highlighted index ranges.

    *highlights* are (start_index, end_index, color) fix ranges — the
    Figures 7–9 colored segments.
    """
    lats = np.asarray(lats, dtype=float)
    lons = np.asarray(lons, dtype=float)
    if lats.size != lons.size or lats.size < 2:
        raise ParameterError("need equal-length lat/lon with >= 2 fixes")
    lat_lo, lat_hi = float(lats.min()), float(lats.max())
    lon_lo, lon_hi = float(lons.min()), float(lons.max())
    lat_hi = lat_hi if lat_hi > lat_lo else lat_lo + 1.0
    lon_hi = lon_hi if lon_hi > lon_lo else lon_lo + 1.0

    canvas = SVGCanvas(width, height)

    def pt(i: int) -> tuple[float, float]:
        x = margin + (lons[i] - lon_lo) / (lon_hi - lon_lo) * (width - 2 * margin)
        y = height - margin - (lats[i] - lat_lo) / (lat_hi - lat_lo) * (
            height - 2 * margin
        )
        return x, y

    if title:
        canvas.text(margin, 22, title, size=13)
    canvas.polyline([pt(i) for i in range(lats.size)], stroke="#9ca3af",
                    width=1.0)
    for start, end, color in highlights:
        start = max(0, start)
        end = min(lats.size, end)
        if end - start >= 2:
            canvas.polyline([pt(i) for i in range(start, end)], stroke=color,
                            width=2.5)
    return canvas.render()

"""GrammarViz-style text reports: rule tables and anomaly tables.

Renders the information of the paper's Figures 11–12 (the GrammarViz 2.0
screenshots): the ranked discord table with per-discord lengths and
nearest-neighbour distances, and the grammar-rule table with usage,
level, mean length, and expansion preview.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.anomaly import Anomaly
from repro.core.pipeline import PipelineResult
from repro.grammar.grammar import Grammar, START_RULE_ID
from repro.visualization.ascii import density_strip, sparkline


def _format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Left-aligned monospace table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def anomaly_table(anomalies: Sequence[Anomaly]) -> str:
    """Ranked anomaly table (cf. the 'GrammarViz anomalies' tab).

    Shows rank, position, length, and score (for discords: the distance
    to the nearest non-self match).
    """
    rows = []
    for anomaly in anomalies:
        rows.append(
            [
                str(anomaly.rank),
                str(anomaly.start),
                str(anomaly.length),
                f"{anomaly.score:.5f}",
                anomaly.source,
            ]
        )
    return _format_table(["Rank", "Position", "Length", "Score", "Source"], rows)


def rule_table(
    grammar: Grammar,
    *,
    max_rules: int | None = None,
    max_expansion_chars: int = 40,
) -> str:
    """Grammar-rule table (cf. the 'Grammar rules' tab of GrammarViz).

    One row per rule: id, hierarchy level, usage count, RHS, and a
    truncated expansion preview.
    """
    rules = [r for r in grammar if r.rule_id != START_RULE_ID]
    rules.sort(key=lambda r: r.rule_id)
    if max_rules is not None:
        rules = rules[:max_rules]
    rows = []
    for rule in rules:
        expansion = rule.expansion_display()
        if len(expansion) > max_expansion_chars:
            expansion = expansion[: max_expansion_chars - 3] + "..."
        rows.append(
            [
                rule.name,
                str(rule.level),
                str(rule.usage),
                rule.rhs_display(),
                expansion,
            ]
        )
    return _format_table(["Rule", "Level", "Used", "RHS", "Expansion"], rows)


def grammar_report(
    result: PipelineResult,
    anomalies: Sequence[Anomaly],
    *,
    width: int = 80,
    max_rules: int = 15,
) -> str:
    """Full text report: panels + anomaly table + rule table.

    This is the library's stand-in for a GrammarViz session screenshot:
    everything Figures 11 and 12 convey, as text.
    """
    disc = result.discretization
    header = (
        f"series length {result.series.size}, "
        f"W={disc.window} P={disc.paa_size} A={disc.alphabet_size}, "
        f"{disc.raw_word_count} words -> {len(disc)} after numerosity reduction, "
        f"{len(result.grammar)} rules (size {result.grammar.grammar_size()})"
    )
    parts = [
        header,
        "",
        "series  | " + sparkline(result.series, width),
        "density | " + density_strip(np.asarray(result.density, dtype=float), width),
        "",
        "Anomalies:",
        anomaly_table(anomalies),
        "",
        f"Grammar rules (first {max_rules}):",
        rule_table(result.grammar, max_rules=max_rules),
    ]
    return "\n".join(parts)

"""Text-based visualization (stands in for the GrammarViz 2.0 GUI).

The paper's Figures 11–12 are GUI screenshots showing (a) a ranked
anomaly table, (b) a grammar-rule table, and (c) the series shaded by
rule density.  This subpackage renders the same information as plain
text: ASCII sparklines, a density-shaded strip, and aligned tables.
"""

from repro.visualization.ascii import (
    density_strip,
    marker_line,
    render_panels,
    sparkline,
)
from repro.visualization.report import (
    anomaly_table,
    grammar_report,
    rule_table,
)
from repro.visualization.svg import (
    FigurePlot,
    SVGCanvas,
    hilbert_plot,
    scatter_plot,
    trajectory_plot,
)

__all__ = [
    "sparkline",
    "density_strip",
    "marker_line",
    "render_panels",
    "anomaly_table",
    "rule_table",
    "grammar_report",
    "SVGCanvas",
    "FigurePlot",
    "scatter_plot",
    "hilbert_plot",
    "trajectory_plot",
]

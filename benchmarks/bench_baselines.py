"""Four-way exact-search comparison (beyond the paper's Table 1).

The paper compares brute force, HOTSAX, and RRA; its related-work
section also cites Haar-wavelet-ordered searches (Fu et al. 2006, Bu et
al.'s WAT).  This bench runs all four exact algorithms on one dataset:
they must agree on the discord (all are exact), and the call counts
order as  RRA < {HOTSAX, Haar} << brute force.
"""

from __future__ import annotations

from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets import ecg_qtdb_0606_like
from repro.discord.brute_force import brute_force_call_count, brute_force_discord
from repro.discord.haar import haar_discord
from repro.discord.hotsax import hotsax_discord
from repro.evaluation import overlap_fraction


def _run():
    dataset = ecg_qtdb_0606_like()
    brute, brute_counter = brute_force_discord(
        dataset.series, dataset.window, early_abandon=True
    )
    hotsax, hotsax_counter = hotsax_discord(
        dataset.series, dataset.window,
        paa_size=dataset.paa_size, alphabet_size=dataset.alphabet_size,
    )
    haar, haar_counter = haar_discord(dataset.series, dataset.window)
    detector = GrammarAnomalyDetector(
        dataset.window, dataset.paa_size, dataset.alphabet_size
    )
    detector.fit(dataset.series)
    rra = detector.discords(num_discords=1)
    return (
        dataset,
        (brute, brute_counter.calls),
        (hotsax, hotsax_counter.calls),
        (haar, haar_counter.calls),
        rra,
    )


def test_baselines_agree_and_order_by_calls(benchmark, results):
    dataset, brute_row, hotsax_row, haar_row, rra = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    brute, brute_calls = brute_row
    hotsax, hotsax_calls = hotsax_row
    haar, haar_calls = haar_row

    # the three fixed-length exact searches return the same discord
    assert (hotsax.start, hotsax.end) == (brute.start, brute.end)
    assert (haar.start, haar.end) == (brute.start, brute.end)
    assert abs(hotsax.nn_distance - brute.nn_distance) < 1e-9
    assert abs(haar.nn_distance - brute.nn_distance) < 1e-9

    # RRA's variable-length discord overlaps the fixed-length one
    best = rra.best
    overlap = overlap_fraction(
        (best.start, best.end), (brute.start, brute.end)
    )

    # ordering heuristics beat the full count; RRA beats everything
    full = brute_force_call_count(dataset.length, dataset.window)
    assert hotsax_calls < full
    assert haar_calls < full
    assert rra.distance_calls < min(hotsax_calls, haar_calls)

    results(
        "baselines_comparison",
        "\n".join(
            [
                f"{dataset.name}, length {dataset.length}, "
                f"window {dataset.window}",
                f"{'algorithm':>14s} {'calls':>12s}  discord",
                f"{'brute (full)':>14s} {full:>12d}  (closed form)",
                f"{'brute (EA)':>14s} {brute_calls:>12d}  "
                f"[{brute.start}, {brute.end})",
                f"{'HOTSAX':>14s} {hotsax_calls:>12d}  "
                f"[{hotsax.start}, {hotsax.end})",
                f"{'Haar':>14s} {haar_calls:>12d}  "
                f"[{haar.start}, {haar.end})",
                f"{'RRA':>14s} {rra.distance_calls:>12d}  "
                f"[{best.start}, {best.end}) len {best.length}",
                f"RRA/fixed-length discord overlap: {100 * overlap:.1f}%",
            ]
        ),
    )

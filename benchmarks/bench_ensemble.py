"""Accuracy benchmark: ensemble vs single-parameterization RRA.

Scores the parameter-free :class:`~repro.core.ensemble.EnsembleDetector`
against every *single* parameterization it contains, on the Table-1
stand-in datasets and noisy variants, and records the hit-rates in
``BENCH_ensemble.json``.

Protocol
--------
Each dataset gets a *relative* member grid derived from the paper's own
window for that row — windows at 0.5x / 1.0x / 1.5x the paper window,
crossed with PAA and alphabet sizes — so the same relative grid
position ("half the paper window, PAA 4, alphabet 3") is comparable
across datasets.  For every variant of every dataset:

* each single member runs the ordinary pipeline and scores a **hit**
  when its top-ranked RRA discord overlaps a true anomaly (>= 50% of
  the shorter interval, the repo-wide criterion);
* the ensemble runs the *same* grid through `EnsembleDetector` and
  scores a hit when its top merged discord overlaps a true anomaly.

A member that is invalid for some dataset (window too long) counts as
a miss for that dataset — a fixed parameter choice that cannot run IS
a failure of that choice, and the honest comparison charges it.

Targets (explicit in the issue):

* **clean**: ensemble hit-rate >= the best single grid position;
* **noisy** (+- sigma/5 i.i.d. Gaussian, fixed seed): ensemble
  hit-rate >= the median single grid position.

The noisy target is deliberately weaker: noise can favour whichever
single parameterization happens to match the noise scale, so the
ensemble only promises to beat the *typical* fixed choice there, not
the after-the-fact best one.

Invocations::

    PYTHONPATH=src python benchmarks/bench_ensemble.py            # full Table 1
    PYTHONPATH=src python benchmarks/bench_ensemble.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_ensemble.py --quick --lenient

``--lenient`` downgrades missed targets to warnings (exit 0) while
still writing the report — CI uses it so a noisy shared runner cannot
fail the build on an accuracy coin-flip, while the uploaded artifact
keeps the real numbers inspectable.  Under pytest the quick subset
runs non-lenient; the full Table-1 run is ``@pytest.mark.slow``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics

import numpy as np
import pytest

from repro.cache import SearchContext
from repro.core.ensemble import (
    EnsembleDetector,
    EnsembleMember,
    evaluate_member,
)
from repro.datasets.registry import table1_rows

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_ensemble.json"

NOISE_FRACTION = 0.2  # +- sigma/5
NOISE_SEED = 1234
QUICK_KEYS = ("ecg_qtdb_0606", "respiration_nprs43", "shuttle_TEK14")

FULL_FACTORS = (0.5, 1.0, 1.5)
FULL_PAAS = (4, 6)
FULL_ALPHABETS = (3, 5)
QUICK_FACTORS = (0.5, 1.0)
QUICK_PAAS = (4, 6)
QUICK_ALPHABETS = (3,)


def relative_grid(window: int, length: int, *, quick: bool):
    """(label, member) pairs for one dataset's paper window.

    Labels name the *relative* grid position so hit-rates can be
    compared per-position across datasets with different windows.
    """
    factors = QUICK_FACTORS if quick else FULL_FACTORS
    paas = QUICK_PAAS if quick else FULL_PAAS
    alphabets = QUICK_ALPHABETS if quick else FULL_ALPHABETS
    pairs = []
    for factor in factors:
        w = max(16, int(round(window * factor)))
        for paa in paas:
            if paa > w:
                continue
            for alphabet in alphabets:
                label = f"w{factor:g}x/p{paa}/a{alphabet}"
                pairs.append((label, EnsembleMember(w, paa, alphabet)))
    return pairs


def _variants(dataset, *, noise_seed: int):
    sigma = float(np.std(dataset.series))
    rng = np.random.default_rng(noise_seed)
    noisy = dataset.series + (sigma * NOISE_FRACTION) * rng.standard_normal(
        dataset.series.size
    )
    return (("clean", dataset.series), ("noisy", noisy))


def score_dataset(row, dataset, *, quick: bool):
    """Per-variant hits for every single grid position and the ensemble."""
    pairs = relative_grid(row.window, dataset.length, quick=quick)
    out = {}
    for variant, series in _variants(dataset, noise_seed=NOISE_SEED):
        context = SearchContext()
        singles = {}
        for label, member in pairs:
            outcome = evaluate_member(
                series, member, num_discords=1, context=context
            )
            hit = outcome.status == "ok" and any(
                dataset.contains_hit(d.start, d.end) for d in outcome.discords
            )
            singles[label] = bool(hit)
        result = EnsembleDetector(
            [member for _, member in pairs],
            num_discords=2,
            context=context,
        ).fit(series)
        best = result.best
        out[variant] = {
            "singles": singles,
            "ensemble": bool(
                best is not None and dataset.contains_hit(best.start, best.end)
            ),
            "ensemble_support": 0 if best is None else int(best.support),
        }
    return out


def run(quick: bool = False) -> dict:
    rows = [
        row for row in table1_rows() if not quick or row.key in QUICK_KEYS
    ]
    per_dataset = {}
    for row in rows:
        dataset = row.factory()
        per_dataset[row.key] = score_dataset(row, dataset, quick=quick)

    report_variants = {}
    for variant in ("clean", "noisy"):
        labels = sorted(
            {
                label
                for scores in per_dataset.values()
                for label in scores[variant]["singles"]
            }
        )
        single_rates = {
            label: statistics.mean(
                # a position absent for some dataset was invalid there: a miss
                1.0 if per_dataset[key][variant]["singles"].get(label) else 0.0
                for key in per_dataset
            )
            for label in labels
        }
        ensemble_rate = statistics.mean(
            1.0 if per_dataset[key][variant]["ensemble"] else 0.0
            for key in per_dataset
        )
        best_single = max(single_rates.values())
        median_single = statistics.median(single_rates.values())
        target = best_single if variant == "clean" else median_single
        report_variants[variant] = {
            "ensemble_hit_rate": ensemble_rate,
            "single_hit_rates": single_rates,
            "best_single": best_single,
            "median_single": median_single,
            "target": target,
            "target_kind": "best_single" if variant == "clean" else "median_single",
            "meets_target": ensemble_rate >= target,
        }

    return {
        "mode": "quick" if quick else "full",
        "cpu_count": os.cpu_count(),
        "datasets": list(per_dataset),
        "noise": {"fraction": NOISE_FRACTION, "seed": NOISE_SEED},
        "grid": {
            "factors": list(QUICK_FACTORS if quick else FULL_FACTORS),
            "paa_sizes": list(QUICK_PAAS if quick else FULL_PAAS),
            "alphabet_sizes": list(QUICK_ALPHABETS if quick else FULL_ALPHABETS),
        },
        "variants": report_variants,
        "per_dataset": per_dataset,
        "note": (
            "hit = top-ranked discord overlaps a true anomaly (>= 50% of the "
            "shorter interval).  Single members that cannot run on a dataset "
            "(window too long) are charged as misses for that position.  The "
            "clean target compares against the after-the-fact BEST single "
            "grid position; the noisy target against the MEDIAN position, "
            "since noise can favour whichever fixed choice matches its "
            "scale.  Synthetic stand-in datasets, not the paper's originals "
            "— rates are comparable within this benchmark, not to Table 1."
        ),
    }


def _assert_targets(report: dict) -> None:
    for variant, data in report["variants"].items():
        assert data["meets_target"], (variant, data)


def test_ensemble_accuracy_quick():
    """Pytest entry point: quick subset, targets enforced."""
    report = run(quick=True)
    _assert_targets(report)
    for variant, data in report["variants"].items():
        print(
            f"{variant}: ensemble {data['ensemble_hit_rate']:.2f} vs "
            f"{data['target_kind']} {data['target']:.2f}"
        )


@pytest.mark.slow
def test_ensemble_accuracy_full():
    """Full Table-1 accuracy run (slow-marked; CI runs it off the hot path)."""
    report = run(quick=False)
    _assert_targets(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="three-dataset subset and a smaller grid, for CI smoke runs",
    )
    parser.add_argument(
        "--lenient",
        action="store_true",
        help="downgrade missed accuracy targets to warnings (exit 0)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[report saved to {args.output}]")
    failed = False
    for variant, data in report["variants"].items():
        status = "ok" if data["meets_target"] else "MISS"
        print(
            f"{variant:>6s}: ensemble {data['ensemble_hit_rate']:.2f}  "
            f"best-single {data['best_single']:.2f}  "
            f"median-single {data['median_single']:.2f}  "
            f"target({data['target_kind']}) {data['target']:.2f}  [{status}]"
        )
        if not data["meets_target"]:
            failed = True
    if failed and not args.lenient:
        print("FAIL: ensemble below target hit-rate")
        return 1
    if failed:
        print("WARN: ensemble below target hit-rate (lenient mode)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figures 8-9: mapping ranked RRA trajectory discords back to the map.

The paper's Figures 8 and 9 draw the second and third RRA discords on
the street map: one highlights a uniquely travelled segment, the other
an abnormal traversal of a frequently visited region.  Without a map we
verify the mapping machinery: every ranked discord projects back to a
contiguous run of GPS fixes whose spatial extent we report, and the
discords cover *different* parts of the trail.
"""

from __future__ import annotations

from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets import commute_trail
from repro.trajectory.convert import series_index_to_trail_slice


def _run():
    trail = commute_trail(num_trips=10, detour_trip=7, gps_loss_trip=4)
    dataset = trail.dataset
    detector = GrammarAnomalyDetector(
        dataset.window, dataset.paa_size, dataset.alphabet_size
    )
    detector.fit(dataset.series)
    rra = detector.discords(num_discords=3)
    return trail, rra


def test_fig08_09_ranked_discords_map_to_trail_segments(benchmark, results):
    trail, rra = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert len(rra.discords) >= 2

    lines = [
        "ranked RRA discords of the commute trail, mapped back to GPS fixes:",
    ]
    segments = []
    for discord in rra.discords:
        fixes = series_index_to_trail_slice(trail.trail, discord.start, discord.end)
        assert len(fixes) == discord.length  # one fix per series point
        lats = [p.lat for p in fixes]
        lons = [p.lon for p in fixes]
        segments.append((discord.start, discord.end))
        lines.append(
            f"  #{discord.rank}: series [{discord.start}, {discord.end}) -> "
            f"{len(fixes)} fixes, lat [{min(lats):.3f}, {max(lats):.3f}], "
            f"lon [{min(lons):.3f}, {max(lons):.3f}], "
            f"NN dist {discord.nn_distance:.4f}"
        )

    # ranked discords highlight distinct trail segments (Figures 8 vs 9)
    for i in range(len(segments)):
        for j in range(i + 1, len(segments)):
            s1, e1 = segments[i]
            s2, e2 = segments[j]
            assert min(e1, e2) <= max(s1, s2), (
                f"discords {i} and {j} overlap: {segments[i]} vs {segments[j]}"
            )

    results("fig08_09_trajectory_discords", "\n".join(lines))

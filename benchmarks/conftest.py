"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md §4).  Benchmarks print their reproduction artifact (the
table rows / figure series) and also persist it under
``benchmarks/results/`` so the artifacts survive the pytest run.

Run everything with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to watch the tables as they are produced.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
FIGURES_DIR = pathlib.Path(__file__).parent / "figures"


def write_result(name: str, text: str) -> None:
    """Print a reproduction artifact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===")
    print(text)
    print(f"[saved to {path}]")


def write_figure(name: str, svg: str) -> None:
    """Persist a rendered SVG figure under figures/."""
    FIGURES_DIR.mkdir(exist_ok=True)
    path = FIGURES_DIR / f"{name}.svg"
    path.write_text(svg)
    print(f"[figure saved to {path}]")


@pytest.fixture
def results():
    """Fixture handle for writing named reproduction artifacts."""
    return write_result


@pytest.fixture
def figures():
    """Fixture handle for writing rendered SVG figures."""
    return write_figure

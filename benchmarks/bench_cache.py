"""Speedup benchmark for the result cache and memoization context.

Measures three warm-over-cold ratios and records them in
``BENCH_cache.json``:

``single_speedup``
    A cold iterated RRA discord search (the ``detector.discords()``
    request — the operation the cache stores) vs the same request
    answered from a warm :class:`~repro.cache.ResultCache`.  Target
    **>= 20x**: a hit is one memoized digest + one small JSON read, so
    on any non-trivial series it beats the search by orders of
    magnitude.

``sweep_speedup``
    Cold :meth:`~repro.core.parameter_grid.ParameterGridStudy.sweep`
    over a (windows x paa_sizes x alphabet_sizes) grid vs rerunning the
    identical sweep against the populated store.  Target **>= 3x**.

``memo_speedup``
    The same repeated-sweep scenario served with **no disk hits**: the
    rerun carries only a warm :class:`~repro.cache.SearchContext`, so
    every cell still evaluates — but z-normalization, discretization,
    PAA passes, and the RRA candidate sets (normalized subsequences +
    memoized pair distances) are reused in-process.  Target
    **>= 1.3x** over the cold sweep.

Every warm/memo result is verified equal to its cold counterpart
before any ratio is reported — a speedup from a wrong answer is not a
speedup.  Wall times are best-of-``repeats`` on a single process
(``min`` is the standard noise-robust estimator); the honest caveat is
that cold times on a 1-CPU CI container are inflated relative to a
desktop, which *understates* nothing: it makes the cold side slower
and the ratios easier, so CI enforces the targets only in ``--quick``
mode where the cold work is still substantial relative to a hit.

Invocations::

    PYTHONPATH=src python benchmarks/bench_cache.py           # full
    PYTHONPATH=src python benchmarks/bench_cache.py --quick   # CI smoke

Running under pytest executes the quick configuration and asserts
equality plus the speedup floors (the single-search floor is relaxed
under pytest only if the cold run was too fast to measure reliably).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import tempfile
import time

from repro.cache import ResultCache, SearchContext
from repro.core.parameter_grid import ParameterGridStudy
from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets.synthetic import sine_with_anomaly

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_cache.json"

SINGLE_TARGET = 20.0
SWEEP_TARGET = 3.0
MEMO_TARGET = 1.3


def _fingerprint(result) -> list:
    return [
        (d.start, d.end, d.rank, float(d.score).hex()) for d in result.discords
    ]


def _fitted_detector(series, window, cache):
    detector = GrammarAnomalyDetector(
        window=window, paa_size=4, alphabet_size=4, cache=cache
    )
    detector.fit(series)
    return detector


def _best_of(repeats, fn):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(quick: bool = False) -> dict:
    """Execute the benchmark; returns the report dict."""
    if quick:
        dataset = sine_with_anomaly(length=2500, period=100, seed=7)
        num_discords, repeats = 2, 2
        grid = dict(windows=[60, 100], paa_sizes=[4, 6], alphabet_sizes=[3, 4, 5])
    else:
        dataset = sine_with_anomaly(length=8000, period=200, seed=7)
        num_discords, repeats = 3, 3
        grid = dict(
            windows=[100, 160, 200],
            paa_sizes=[4, 6, 8],
            alphabet_sizes=[3, 4, 5, 6],
        )
    series, window = dataset.series, dataset.window
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-cache-"))
    try:
        # --- single search: cold vs warm hit -------------------------
        cold_detector = _fitted_detector(series, window, None)
        cold_seconds, cold = _best_of(
            repeats, lambda: cold_detector.discords(num_discords=num_discords)
        )
        store = ResultCache(workdir / "single")
        warm_detector = _fitted_detector(series, window, store)
        populate = warm_detector.discords(num_discords=num_discords)
        warm_seconds, warm = _best_of(
            repeats, lambda: warm_detector.discords(num_discords=num_discords)
        )
        single_ok = (
            _fingerprint(warm) == _fingerprint(cold)
            and warm.distance_calls == cold.distance_calls
            and warm.from_cache
            and not populate.from_cache
        )
        single_speedup = cold_seconds / warm_seconds

        # --- grid sweep: cold vs warm store vs warm memo-only --------
        study = ParameterGridStudy(series, dataset.anomalies[0])
        sweep_cold_seconds, sweep_cold = _best_of(
            repeats, lambda: study.sweep(**grid)
        )
        sweep_store = ResultCache(workdir / "sweep")
        study.sweep(**grid, cache=sweep_store)
        sweep_warm_seconds, sweep_warm = _best_of(
            repeats, lambda: study.sweep(**grid, cache=sweep_store)
        )
        memo_context = SearchContext()
        study.sweep(**grid, context=memo_context)  # build pass, untimed
        memo_seconds, sweep_memo = _best_of(
            repeats, lambda: study.sweep(**grid, context=memo_context)
        )
        sweep_ok = sweep_warm == sweep_cold and sweep_memo == sweep_cold
        sweep_speedup = sweep_cold_seconds / sweep_warm_seconds
        memo_speedup = sweep_cold_seconds / memo_seconds
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "mode": "quick" if quick else "full",
        "cpu_count": os.cpu_count(),
        "dataset": {
            "length": int(series.size),
            "window": int(window),
            "num_discords": num_discords,
        },
        "grid": {k: list(v) for k, v in grid.items()},
        "repeats": repeats,
        "single": {
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": single_speedup,
            "target": SINGLE_TARGET,
            "meets_target": single_speedup >= SINGLE_TARGET,
            "results_identical": single_ok,
        },
        "sweep": {
            "cold_seconds": sweep_cold_seconds,
            "warm_seconds": sweep_warm_seconds,
            "memo_seconds": memo_seconds,
            "cells": len(sweep_cold),
            "warm_speedup": sweep_speedup,
            "warm_target": SWEEP_TARGET,
            "warm_meets_target": sweep_speedup >= SWEEP_TARGET,
            "memo_speedup": memo_speedup,
            "memo_target": MEMO_TARGET,
            "memo_meets_target": memo_speedup >= MEMO_TARGET,
            "results_identical": sweep_ok,
        },
        "note": (
            "best-of-N single-process wall times; every warm/memo result is "
            "verified equal to its cold counterpart before a ratio is "
            "reported.  single times the detector.discords() request (the "
            "operation the cache stores; fit is untimed), memo times a "
            "repeated sweep against a warm in-process context with no disk "
            "store.  1-CPU containers inflate cold times, which only makes "
            "the warm ratios easier to meet — the memo ratio is the "
            "conservative one to read on shared hardware."
        ),
    }


def test_cache_speedups_quick():
    """Pytest entry point: equality must hold; floors asserted."""
    report = run(quick=True)
    assert report["single"]["results_identical"], report
    assert report["sweep"]["results_identical"], report
    # A cold search under ~50 ms cannot give a stable 20x ratio on
    # shared CI hardware; the floor applies once the cold side is real.
    if report["single"]["cold_seconds"] >= 0.05:
        assert report["single"]["meets_target"], report["single"]
    assert report["sweep"]["warm_meets_target"], report["sweep"]
    assert report["sweep"]["memo_meets_target"], report["sweep"]
    print(
        f"cache speedups: single {report['single']['speedup']:.1f}x, "
        f"sweep {report['sweep']['warm_speedup']:.1f}x, "
        f"memo {report['sweep']['memo_speedup']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset and grid, suitable as a CI smoke test",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[report saved to {args.output}]")
    print(
        f"single: cold {report['single']['cold_seconds']:.3f}s -> "
        f"warm {report['single']['warm_seconds']:.4f}s "
        f"({report['single']['speedup']:.1f}x, target >= {SINGLE_TARGET:.0f}x)"
    )
    print(
        f"sweep ({report['sweep']['cells']} cells): "
        f"cold {report['sweep']['cold_seconds']:.3f}s -> "
        f"warm {report['sweep']['warm_seconds']:.4f}s "
        f"({report['sweep']['warm_speedup']:.1f}x, target >= {SWEEP_TARGET:.0f}x); "
        f"memo-only {report['sweep']['memo_seconds']:.3f}s "
        f"({report['sweep']['memo_speedup']:.2f}x, target >= {MEMO_TARGET:.1f}x)"
    )
    ok = (
        report["single"]["results_identical"]
        and report["sweep"]["results_identical"]
    )
    if not ok:
        print("FAIL: cached or memoized run changed results")
        return 1
    for label, met in (
        ("single", report["single"]["meets_target"]),
        ("sweep", report["sweep"]["warm_meets_target"]),
        ("memo", report["sweep"]["memo_meets_target"]),
    ):
        if not met:
            print(f"WARN: {label} speedup below target on this machine")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 6: Hilbert space-filling curve approximations + trail encoding.

The paper's figure shows the first- and second-order Hilbert curves and
an example trajectory converted to the curve's visit order ("the
trajectory ... is converted into the sequence {0,3,2,2,2,7,7,8,11,13,
13,2,1,1}").  We regenerate both curve layouts, verify the adjacency
property at every order used, and encode an example trail.
"""

from __future__ import annotations

import numpy as np

from repro.trajectory.convert import BoundingBox, TrajectoryPoint, trail_to_series
from repro.trajectory.hilbert import hilbert_curve_points, hilbert_xy2d


def _run():
    order1 = hilbert_curve_points(1)
    order2 = hilbert_curve_points(2)
    # An example trail wandering across the order-2 grid.
    cells = [(0, 0), (1, 1), (1, 0), (1, 0), (2, 1), (3, 1), (2, 3), (1, 3), (0, 2)]
    bbox = BoundingBox(0.0, 4.0, 0.0, 4.0)
    trail = [
        TrajectoryPoint(float(i), y + 0.5, x + 0.5)
        for i, (x, y) in enumerate(cells)
    ]
    series = trail_to_series(trail, order=2, bbox=bbox)
    return order1, order2, cells, series


def _grid_drawing(points: np.ndarray, side: int) -> str:
    """Render the visit order as a small grid of indices."""
    grid = [["  "] * side for _ in range(side)]
    for d, (x, y) in enumerate(points):
        grid[side - 1 - y][x] = f"{d:2d}"
    return "\n".join(" ".join(row) for row in grid)


def test_fig06_hilbert_curve_and_trail_conversion(benchmark, results, figures):
    order1, order2, cells, series = benchmark.pedantic(_run, rounds=1, iterations=1)

    # left panel: the order-1 curve visits the 4 quadrants in order
    np.testing.assert_array_equal(order1, [[0, 0], [0, 1], [1, 1], [1, 0]])

    # adjacency property at both orders (consecutive cells share an edge)
    for points in (order1, order2):
        diffs = np.abs(np.diff(points, axis=0)).sum(axis=1)
        assert (diffs == 1).all()

    # the conversion maps each fix to its enclosing cell's visit index
    expected = [hilbert_xy2d(2, x, y) for x, y in cells]
    np.testing.assert_array_equal(series.astype(int), expected)

    # repeated cells produce repeated indices (the figure's {...2,2,2...})
    assert series[2] == series[3]

    results(
        "fig06_hilbert",
        "\n".join(
            [
                "order-1 Hilbert curve (visit indices on the 2x2 grid):",
                _grid_drawing(order1, 2),
                "",
                "order-2 Hilbert curve (visit indices on the 4x4 grid):",
                _grid_drawing(order2, 4),
                "",
                f"example trail cells: {cells}",
                f"converted sequence:  {[int(v) for v in series]}",
                "(cf. the paper's example sequence "
                "{0,3,2,2,2,7,7,8,11,13,13,2,1,1})",
            ]
        ),
    )

    from repro.visualization.svg import hilbert_plot

    figures("fig06_hilbert_order1", hilbert_plot(1, cell=80))
    figures("fig06_hilbert_order2", hilbert_plot(2, cell=60))

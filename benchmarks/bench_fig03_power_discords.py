"""Figure 3: multiple discord discovery in Dutch-power-demand data.

Top panel: a year-like span of weekly power demand with holiday
anomalies.  Middle panel: the rule density curve — it finds the best
discord but struggles to discriminate the others.  Bottom panel: the
NN-distance profile that lets RRA rank all three.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets import dutch_power_demand_like
from repro.visualization import density_strip, marker_line, sparkline
from repro.visualization.svg import COLOR_BAND, COLOR_BAND_ALT, FigurePlot

HOLIDAYS = ((4, 2), (6, 0), (8, 3))


def _run():
    dataset = dutch_power_demand_like(weeks=12, holiday_weeks=HOLIDAYS)
    detector = GrammarAnomalyDetector(
        dataset.window, dataset.paa_size, dataset.alphabet_size
    )
    detector.fit(dataset.series)
    rra = detector.discords(num_discords=3)
    return dataset, detector, rra


def test_fig03_three_holiday_discords(benchmark, results, figures):
    dataset, detector, rra = benchmark.pedantic(_run, rounds=1, iterations=1)
    curve = detector.density_curve().astype(float)

    assert len(rra.discords) == 3

    # at least 2 of the top-3 RRA discords are true holidays (the paper
    # recovers all 3; we require the bulk and report the exact count)
    hits = sum(
        dataset.contains_hit(d.start, d.end, min_overlap=0.2)
        for d in rra.discords
    )
    assert hits >= 2, f"only {hits}/3 discords are true holidays"

    # the density curve's top minimum also marks a true holiday (the
    # paper: density "was able to discover the best discord", while the
    # others are hard to discriminate without distances)
    density = detector.density_anomalies(max_anomalies=1)[0]
    w = dataset.window
    assert any(
        density.start < t1 + w and t0 - w < density.end
        for t0, t1 in dataset.anomalies
    ), f"density top minimum [{density.start}, {density.end}) marks no holiday"

    results(
        "fig03_power_discords",
        "\n".join(
            [
                f"Dutch-power-demand-like, length {dataset.length} "
                f"(12 weeks), holidays planted at {dataset.anomalies}",
                "demand  | " + sparkline(dataset.series),
                "density | " + density_strip(curve),
                "truth   | " + marker_line(dataset.length, dataset.anomalies),
                "found   | " + marker_line(
                    dataset.length, [(d.start, d.end) for d in rra.discords]
                ),
                f"{hits}/3 top discords are true holidays; "
                f"{rra.distance_calls} distance calls",
            ]
            + [
                f"  #{d.rank}: [{d.start:6d}, {d.end:6d}) length {d.length:4d} "
                f"NN dist {d.nn_distance:.4f}"
                for d in rra.discords
            ]
        ),
    )

    figure = FigurePlot(dataset.length)
    figure.title = "Figure 3: Dutch power demand — holidays and RRA discords"
    truth_bands = [(t0, t1, COLOR_BAND) for t0, t1 in dataset.anomalies]
    found_bands = [(d.start, d.end, COLOR_BAND_ALT) for d in rra.discords]
    figure.add_line_panel("power demand (holidays shaded)", dataset.series,
                          bands=truth_bands)
    figure.add_line_panel("rule density (discords shaded)", curve,
                          bands=found_bands, steps=True, color="#7c3aed")
    figures("fig03_power_discords", figure.render())

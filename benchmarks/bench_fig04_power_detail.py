"""Figure 4: detailed view of the variable-length power-demand discords.

The paper's figure zooms into each RRA discord and shows that (a) all of
them cover weekday slots whose typical weekday pattern is replaced by a
holiday (weekend-shaped) day, and (b) their lengths vary (754/756/757
points in the paper).  We regenerate the same detail: per-discord shape
statistics against the typical-week template.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets import dutch_power_demand_like
from repro.datasets.power import POINTS_PER_DAY
from repro.visualization import sparkline

HOLIDAYS = ((4, 2), (6, 0), (8, 3))


def _run():
    dataset = dutch_power_demand_like(weeks=12, holiday_weeks=HOLIDAYS)
    detector = GrammarAnomalyDetector(
        dataset.window, dataset.paa_size, dataset.alphabet_size
    )
    detector.fit(dataset.series)
    rra = detector.discords(num_discords=3)
    return dataset, rra


def _weekday_demand_inside(dataset, start: int, end: int) -> float:
    """Mean demand over weekday slots of [start, end)."""
    day_means = []
    first_day = start // POINTS_PER_DAY
    last_day = (end - 1) // POINTS_PER_DAY
    for day in range(first_day, last_day + 1):
        if day % 7 < 5:  # a weekday slot
            lo = max(start, day * POINTS_PER_DAY)
            hi = min(end, (day + 1) * POINTS_PER_DAY)
            day_means.append(float(dataset.series[lo:hi].mean()))
    return float(np.mean(day_means)) if day_means else float("nan")


def test_fig04_discords_are_interrupted_weekly_patterns(benchmark, results):
    dataset, rra = benchmark.pedantic(_run, rounds=1, iterations=1)

    # typical weekday demand, for contrast (week 0 has no holiday)
    typical = _weekday_demand_inside(dataset, 0, 5 * POINTS_PER_DAY)

    lines = [
        f"typical weekday mean demand: {typical:.3f}",
        f"typical week | "
        + sparkline(dataset.series[: 7 * POINTS_PER_DAY], width=56),
    ]
    lengths = []
    holiday_like = 0
    for d in rra.discords:
        lengths.append(d.length)
        demand = _weekday_demand_inside(dataset, d.start, d.end)
        is_holiday = dataset.contains_hit(d.start, d.end, min_overlap=0.2)
        holiday_like += is_holiday
        lines.append(
            f"discord #{d.rank} | "
            + sparkline(dataset.series[d.start : d.end], width=56)
        )
        lines.append(
            f"  [{d.start}, {d.end}) length {d.length}, weekday-slot demand "
            f"{demand:.3f} ({'holiday' if is_holiday else 'regular'})"
        )

    # the paper's two claims for this figure:
    # 1. discord lengths vary (not pinned to the window)
    assert len(set(lengths)) >= 2, f"discord lengths all equal: {lengths}"
    # 2. discords mark weeks whose weekday pattern was interrupted
    assert holiday_like >= 2

    lines.append(f"discord lengths: {lengths} (window was {dataset.window})")
    results("fig04_power_detail", "\n".join(lines))

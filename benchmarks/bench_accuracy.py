"""Accuracy matrix: every detector on every dataset family (extension).

The paper compares algorithms by *efficiency* (Table 1) and argues
accuracy qualitatively.  This bench completes the picture: a detector x
dataset matrix of anomaly recovery (top-3 detections vs planted ground
truth, 30 % overlap rule) covering both the paper's algorithms and the
related-work baselines implemented in :mod:`repro.baselines`.

Expected shape: the grammar-based detectors (density, RRA) recover the
anomaly across all families; the fixed-grid related-work baselines
(WCAD, bitmap) are hit-or-miss — which is exactly the paper's critique
of them.
"""

from __future__ import annotations

from repro.baselines.bitmap import bitmap_anomalies
from repro.baselines.wcad import wcad_anomalies
from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets import (
    ecg_qtdb_0606_like,
    respiration_like,
    tek_like,
    video_gun_like,
)
from repro.discord.hotsax import hotsax_discords

FAMILIES = [
    ("ecg", lambda: ecg_qtdb_0606_like()),
    ("video", lambda: video_gun_like(num_cycles=12, anomaly_cycles=(6,))),
    ("tek14", lambda: tek_like("TEK14")),
    ("respiration", lambda: respiration_like()),
]

MIN_OVERLAP = 0.3
TOP_K = 3


def _hits(dataset, intervals) -> bool:
    return any(
        dataset.contains_hit(start, end, min_overlap=MIN_OVERLAP)
        for start, end in intervals
    )


def _evaluate(dataset) -> dict[str, bool]:
    detector = GrammarAnomalyDetector(
        dataset.window, dataset.paa_size, dataset.alphabet_size
    )
    detector.fit(dataset.series)

    density = detector.density_anomalies(max_anomalies=TOP_K)
    rra = detector.discords(num_discords=TOP_K)
    hotsax = hotsax_discords(
        dataset.series, dataset.window, num_discords=TOP_K,
        paa_size=dataset.paa_size, alphabet_size=dataset.alphabet_size,
    )
    wcad = wcad_anomalies(dataset.series, dataset.window,
                          num_anomalies=TOP_K)
    bitmap = bitmap_anomalies(
        dataset.series,
        num_anomalies=TOP_K,
        lag=2 * dataset.window,
        lead=dataset.window,
        stride=4,
    )
    return {
        "density": _hits(dataset, [(a.start, a.end) for a in density]),
        "rra": _hits(dataset, [(d.start, d.end) for d in rra.discords]),
        "hotsax": _hits(dataset, [(d.start, d.end) for d in hotsax.discords]),
        "wcad": _hits(dataset, [(a.start, a.end) for a in wcad]),
        "bitmap": _hits(dataset, [(a.start, a.end) for a in bitmap]),
    }


def test_accuracy_matrix(benchmark, results):
    def run():
        return [(name, _evaluate(factory())) for name, factory in FAMILIES]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    detectors = ["density", "rra", "hotsax", "wcad", "bitmap"]
    lines = [
        f"top-{TOP_K} detections vs planted truth "
        f"(hit = >= {int(MIN_OVERLAP * 100)}% overlap of the shorter interval)",
        f"{'dataset':>12s} " + " ".join(f"{d:>8s}" for d in detectors),
    ]
    totals = {d: 0 for d in detectors}
    for name, outcome in rows:
        lines.append(
            f"{name:>12s} "
            + " ".join(
                f"{'hit' if outcome[d] else '-':>8s}" for d in detectors
            )
        )
        for d in detectors:
            totals[d] += outcome[d]
    lines.append(
        f"{'total':>12s} "
        + " ".join(f"{totals[d]}/{len(rows)}".rjust(8) for d in detectors)
    )
    results("accuracy_matrix", "\n".join(lines))

    # the grammar-based detectors recover every planted anomaly
    assert totals["density"] == len(rows)
    assert totals["rra"] == len(rows)
    # and they do at least as well as each related-work baseline
    assert totals["rra"] >= max(totals["wcad"], totals["bitmap"])

"""Figure 7: anomaly discovery in the Hilbert-converted GPS trail.

The paper's finding, reproduced on the simulated commute:

* the rule density curve's global minimum marks the once-taken *detour*
  (a unique path -> its symbols join no grammar rule);
* the best RRA discord covers the *partial-GPS-fix* segment (noisy
  fixes along familiar paths);
* RRA does *not* capture the detour (the figure's caption makes this
  point about the algorithms' differing sensitivity).
"""

from __future__ import annotations

from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets import commute_trail
from repro.visualization import density_strip, marker_line, sparkline


def _run():
    trail = commute_trail(num_trips=10, detour_trip=7, gps_loss_trip=4)
    dataset = trail.dataset
    detector = GrammarAnomalyDetector(
        dataset.window, dataset.paa_size, dataset.alphabet_size
    )
    detector.fit(dataset.series)
    density = detector.density_anomalies(max_anomalies=3)
    rra = detector.discords(num_discords=2)
    return trail, detector, density, rra


def test_fig07_density_finds_detour_rra_finds_gps_loss(
    benchmark, results, figures
):
    trail, detector, density, rra = benchmark.pedantic(_run, rounds=1, iterations=1)
    dataset = trail.dataset
    d0, d1 = trail.detour_interval
    g0, g1 = trail.gps_loss_interval

    # density -> detour
    assert any(a.start < d1 and d0 < a.end for a in density), (
        f"density minima {[(a.start, a.end) for a in density]} miss the "
        f"detour [{d0}, {d1})"
    )

    # RRA -> GPS-loss segment
    assert any(d.start < g1 and g0 < d.end for d in rra.discords), (
        f"RRA discords {[(d.start, d.end) for d in rra.discords]} miss the "
        f"GPS loss [{g0}, {g1})"
    )

    results(
        "fig07_trajectory",
        "\n".join(
            [
                f"Hilbert-converted commute trail, length {dataset.length}, "
                f"W={dataset.window} P={dataset.paa_size} A={dataset.alphabet_size}",
                "Hilbert | " + sparkline(dataset.series),
                "density | " + density_strip(
                    detector.density_curve().astype(float)
                ),
                "detour  | " + marker_line(dataset.length, [(d0, d1)]),
                "GPSloss | " + marker_line(dataset.length, [(g0, g1)]),
                f"density minima: {[(a.start, a.end) for a in density]}",
                f"RRA discords: "
                f"{[(d.start, d.end, round(d.nn_distance, 3)) for d in rra.discords]}",
                f"({rra.distance_calls} distance calls)",
            ]
        ),
    )

    from repro.visualization.svg import (
        COLOR_BAND,
        COLOR_BAND_ALT,
        FigurePlot,
        trajectory_plot,
    )

    figure = FigurePlot(dataset.length)
    figure.title = "Figure 7: Hilbert-converted GPS trail"
    figure.add_line_panel(
        "Hilbert index series (red: detour, blue: GPS loss)",
        dataset.series,
        bands=[(d0, d1, COLOR_BAND), (g0, g1, COLOR_BAND_ALT)],
    )
    figure.add_line_panel(
        "rule density", detector.density_curve().astype(float),
        bands=[(a.start, a.end, "#fde68a") for a in density],
        steps=True, color="#7c3aed",
    )
    figures("fig07_trajectory_series", figure.render())

    # the map view (Figures 7-9): detour red, GPS loss blue, best discord
    ordered = sorted(trail.trail, key=lambda p: p.time)
    lats = [p.lat for p in ordered]
    lons = [p.lon for p in ordered]
    best = rra.best
    figures(
        "fig07_trajectory_map",
        trajectory_plot(
            lats, lons,
            highlights=[
                (d0, d1, "#dc2626"),
                (g0, g1, "#2563eb"),
                (best.start, best.end, "#059669"),
            ],
            title="commute trail: detour (red), GPS loss (blue), "
                  "best RRA discord (green)",
        ),
    )

"""Figure 10: discretization-parameter robustness of the two algorithms.

The paper samples (window, PAA, alphabet) space on ECG 0606 (one subtle
true anomaly) and finds RRA's success region to be much larger than the
rule-density detector's (7100 vs 1460 combinations; roughly 4.9x).

We sweep a reduced grid on the subtle-ST ECG stand-in and assert the
same direction: RRA succeeds on more combinations than the
paper-faithful density detector.  We additionally report this library's
edge-excluded density variant, which closes much of the gap (an
improvement over the paper; see DESIGN.md).
"""

from __future__ import annotations

from repro.core.parameter_grid import ParameterGridStudy
from repro.datasets import ecg_subtle_st_like

WINDOWS = [60, 90, 120, 160, 220]
PAA_SIZES = [3, 4, 6, 9]
ALPHABETS = [3, 4, 6]


def _run():
    dataset = ecg_subtle_st_like()
    study = ParameterGridStudy(dataset.series, dataset.anomalies[0], min_overlap=0.3)
    points = study.sweep(WINDOWS, PAA_SIZES, ALPHABETS)
    return dataset, points


def test_fig10_rra_success_region_larger_than_density(
    benchmark, results, figures
):
    dataset, points = benchmark.pedantic(_run, rounds=1, iterations=1)
    counts = ParameterGridStudy.success_counts(points)

    # the paper's headline: RRA's region is roughly 2x-5x the density's
    assert counts["rra_hits"] > counts["density_hits"], (
        f"expected RRA region > density region, got {counts}"
    )
    # both algorithms succeed on a non-trivial part of the grid
    assert counts["rra_hits"] >= counts["total"] // 4
    assert counts["density_hits"] >= 1

    ratio = counts["rra_hits"] / max(1, counts["density_hits"])
    results(
        "fig10_parameter_grid",
        "\n".join(
            [
                f"grid: windows {WINDOWS} x PAA {PAA_SIZES} x alphabets "
                f"{ALPHABETS} on {dataset.name} (truth {dataset.anomalies[0]})",
                f"valid combinations: {counts['total']}",
                f"density (paper-faithful global minimum): "
                f"{counts['density_hits']} hits",
                f"density (edge-excluded, this library):   "
                f"{counts['density_hits_enhanced']} hits",
                f"RRA:                                     "
                f"{counts['rra_hits']} hits",
                f"RRA/density success ratio: {ratio:.1f}x "
                f"(paper: 7100/1460 = 4.9x)",
                "",
                "approximation-distance vs grammar-size extremes of the "
                "success regions:",
                _region_summary(points),
            ]
        ),
    )

    from repro.visualization.svg import scatter_plot

    figures(
        "fig10_density_region",
        scatter_plot(
            [(p.approximation_distance, float(p.grammar_size), p.density_hit)
             for p in points],
            title="Figure 10 (left): rule-density success region",
            x_label="approximation distance",
            y_label="grammar size",
        ),
    )
    figures(
        "fig10_rra_region",
        scatter_plot(
            [(p.approximation_distance, float(p.grammar_size), p.rra_hit)
             for p in points],
            title="Figure 10 (right): RRA success region",
            x_label="approximation distance",
            y_label="grammar size",
        ),
    )


def _region_summary(points) -> str:
    """The Figure 10 axes: where in (approx-distance, grammar-size) space
    each algorithm's successes fall."""
    lines = []
    for name, flag in (
        ("density", lambda p: p.density_hit),
        ("rra", lambda p: p.rra_hit),
    ):
        hits = [p for p in points if flag(p)]
        if not hits:
            lines.append(f"  {name}: no hits")
            continue
        dist = [p.approximation_distance for p in hits]
        size = [p.grammar_size for p in hits]
        lines.append(
            f"  {name}: approx.dist [{min(dist):.2f}, {max(dist):.2f}], "
            f"grammar size [{min(size)}, {max(size)}], {len(hits)} points"
        )
    return "\n".join(lines)

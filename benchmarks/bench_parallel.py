"""Parallel-vs-serial benchmark for the process-pool execution layer.

Runs the discord searches serially and through :mod:`repro.parallel`
with several worker counts, verifies bit-identical results (same
discords, same distance-call counts), and records wall times plus a
work-based critical-path speedup model in ``BENCH_parallel.json``:

* end-to-end RRA discord extraction on the ECG dataset,
* HOTSAX on the power-demand dataset,
* the parameter-grid sweep.

**Speedup accounting.**  Wall-clock speedup is only observable on a
multi-core host; CI containers (and the development box this repo grew
on) often pin the process to a single core, where worker processes
time-share one CPU and the measured wall time cannot improve.  The
benchmark therefore records both:

``wall_seconds``
    What actually happened on this machine (honest, machine-dependent).
``critical_path_speedup``
    ``total_calls / (seed_calls + sum of per-wave makespans)`` — the
    deterministic work-based bound from the engine's shard telemetry,
    where each wave's makespan is the FIFO list schedule of its chunks'
    distance-call counts onto the worker slots.  Distance calls are the
    unit of work the paper counts and the quantity the engines
    guarantee bit-identical, so this ratio is machine-independent and
    reproducible; it is what the >= 2.5x acceptance target is measured
    against.  The seed scan (the parent's inline warm-up of the pruning
    threshold) is charged as sequential work; over-scanned calls that
    workers perform beyond the serial schedule are charged to their
    chunks, so the bound pays for the scheme's redundancy.

Invocations::

    PYTHONPATH=src python benchmarks/bench_parallel.py           # full
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick   # CI smoke

Running under pytest (``pytest benchmarks/bench_parallel.py``) executes
the quick configuration and asserts the accounting invariants.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

import numpy as np

from repro.core.parameter_grid import ParameterGridStudy
from repro.core.pipeline import GrammarAnomalyDetector
from repro.core.rra import find_discords
from repro.datasets.ecg import synthetic_ecg
from repro.datasets.power import dutch_power_demand_like
from repro.discord.hotsax import hotsax_discords
from repro.parallel import engine as parallel_engine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_parallel.json"

#: Acceptance threshold: critical-path speedup of the RRA search at
#: 4 workers over the serial run.
RRA_TARGET = 2.5

WORKER_COUNTS = (1, 2, 4)


def _fingerprint(discords) -> list:
    return [(d.start, d.end, d.rank, round(d.score, 12)) for d in discords]


def _makespan(costs: list, slots: int) -> int:
    """List-schedule makespan: each cost goes to the earliest-free slot.

    This is exactly how a FIFO worker pool drains a wave's task queue,
    so it is the wave's wall cost on *slots* unloaded workers.  For
    ``len(costs) <= slots`` it reduces to ``max(costs)``.
    """
    finish = [0] * max(1, slots)
    for cost in costs:
        finish[finish.index(min(finish))] += cost
    return max(finish)


def _critical_path_calls(telemetries: list, total_calls: int) -> int:
    """Sequential distance calls under the engine's wave scheduling.

    Chunks within a wave run concurrently on the worker slots (the
    wave's cost is the list-schedule makespan of its chunks); waves,
    the seed scans, and any serial portions of the search run
    sequentially.  Over-scanned worker calls are charged to their
    chunks, so the model pays for the replay scheme's redundancy.
    """
    critical = 0
    merged = 0
    for t in telemetries:
        slots = max(1, t["wave_size"])
        chunks = list(t["shard_calls"])
        critical += t["seed_calls"]
        for count in t["wave_chunks"]:
            wave, chunks = chunks[:count], chunks[count:]
            if wave:
                critical += _makespan(wave, slots)
        merged += t["merged_calls"]
    return critical + max(0, total_calls - merged)


def _run_search(name: str, runner) -> dict:
    """Run *runner(n_workers)* for every worker count; package results.

    ``runner`` must return ``(discords, distance_calls)``.  Results must
    be bit-identical across worker counts or the benchmark aborts.
    """
    entry: dict = {"workers": {}}
    reference = None
    for workers in WORKER_COUNTS:
        parallel_engine.TELEMETRY_LOG.clear()
        start = time.perf_counter()
        discords, calls = runner(workers)
        wall = time.perf_counter() - start
        fingerprint = _fingerprint(discords)
        if reference is None:
            reference = (fingerprint, calls)
        if (fingerprint, calls) != reference:
            raise AssertionError(
                f"{name}: results diverged at n_workers={workers} "
                f"(calls {calls} vs {reference[1]})"
            )
        telemetries = list(parallel_engine.TELEMETRY_LOG)
        record = {"wall_seconds": round(wall, 4)}
        if telemetries:
            critical = _critical_path_calls(telemetries, calls)
            record.update(
                {
                    "parallel_phases": len(telemetries),
                    "chunks": sum(len(t["shard_calls"]) for t in telemetries),
                    "worker_calls_total": sum(
                        t["seed_calls"] + sum(t["shard_calls"])
                        for t in telemetries
                    ),
                    "critical_path_calls": int(critical),
                    "critical_path_speedup": round(calls / critical, 2)
                    if critical
                    else None,
                }
            )
        entry["workers"][str(workers)] = record
        print(
            f"{name:14s} n_workers={workers}  wall {wall:7.3f}s  "
            f"calls {calls}"
            + (
                f"  critical-path speedup "
                f"{record['critical_path_speedup']:.2f}x"
                if "critical_path_speedup" in record
                else ""
            )
        )
    entry["distance_calls"] = reference[1]
    entry["results_identical"] = True
    return entry


def run(quick: bool = False) -> dict:
    """Execute the benchmark matrix; returns the report dict."""
    if quick:
        ecg = synthetic_ecg(num_beats=20, anomaly_beats=(12,))
        power = dutch_power_demand_like(
            weeks=3, holiday_weeks=((1, 2),), window=150
        )
        grid = ([40, 60], [3, 4], [3, 4])
        num_discords = 2
    else:
        ecg = synthetic_ecg(num_beats=60, anomaly_beats=(12, 25, 40))
        power = dutch_power_demand_like(
            weeks=6, holiday_weeks=((3, 2),), window=300
        )
        grid = ([40, 60, 80], [3, 4, 5], [3, 4, 5])
        num_discords = 3

    detector = GrammarAnomalyDetector(ecg.window, ecg.paa_size, ecg.alphabet_size)
    fitted = detector.fit(ecg.series)
    candidates = fitted.candidates

    def run_rra(workers):
        result = find_discords(
            ecg.series,
            candidates,
            num_discords=num_discords,
            rng=np.random.default_rng(0),
            n_workers=workers,
        )
        return result.discords, result.distance_calls

    def run_hotsax(workers):
        result = hotsax_discords(
            power.series,
            power.window,
            num_discords=1,
            rng=np.random.default_rng(0),
            n_workers=workers,
        )
        return result.discords, result.distance_calls

    rra_entry = _run_search("rra", run_rra)
    hotsax_entry = _run_search("hotsax", run_hotsax)

    # The grid sweep has no distance-call telemetry (pair tasks are the
    # unit of work); record wall times and the equality check only.
    study = ParameterGridStudy(ecg.series, tuple(ecg.anomalies[0]))
    grid_entry: dict = {"workers": {}}
    serial_points = None
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        points = study.sweep(*grid, n_workers=workers)
        wall = time.perf_counter() - start
        if serial_points is None:
            serial_points = points
        elif points != serial_points:
            raise AssertionError(f"grid sweep diverged at n_workers={workers}")
        grid_entry["workers"][str(workers)] = {"wall_seconds": round(wall, 4)}
        print(
            f"{'grid_sweep':14s} n_workers={workers}  wall {wall:7.3f}s  "
            f"points {len(points)}"
        )
    grid_entry["points"] = len(serial_points)
    grid_entry["results_identical"] = True

    rra_speedup = rra_entry["workers"]["4"].get("critical_path_speedup") or 0.0
    report = {
        "mode": "quick" if quick else "full",
        "cpu_count": os.cpu_count(),
        "note": (
            "wall_seconds is machine-dependent (no wall-clock win is "
            "possible when the host exposes a single CPU); "
            "critical_path_speedup is the deterministic work-based bound "
            "described in the module docstring and carries the "
            "acceptance target"
        ),
        "datasets": {
            "ecg": {
                "length": int(ecg.length),
                "window": int(ecg.window),
                "candidates": len(candidates),
            },
            "power": {"length": int(power.length), "window": int(power.window)},
        },
        "benchmarks": {
            "rra_end_to_end": rra_entry,
            "hotsax": hotsax_entry,
            "grid_sweep": grid_entry,
        },
        "rra_speedup_4_workers": rra_speedup,
        "target_speedup": RRA_TARGET,
        # The acceptance target is defined on the full configuration;
        # the quick datasets are too small to amortize the warm-up
        # waves, so quick mode records the number without gating on it.
        "target_applies": not quick,
        "meets_target": rra_speedup >= RRA_TARGET,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small datasets, suitable as a CI smoke test",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[report saved to {args.output}]")
    if not report["meets_target"]:
        if report["target_applies"]:
            print("SPEEDUP TARGET NOT MET")
            return 1
        print("speedup target not met (informational only in --quick mode)")
    return 0


def test_parallel_quick_smoke(tmp_path):
    """Pytest entry: quick run, identical results, report written."""
    report = run(quick=True)
    path = tmp_path / "BENCH_parallel.json"
    path.write_text(json.dumps(report, indent=2))
    for entry in report["benchmarks"].values():
        assert entry["results_identical"]
    assert report["benchmarks"]["rra_end_to_end"]["distance_calls"] > 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Streaming extension bench (paper §7 future work, beyond the paper).

Quantifies the online detector on a long periodic stream with planted
events:

* **equivalence** — the online SAX+Sequitur front end produces exactly
  the offline token stream and grammar;
* **early detection** — every planted event is alarmed long before the
  stream ends, and the detection delay is a small multiple of the
  window;
* **lag trade-off** — sweeping the confirmation lag trades delay
  against premature (immature) alarms.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import detection_delays, score_detections
from repro.sax.discretize import discretize
from repro.streaming import StreamingAnomalyDetector
from repro.streaming.online_sax import OnlineDiscretizer


def _stream(length=12_000, period=100, events=(3000, 7500), seed=3):
    """Periodic stream with two *differently shaped* planted events.

    The shapes must differ: two identical planted events would repeat,
    the grammar would compress them into a rule, and they would —
    correctly — count as a motif rather than anomalies.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    series = np.sin(2 * np.pi * t / period) + rng.normal(0, 0.03, length)
    truth = []
    # Event 1: a level shift; event 2: a local frequency doubling.
    first, second = events
    series[first : first + 100] += 2.0
    truth.append((first, first + 100))
    ta = np.arange(100)
    series[second : second + 100] = np.sin(2 * np.pi * 2 * ta / period)
    series[second : second + 100] += rng.normal(0, 0.03, 100)
    truth.append((second, second + 100))
    return series, truth


def test_streaming_online_equals_offline(benchmark, results):
    """The streaming front end is byte-identical to the offline one."""
    series, _ = _stream()

    def run():
        online = OnlineDiscretizer(50, 4, 4)
        emitted = [w for w in (online.push(v) for v in series) if w is not None]
        return emitted

    emitted = benchmark.pedantic(run, rounds=1, iterations=1)
    offline = discretize(series, 50, 4, 4)
    assert [(w.word, w.offset) for w in offline.words] == [
        (w.word, w.offset) for w in emitted
    ]
    results(
        "streaming_equivalence",
        f"{series.size} streamed points -> {len(emitted)} tokens, "
        f"identical to the offline discretization "
        f"({offline.raw_word_count} raw words)",
    )


def test_streaming_detection_delay(benchmark, results):
    """Every event is alarmed early; delay scales with the lag knob."""
    series, truth = _stream()

    def run():
        rows = []
        for confirmation in (10, 25, 50):
            detector = StreamingAnomalyDetector(
                50, 4, 4, confirmation_tokens=confirmation
            )
            alarms = detector.push_many(series) + detector.flush()
            scores = score_detections(
                [(a.start, a.end) for a in alarms], truth, min_overlap=0.3
            )
            delays = detection_delays(
                [((a.start, a.end), a.detected_at) for a in alarms], truth
            )
            rows.append((confirmation, alarms, scores, delays))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"stream of {series.size} points, events at {truth}",
        f"{'confirm':>8s} {'alarms':>7s} {'precision':>10s} {'recall':>7s} "
        f"{'delays':>16s}",
    ]
    for confirmation, alarms, scores, delays in rows:
        lines.append(
            f"{confirmation:>8d} {len(alarms):>7d} {scores.precision:>10.2f} "
            f"{scores.recall:>7.2f} {str(delays):>16s}"
        )
        # every event recovered at every lag setting
        assert scores.recall == 1.0, (
            f"lag {confirmation}: missed an event "
            f"({[(a.start, a.end) for a in alarms]})"
        )
        # detection happens well before the end of the stream
        for delay, (start, _) in zip(delays, truth):
            assert start + delay < series.size - 1000

    # delays grow with the confirmation lag (it is a lower bound on them)
    mean_delays = [float(np.mean(r[3])) for r in rows]
    assert mean_delays[0] <= mean_delays[-1] + 1e-9
    lines.append(
        "delay grows with the confirmation lag; all events detected "
        ">1000 points before the stream ends"
    )
    results("streaming_detection_delay", "\n".join(lines))


def test_streaming_clean_stream_stays_silent(benchmark, results):
    """No alarms on an event-free periodic stream (precision guard)."""
    rng = np.random.default_rng(9)
    t = np.arange(10_000)
    series = np.sin(2 * np.pi * t / 100) + rng.normal(0, 0.02, t.size)

    def run():
        detector = StreamingAnomalyDetector(50, 4, 4, confirmation_tokens=25)
        return detector.push_many(series)

    alarms = benchmark.pedantic(run, rounds=1, iterations=1)
    assert alarms == [], f"false alarms on clean data: "\
        f"{[(a.start, a.end) for a in alarms]}"
    results(
        "streaming_clean_stream",
        f"{series.size} clean periodic points streamed -> 0 alarms",
    )

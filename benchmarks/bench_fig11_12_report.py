"""Figures 11-12: the GrammarViz 2.0 session, as a text report.

The paper's final figures are GUI screenshots of GrammarViz 2.0 on the
video dataset: a ranked anomaly table whose discords have *different
lengths* (11 to 189 in the paper), a grammar-rule table (rule, level,
usage, expansion), and the series shaded by rule density.  Our
substitute renders the same information as text (DESIGN.md §3) — this
bench regenerates the full report and checks its contents.
"""

from __future__ import annotations

from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets import video_gun_like
from repro.visualization.report import grammar_report

WINDOW, PAA, ALPHA = 150, 5, 5  # Figure 11's configuration


def _run():
    dataset = video_gun_like(num_cycles=25, anomaly_cycles=(11, 18))
    detector = GrammarAnomalyDetector(WINDOW, PAA, ALPHA)
    detector.fit(dataset.series)
    anomalies = list(detector.density_anomalies(max_anomalies=2))
    rra = detector.discords(num_discords=4)
    anomalies.extend(rra.discords)
    report = grammar_report(detector.result, anomalies, max_rules=10)
    return dataset, detector, rra, report


def test_fig11_12_grammarviz_style_report(benchmark, results):
    dataset, detector, rra, report = benchmark.pedantic(_run, rounds=1, iterations=1)
    result = detector.result

    # the report carries all three GrammarViz panes
    assert "Anomalies:" in report
    assert "Grammar rules" in report
    assert "density | " in report
    assert f"W={WINDOW} P={PAA} A={ALPHA}" in report

    # Figure 11's key observation: the ranked discords vary in length
    lengths = [d.length for d in rra.discords]
    assert len(set(lengths)) >= 2, f"discord lengths all equal: {lengths}"

    # Figure 12's key observation: the planted events fall in the
    # lightest-shaded (lowest-density) regions
    curve = detector.density_curve().astype(float)
    for t0, t1 in dataset.anomalies:
        assert curve[t0:t1].mean() < 0.7 * curve.mean()

    # the "Regularized rules" and "Rules periodicity" tabs
    from repro.grammar.postprocess import prune_rules, rule_periodicity

    kept = prune_rules(result.grammar, result.discretization)
    periodicity = rule_periodicity(result.grammar, result.discretization)
    assert kept and len(kept) < len(result.grammar.non_start_rules())
    # the draw cycles repeat every ~450 points: some rule shows it
    periodic = [p for p in periodicity if p.is_periodic]
    assert periodic, "no periodic rule found on strongly cyclic data"

    extra = [
        "",
        f"Regularized (pruned) rules: {len(kept)} of "
        f"{len(result.grammar.non_start_rules())} cover everything",
        "Most periodic rules (rule, usage, mean period, CV):",
    ]
    extra += [
        f"  R{p.rule_id:<4d} used {p.usage:>3d}x  period "
        f"{p.mean_period:7.1f}  CV {p.period_cv:.3f}"
        for p in periodicity[:5]
    ]
    results("fig11_12_report", report + "\n" + "\n".join(extra))

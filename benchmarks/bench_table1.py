"""Table 1: distance-call comparison of brute force, HOTSAX, and RRA.

Regenerates the paper's main results table on the synthetic stand-in
datasets (reduced lengths; see DESIGN.md §3-4).  For every row we report:

* the closed-form brute-force distance-call count,
* HOTSAX's measured calls,
* RRA's measured calls and the resulting reduction,
* the HOTSAX and RRA discord lengths and their overlap (the table's
  last column), and
* the paper's published numbers side by side.

The absolute numbers differ (different data and scale) but the shape
must hold: RRA << HOTSAX << brute force, with high discord overlap.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import GrammarAnomalyDetector
from repro.core.rra import find_discords
from repro.datasets.registry import TableRow, table1_rows
from repro.discord.brute_force import brute_force_call_count
from repro.discord.hotsax import hotsax_discords

#: Rows whose reduced stand-ins stay fast enough for the default run.
ROWS = table1_rows()


#: Filled by the per-row benchmarks so the summary needn't recompute.
_ROW_CACHE: dict[str, dict] = {}


def _run_row(row: TableRow) -> dict:
    if row.key in _ROW_CACHE:
        return _ROW_CACHE[row.key]
    dataset = row.factory()
    brute = brute_force_call_count(dataset.length, row.window)

    hotsax = hotsax_discords(
        dataset.series,
        row.window,
        num_discords=1,
        paa_size=min(row.paa_size, row.window),
        alphabet_size=row.alphabet_size,
    )
    detector = GrammarAnomalyDetector(row.window, row.paa_size, row.alphabet_size)
    fitted = detector.fit(dataset.series)
    rra = find_discords(dataset.series, fitted.candidates, num_discords=1)

    hot_best = hotsax.best
    rra_best = rra.best
    overlap = 0.0
    if hot_best is not None and rra_best is not None:
        overlap = 100.0 * rra_best.overlap_fraction(hot_best.start, hot_best.end)
    reduction = 100.0 * (1.0 - rra.distance_calls / max(1, hotsax.distance_calls))
    _ROW_CACHE[row.key] = {
        "row": row,
        "length": dataset.length,
        "brute": brute,
        "hotsax": hotsax.distance_calls,
        "rra": rra.distance_calls,
        "reduction": reduction,
        "hot_len": hot_best.length if hot_best else 0,
        "rra_len": rra_best.length if rra_best else 0,
        "overlap": overlap,
        "truth_hit": (
            rra_best is not None
            and dataset.contains_hit(rra_best.start, rra_best.end, min_overlap=0.2)
        ),
    }
    return _ROW_CACHE[row.key]


@pytest.mark.parametrize("row", ROWS, ids=lambda r: r.key)
def test_table1_row(benchmark, results, row):
    """One Table 1 row: measure the three algorithms' distance calls."""
    outcome = benchmark.pedantic(_run_row, args=(row,), rounds=1, iterations=1)

    # --- the paper's qualitative claims, asserted per row
    assert outcome["rra"] < outcome["hotsax"] < outcome["brute"], (
        f"{row.key}: expected RRA < HOTSAX < brute force, got "
        f"{outcome['rra']} / {outcome['hotsax']} / {outcome['brute']}"
    )
    assert outcome["reduction"] > 0.0

    paper = row.paper
    results(
        f"table1_{row.key}",
        "\n".join(
            [
                f"{'':14s}{'ours':>16s}{'paper':>16s}",
                f"{'length':14s}{outcome['length']:>16d}{paper.length:>16d}",
                f"{'brute force':14s}{outcome['brute']:>16d}{paper.brute_force_calls:>16.3g}",
                f"{'HOTSAX':14s}{outcome['hotsax']:>16d}{paper.hotsax_calls:>16d}",
                f"{'RRA':14s}{outcome['rra']:>16d}{paper.rra_calls:>16d}",
                f"{'reduction':14s}{outcome['reduction']:>15.1f}%{paper.reduction_percent:>15.1f}%",
                f"{'lengths H/R':14s}"
                f"{str(outcome['hot_len']) + '/' + str(outcome['rra_len']):>16s}"
                f"{str(paper.hotsax_discord_length) + '/' + str(paper.rra_discord_length):>16s}",
                f"{'overlap':14s}{outcome['overlap']:>15.1f}%{paper.overlap_percent:>15.1f}%",
                f"{'RRA hits truth':14s}{str(outcome['truth_hit']):>16s}",
            ]
        ),
    )


def test_table1_summary(benchmark, results):
    """Aggregate check: across rows the reductions follow the paper.

    Rows already computed by the per-row benchmarks are reused from the
    cache, so this only measures the (cheap) aggregation.
    """
    benchmark.pedantic(lambda: [_run_row(r) for r in ROWS], rounds=1, iterations=1)
    lines = [
        f"{'dataset':34s} {'len':>6s} {'brute':>13s} {'HOTSAX':>9s} "
        f"{'RRA':>9s} {'red.':>6s} {'ovl.':>6s} {'hit':>4s}"
    ]
    reductions = []
    for row in ROWS:
        outcome = _run_row(row)
        reductions.append(outcome["reduction"])
        lines.append(
            f"{row.display_name:34s} {outcome['length']:>6d} "
            f"{outcome['brute']:>13d} {outcome['hotsax']:>9d} "
            f"{outcome['rra']:>9d} {outcome['reduction']:>5.1f}% "
            f"{outcome['overlap']:>5.1f}% {'y' if outcome['truth_hit'] else 'n':>4s}"
        )
    mean_reduction = sum(reductions) / len(reductions)
    lines.append(
        f"\nmean RRA-vs-HOTSAX reduction: {mean_reduction:.1f}% "
        f"(paper rows: 49.3%-97.5%)"
    )
    results("table1_summary", "\n".join(lines))
    # the central efficiency claim
    assert mean_reduction > 40.0
    assert all(r > 0 for r in reductions)

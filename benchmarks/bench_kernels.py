"""Scalar-vs-kernel wall-time benchmark for the distance-kernel layer.

Runs the same discord workloads through ``backend="scalar"`` (the
per-pair reference path) and ``backend="kernel"`` (the vectorized batch
kernels of :mod:`repro.timeseries.kernels`), verifies that the distance
call counts are bit-identical, and records wall times + speedups in
``BENCH_kernels.json``:

* ``nearest_neighbor_distances`` on the ECG dataset (one-vs-all kernel;
  target ≥ 5x),
* end-to-end RRA multi-discord extraction on the ECG dataset (target
  ≥ 2x),
* HOTSAX on the power-demand dataset (block-scanned inner loop).

Invocations::

    PYTHONPATH=src python benchmarks/bench_kernels.py           # full
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick   # CI smoke

Running under pytest (``pytest benchmarks/bench_kernels.py``) executes
the quick configuration and asserts the accounting invariants.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.core.pipeline import GrammarAnomalyDetector
from repro.core.rra import find_discords, nearest_neighbor_distances
from repro.datasets.ecg import synthetic_ecg
from repro.datasets.power import dutch_power_demand_like
from repro.discord.hotsax import hotsax_discords
from repro.timeseries.distance import DistanceCounter

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_kernels.json"

#: Acceptance thresholds (speedup of kernel over scalar, same run).
NN_TARGET = 5.0
RRA_TARGET = 2.0


def _timed(fn):
    """Run *fn* once, returning ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _compare(name, runner, *, target=None):
    """Run *runner(backend)* for both backends and package the numbers.

    ``runner`` must return the distance-call count of the run; counts
    must match exactly across backends or the benchmark aborts.
    """
    scalar_calls, scalar_seconds = _timed(lambda: runner("scalar"))
    kernel_calls, kernel_seconds = _timed(lambda: runner("kernel"))
    if scalar_calls != kernel_calls:
        raise AssertionError(
            f"{name}: call counts diverged "
            f"(scalar={scalar_calls}, kernel={kernel_calls})"
        )
    speedup = scalar_seconds / kernel_seconds if kernel_seconds > 0 else float("inf")
    entry = {
        "scalar_seconds": round(scalar_seconds, 4),
        "kernel_seconds": round(kernel_seconds, 4),
        "speedup": round(speedup, 2),
        "distance_calls": scalar_calls,
    }
    if target is not None:
        entry["target_speedup"] = target
        entry["meets_target"] = speedup >= target
    print(
        f"{name:28s} scalar {scalar_seconds:8.3f}s   kernel "
        f"{kernel_seconds:8.3f}s   speedup {speedup:6.2f}x   "
        f"calls {scalar_calls}"
    )
    return entry


def run(quick: bool = False) -> dict:
    """Execute the benchmark matrix; returns the report dict."""
    if quick:
        ecg = synthetic_ecg(num_beats=20, anomaly_beats=(12,))
        power = dutch_power_demand_like(weeks=3, holiday_weeks=((1, 2),), window=150)
        num_discords = 2
    else:
        ecg = synthetic_ecg(num_beats=40, anomaly_beats=(12, 25))
        power = dutch_power_demand_like(weeks=6, holiday_weeks=((3, 2),), window=300)
        num_discords = 3

    detector = GrammarAnomalyDetector(ecg.window, ecg.paa_size, ecg.alphabet_size)
    fitted = detector.fit(ecg.series)
    candidates = fitted.candidates

    def run_nn(backend):
        counter = DistanceCounter()
        nearest_neighbor_distances(
            ecg.series, candidates, counter=counter, backend=backend
        )
        return counter.calls

    def run_rra(backend):
        result = find_discords(
            ecg.series,
            candidates,
            num_discords=num_discords,
            rng=np.random.default_rng(0),
            backend=backend,
        )
        return result.distance_calls

    def run_hotsax(backend):
        result = hotsax_discords(
            power.series,
            power.window,
            num_discords=1,
            rng=np.random.default_rng(0),
            backend=backend,
        )
        return result.distance_calls

    report = {
        "mode": "quick" if quick else "full",
        "datasets": {
            "ecg": {
                "length": int(ecg.length),
                "window": int(ecg.window),
                "candidates": len(candidates),
            },
            "power": {"length": int(power.length), "window": int(power.window)},
        },
        "benchmarks": {
            "nearest_neighbor_distances": _compare(
                "nearest_neighbor_distances", run_nn, target=NN_TARGET
            ),
            "rra_end_to_end": _compare(
                "rra_end_to_end", run_rra, target=RRA_TARGET
            ),
            "hotsax": _compare("hotsax", run_hotsax),
        },
    }
    report["all_targets_met"] = all(
        entry.get("meets_target", True)
        for entry in report["benchmarks"].values()
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small datasets, suitable as a CI smoke test",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[report saved to {args.output}]")
    if not report["all_targets_met"]:
        print("SPEEDUP TARGETS NOT MET")
        return 1
    return 0


def test_kernels_quick_smoke(tmp_path):
    """Pytest entry: quick run, identical counts, report written."""
    report = run(quick=True)
    path = tmp_path / "BENCH_kernels.json"
    path.write_text(json.dumps(report, indent=2))
    for entry in report["benchmarks"].values():
        assert entry["distance_calls"] > 0
        assert entry["kernel_seconds"] > 0


if __name__ == "__main__":
    raise SystemExit(main())

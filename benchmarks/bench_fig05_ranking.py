"""Figure 5: HOTSAX vs RRA discord ranking on a long ECG record.

The paper's figure shows both algorithms finding the same three
anomalous heartbeats in ECG300 but ranking them differently: RRA's
length-normalized distance (Eq. 1) promotes a shorter discord to rank 1.

We regenerate the comparison on an ECG-like record with three planted
anomalies: both algorithms' top-3 must cover the same set of true
events, while the per-rank order may differ — and the RRA discord
lengths must vary.
"""

from __future__ import annotations

from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets import ecg_record_like
from repro.discord.hotsax import hotsax_discords

WINDOW, PAA, ALPHA = 300, 4, 4


def _run():
    dataset = ecg_record_like("300", length=9000, num_anomalies=3, seed=300)
    hotsax = hotsax_discords(
        dataset.series, WINDOW, num_discords=3, paa_size=PAA, alphabet_size=ALPHA
    )
    detector = GrammarAnomalyDetector(WINDOW, PAA, ALPHA)
    detector.fit(dataset.series)
    rra = detector.discords(num_discords=3)
    return dataset, hotsax, rra


def _matched_truths(dataset, discords) -> set:
    matched = set()
    for d in discords:
        for idx, (t0, t1) in enumerate(dataset.anomalies):
            if d.start < t1 and t0 < d.end:
                matched.add(idx)
    return matched


def test_fig05_both_algorithms_find_the_same_events(benchmark, results):
    dataset, hotsax, rra = benchmark.pedantic(_run, rounds=1, iterations=1)

    hotsax_matched = _matched_truths(dataset, hotsax.discords)
    rra_matched = _matched_truths(dataset, rra.discords)

    # both recover at least two of the three planted events, and RRA
    # recovers everything HOTSAX does or more
    assert len(hotsax_matched) >= 2
    assert len(rra_matched) >= 2

    # RRA discords are variable-length; HOTSAX's are pinned to the window
    assert all(d.length == WINDOW for d in hotsax.discords)
    rra_lengths = [d.length for d in rra.discords]
    assert len(set(rra_lengths)) >= 2 or rra_lengths[0] != WINDOW

    lines = [
        f"ECG-300-like record, length {dataset.length}, "
        f"3 planted anomalies at {dataset.anomalies}",
        "",
        f"{'rank':>4s}  {'HOTSAX':>24s}  {'RRA':>30s}",
    ]
    for rank in range(3):
        h = hotsax.discords[rank] if rank < len(hotsax.discords) else None
        r = rra.discords[rank] if rank < len(rra.discords) else None
        h_txt = f"[{h.start}, {h.end}) d={h.nn_distance:.3f}" if h else "-"
        r_txt = (
            f"[{r.start}, {r.end}) len={r.length} d={r.nn_distance:.3f}"
            if r
            else "-"
        )
        lines.append(f"{rank:>4d}  {h_txt:>24s}  {r_txt:>30s}")
    lines += [
        "",
        f"true events matched: HOTSAX {sorted(hotsax_matched)}, "
        f"RRA {sorted(rra_matched)}",
        f"RRA lengths {rra_lengths} vs HOTSAX fixed {WINDOW} "
        f"(paper: 302/312/317 vs fixed 300)",
        f"distance calls: HOTSAX {hotsax.distance_calls}, "
        f"RRA {rra.distance_calls}",
    ]
    results("fig05_ranking", "\n".join(lines))

"""Figure 1: rule density curve on the Video dataset, multiple anomalies.

The paper's opening figure: a recorded-video series with several
anomalous events, and below it the rule density curve whose minima
pinpoint them.  We regenerate both series (as text sparklines) and check
that every planted anomaly coincides with a density minimum region.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets import video_gun_like
from repro.visualization import density_strip, marker_line, sparkline
from repro.visualization.svg import COLOR_BAND, COLOR_BAND_ALT, FigurePlot


def _run() -> tuple:
    dataset = video_gun_like(num_cycles=25, anomaly_cycles=(11, 18))
    detector = GrammarAnomalyDetector(
        dataset.window, dataset.paa_size, dataset.alphabet_size
    )
    detector.fit(dataset.series)
    anomalies = detector.density_anomalies(max_anomalies=4)
    return dataset, detector, anomalies


def test_fig01_multiple_anomalies_found_at_density_minima(
    benchmark, results, figures
):
    dataset, detector, anomalies = benchmark.pedantic(_run, rounds=1, iterations=1)
    curve = detector.density_curve().astype(float)

    # every planted anomaly is matched by some reported minima interval
    hits = 0
    for t0, t1 in dataset.anomalies:
        if any(a.start < t1 + dataset.window and t0 - dataset.window < a.end
               for a in anomalies):
            hits += 1
    assert hits == len(dataset.anomalies), (
        f"only {hits}/{len(dataset.anomalies)} planted events found: "
        f"{[(a.start, a.end) for a in anomalies]} vs {dataset.anomalies}"
    )

    # the anomalous regions sit well below the average density
    for t0, t1 in dataset.anomalies:
        assert curve[t0:t1].mean() < 0.7 * curve.mean()

    results(
        "fig01_video_density",
        "\n".join(
            [
                f"video series, length {dataset.length}, "
                f"planted events at {dataset.anomalies}",
                "series  | " + sparkline(dataset.series),
                "density | " + density_strip(curve),
                "truth   | " + marker_line(dataset.length, dataset.anomalies),
                "found   | " + marker_line(
                    dataset.length, [(a.start, a.end) for a in anomalies]
                ),
                f"curve built in linear time: {len(detector.result.intervals)} "
                f"rule intervals over {dataset.length} points",
                f"density at events: "
                f"{[round(float(curve[t0:t1].mean()), 2) for t0, t1 in dataset.anomalies]} "
                f"vs series mean {curve.mean():.2f}",
            ]
        ),
    )

    figure = FigurePlot(dataset.length)
    figure.title = "Figure 1: video series and rule density curve"
    truth_bands = [(t0, t1, COLOR_BAND) for t0, t1 in dataset.anomalies]
    found_bands = [(a.start, a.end, COLOR_BAND_ALT) for a in anomalies]
    figure.add_line_panel("video series (truth bands)", dataset.series,
                          bands=truth_bands)
    figure.add_line_panel("rule density curve (found bands)", curve,
                          bands=found_bands, steps=True, color="#7c3aed")
    figures("fig01_video_density", figure.render())

"""Pruning-power benchmark for the admissible lower-bound layer.

Runs every discord engine with ``prune=False`` and ``prune=True`` on
the paper's synthetic stand-in datasets, verifies the results are
bit-identical (same discords, same logical distance-call counts), and
records the counter's split ledger in ``BENCH_pruning.json``:

``pruning_rate``
    ``pruned / calls`` — the fraction of candidate pairs whose true
    distance kernel was skipped because a SAX/PAA lower bound certified
    they could not matter.  This equals the *true-call reduction*,
    since ``calls`` is invariant under pruning.
``lb_calls``
    Physical lower-bound evaluations — the price paid for the skips
    (each costs a table lookup plus an O(paa_size) reduction, versus an
    O(window) kernel).
``wall_seconds``
    Honest wall times for both modes.  On the kernel backend the
    unpruned path evaluates whole blocks with one matrix product, so a
    high pruning rate does not always translate into wall-clock wins at
    these (small, CI-sized) scales; the paper's cost metric — and this
    benchmark's acceptance target — is the number of true distance
    calls, which dominates at paper scale and for any expensive
    distance.

Acceptance targets: >= 40 % true-call reduction for HOTSAX and >= 25 %
for RRA on at least one recorded configuration, with every ledger
reconciling exactly (``calls == true_calls + pruned``).

Invocations::

    PYTHONPATH=src python benchmarks/bench_pruning.py           # full
    PYTHONPATH=src python benchmarks/bench_pruning.py --quick   # CI smoke

Running under pytest (``pytest benchmarks/bench_pruning.py``) executes
the quick configuration and asserts the invariants.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

import numpy as np

from repro.core.pipeline import GrammarAnomalyDetector
from repro.core.rra import find_discords
from repro.datasets.ecg import synthetic_ecg
from repro.datasets.power import dutch_power_demand_like
from repro.discord.brute_force import brute_force_discords
from repro.discord.haar import haar_discords
from repro.discord.hotsax import hotsax_discords
from repro.timeseries.distance import DistanceCounter

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_pruning.json"

HOTSAX_TARGET = 0.40
RRA_TARGET = 0.25


def _fingerprint(discords) -> list:
    return [(d.start, d.end, d.rank, round(d.score, 12)) for d in discords]


def _measure(label: str, runner) -> dict:
    """Run *runner(prune, counter)* both ways; verify and package.

    ``runner`` must return a discord list and thread the supplied
    counter through the search.
    """
    base_counter = DistanceCounter()
    start = time.perf_counter()
    base = _fingerprint(runner(False, base_counter))
    wall_unpruned = time.perf_counter() - start

    counter = DistanceCounter()
    start = time.perf_counter()
    pruned = _fingerprint(runner(True, counter))
    wall_pruned = time.perf_counter() - start

    if base != pruned:
        raise AssertionError(f"{label}: pruned results diverged")
    if counter.calls != base_counter.calls:
        raise AssertionError(
            f"{label}: logical call count changed under pruning "
            f"({counter.calls} vs {base_counter.calls})"
        )
    if counter.true_calls + counter.pruned != counter.calls:
        raise AssertionError(f"{label}: ledger does not reconcile")

    rate = counter.pruned / counter.calls if counter.calls else 0.0
    entry = {
        "calls": counter.calls,
        "true_calls": counter.true_calls,
        "pruned": counter.pruned,
        "lb_calls": counter.lb_calls,
        "pruning_rate": round(rate, 4),
        "wall_seconds_unpruned": round(wall_unpruned, 4),
        "wall_seconds_pruned": round(wall_pruned, 4),
        "results_identical": True,
    }
    print(
        f"{label:34s} calls {counter.calls:>9d}  "
        f"true {counter.true_calls:>9d}  pruned {rate:6.1%}  "
        f"wall {wall_unpruned:6.2f}s -> {wall_pruned:6.2f}s"
    )
    return entry


def run(quick: bool = False) -> dict:
    """Execute the benchmark matrix; returns the report dict."""
    if quick:
        ecg = synthetic_ecg(num_beats=20, anomaly_beats=(12,))
        power = dutch_power_demand_like(
            weeks=3, holiday_weeks=((1, 2),), window=150
        )
        num_discords = 2
        brute_series = power.series[:900]
    else:
        ecg = synthetic_ecg(num_beats=60, anomaly_beats=(12, 25, 40))
        power = dutch_power_demand_like(
            weeks=6, holiday_weeks=((3, 2),), window=300
        )
        num_discords = 3
        brute_series = power.series[:2400]

    engines: dict = {}

    def run_hotsax(prune, counter, **overrides):
        return hotsax_discords(
            power.series, power.window, num_discords=num_discords,
            counter=counter, rng=np.random.default_rng(0), prune=prune,
            **overrides,
        ).discords

    def run_hotsax_ecg(prune, counter, **overrides):
        return hotsax_discords(
            ecg.series, ecg.window, num_discords=num_discords,
            counter=counter, rng=np.random.default_rng(0), prune=prune,
            **overrides,
        ).discords

    engines["hotsax"] = {
        # Reusing the bucketing discretization makes stage 1 free but
        # coarse; finer pruning-only grids pay one extra PAA pass (and
        # an O(paa_size) term per bound evaluation — still far below
        # the O(window) kernel) and prune much harder.  All recorded.
        "bucket_discretization": _measure(
            "hotsax power (bucket words reused)", run_hotsax
        ),
        "fine_discretization": _measure(
            "hotsax power (prune grid 8x8)",
            lambda prune, counter: run_hotsax(
                prune, counter, prune_paa_size=8, prune_alphabet_size=8
            ),
        ),
        "ecg_fine_discretization": _measure(
            "hotsax ecg (prune grid 16x8)",
            lambda prune, counter: run_hotsax_ecg(
                prune, counter, prune_paa_size=16, prune_alphabet_size=8
            ),
        ),
    }

    engines["haar"] = {
        "default": _measure(
            "haar",
            lambda prune, counter: haar_discords(
                power.series, power.window, num_discords=num_discords,
                counter=counter, rng=np.random.default_rng(0), prune=prune,
            ).discords,
        )
    }

    engines["brute_force"] = {
        "default": _measure(
            "brute_force (early abandon)",
            lambda prune, counter: brute_force_discords(
                brute_series, power.window, num_discords=1,
                counter=counter, prune=prune,
            ).discords,
        )
    }

    detector = GrammarAnomalyDetector(
        ecg.window, ecg.paa_size, ecg.alphabet_size
    )
    fitted = detector.fit(ecg.series)

    engines["rra"] = {
        "default": _measure(
            "rra",
            lambda prune, counter: find_discords(
                ecg.series, fitted.candidates, num_discords=num_discords,
                counter=counter, rng=np.random.default_rng(0), prune=prune,
            ).discords,
        )
    }

    hotsax_best = max(
        entry["pruning_rate"] for entry in engines["hotsax"].values()
    )
    rra_best = max(entry["pruning_rate"] for entry in engines["rra"].values())
    report = {
        "mode": "quick" if quick else "full",
        "cpu_count": os.cpu_count(),
        "note": (
            "pruning_rate == pruned/calls == true-call reduction (the "
            "logical call count is invariant under pruning); wall times "
            "are machine-dependent and, at these CI-sized scales, the "
            "kernel backend's unpruned block products can outrun the "
            "pruned scan — the acceptance metric is true distance calls"
        ),
        "datasets": {
            "power": {"length": int(power.length), "window": int(power.window)},
            "ecg": {
                "length": int(ecg.length),
                "window": int(ecg.window),
                "candidates": len(fitted.candidates),
            },
            "brute_force_series_length": int(brute_series.size),
        },
        "engines": engines,
        "hotsax_best_reduction": hotsax_best,
        "rra_best_reduction": rra_best,
        "targets": {"hotsax": HOTSAX_TARGET, "rra": RRA_TARGET},
        "meets_targets": (
            hotsax_best >= HOTSAX_TARGET and rra_best >= RRA_TARGET
        ),
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small datasets, suitable as a CI smoke test",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[report saved to {args.output}]")
    print(
        f"best reductions: hotsax {report['hotsax_best_reduction']:.1%} "
        f"(target {HOTSAX_TARGET:.0%}), rra "
        f"{report['rra_best_reduction']:.1%} (target {RRA_TARGET:.0%})"
    )
    if not report["meets_targets"]:
        print("PRUNING TARGETS NOT MET")
        return 1
    return 0


def test_pruning_quick_smoke(tmp_path):
    """Pytest entry: quick run, identical results, ledgers reconcile."""
    report = run(quick=True)
    path = tmp_path / "BENCH_pruning.json"
    path.write_text(json.dumps(report, indent=2))
    for engine in report["engines"].values():
        for entry in engine.values():
            assert entry["results_identical"]
            assert entry["true_calls"] + entry["pruned"] == entry["calls"]
            assert entry["pruned"] > 0
    assert report["rra_best_reduction"] > 0


if __name__ == "__main__":
    raise SystemExit(main())

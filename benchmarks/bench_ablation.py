"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper artifact — these quantify the load-bearing pieces of the
pipeline on the ECG stand-in:

* **gap candidates** — RRA without the frequency-0 "uncovered token run"
  candidates (Section 4.2's 'subsequences that do not form any rule')
  loses the anomaly: anomalous tokens, by definition, join no rule.
* **numerosity reduction** — turning it off explodes the token stream
  and the grammar, and destroys variable-length spans.
* **grammar compressor** — Sequitur vs Re-Pair as the rule source: both
  support the pipeline (the approach is compressor-agnostic).
* **outer-loop ordering** — RRA's rarest-first ordering vs a worst-case
  (most-frequent-first) ordering: the heuristic saves distance calls.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import GrammarAnomalyDetector
from repro.core.rra import find_discords
from repro.datasets import ecg_qtdb_0606_like
from repro.grammar.intervals import RuleInterval
from repro.sax.discretize import NumerosityReduction


def _dataset():
    return ecg_qtdb_0606_like()


def test_ablation_gap_candidates(benchmark, results):
    """Without gap candidates the anomaly can vanish from the search."""
    dataset = _dataset()

    def run():
        detector = GrammarAnomalyDetector(
            dataset.window, dataset.paa_size, dataset.alphabet_size
        )
        fitted = detector.fit(dataset.series)
        with_gaps = find_discords(
            dataset.series, fitted.candidates, num_discords=1,
            rng=np.random.default_rng(0),
        )
        without_gaps = find_discords(
            dataset.series, fitted.intervals, num_discords=1,
            rng=np.random.default_rng(0),
        )
        return fitted, with_gaps, without_gaps

    fitted, with_gaps, without_gaps = benchmark.pedantic(run, rounds=1, iterations=1)

    hit_with = dataset.contains_hit(
        with_gaps.best.start, with_gaps.best.end, min_overlap=0.3
    )
    hit_without = without_gaps.best is not None and dataset.contains_hit(
        without_gaps.best.start, without_gaps.best.end, min_overlap=0.3
    )
    assert hit_with, "full candidate set must find the anomaly"

    results(
        "ablation_gap_candidates",
        "\n".join(
            [
                f"candidates: {len(fitted.intervals)} rule intervals + "
                f"{len(fitted.gaps)} gaps",
                f"with gaps:    best [{with_gaps.best.start}, "
                f"{with_gaps.best.end}) -> {'HIT' if hit_with else 'miss'}",
                f"without gaps: best "
                f"{f'[{without_gaps.best.start}, {without_gaps.best.end})' if without_gaps.best else 'none'}"
                f" -> {'HIT' if hit_without else 'miss'}",
                "gap candidates are what make anomalous (rule-free) tokens "
                "reachable",
            ]
        ),
    )


def test_ablation_numerosity_reduction(benchmark, results):
    """Numerosity reduction shrinks the grammar drastically."""
    dataset = _dataset()

    def run():
        outcomes = {}
        for strategy in (NumerosityReduction.EXACT, NumerosityReduction.NONE):
            detector = GrammarAnomalyDetector(
                dataset.window, dataset.paa_size, dataset.alphabet_size,
                numerosity_reduction=strategy,
            )
            fitted = detector.fit(dataset.series)
            outcomes[strategy.value] = {
                "tokens": len(fitted.discretization),
                "rules": len(fitted.grammar),
                "size": fitted.grammar.grammar_size(),
            }
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = outcomes["exact"]
    none = outcomes["none"]
    assert exact["tokens"] < none["tokens"] / 2, (
        "numerosity reduction should remove most consecutive duplicates"
    )
    results(
        "ablation_numerosity",
        "\n".join(
            [
                f"{'strategy':>10s} {'tokens':>8s} {'rules':>7s} {'size':>7s}",
                f"{'EXACT':>10s} {exact['tokens']:>8d} {exact['rules']:>7d} "
                f"{exact['size']:>7d}",
                f"{'NONE':>10s} {none['tokens']:>8d} {none['rules']:>7d} "
                f"{none['size']:>7d}",
                "reduction keeps one token per shape change — the mechanism "
                "behind variable-length rule spans (paper §3.2)",
            ]
        ),
    )


def test_ablation_compressor(benchmark, results):
    """Sequitur vs Re-Pair: the pipeline is compressor-agnostic."""
    dataset = _dataset()

    def run():
        outcomes = {}
        for algorithm in ("sequitur", "repair"):
            detector = GrammarAnomalyDetector(
                dataset.window, dataset.paa_size, dataset.alphabet_size,
                grammar_algorithm=algorithm,
            )
            fitted = detector.fit(dataset.series)
            best = detector.discords(num_discords=1).best
            outcomes[algorithm] = {
                "size": fitted.grammar.grammar_size(),
                "rules": len(fitted.grammar),
                "best": (best.start, best.end) if best else None,
                "hit": best is not None and dataset.contains_hit(
                    best.start, best.end, min_overlap=0.3
                ),
            }
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcomes["sequitur"]["hit"], "Sequitur pipeline must hit"
    assert outcomes["repair"]["hit"], "Re-Pair pipeline must hit"
    results(
        "ablation_compressor",
        "\n".join(
            f"{name:>9s}: grammar size {o['size']:>5d}, rules {o['rules']:>4d}, "
            f"best discord {o['best']} -> {'HIT' if o['hit'] else 'miss'}"
            for name, o in outcomes.items()
        ),
    )


def test_ablation_loop_orderings(benchmark, results):
    """The grammar-driven loop orderings are pruning heuristics.

    Ablating the *inner* same-rule-first ordering (by giving every
    candidate a unique rule id, so no same-rule group exists) must cost
    extra distance calls: the quick small-distance match that triggers
    early abandoning is found later.  The *outer* rarest-first ordering
    is compared observationally against its adversarial inversion —
    on small candidate sets the inner heuristic dominates, so the outer
    effect can go either way (both are reported).
    """
    dataset = _dataset()

    def run():
        detector = GrammarAnomalyDetector(
            dataset.window, dataset.paa_size, dataset.alphabet_size
        )
        fitted = detector.fit(dataset.series)
        paper = find_discords(
            dataset.series, fitted.candidates, num_discords=1,
            rng=np.random.default_rng(0),
        )
        # Ablate the inner heuristic: unique rule ids -> no same-rule group.
        ungrouped = [
            RuleInterval(10_000 + i, iv.start, iv.end, usage=iv.usage)
            for i, iv in enumerate(fitted.candidates)
        ]
        no_inner = find_discords(
            dataset.series, ungrouped, num_discords=1,
            rng=np.random.default_rng(0),
        )
        # Invert the outer ordering: frequent rules first.
        inverted = [
            RuleInterval(iv.rule_id, iv.start, iv.end, usage=10_000 - iv.usage)
            for iv in fitted.candidates
        ]
        frequent_first = find_discords(
            dataset.series, inverted, num_discords=1,
            rng=np.random.default_rng(0),
        )
        return paper, no_inner, frequent_first

    paper, no_inner, frequent_first = benchmark.pedantic(run, rounds=1, iterations=1)

    # all orderings find the same discord (they are pruning heuristics)
    assert (paper.best.start, paper.best.end) == (
        no_inner.best.start, no_inner.best.end,
    ) == (frequent_first.best.start, frequent_first.best.end)
    # the inner same-rule-first heuristic strictly saves calls
    assert paper.distance_calls < no_inner.distance_calls

    inner_saving = 100.0 * (1 - paper.distance_calls / no_inner.distance_calls)
    results(
        "ablation_loop_orderings",
        "\n".join(
            [
                f"paper orderings:         {paper.distance_calls} calls",
                f"no same-rule inner:      {no_inner.distance_calls} calls "
                f"(+{no_inner.distance_calls - paper.distance_calls})",
                f"inverted outer ordering: {frequent_first.distance_calls} calls",
                f"the inner same-rule-first heuristic saves "
                f"{inner_saving:.1f}% of calls",
            ]
        ),
    )

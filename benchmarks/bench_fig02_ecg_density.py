"""Figure 2: anomaly discovery in the ECG qtdb-0606 dataset.

Three panels: (top) the ECG with one anomalous heartbeat, (middle) the
rule density curve whose *global minimum* marks the anomaly, (bottom)
the nearest-non-self-match distances of the rule-corresponding
subsequences, confirming the RRA discord has the largest distance.

The figure caption's discretization parameters are W=100, P=9, A=5; for
the same dataset Table 1 uses W=120, P=4, A=4.  We evaluate the density
panel at the caption's parameters and the discord panel at Table 1's
(on our synthetic stand-in, P=9 over-fragments the grammar for the
distance-based search — the parameter-sensitivity phenomenon Section
5.2 discusses).
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets import ecg_qtdb_0606_like
from repro.visualization import density_strip, marker_line, sparkline
from repro.visualization.svg import COLOR_BAND, FigurePlot

CAPTION = (100, 9, 5)   # figure caption parameters (density panel)
TABLE1 = (120, 4, 4)    # Table 1 parameters (discord panel)


def _run():
    dataset = ecg_qtdb_0606_like()
    density_detector = GrammarAnomalyDetector(*CAPTION)
    density_detector.fit(dataset.series)

    discord_detector = GrammarAnomalyDetector(*TABLE1)
    discord_detector.fit(dataset.series)
    rra = discord_detector.discords(num_discords=1)
    profile = discord_detector.nn_distance_profile()
    return dataset, density_detector, rra, profile


def test_fig02_density_minimum_marks_the_anomalous_heartbeat(
    benchmark, results, figures
):
    dataset, density_detector, rra, profile = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    (t0, t1), = dataset.anomalies
    window = CAPTION[0]
    curve = density_detector.density_curve().astype(float)

    # middle panel: interior global minimum falls at the true anomaly
    interior = curve[window:-window]
    argmin = int(np.argmin(interior)) + window
    assert t0 - window <= argmin <= t1 + window, (
        f"density minimum at {argmin}, truth [{t0}, {t1})"
    )

    # bottom panel: the discord's NN distance is the profile's maximum
    finite = [(iv, d) for iv, d in profile if np.isfinite(d)]
    max_iv, max_d = max(finite, key=lambda x: x[1])
    best = rra.best
    assert best.nn_distance >= max_d - 1e-9

    # and the discord overlaps the expert-annotated anomaly
    assert dataset.contains_hit(best.start, best.end, min_overlap=0.3)

    results(
        "fig02_ecg_density",
        "\n".join(
            [
                f"ECG qtdb-0606-like, length {dataset.length}",
                "ECG     | " + sparkline(dataset.series),
                "density | " + density_strip(curve)
                + f"   (W={CAPTION[0]} P={CAPTION[1]} A={CAPTION[2]})",
                "truth   | " + marker_line(dataset.length, [(t0, t1)]),
                f"density global minimum (interior) at point {argmin}; "
                f"truth [{t0}, {t1})",
                f"RRA discord (W={TABLE1[0]} P={TABLE1[1]} A={TABLE1[2]}): "
                f"[{best.start}, {best.end}) length {best.length}, "
                f"NN distance {best.nn_distance:.4f} "
                f"({rra.distance_calls} distance calls)",
                f"largest NN distance among {len(finite)} candidates: "
                f"{max_d:.4f} at [{max_iv.start}, {max_iv.end})",
            ]
        ),
    )

    figure = FigurePlot(dataset.length)
    figure.title = "Figure 2: ECG qtdb-0606 — series / density / NN distances"
    band = [(t0, t1, COLOR_BAND)]
    figure.add_line_panel("ECG (true anomaly shaded)", dataset.series,
                          bands=band)
    figure.add_line_panel("Sequitur rule density", curve, bands=band,
                          steps=True, color="#7c3aed")
    figure.add_stem_panel(
        "non-self NN distance per rule subsequence",
        [(iv.start, d) for iv, d in finite],
        bands=band,
    )
    figures("fig02_ecg_density", figure.render())

"""Speedup benchmark for the grammar front half.

Measures three fast-vs-legacy ratios and records them in
``BENCH_grammar.json``:

``induction_speedup``
    Sequitur induction over a 100k-token SAX word stream (tokens
    produced by the real discretizer over synthetic sinusoid+noise+drift
    series): the interned-token engine — the C core when a system
    compiler is available, the pure-Python array engine otherwise — vs
    the preserved object-based reference
    (:func:`repro.grammar.legacy.induce_grammar_legacy`).  Target
    **>= 4x** (the C core typically lands 4–5x; the report records
    which engine ran).

``density_speedup``
    Rule-density-curve construction from 10,000 rule intervals over a
    50k-point series (paper-scale: the datasets in the paper run
    ~15k–45k points): the vectorized ``bincount``/``cumsum``
    accumulation over the pipeline's :class:`RuleIntervalList` (cached
    endpoint arrays) vs the seed implementation's per-interval Python
    loop (reproduced verbatim here).  The one-off endpoint-array build
    is reported separately as ``cold_first_call_seconds``.  Target
    **>= 10x**.

``sweep_speedup``
    The end-to-end sweep front half — discretize, induce, project
    intervals, build the density curve — over a small parameter grid,
    distance search excluded.  Both sides share the windowed-PAA matrix
    per ``(window, paa_size)`` pair exactly as the pre-optimization
    sweep did, so the ratio isolates this PR's changes.  Target
    **>= 2x**.

Every fast result is asserted equal to its legacy counterpart before
any ratio is reported — grammars, interval lists, and curves must be
bit-identical, because the whole point of the fast path is that nothing
downstream can tell the difference.  Wall times are best-of-``repeats``
with a ``gc.collect()`` between measurements (grammar freezing allocates
~1e5 small objects; collector pauses otherwise leak between sides).
The honest caveat for 1-CPU CI containers: both sides slow down roughly
equally (all compared code is single-threaded), so the ratios transfer;
absolute seconds do not.

Invocations::

    PYTHONPATH=src python benchmarks/bench_grammar.py           # full
    PYTHONPATH=src python benchmarks/bench_grammar.py --quick   # CI smoke

Exit status 1 when a speedup target is missed.  Running under pytest
executes the quick configuration and asserts the equivalences plus
report structure.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import time

import numpy as np

from repro.cache import SearchContext
from repro.core.rule_density import rule_density_curve
from repro.grammar import ccore
from repro.grammar.intervals import (
    RuleInterval,
    RuleIntervalList,
    rule_intervals,
)
from repro.grammar.legacy import induce_grammar_legacy
from repro.grammar.sequitur import induce_grammar, induce_grammar_interned
from repro.sax.alphabet import breakpoints_array
from repro.sax.discretize import (
    Discretization,
    NumerosityReduction,
    SAXWord,
    _reduce,
    discretize,
    windowed_paa,
)

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_grammar.json"

INDUCTION_TARGET = 4.0
DENSITY_TARGET = 10.0
SWEEP_TARGET = 2.0


# ---------------------------------------------------------------------
# Legacy reference implementations (the seed code paths, verbatim)
# ---------------------------------------------------------------------


def _legacy_discretize(series, window, paa_size, alphabet_size):
    """The seed discretizer: per-window string building + scalar reduce."""
    paa_values = windowed_paa(series, window, paa_size)
    cuts = breakpoints_array(alphabet_size)
    letter_idx = np.searchsorted(cuts, paa_values, side="right")
    alphabet = [chr(ord("a") + i) for i in range(alphabet_size)]
    raw_words = ["".join(alphabet[i] for i in row) for row in letter_idx]
    kept = _reduce(raw_words, NumerosityReduction.EXACT, alphabet_size, window)
    words = [SAXWord(raw_words[i], i) for i in kept]
    return Discretization(
        words=words,
        window=window,
        paa_size=paa_size,
        alphabet_size=alphabet_size,
        series_length=series.size,
        strategy=NumerosityReduction.EXACT,
        raw_word_count=len(raw_words),
    )


def _legacy_rule_intervals(grammar, disc):
    """The seed projection: span_to_interval per occurrence."""
    intervals = []
    for rule in grammar:
        if rule.rule_id == 0:
            continue
        for occ in rule.occurrences:
            start, end = disc.span_to_interval(occ.start, occ.end)
            intervals.append(RuleInterval(rule.rule_id, start, end, usage=rule.usage))
    intervals.sort(key=lambda iv: (iv.start, iv.end, iv.rule_id))
    return intervals


def _legacy_density_curve(intervals, series_length):
    """The seed accumulation: difference array via a per-interval loop."""
    diff = np.zeros(series_length + 1, dtype=np.int64)
    covering = 0
    for iv in intervals:
        if iv.start >= series_length:
            continue
        covering += 1
        diff[iv.start] += 1
        diff[min(iv.end, series_length)] -= 1
    return np.cumsum(diff[:-1])


# ---------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------


def _sax_token_stream(total_tokens: int) -> list[str]:
    """A realistic SAX word stream: discretized sinusoid + noise + drift."""
    rng = np.random.default_rng(42)
    tokens: list[str] = []
    while len(tokens) < total_tokens:
        n = 20_000
        t = np.arange(n)
        series = (
            np.sin(2 * np.pi * t / 150)
            + 0.35 * rng.standard_normal(n)
            + np.cumsum(0.002 * rng.standard_normal(n))
        )
        tokens.extend(discretize(series, 100, 4, 4).tokens())
    return tokens[:total_tokens]


def _synthetic_intervals(count: int, series_length: int) -> list[RuleInterval]:
    """Deterministic interval pool shaped like real rule projections."""
    rng = np.random.default_rng(7)
    starts = rng.integers(0, series_length - 1, size=count)
    lengths = rng.integers(50, 400, size=count)
    return [
        RuleInterval(
            int(i % 97) + 1,
            int(s),
            int(min(s + ln, series_length + 25)),
            usage=int(i % 11) + 2,
        )
        for i, (s, ln) in enumerate(zip(starts.tolist(), lengths.tolist()))
    ]


def _sweep_series(length: int) -> np.ndarray:
    rng = np.random.default_rng(3)
    t = np.arange(length)
    series = np.sin(2 * np.pi * t / 180) + 0.25 * rng.standard_normal(length)
    series[length // 2 : length // 2 + 240] += 1.8  # plant an anomaly
    return series


def _best_of(fn, repeats: int):
    """Best wall time of *repeats* runs; returns (result, seconds)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return result, best


# ---------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------


def bench_induction(total_tokens: int, repeats: int) -> dict:
    tokens = _sax_token_stream(total_tokens)
    legacy, legacy_s = _best_of(lambda: induce_grammar_legacy(tokens), repeats)
    fast, fast_s = _best_of(lambda: induce_grammar(tokens), repeats)
    assert fast == legacy, "fast induction diverged from the legacy engine"
    speedup = legacy_s / fast_s if fast_s > 0 else float("inf")
    entry = {
        "tokens": total_tokens,
        "distinct_tokens": len(set(tokens)),
        "rules": len(fast.rules),
        "engine": "c" if ccore.load() is not None else "python",
        "legacy_seconds": round(legacy_s, 4),
        "fast_seconds": round(fast_s, 4),
        "speedup": round(speedup, 2),
        "target_speedup": INDUCTION_TARGET,
        "meets_target": speedup >= INDUCTION_TARGET,
    }
    print(
        f"induction ({entry['engine']})       legacy {legacy_s:8.3f}s   fast "
        f"{fast_s:8.3f}s   speedup {speedup:6.2f}x   rules {len(fast.rules)}"
    )
    return entry


def bench_density(num_intervals: int, series_length: int, repeats: int) -> dict:
    """Density-curve accumulation, measured as the pipeline runs it.

    The fast side consumes a :class:`RuleIntervalList` — the type
    :func:`rule_intervals` actually returns — whose endpoint arrays are
    built once per projection and then shared by the density curve, the
    gap scan, and every context-memoized refit of the same cell.  The
    one-off array build is timed separately and reported as
    ``cold_first_call_seconds``; the speedup ratio covers the
    steady-state accumulation, which is what repeated fits pay.
    """
    intervals = RuleIntervalList(_synthetic_intervals(num_intervals, series_length))
    gc.collect()
    cold_start = time.perf_counter()
    cold = rule_density_curve(intervals, series_length)
    cold_s = time.perf_counter() - cold_start
    legacy, legacy_s = _best_of(
        lambda: _legacy_density_curve(intervals, series_length), repeats
    )
    fast, fast_s = _best_of(
        lambda: rule_density_curve(intervals, series_length), repeats
    )
    assert np.array_equal(fast, legacy), "density curves diverged"
    assert np.array_equal(cold, legacy), "cold density curve diverged"
    speedup = legacy_s / fast_s if fast_s > 0 else float("inf")
    entry = {
        "intervals": num_intervals,
        "series_length": series_length,
        "cold_first_call_seconds": round(cold_s, 4),
        "legacy_seconds": round(legacy_s, 4),
        "fast_seconds": round(fast_s, 4),
        "speedup": round(speedup, 2),
        "target_speedup": DENSITY_TARGET,
        "meets_target": speedup >= DENSITY_TARGET,
    }
    print(
        f"density curve             legacy {legacy_s:8.3f}s   fast "
        f"{fast_s:8.3f}s   speedup {speedup:6.2f}x   intervals {num_intervals}"
    )
    return entry


def bench_sweep(series_length: int, repeats: int) -> dict:
    """End-to-end sweep front half over a small grid, search excluded."""
    series = _sweep_series(series_length)
    windows = (100, 150)
    paa_sizes = (4, 6)
    alphabet_sizes = (4, 6)
    cells = [
        (w, p, a) for w in windows for p in paa_sizes for a in alphabet_sizes
    ]

    def legacy_sweep():
        out = []
        for w in windows:
            for p in paa_sizes:
                paa_values = windowed_paa(series, w, p)
                cuts_free = paa_values  # shared per pair, as the seed sweep did
                for a in alphabet_sizes:
                    cuts = breakpoints_array(a)
                    letter_idx = np.searchsorted(cuts, cuts_free, side="right")
                    alphabet = [chr(ord("a") + i) for i in range(a)]
                    raw = ["".join(alphabet[i] for i in row) for row in letter_idx]
                    kept = _reduce(raw, NumerosityReduction.EXACT, a, w)
                    disc = Discretization(
                        words=[SAXWord(raw[i], i) for i in kept],
                        window=w,
                        paa_size=p,
                        alphabet_size=a,
                        series_length=series.size,
                        strategy=NumerosityReduction.EXACT,
                        raw_word_count=len(raw),
                    )
                    grammar = induce_grammar_legacy(disc.tokens())
                    intervals = _legacy_rule_intervals(grammar, disc)
                    curve = _legacy_density_curve(intervals, series.size)
                    out.append((disc.tokens(), grammar, intervals, curve))
        return out

    def fast_sweep():
        context = SearchContext()
        out = []
        for w, p, a in cells:
            disc, grammar, intervals, _gaps = context.grammar_front(
                series, w, p, a, NumerosityReduction.EXACT
            )
            curve = rule_density_curve(intervals, series.size)
            out.append((disc.tokens(), grammar, intervals, curve))
        return out

    legacy, legacy_s = _best_of(legacy_sweep, repeats)
    fast, fast_s = _best_of(fast_sweep, repeats)
    assert len(legacy) == len(fast)
    for (lt, lg, li, lc), (ft, fg, fi, fc) in zip(legacy, fast):
        assert lt == ft, "sweep token streams diverged"
        assert lg == fg, "sweep grammars diverged"
        assert li == fi, "sweep interval lists diverged"
        assert np.array_equal(lc, fc), "sweep density curves diverged"
    speedup = legacy_s / fast_s if fast_s > 0 else float("inf")
    entry = {
        "series_length": series_length,
        "grid_cells": len(cells),
        "legacy_seconds": round(legacy_s, 4),
        "fast_seconds": round(fast_s, 4),
        "speedup": round(speedup, 2),
        "target_speedup": SWEEP_TARGET,
        "meets_target": speedup >= SWEEP_TARGET,
    }
    print(
        f"sweep front half          legacy {legacy_s:8.3f}s   fast "
        f"{fast_s:8.3f}s   speedup {speedup:6.2f}x   cells {len(cells)}"
    )
    return entry


def run(quick: bool = False) -> dict:
    if quick:
        tokens, repeats = 40_000, 2
        sweep_length = 8_000
    else:
        tokens, repeats = 100_000, 3
        sweep_length = 20_000
    report = {
        "mode": "quick" if quick else "full",
        "engine": "c" if ccore.load() is not None else "python",
        "notes": (
            "single-threaded on both sides; 1-CPU CI slows absolute times, "
            "not ratios"
        ),
        "benchmarks": {
            "induction": bench_induction(tokens, repeats),
            "density_curve": bench_density(10_000, 50_000, max(repeats, 5)),
            "sweep_front_half": bench_sweep(sweep_length, max(repeats, 4)),
        },
    }
    report["all_targets_met"] = all(
        entry["meets_target"] for entry in report["benchmarks"].values()
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller token stream, suitable as a CI smoke test",
    )
    parser.add_argument(
        "--lenient",
        action="store_true",
        help=(
            "do not fail on missed speedup targets (CI runners are too "
            "noisy to gate on ratios); equivalence assertions still fail"
        ),
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[report saved to {args.output}]")
    if not report["all_targets_met"]:
        print("SPEEDUP TARGETS NOT MET")
        if not args.lenient:
            return 1
    return 0


def test_grammar_quick_smoke(tmp_path):
    """Pytest entry: quick run, equivalences hold, report written."""
    report = run(quick=True)
    path = tmp_path / "BENCH_grammar.json"
    path.write_text(json.dumps(report, indent=2))
    for entry in report["benchmarks"].values():
        assert entry["fast_seconds"] > 0
        assert entry["legacy_seconds"] > 0


if __name__ == "__main__":
    raise SystemExit(main())

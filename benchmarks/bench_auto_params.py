"""Auto-parameter-selection bench (extension; paper §5.2 + future work).

For every Table 1 dataset family, let :func:`suggest_parameters` choose
(window, PAA, alphabet) from the data alone — no ground truth — and
check whether a detector configured with the top suggestion recovers
the planted anomaly.  The paper's "context" rule (window ≈ one
phenomenon cycle) is operationalized by the dominant-period seed; the
bench measures how often it suffices.
"""

from __future__ import annotations

from repro.core.auto_params import dominant_period, suggest_parameters
from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets import (
    ecg_qtdb_0606_like,
    respiration_like,
    tek_like,
    video_gun_like,
)

FAMILIES = [
    ("ecg", lambda: ecg_qtdb_0606_like()),
    ("video", lambda: video_gun_like(num_cycles=12, anomaly_cycles=(6,))),
    ("tek14", lambda: tek_like("TEK14")),
    ("tek17", lambda: tek_like("TEK17", seed=17)),
    ("respiration", lambda: respiration_like()),
]


def _run():
    rows = []
    for name, factory in FAMILIES:
        dataset = factory()
        period = dominant_period(dataset.series)
        suggestions = suggest_parameters(dataset.series, top_k=1)
        if not suggestions:
            rows.append((name, dataset, period, None, False))
            continue
        best = suggestions[0]
        detector = GrammarAnomalyDetector(*best.as_tuple())
        detector.fit(dataset.series)
        discord = detector.discords(num_discords=1).best
        hit = discord is not None and dataset.contains_hit(
            discord.start, discord.end, min_overlap=0.3
        )
        rows.append((name, dataset, period, best, hit))
    return rows


def test_auto_parameters_recover_anomalies(benchmark, results):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'dataset':>12s} {'period':>7s} {'manual W':>9s} "
        f"{'auto (W,P,A)':>15s} {'score':>6s} {'RRA hit':>8s}"
    ]
    hits = 0
    for name, dataset, period, best, hit in rows:
        hits += bool(hit)
        auto = f"({best.window},{best.paa_size},{best.alphabet_size})" if best else "-"
        score = f"{best.score:.2f}" if best else "-"
        lines.append(
            f"{name:>12s} {str(period):>7s} {dataset.window:>9d} "
            f"{auto:>15s} {score:>6s} {'yes' if hit else 'NO':>8s}"
        )
        # the dominant period lands near the phenomenon cycle
        assert best is not None, f"{name}: no viable suggestion"

    lines.append(
        f"\nauto-chosen parameters recover the anomaly on "
        f"{hits}/{len(rows)} dataset families"
    )
    results("auto_params", "\n".join(lines))
    # the data-driven rule works on the clear majority of families
    assert hits >= len(rows) - 1

"""Kernel-vs-batch wall-time benchmark for the tiled GEMM backend.

Runs the same discord workloads through ``backend="kernel"`` (one BLAS
matrix-vector product per candidate/block) and ``backend="batch"`` (one
``A @ B.T`` GEMM per tile of candidates, through the array-API seam),
verifies the distance-call ledgers are bit-identical, and records wall
times + speedups in ``BENCH_batch.json``:

* **nn_profile** — brute force with early abandoning off: every
  candidate scans every non-trivial match, the workload the tiling is
  built for.  Target >= 2x over the kernel backend at >= 400
  candidates.
* **brute_force_pruned** — early abandoning + the admissible
  lower-bound cascade, where tile-wise row dropping and closure have to
  fight for work the kernel path already skips (no target; reported
  for honesty).
* **hotsax** — bucket-ordered scans, dominated by short early-abandoned
  inner loops (no target; the batch head phase keeps it competitive).

Honest measurement notes: wall times are best-of-two single-process
numbers on whatever CPU runs the benchmark — the container this repo is
developed in pins ONE core, so the GEMM cannot win by multithreading;
its advantage here is purely fewer, larger BLAS calls (less per-call
overhead, more cache reuse).  On a multi-core BLAS or a GPU array
namespace the gap widens; on tiny candidate sets (< ~200) the tile
setup overhead can erase it.

Invocations::

    PYTHONPATH=src python benchmarks/bench_batch.py           # full
    PYTHONPATH=src python benchmarks/bench_batch.py --quick   # CI smoke

Running under pytest (``pytest benchmarks/bench_batch.py``) executes
the quick configuration and asserts the accounting invariants.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.datasets.synthetic import sine_with_anomaly
from repro.discord.brute_force import brute_force_discord
from repro.discord.hotsax import hotsax_discords
from repro.timeseries.distance import DistanceCounter

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_batch.json"

#: Acceptance threshold: batch speedup over kernel on the NN profile
#: (full scans, >= 400 candidates).
NN_TARGET = 2.0


def _timed(fn, repeats=2):
    """Run *fn* *repeats* times; return ``(result, best_seconds)``.

    Best-of-N guards the speedup ratios against one-off scheduler noise
    on shared CI hosts; the runs are deterministic, so any result is
    representative.
    """
    result = None
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _compare(name, runner, *, target=None):
    """Run *runner(backend)* for kernel and batch; package the numbers.

    ``runner`` returns the run's full split ledger; the ledgers must be
    bit-identical across backends or the benchmark aborts — speed may
    never change logical work.
    """
    kernel_ledger, kernel_seconds = _timed(lambda: runner("kernel"))
    batch_ledger, batch_seconds = _timed(lambda: runner("batch"))
    if kernel_ledger != batch_ledger:
        raise AssertionError(
            f"{name}: ledgers diverged "
            f"(kernel={kernel_ledger}, batch={batch_ledger})"
        )
    speedup = kernel_seconds / batch_seconds if batch_seconds > 0 else float("inf")
    entry = {
        "kernel_seconds": round(kernel_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "speedup": round(speedup, 2),
        "distance_calls": kernel_ledger["calls"],
    }
    if target is not None:
        entry["target_speedup"] = target
        entry["meets_target"] = speedup >= target
    print(
        f"{name:24s} kernel {kernel_seconds:8.3f}s   batch "
        f"{batch_seconds:8.3f}s   speedup {speedup:6.2f}x   "
        f"calls {kernel_ledger['calls']}"
    )
    return entry


def run(quick: bool = False) -> dict:
    """Execute the benchmark matrix; returns the report dict."""
    if quick:
        nn = sine_with_anomaly(length=1200, period=120, seed=11)
        hot = sine_with_anomaly(length=1500, period=100, seed=13)
    else:
        nn = sine_with_anomaly(length=2400, period=120, seed=11)
        hot = sine_with_anomaly(length=4000, period=150, seed=13)
    nn_candidates = nn.series.size - nn.window + 1
    assert nn_candidates >= 400, "NN profile must exercise >= 400 candidates"

    def run_nn(backend):
        counter = DistanceCounter()
        brute_force_discord(
            nn.series, nn.window, counter=counter,
            early_abandon=False, backend=backend,
        )
        return counter.ledger()

    def run_brute_pruned(backend):
        counter = DistanceCounter()
        brute_force_discord(
            nn.series, nn.window, counter=counter,
            early_abandon=True, prune=True, backend=backend,
        )
        return counter.ledger()

    def run_hotsax(backend):
        counter = DistanceCounter()
        hotsax_discords(
            hot.series, hot.window, num_discords=2, counter=counter,
            rng=np.random.default_rng(0), backend=backend,
        )
        return counter.ledger()

    report = {
        "mode": "quick" if quick else "full",
        "notes": (
            "best-of-two wall times on a single-core container; the batch "
            "speedup comes from replacing per-candidate BLAS matvec calls "
            "with one GEMM per candidate tile, not from extra threads"
        ),
        "datasets": {
            "nn_profile": {
                "length": int(nn.series.size),
                "window": int(nn.window),
                "candidates": int(nn_candidates),
            },
            "hotsax": {
                "length": int(hot.series.size),
                "window": int(hot.window),
            },
        },
        "benchmarks": {
            "nn_profile": _compare("nn_profile", run_nn, target=NN_TARGET),
            "brute_force_pruned": _compare(
                "brute_force_pruned", run_brute_pruned
            ),
            "hotsax": _compare("hotsax", run_hotsax),
        },
    }
    report["all_targets_met"] = all(
        entry.get("meets_target", True)
        for entry in report["benchmarks"].values()
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small datasets, suitable as a CI smoke test",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[report saved to {args.output}]")
    if not report["all_targets_met"]:
        print("SPEEDUP TARGETS NOT MET")
        return 1
    return 0


def test_batch_quick_smoke(tmp_path):
    """Pytest entry: quick run, identical ledgers, report written."""
    report = run(quick=True)
    path = tmp_path / "BENCH_batch.json"
    path.write_text(json.dumps(report, indent=2))
    for entry in report["benchmarks"].values():
        assert entry["distance_calls"] > 0
        assert entry["batch_seconds"] > 0
    assert report["datasets"]["nn_profile"]["candidates"] >= 400


if __name__ == "__main__":
    raise SystemExit(main())

"""Instrumentation-overhead benchmark for the observability layer.

Runs the RRA pipeline end-to-end (fit + iterated discord search) with
metrics disabled (the default ``NullMetrics`` path) and with a live
:class:`~repro.observability.MetricsRegistry`, verifies the results and
logical call counts are bit-identical both ways, and records the wall
times in ``BENCH_observability.json``:

``overhead``
    ``enabled_seconds / disabled_seconds - 1`` — the relative cost of
    the live registry (counter bumps, histogram observes, trace
    events).  The acceptance target is **under 5 %**; the instrumented
    loops hoist their metric handles and the disabled path skips all
    bookkeeping behind one ``metrics.enabled`` check, so both modes do
    exactly the same distance work.

Each mode runs ``repeats`` times and the *minimum* wall time is
compared (minimum is the standard noise-robust estimator for
benchmarks: it is the run least disturbed by the OS).

Invocations::

    PYTHONPATH=src python benchmarks/bench_observability.py           # full
    PYTHONPATH=src python benchmarks/bench_observability.py --quick   # CI smoke

Running under pytest (``pytest benchmarks/bench_observability.py``)
executes the quick configuration and asserts bit-identity (the overhead
target is reported but not asserted under pytest — CI machines are too
noisy for a 5 % wall-clock bound to be a reliable gate).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets.synthetic import sine_with_anomaly
from repro.observability import MetricsRegistry

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_observability.json"

OVERHEAD_TARGET = 0.05


def _fingerprint(result) -> list:
    return [(d.start, d.end, d.rank, round(d.score, 12)) for d in result.discords]


def _run_once(series, window, num_discords, metrics):
    detector = GrammarAnomalyDetector(
        window=window, paa_size=4, alphabet_size=4, metrics=metrics
    )
    detector.fit(series)
    return detector.discords(num_discords=num_discords)


def _time_mode(series, window, num_discords, repeats, *, enabled):
    """Best-of-*repeats* wall time for one mode, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        metrics = MetricsRegistry() if enabled else None
        start = time.perf_counter()
        result = _run_once(series, window, num_discords, metrics)
        best = min(best, time.perf_counter() - start)
    return best, result


def run(quick: bool = False) -> dict:
    """Execute the benchmark; returns the report dict."""
    if quick:
        dataset = sine_with_anomaly(length=2000, period=100, seed=7)
        num_discords, repeats = 2, 3
    else:
        dataset = sine_with_anomaly(length=8000, period=200, seed=7)
        num_discords, repeats = 3, 5

    series, window = dataset.series, dataset.window

    disabled_seconds, plain = _time_mode(
        series, window, num_discords, repeats, enabled=False
    )
    enabled_seconds, traced = _time_mode(
        series, window, num_discords, repeats, enabled=True
    )

    identical = (
        _fingerprint(plain) == _fingerprint(traced)
        and plain.distance_calls == traced.distance_calls
    )
    overhead = enabled_seconds / disabled_seconds - 1.0

    return {
        "mode": "quick" if quick else "full",
        "cpu_count": os.cpu_count(),
        "dataset": {
            "length": int(series.size),
            "window": int(window),
            "num_discords": num_discords,
        },
        "repeats": repeats,
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "overhead": overhead,
        "overhead_target": OVERHEAD_TARGET,
        "meets_target": overhead < OVERHEAD_TARGET,
        "results_identical": identical,
        "distance_calls": int(plain.distance_calls),
        "note": (
            "overhead == enabled/disabled - 1 on best-of-N wall times; "
            "results_identical asserts discords and logical call counts "
            "match exactly between the two modes"
        ),
    }


def test_observability_overhead_quick():
    """Pytest entry point: bit-identity must hold; overhead is reported."""
    report = run(quick=True)
    assert report["results_identical"], report
    print(f"observability overhead: {report['overhead']:.2%}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset, suitable as a CI smoke test",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[report saved to {args.output}]")
    print(
        f"disabled {report['disabled_seconds']:.3f}s, "
        f"enabled {report['enabled_seconds']:.3f}s, "
        f"overhead {report['overhead']:.2%} "
        f"(target < {OVERHEAD_TARGET:.0%})"
    )
    if not report["results_identical"]:
        print("FAIL: instrumented run changed results or call counts")
        return 1
    if not report["meets_target"]:
        print("WARN: overhead above target on this machine")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

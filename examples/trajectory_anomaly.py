#!/usr/bin/env python
"""Spatial-trajectory anomaly discovery (the paper's Section 5.1).

A simulated GPS commute history is flattened to a scalar series with an
order-8 Hilbert space-filling curve and analysed with both algorithms.
The paper's finding reproduces here:

* the rule density curve pinpoints the once-taken *detour* (a path
  through otherwise unvisited cells -> its tokens join no rule);
* the best RRA discords cover the *GPS-fix-loss* segment (noisy fixes
  near familiar paths -> algorithmically similar symbols, but maximally
  discordant raw shapes).

Run:  python examples/trajectory_anomaly.py
"""

from repro import GrammarAnomalyDetector
from repro.datasets import commute_trail
from repro.trajectory import series_index_to_trail_slice
from repro.visualization import density_strip, marker_line, sparkline


def main() -> None:
    trail = commute_trail(num_trips=10, detour_trip=7, gps_loss_trip=4)
    dataset = trail.dataset
    print("simulated commute: 10 trips on a fixed route")
    print(f"  detour planted in trip 7  -> series [{trail.detour_interval[0]}, "
          f"{trail.detour_interval[1]})")
    print(f"  GPS fix lost in trip 4    -> series [{trail.gps_loss_interval[0]}, "
          f"{trail.gps_loss_interval[1]})\n")

    detector = GrammarAnomalyDetector(
        window=dataset.window, paa_size=dataset.paa_size,
        alphabet_size=dataset.alphabet_size,
    )
    detector.fit(dataset.series)

    print("Hilbert | " + sparkline(dataset.series))
    print("density | " + density_strip(detector.density_curve().astype(float)))
    print("detour  | " + marker_line(dataset.length, [trail.detour_interval]))
    print("GPS loss| " + marker_line(dataset.length, [trail.gps_loss_interval]))

    density = detector.density_anomalies(max_anomalies=3)
    print("\nrule-density minima (expected: the detour):")
    d0, d1 = trail.detour_interval
    for anomaly in density:
        hit = anomaly.start < d1 and d0 < anomaly.end
        print(f"  [{anomaly.start}, {anomaly.end})  {'<- detour' if hit else ''}")

    result = detector.discords(num_discords=3)
    print("\nRRA discords (expected: the GPS-loss segment):")
    g0, g1 = trail.gps_loss_interval
    for discord in result.discords:
        hit = discord.start < g1 and g0 < discord.end
        print(
            f"  #{discord.rank}: [{discord.start}, {discord.end}) "
            f"NN dist {discord.nn_distance:.4f}  {'<- GPS loss' if hit else ''}"
        )

    # map the best discord back onto the trail (Figures 8-9 style)
    best = result.best
    segment = series_index_to_trail_slice(trail.trail, best.start, best.end)
    lats = [p.lat for p in segment]
    lons = [p.lon for p in segment]
    print(
        f"\nbest discord covers {len(segment)} GPS fixes, "
        f"lat [{min(lats):.3f}, {max(lats):.3f}] "
        f"lon [{min(lons):.3f}, {max(lons):.3f}]"
    )


if __name__ == "__main__":
    main()

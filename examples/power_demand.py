#!/usr/bin/env python
"""Multiple variable-length discords in power-demand data (Figures 3-4).

A year-like span of weekly-periodic power demand contains three planted
"state holiday" anomalies (a weekday with weekend-shaped demand).
Iterated RRA recovers them as ranked, variable-length discords — the
paper's Figure 4 shows exactly this: Queen's Birthday, Liberation Day,
Ascension Day and Good Friday interrupting the typical week.

Run:  python examples/power_demand.py
"""

from repro import GrammarAnomalyDetector
from repro.datasets import dutch_power_demand_like
from repro.visualization import density_strip, marker_line, sparkline


def main() -> None:
    holidays = ((4, 2), (6, 0), (8, 3))  # (week, weekday) pairs
    dataset = dutch_power_demand_like(weeks=12, holiday_weeks=holidays)
    print(f"dataset: {dataset.description}")
    print(f"length {dataset.length} (12 weeks x 672 points)")
    print(f"planted holidays: {dataset.anomalies}\n")

    detector = GrammarAnomalyDetector(
        window=dataset.window,       # ~ one week of 15-min samples
        paa_size=dataset.paa_size,
        alphabet_size=dataset.alphabet_size,
    )
    detector.fit(dataset.series)

    result = detector.discords(num_discords=3)
    print(f"top-3 RRA discords ({result.distance_calls} distance calls):")
    for discord in result.discords:
        hit = dataset.contains_hit(discord.start, discord.end, min_overlap=0.2)
        print(
            f"  #{discord.rank}: [{discord.start:6d}, {discord.end:6d}) "
            f"length {discord.length:4d}  NN dist {discord.nn_distance:.4f}  "
            f"{'<- true holiday' if hit else ''}"
        )

    lengths = sorted({d.length for d in result.discords})
    print(f"\ndiscord lengths {lengths} — variable, not fixed to the window "
          f"({dataset.window})")

    print()
    print("demand  | " + sparkline(dataset.series))
    print("density | " + density_strip(detector.density_curve().astype(float)))
    print("truth   | " + marker_line(dataset.length, dataset.anomalies))
    print("found   | " + marker_line(
        dataset.length, [(d.start, d.end) for d in result.discords]
    ))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Discretization-parameter robustness study (the paper's Figure 10).

Sweeps a small (window, PAA, alphabet) grid on an ECG-like dataset with
one known anomaly and reports, per combination, whether each algorithm
recovered it — plus the two Figure 10 axes (PAA approximation distance
and grammar size).  The paper's conclusion reproduces: RRA succeeds on a
noticeably larger parameter region than the rule-density detector.

Run:  python examples/parameter_selection.py
"""

from repro import ParameterGridStudy
from repro.datasets import ecg_subtle_st_like


def main() -> None:
    dataset = ecg_subtle_st_like()
    study = ParameterGridStudy(
        dataset.series, dataset.anomalies[0], min_overlap=0.3
    )

    windows = [60, 90, 120, 160, 220]
    paa_sizes = [3, 4, 6, 9]
    alphabet_sizes = [3, 4, 6]
    print(
        f"sweeping {len(windows)}x{len(paa_sizes)}x{len(alphabet_sizes)} "
        f"parameter combinations on {dataset.name} "
        f"(truth at {dataset.anomalies[0]})...\n"
    )

    points = study.sweep(windows, paa_sizes, alphabet_sizes)

    print(f"{'W':>4s} {'P':>3s} {'A':>3s} {'approx.dist':>12s} "
          f"{'grammar':>8s} {'density':>8s} {'dens+edge':>9s} {'RRA':>5s}")
    for p in points:
        print(
            f"{p.window:>4d} {p.paa_size:>3d} {p.alphabet_size:>3d} "
            f"{p.approximation_distance:>12.3f} {p.grammar_size:>8d} "
            f"{'hit' if p.density_hit else '-':>8s} "
            f"{'hit' if p.density_hit_enhanced else '-':>9s} "
            f"{'hit' if p.rra_hit else '-':>5s}"
        )

    counts = ParameterGridStudy.success_counts(points)
    print(
        f"\nsuccess region: density (paper-faithful) "
        f"{counts['density_hits']}/{counts['total']}, "
        f"density (edge-excluded) "
        f"{counts['density_hits_enhanced']}/{counts['total']}, "
        f"RRA {counts['rra_hits']}/{counts['total']}"
    )
    if counts["rra_hits"] >= counts["density_hits"]:
        print("-> RRA's success region is larger than the paper-faithful "
              "density detector's, matching Figure 10 (7100 vs 1460).")


if __name__ == "__main__":
    main()

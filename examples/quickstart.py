#!/usr/bin/env python
"""Quickstart: find a planted anomaly in a noisy sine wave.

Demonstrates the one-class API:

    detector = GrammarAnomalyDetector(window, paa_size, alphabet_size)
    detector.fit(series)
    detector.density_anomalies()   # fast, approximate (Section 4.1)
    detector.discords()            # exact, variable-length (Section 4.2)

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GrammarAnomalyDetector
from repro.visualization import render_panels


def main() -> None:
    # --- build a toy series: 40 sine periods with a bump in the middle
    rng = np.random.default_rng(42)
    t = np.arange(4000)
    series = np.sin(2 * np.pi * t / 200) + rng.normal(0.0, 0.05, t.size)
    series[2000:2120] += 2.0 * np.exp(-0.5 * ((np.arange(120) - 60) / 20.0) ** 2)
    print("planted anomaly: points [2000, 2120)\n")

    # --- fit the grammar pipeline once
    detector = GrammarAnomalyDetector(window=100, paa_size=4, alphabet_size=4)
    detector.fit(series)
    summary = detector.summary()
    print(
        f"{summary['words_raw']} SAX words -> {summary['words_reduced']} after "
        f"numerosity reduction -> {summary['grammar_rules']} grammar rules"
    )

    # --- algorithm 1: rule density (linear time, approximate)
    density_hits = detector.density_anomalies(max_anomalies=3)
    print("\nrule-density anomalies (lowest rule coverage first):")
    for anomaly in density_hits:
        print(f"  [{anomaly.start}, {anomaly.end})  mean density {-anomaly.score:.1f}")

    # --- algorithm 2: RRA (exact, variable-length discords)
    result = detector.discords(num_discords=3)
    print(f"\nRRA discords ({result.distance_calls} distance calls):")
    for discord in result.discords:
        print(
            f"  #{discord.rank}: [{discord.start}, {discord.end}) "
            f"length {discord.length}, NN distance {discord.nn_distance:.4f}"
        )

    # --- text visualization (GrammarViz-style)
    print()
    print(
        render_panels(
            series,
            detector.density_curve(),
            [(d.start, d.end) for d in result.discords[:1]],
            title="series / rule density / best discord",
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A tour of the related-work baselines (paper Section 6).

The paper positions grammar-based discovery against three families of
prior art, all implemented in this library:

* exact discord search with ordering heuristics — HOTSAX (SAX words)
  and the Haar-coefficient variant;
* compression-based scoring — WCAD (off-the-shelf compressor);
* symbolic frequency analysis — time-series bitmaps and the VizTree
  SAX trie.

This example runs each on one dataset and prints what it sees, ending
with the grammar-based result for contrast.

Run:  python examples/related_work_tour.py
"""

from repro import GrammarAnomalyDetector
from repro.baselines import SAXTrie, bitmap_anomalies, wcad_anomalies
from repro.datasets import ecg_qtdb_0606_like
from repro.discord.haar import haar_discord
from repro.discord.hotsax import hotsax_discord


def main() -> None:
    dataset = ecg_qtdb_0606_like()
    (t0, t1), = dataset.anomalies
    print(f"dataset: {dataset.description}")
    print(f"length {dataset.length}, truth [{t0}, {t1})\n")

    def verdict(start: int, end: int) -> str:
        return "HIT" if dataset.contains_hit(start, end, min_overlap=0.3) else "miss"

    # --- exact searches with different ordering heuristics
    hotsax, hotsax_counter = hotsax_discord(
        dataset.series, dataset.window,
        paa_size=dataset.paa_size, alphabet_size=dataset.alphabet_size,
    )
    haar, haar_counter = haar_discord(dataset.series, dataset.window)
    print("exact discord searches (identical result, different call counts):")
    print(f"  HOTSAX: [{hotsax.start}, {hotsax.end}) "
          f"{verdict(hotsax.start, hotsax.end)}  "
          f"({hotsax_counter.calls} calls)")
    print(f"  Haar:   [{haar.start}, {haar.end}) "
          f"{verdict(haar.start, haar.end)}  "
          f"({haar_counter.calls} calls)")

    # --- compression scoring (WCAD)
    wcad = wcad_anomalies(dataset.series, dataset.window, num_anomalies=1)[0]
    print(f"\nWCAD (zlib window scoring): [{wcad.start}, {wcad.end}) "
          f"{verdict(wcad.start, wcad.end)}  (score {wcad.score:.0f} bytes)")

    # --- bitmap change detection
    bitmap = bitmap_anomalies(
        dataset.series, num_anomalies=1,
        lag=2 * dataset.window, lead=dataset.window, stride=4,
    )[0]
    print(f"bitmap (lead/lag subword divergence): [{bitmap.start}, "
          f"{bitmap.end}) {verdict(bitmap.start, bitmap.end)}  "
          f"(score {bitmap.score:.3f})")

    # --- the VizTree view: rare words
    trie = SAXTrie(dataset.series, dataset.window, 6, 4)
    print("\nVizTree rarest SAX words (thin branches):")
    for position, word, count in trie.anomaly_candidates(max_candidates=3):
        marker = "<- inside truth" if t0 - dataset.window <= position <= t1 else ""
        print(f"  {word} (count {count}) at {position} {marker}")

    # --- the grammar-based result, for contrast
    detector = GrammarAnomalyDetector(
        dataset.window, dataset.paa_size, dataset.alphabet_size
    )
    detector.fit(dataset.series)
    rra = detector.discords(num_discords=1)
    best = rra.best
    print(f"\nRRA (this paper): [{best.start}, {best.end}) length "
          f"{best.length} {verdict(best.start, best.end)}  "
          f"({rra.distance_calls} calls — variable length, no anomaly "
          f"length given)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Head-to-head: brute force vs HOTSAX vs RRA vs WCAD on one dataset.

Reproduces the paper's efficiency argument on a single synthetic video
dataset: all exact algorithms agree on where the anomaly is, but the
number of distance calls differs by orders of magnitude (Table 1), and
the related-work WCAD baseline needs hundreds of compressor runs for an
approximate, fixed-grid answer.

Run:  python examples/compare_algorithms.py
"""

import time

from repro import GrammarAnomalyDetector
from repro.baselines import wcad_anomalies
from repro.datasets import video_gun_like
from repro.discord.brute_force import brute_force_call_count
from repro.discord.hotsax import hotsax_discords


def main() -> None:
    dataset = video_gun_like(num_cycles=12, anomaly_cycles=(6,))
    (t0, t1), = dataset.anomalies
    print(f"dataset: {dataset.description}")
    print(f"length {dataset.length}, truth [{t0}, {t1})\n")

    def verdict(start: int, end: int) -> str:
        return "HIT" if dataset.contains_hit(start, end, min_overlap=0.3) else "miss"

    rows = []

    # brute force: closed-form call count (running it would take minutes)
    rows.append(
        ("brute force", brute_force_call_count(dataset.length, dataset.window),
         "-", "(not run; closed-form count)")
    )

    # HOTSAX
    tic = time.perf_counter()
    hotsax = hotsax_discords(
        dataset.series, dataset.window, num_discords=1,
        paa_size=dataset.paa_size, alphabet_size=dataset.alphabet_size,
    )
    hotsax_time = time.perf_counter() - tic
    best = hotsax.best
    rows.append(
        ("HOTSAX", hotsax.distance_calls, f"{hotsax_time:.2f}s",
         f"[{best.start}, {best.end}) {verdict(best.start, best.end)}")
    )

    # RRA
    tic = time.perf_counter()
    detector = GrammarAnomalyDetector(
        dataset.window, dataset.paa_size, dataset.alphabet_size
    )
    detector.fit(dataset.series)
    rra = detector.discords(num_discords=1)
    rra_time = time.perf_counter() - tic
    best = rra.best
    rows.append(
        ("RRA", rra.distance_calls, f"{rra_time:.2f}s",
         f"[{best.start}, {best.end}) len {best.length} "
         f"{verdict(best.start, best.end)}")
    )

    # WCAD (related work; approximate, window-grid answer)
    tic = time.perf_counter()
    wcad = wcad_anomalies(dataset.series, dataset.window, num_anomalies=1)[0]
    wcad_time = time.perf_counter() - tic
    rows.append(
        ("WCAD", "-", f"{wcad_time:.2f}s",
         f"[{wcad.start}, {wcad.end}) {verdict(wcad.start, wcad.end)}")
    )

    print(f"{'algorithm':<12s} {'distance calls':>16s} {'time':>8s}  result")
    for name, calls, elapsed, result in rows:
        print(f"{name:<12s} {str(calls):>16s} {elapsed:>8s}  {result}")

    reduction = 100.0 * (1 - rra.distance_calls / hotsax.distance_calls)
    print(f"\nRRA uses {reduction:.1f}% fewer distance calls than HOTSAX "
          f"(paper Table 1 reports 49-97% across datasets)")


if __name__ == "__main__":
    main()

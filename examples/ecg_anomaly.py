#!/usr/bin/env python
"""ECG anomaly discovery (the paper's Figure 2 scenario).

A synthetic electrocardiogram with one premature-ventricular-contraction-
like beat is analysed three ways, mirroring the figure's three panels:

1. the rule density curve, whose global minimum pinpoints the anomaly;
2. the RRA discord, confirming it with an explicit distance;
3. the per-candidate nearest-non-self-match profile (the bottom panel).

Run:  python examples/ecg_anomaly.py
"""

from repro import GrammarAnomalyDetector
from repro.datasets import ecg_qtdb_0606_like
from repro.visualization import density_strip, sparkline


def main() -> None:
    dataset = ecg_qtdb_0606_like()
    (true_start, true_end), = dataset.anomalies
    print(f"dataset: {dataset.description}")
    print(f"length {dataset.length}, true anomaly at [{true_start}, {true_end})\n")

    detector = GrammarAnomalyDetector(
        window=dataset.window,
        paa_size=dataset.paa_size,
        alphabet_size=dataset.alphabet_size,
    )
    detector.fit(dataset.series)

    # Panel 1+2: series and rule density
    print("ECG     | " + sparkline(dataset.series))
    print("density | " + density_strip(detector.density_curve().astype(float)))

    density = detector.density_anomalies(max_anomalies=1)[0]
    print(
        f"\ndensity minimum at [{density.start}, {density.end}) — "
        f"{'HIT' if dataset.contains_hit(density.start, density.end, min_overlap=0.3) else 'miss'}"
    )

    # Panel 3: RRA discord + NN distances
    result = detector.discords(num_discords=1)
    best = result.best
    print(
        f"RRA discord at [{best.start}, {best.end}) length {best.length}, "
        f"NN distance {best.nn_distance:.4f} "
        f"({result.distance_calls} distance calls) — "
        f"{'HIT' if dataset.contains_hit(best.start, best.end, min_overlap=0.3) else 'miss'}"
    )

    profile = detector.nn_distance_profile()
    top = sorted(profile, key=lambda x: -x[1])[:5]
    print("\ntop candidate NN distances (the figure's bottom panel):")
    for interval, distance in top:
        tag = f"R{interval.rule_id}" if interval.rule_id >= 0 else "gap"
        print(
            f"  {tag:>5s} [{interval.start:5d}, {interval.end:5d}) "
            f"usage {interval.usage:3d}  dist {distance:.4f}"
        )


if __name__ == "__main__":
    main()

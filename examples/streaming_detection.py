#!/usr/bin/env python
"""Online anomaly detection on a live stream (the paper's §7 future work).

Both pipeline stages — sliding-window SAX and Sequitur — are strictly
left-to-right, so the whole detector can run online.  This example:

1. feeds a clean periodic stream with one planted event point by point
   and prints the alarm the moment it matures (long before the stream
   ends);
2. sweeps the detector's two knobs (minimum uncovered-run length and
   confirmation lag) on noisier telemetry to show the precision /
   recall / delay trade-off that streaming detection entails.

Run:  python examples/streaming_detection.py
"""

import numpy as np

from repro.datasets import tek_like
from repro.evaluation import detection_delays, score_detections
from repro.streaming import StreamingAnomalyDetector


def clean_stream_demo() -> None:
    rng = np.random.default_rng(11)
    t = np.arange(6000)
    series = np.sin(2 * np.pi * t / 100) + rng.normal(0, 0.03, t.size)
    series[3000:3100] += 2.0
    print("part 1 — clean periodic stream, one planted event at [3000, 3100)")

    detector = StreamingAnomalyDetector(50, 4, 4, confirmation_tokens=20)
    for position, value in enumerate(series):
        for alarm in detector.push(value):
            print(
                f"  t={position:5d}  ALARM at [{alarm.start}, {alarm.end}) — "
                f"{alarm.delay} points after the event began, "
                f"{series.size - position} points before the stream ends"
            )
    residual = detector.flush()
    if residual:
        print(f"  end-of-stream residuals: "
              f"{[(a.start, a.end) for a in residual]}")
    print(f"  ({detector.points_consumed} points -> "
          f"{detector.tokens_emitted} tokens)")


def tradeoff_demo() -> None:
    dataset = tek_like("TEK14", num_cycles=24, seed=7)
    print(f"\npart 2 — noisier telemetry ({dataset.length} points, glitch at "
          f"{dataset.anomalies}); knob sweep:")
    print(f"{'min_run':>8s} {'confirm':>8s} {'alarms':>7s} {'precision':>10s} "
          f"{'recall':>7s} {'delay':>6s}")
    for min_run, confirm in [(2, 25), (4, 25), (4, 60), (5, 80)]:
        detector = StreamingAnomalyDetector(
            dataset.window, dataset.paa_size, dataset.alphabet_size,
            confirmation_tokens=confirm, min_run_tokens=min_run,
        )
        alarms = detector.push_many(dataset.series) + detector.flush()
        scores = score_detections(
            [(a.start, a.end) for a in alarms], dataset.anomalies,
            min_overlap=0.3,
        )
        delays = detection_delays(
            [((a.start, a.end), a.detected_at) for a in alarms],
            dataset.anomalies,
        )
        delay_txt = str(delays[0]) if delays else "-"
        print(
            f"{min_run:>8d} {confirm:>8d} {len(alarms):>7d} "
            f"{scores.precision:>10.2f} {scores.recall:>7.2f} {delay_txt:>6s}"
        )
    print("\nlonger uncovered runs + more confirmation -> fewer false alarms"
          "\nat the cost of detection delay; true glitches span many tokens"
          "\nwhile noise-induced gaps span 2-4.")


def main() -> None:
    clean_stream_demo()
    tradeoff_demo()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Motif discovery + automatic parameter selection.

Two library capabilities beyond the paper's two anomaly detectors:

* :func:`repro.suggest_parameters` picks (window, PAA, alphabet) from
  the data itself — the window is seeded by the dominant
  autocorrelation period (the paper's "context" rule: one heartbeat,
  one week, one duty cycle) and combinations are scored by grammar
  health (compression, reduction rate, coverage);
* :func:`repro.find_motifs` inverts the anomaly problem: the *most*
  used grammar rules are recurrent variable-length motifs (the original
  GrammarViz capability the paper builds on).

Run:  python examples/motifs_and_parameters.py
"""

from repro import GrammarAnomalyDetector, dominant_period, find_motifs, \
    suggest_parameters
from repro.core.motifs import motif_cover_fraction
from repro.datasets import ecg_qtdb_0606_like
from repro.visualization import sparkline


def main() -> None:
    dataset = ecg_qtdb_0606_like()
    print(f"dataset: {dataset.description} ({dataset.length} points)")
    print("ECG | " + sparkline(dataset.series, width=70))

    # --- 1. let the library pick the discretization parameters
    period = dominant_period(dataset.series)
    print(f"\ndominant period (autocorrelation): {period} points "
          f"(one heartbeat is ~115)")

    suggestions = suggest_parameters(dataset.series, top_k=3)
    print("top parameter suggestions (scored by grammar health):")
    for s in suggestions:
        print(
            f"  W={s.window:4d} P={s.paa_size} A={s.alphabet_size}  "
            f"score {s.score:.2f}  reduction {s.reduction_ratio:.2f}  "
            f"compression {s.compression_ratio:.2f}  coverage {s.coverage:.2f}"
        )

    best = suggestions[0]
    detector = GrammarAnomalyDetector(*best.as_tuple())
    result = detector.fit(dataset.series)

    # --- 2. anomaly (rare rules) with the auto-chosen parameters
    discord = detector.discords(num_discords=1).best
    hit = dataset.contains_hit(discord.start, discord.end, min_overlap=0.3)
    print(f"\nRRA with auto parameters: discord [{discord.start}, "
          f"{discord.end}) -> {'HIT' if hit else 'miss'} "
          f"(truth {dataset.anomalies})")

    # --- 3. motifs (frequent rules) from the same grammar
    motifs = find_motifs(result.grammar, result.discretization, top_k=3)
    print("\ntop motifs (the inverse problem — recurrent patterns):")
    for motif in motifs:
        lo, hi = motif.length_range
        print(
            f"  #{motif.rank}: rule R{motif.rule_id}, {motif.frequency} "
            f"occurrences, lengths {lo}-{hi} points, level {motif.level}"
        )
        start, end = motif.occurrences[0]
        print("      " + sparkline(dataset.series[start:end], width=40))
    cover = motif_cover_fraction(motifs, dataset.length)
    print(f"\ntop-3 motifs cover {100 * cover:.0f}% of the series — "
          f"everything except the anomaly and transitions")


if __name__ == "__main__":
    main()

"""Tests for repro.core.pipeline — the GrammarAnomalyDetector facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import GrammarAnomalyDetector
from repro.exceptions import ParameterError
from repro.sax.discretize import NumerosityReduction


class TestLifecycle:
    def test_query_before_fit_rejected(self):
        detector = GrammarAnomalyDetector(40, 4, 4)
        with pytest.raises(ParameterError):
            detector.density_curve()

    def test_bad_grammar_algorithm(self):
        with pytest.raises(ParameterError):
            GrammarAnomalyDetector(40, 4, 4, grammar_algorithm="lz77")

    def test_fit_returns_result(self, sine_bump):
        detector = GrammarAnomalyDetector(50, 4, 4)
        result = detector.fit(sine_bump.series)
        assert result is detector.result
        assert result.series.size == sine_bump.length
        assert len(result.grammar) >= 1
        assert result.density.size == sine_bump.length

    def test_refit_replaces_state(self, sine_bump, rng):
        detector = GrammarAnomalyDetector(50, 4, 4)
        detector.fit(sine_bump.series)
        first = detector.result
        detector.fit(rng.normal(size=500))
        assert detector.result is not first


class TestQueries:
    def test_density_anomalies_find_bump(self, sine_bump):
        detector = GrammarAnomalyDetector(50, 4, 4)
        detector.fit(sine_bump.series)
        anomalies = detector.density_anomalies(max_anomalies=3)
        assert any(
            sine_bump.contains_hit(a.start, a.end, min_overlap=0.3)
            for a in anomalies
        )

    def test_rra_finds_bump(self, sine_bump):
        detector = GrammarAnomalyDetector(50, 4, 4)
        detector.fit(sine_bump.series)
        result = detector.discords(num_discords=1)
        best = result.best
        assert sine_bump.contains_hit(best.start, best.end, min_overlap=0.3)

    def test_candidates_include_gaps(self, sine_bump):
        detector = GrammarAnomalyDetector(50, 4, 4)
        result = detector.fit(sine_bump.series)
        assert len(result.candidates) == len(result.intervals) + len(result.gaps)

    def test_nn_distance_profile(self, sine_bump):
        detector = GrammarAnomalyDetector(50, 4, 4)
        detector.fit(sine_bump.series)
        profile = detector.nn_distance_profile()
        assert profile
        assert all(d >= 0 or not np.isfinite(d) for _, d in profile)

    def test_summary_fields(self, sine_bump):
        detector = GrammarAnomalyDetector(50, 4, 4)
        detector.fit(sine_bump.series)
        summary = detector.summary()
        assert summary["series_length"] == sine_bump.length
        assert summary["words_reduced"] <= summary["words_raw"]
        assert summary["grammar_rules"] >= 1


class TestConfigurations:
    def test_repair_backend(self, sine_bump):
        detector = GrammarAnomalyDetector(50, 4, 4, grammar_algorithm="repair")
        result = detector.fit(sine_bump.series)
        assert result.grammar.algorithm == "repair"
        discords = detector.discords(num_discords=1)
        assert discords.best is not None

    def test_numerosity_none(self, sine_bump):
        detector = GrammarAnomalyDetector(
            50, 4, 4, numerosity_reduction=NumerosityReduction.NONE
        )
        result = detector.fit(sine_bump.series)
        assert result.discretization.raw_word_count == len(result.discretization)

    def test_seed_changes_rng_not_result_shape(self, sine_bump):
        a = GrammarAnomalyDetector(50, 4, 4, seed=0)
        b = GrammarAnomalyDetector(50, 4, 4, seed=99)
        a.fit(sine_bump.series)
        b.fit(sine_bump.series)
        # grammar identical (induction is deterministic) ...
        assert a.result.grammar.grammar_size() == b.result.grammar.grammar_size()
        # ... and both find the same best discord despite inner shuffles
        assert a.discords().best.start == b.discords().best.start

    def test_determinism_end_to_end(self, sine_bump):
        runs = []
        for _ in range(2):
            detector = GrammarAnomalyDetector(50, 4, 4, seed=7)
            detector.fit(sine_bump.series)
            result = detector.discords(num_discords=2)
            runs.append(
                [(d.start, d.end, round(d.nn_distance, 12)) for d in result.discords]
            )
        assert runs[0] == runs[1]

"""Tests for the admissible lower-bound pruning layer.

Three pillars:

* **Admissibility** — property-based (Hypothesis) over a grid of
  (window, PAA size, alphabet size): the SAX MINDIST bound never
  exceeds the PAA bound, which never exceeds the true Euclidean
  distance; the RRA variant respects the Eq. 1 length normalization,
  including the sliding bound for unequal-length pairs.
* **Invisibility** — every engine, both backends: pruning changes
  neither the discords nor the logical distance-call counts.
* **The ledger** — ``calls == true_calls + pruned`` always, merges and
  checkpoints carry the split, and parallel pruned runs reconcile
  exactly with the serial candidate-pair count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import GrammarAnomalyDetector
from repro.core.rra import find_discords
from repro.discord.brute_force import brute_force_discords
from repro.discord.haar import haar_discords
from repro.discord.hotsax import SAXWindowDiscretization, hotsax_discords
from repro.exceptions import ParameterError
from repro.resilience.budget import SearchBudget
from repro.sax.mindist import letter_indices, mindist_sq_one_vs_block, sq_cell_table
from repro.timeseries.distance import DistanceCounter, variable_length_distance
from repro.timeseries.lowerbound import (
    IntervalLowerBound,
    WindowLowerBound,
    descending_partial_exceeds,
)
from repro.timeseries.windows import sliding_windows
from repro.timeseries.znorm import znorm, znorm_rows

# Relative slack for comparing a bound against the exact distance: the
# bound derivations are exact in real arithmetic, so only floating-point
# noise separates them.
RTOL = 1e-9


def _series(seed: int, length: int = 160) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 6.0 * np.pi, length)
    return np.sin(t) + 0.3 * rng.standard_normal(length)


# -- admissibility: fixed-length windows --------------------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    window=st.sampled_from([16, 25, 40, 64]),
    paa_size=st.sampled_from([3, 4, 8, 12]),
    alphabet_size=st.sampled_from([3, 4, 8, 12]),
)
def test_window_cascade_is_admissible(seed, window, paa_size, alphabet_size):
    """MINDIST² <= PAA bound² <= true squared distance, every pair."""
    series = _series(seed)
    normalized = znorm_rows(sliding_windows(series, window))
    lb = WindowLowerBound.from_normalized_windows(
        normalized, window, paa_size=min(paa_size, window),
        alphabet_size=alphabet_size,
    )
    k = normalized.shape[0]
    rng = np.random.default_rng(seed + 1)
    p = int(rng.integers(k))
    idx = rng.choice(k, size=min(24, k), replace=False)
    stage1 = mindist_sq_one_vs_block(
        lb.letters[p], lb.letters[idx], lb.alphabet_size, lb.scale_sq
    )
    deltas = lb.paa_values[idx] - lb.paa_values[p]
    stage2 = lb.scale_sq * np.einsum("ij,ij->i", deltas, deltas)
    true_sq = ((normalized[idx] - normalized[p]) ** 2).sum(axis=1)
    slack = RTOL * (1.0 + true_sq)
    assert np.all(stage1 <= stage2 + slack)
    assert np.all(stage2 <= true_sq + slack)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_pair_exceeds_never_prunes_a_closer_pair(seed):
    """``pair_exceeds`` certifying dist >= nearest is never wrong."""
    series = _series(seed)
    window = 32
    normalized = znorm_rows(sliding_windows(series, window))
    lb = WindowLowerBound.from_normalized_windows(normalized, window)
    rng = np.random.default_rng(seed + 1)
    k = normalized.shape[0]
    for _ in range(16):
        p, q = (int(v) for v in rng.integers(k, size=2))
        dist = float(np.linalg.norm(normalized[p] - normalized[q]))
        # A threshold strictly above the true distance must not prune.
        assert not lb.pair_exceeds(p, q, dist * (1.0 + 1e-6) + 1e-9)


def test_block_keep_agrees_with_scalar_cascade():
    series = _series(3)
    window = 32
    normalized = znorm_rows(sliding_windows(series, window))
    lb = WindowLowerBound.from_normalized_windows(normalized, window)
    k = normalized.shape[0]
    idx = np.arange(k)
    nearest = 3.0
    keep = lb.block_keep(5, idx, nearest)
    for j, q in enumerate(idx):
        assert keep[j] == (not lb.pair_exceeds(5, int(q), nearest))


# -- admissibility: RRA variable-length intervals -----------------------


class _Span:
    """Duck-typed interval (only ``start``/``end`` are consumed)."""

    def __init__(self, start: int, end: int):
        self.start = start
        self.end = end


class _SpanCache:
    """Minimal values-cache: z-normalized raw slices, like RRA's."""

    def __init__(self, series: np.ndarray):
        self.series = series

    def values(self, interval) -> np.ndarray:
        return znorm(self.series[interval.start : interval.end])


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    start_p=st.integers(0, 80),
    start_q=st.integers(0, 80),
    len_p=st.integers(8, 60),
    len_q=st.integers(8, 60),
    segments=st.sampled_from([3, 4, 8]),
    alphabet_size=st.sampled_from([4, 8]),
)
def test_interval_bound_is_admissible(
    seed, start_p, start_q, len_p, len_q, segments, alphabet_size
):
    """Certified pairs really satisfy eq1_dist >= nearest (both shapes)."""
    series = _series(seed)
    cache = _SpanCache(series)
    lb = IntervalLowerBound(
        cache, segments=segments, alphabet_size=alphabet_size
    )
    p = _Span(start_p, start_p + len_p)
    q = _Span(start_q, start_q + len_q)
    dist = variable_length_distance(
        cache.values(p), cache.values(q), normalize_inputs=False
    )
    # The bound must never certify a threshold the true distance misses.
    assert not lb.pair_exceeds(p, q, dist * (1.0 + 1e-6) + 1e-9)
    # And for thresholds it does certify, the certificate must hold.
    for factor in (0.25, 0.5, 0.9):
        nearest = dist * factor
        if nearest > 0 and lb.pair_exceeds(p, q, nearest):
            assert dist >= nearest * (1.0 - RTOL)


# -- stage-2 partial-sum walk ------------------------------------------


def test_descending_partial_exceeds_semantics():
    contributions = np.array([1.0, 3.0, 2.0])
    assert descending_partial_exceeds(contributions, 3.0)  # first term
    assert descending_partial_exceeds(contributions, 6.0)  # total == 6
    assert not descending_partial_exceeds(contributions, 6.0 + 1e-12)
    assert not descending_partial_exceeds(np.array([]), 1.0)


def test_mindist_cell_table_is_squared_symbol_matrix():
    from repro.sax.sax import symbol_distance_matrix

    for alpha in (3, 4, 8):
        table = sq_cell_table(alpha)
        assert np.allclose(table, symbol_distance_matrix(alpha) ** 2)
        assert not table.flags.writeable


def test_letter_indices_match_scalar_symbols():
    from repro.sax.alphabet import symbol_for_value, alphabet_letters

    values = np.array([[-2.0, -0.1, 0.0, 0.4, 2.5]])
    for alpha in (3, 5, 8):
        letters = alphabet_letters(alpha)
        idx = letter_indices(values, alpha)
        expected = [letters.index(symbol_for_value(v, alpha)) for v in values[0]]
        assert idx.tolist() == [expected]


# -- invisibility: every engine, both backends -------------------------


def _fingerprint(discords):
    return [(d.start, d.end, d.rank, round(d.score, 12)) for d in discords]


@pytest.mark.parametrize("backend", ["kernel", "scalar"])
@pytest.mark.parametrize(
    "engine", ["hotsax", "haar", "brute_force"]
)
def test_fixed_engines_identical_under_pruning(short_series, backend, engine):
    window = 40
    runs = []
    for prune in (False, True):
        counter = DistanceCounter()
        if engine == "hotsax":
            result = hotsax_discords(
                short_series, window, num_discords=2, counter=counter,
                rng=np.random.default_rng(5), backend=backend, prune=prune,
            )
        elif engine == "haar":
            result = haar_discords(
                short_series, window, num_discords=2, counter=counter,
                rng=np.random.default_rng(5), backend=backend, prune=prune,
            )
        else:
            result = brute_force_discords(
                short_series, window, num_discords=2, counter=counter,
                backend=backend, prune=prune,
            )
        runs.append((_fingerprint(result.discords), counter))
    (base, c0), (pruned, c1) = runs
    assert base == pruned
    assert c0.calls == c1.calls
    # The unpruned run's ledger is trivial; the pruned one reconciles.
    assert c0.pruned == 0 and c0.true_calls == c0.calls
    assert c1.true_calls + c1.pruned == c1.calls
    assert c1.pruned > 0  # the cascade must actually bite on this input


@pytest.mark.parametrize("backend", ["kernel", "scalar"])
def test_rra_identical_under_pruning(sine_bump, backend):
    detector = GrammarAnomalyDetector(100, 4, 4, backend=backend)
    fit = detector.fit(sine_bump.series)
    runs = []
    for prune in (False, True):
        counter = DistanceCounter()
        result = find_discords(
            fit.series, fit.candidates, num_discords=2, counter=counter,
            rng=np.random.default_rng(0), backend=backend, prune=prune,
        )
        runs.append((_fingerprint(result.discords), counter))
    (base, c0), (pruned, c1) = runs
    assert base == pruned
    assert c0.calls == c1.calls
    assert c1.true_calls + c1.pruned == c1.calls
    assert c1.pruned > 0


def test_hotsax_finer_pruning_discretization_is_invisible(short_series):
    """Overriding the pruning grid changes stats, never results."""
    base = hotsax_discords(
        short_series, 40, num_discords=2, rng=np.random.default_rng(5)
    )
    counters = []
    for paa, alpha in [(None, None), (8, 8), (12, 10)]:
        counter = DistanceCounter()
        result = hotsax_discords(
            short_series, 40, num_discords=2, counter=counter,
            rng=np.random.default_rng(5), prune=True,
            prune_paa_size=paa, prune_alphabet_size=alpha,
        )
        assert _fingerprint(result.discords) == _fingerprint(base.discords)
        assert counter.calls == base.distance_calls
        counters.append(counter)
    for counter in counters:
        assert counter.true_calls + counter.pruned == counter.calls


def test_hotsax_discretization_shared_between_buckets_and_bounds():
    series = _series(11, length=300)
    disc = SAXWindowDiscretization(series, 40, 4, 4)
    assert len(disc.words) == series.size - 40 + 1
    lb = disc.lower_bound()
    # The bound reuses the bucketing arrays — no recomputation.
    assert lb.paa_values is disc.paa_values
    assert lb.letters is disc.letters
    assert lb.alphabet_size == disc.alphabet_size


# -- the ledger --------------------------------------------------------


def test_counter_ledger_invariants():
    counter = DistanceCounter()
    counter.batch(5)
    counter.pruned_batch(3)
    counter.lb_batch(7)
    assert counter.calls == 8
    assert counter.true_calls == 5
    assert counter.pruned == 3
    assert counter.lb_calls == 7
    assert counter.calls == counter.true_calls + counter.pruned
    with pytest.raises(ParameterError):
        counter.pruned_batch(-1)
    with pytest.raises(ParameterError):
        counter.lb_batch(-1)
    assert "pruned" in repr(counter)


def test_counter_merge_carries_ledger():
    a = DistanceCounter()
    a.batch(4)
    a.pruned_batch(2)
    a.lb_batch(3)
    b = DistanceCounter()
    b.batch(1)
    b.pruned_batch(5)
    b.lb_batch(6)
    a += b
    assert a.calls == 12
    assert a.true_calls == 5
    assert a.pruned == 7
    assert a.lb_calls == 9
    assert a.calls == a.true_calls + a.pruned


def test_counter_ledger_roundtrip():
    a = DistanceCounter()
    a.batch(4)
    a.pruned_batch(2)
    a.lb_batch(3)
    b = DistanceCounter()
    b.restore_ledger(a.ledger())
    assert b.ledger() == a.ledger()
    # Legacy checkpoints (no split recorded) restore as all-true calls.
    c = DistanceCounter()
    c.restore_ledger({"calls": 9})
    assert c.calls == 9 and c.true_calls == 9
    assert c.pruned == 0 and c.lb_calls == 0


def test_rra_checkpoint_carries_pruning_ledger(tmp_path, sine_bump):
    detector = GrammarAnomalyDetector(100, 4, 4)
    fit = detector.fit(sine_bump.series)
    serial = DistanceCounter()
    base = find_discords(
        fit.series, fit.candidates, num_discords=2, counter=serial,
        rng=np.random.default_rng(0), prune=True,
    )
    ckpt = str(tmp_path / "pruned.json")
    first = DistanceCounter()
    find_discords(
        fit.series, fit.candidates, num_discords=2, counter=first,
        rng=np.random.default_rng(0), prune=True,
        budget=SearchBudget(max_calls=serial.calls // 3),
        checkpoint_path=ckpt, checkpoint_every=1,
    )
    assert 0 < first.calls < serial.calls
    assert first.true_calls + first.pruned == first.calls
    resumed = DistanceCounter()
    result = find_discords(
        fit.series, fit.candidates, num_discords=2, counter=resumed,
        rng=np.random.default_rng(0), prune=True,
        checkpoint_path=ckpt, resume_from=ckpt,
    )
    assert _fingerprint(result.discords) == _fingerprint(base.discords)
    assert resumed.ledger() == serial.ledger()


def test_pruned_and_unpruned_checkpoints_incompatible(tmp_path, sine_bump):
    from repro.exceptions import CheckpointError

    detector = GrammarAnomalyDetector(100, 4, 4)
    fit = detector.fit(sine_bump.series)
    ckpt = str(tmp_path / "plain.json")
    find_discords(
        fit.series, fit.candidates, num_discords=1,
        rng=np.random.default_rng(0),
        budget=SearchBudget(max_calls=200),
        checkpoint_path=ckpt, checkpoint_every=1,
    )
    with pytest.raises(CheckpointError):
        find_discords(
            fit.series, fit.candidates, num_discords=1,
            rng=np.random.default_rng(0), prune=True, resume_from=ckpt,
        )


# -- parallel reconciliation -------------------------------------------


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_parallel_pruned_hotsax_reconciles(short_series, n_workers):
    serial = DistanceCounter()
    base = hotsax_discords(
        short_series, 40, num_discords=2, counter=serial,
        rng=np.random.default_rng(5), prune=True,
    )
    counter = DistanceCounter()
    result = hotsax_discords(
        short_series, 40, num_discords=2, counter=counter,
        rng=np.random.default_rng(5), prune=True, n_workers=n_workers,
    )
    assert _fingerprint(result.discords) == _fingerprint(base.discords)
    # Logical split identical to serial; lb_calls is physical and may
    # legitimately exceed it (worker over-scan).
    assert counter.calls == serial.calls
    assert counter.true_calls == serial.true_calls
    assert counter.pruned == serial.pruned
    assert counter.true_calls + counter.pruned == serial.calls


@pytest.mark.parametrize("n_workers", [2, 4])
def test_parallel_pruned_rra_reconciles(sine_bump, n_workers):
    detector = GrammarAnomalyDetector(100, 4, 4)
    fit = detector.fit(sine_bump.series)
    serial = DistanceCounter()
    base = find_discords(
        fit.series, fit.candidates, num_discords=2, counter=serial,
        rng=np.random.default_rng(0), prune=True,
    )
    counter = DistanceCounter()
    result = find_discords(
        fit.series, fit.candidates, num_discords=2, counter=counter,
        rng=np.random.default_rng(0), prune=True, n_workers=n_workers,
    )
    assert _fingerprint(result.discords) == _fingerprint(base.discords)
    assert counter.calls == serial.calls
    assert counter.true_calls == serial.true_calls
    assert counter.pruned == serial.pruned

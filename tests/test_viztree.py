"""Tests for repro.baselines.viztree — the SAX subword trie."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.viztree import SAXTrie
from repro.datasets import sine_with_anomaly
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def trie():
    dataset = sine_with_anomaly(
        length=1500, period=100, anomaly_start=700, anomaly_length=90,
        anomaly_kind="bump", noise=0.02, seed=4,
    )
    return dataset, SAXTrie(dataset.series, 50, 4, 3)


class TestConstruction:
    def test_word_count(self, trie):
        dataset, t = trie
        assert t.total_words == dataset.length - 50 + 1
        assert t.root.count == t.total_words

    def test_counts_consistent_down_the_trie(self, trie):
        _, t = trie
        # a node's count equals the sum of its children's counts
        # (interior nodes; leaves hold the word occurrences)
        def check(node, depth):
            if depth == t.word_length:
                assert len(node.positions) == node.count
                return
            assert node.count == sum(c.count for c in node.children.values())
            for child in node.children.values():
                check(child, depth + 1)

        check(t.root, 0)

    def test_frequency_prefix_query(self, trie):
        _, t = trie
        total = sum(t.frequency(ch) for ch in "abc")
        assert total == t.total_words

    def test_missing_prefix_zero(self, trie):
        _, t = trie
        assert t.frequency("zzzz") == 0


class TestQueries:
    def test_word_positions_roundtrip(self, trie):
        _, t = trie
        word, count = t.frequent_words(top_k=1)[0]
        positions = t.word_positions(word)
        assert len(positions) == count

    def test_word_positions_length_check(self, trie):
        _, t = trie
        with pytest.raises(ParameterError):
            t.word_positions("ab")

    def test_rare_words_sorted(self, trie):
        _, t = trie
        rare = t.rare_words()
        counts = [c for _, c in rare]
        assert counts == sorted(counts)

    def test_rare_words_max_count(self, trie):
        _, t = trie
        assert all(c <= 3 for _, c in t.rare_words(max_count=3))

    def test_frequent_words_top_k(self, trie):
        _, t = trie
        top = t.frequent_words(top_k=3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_anomaly_candidates_near_the_bump(self, trie):
        """With enough word resolution, the rarest words cluster at the
        planted anomaly (a coarse trie cannot separate it — the
        granularity sensitivity VizTree is known for)."""
        dataset, _ = trie
        fine = SAXTrie(dataset.series, 100, 6, 4)
        candidates = fine.anomaly_candidates(max_candidates=6)
        assert candidates
        (t0, t1), = dataset.anomalies
        near = [p for p, _, _ in candidates if t0 - 100 <= p <= t1]
        assert len(near) >= len(candidates) // 2, (
            f"rare words not at the anomaly: {candidates}"
        )

    def test_invalid_parameters(self, trie):
        _, t = trie
        with pytest.raises(ParameterError):
            t.frequent_words(top_k=0)
        with pytest.raises(ParameterError):
            t.anomaly_candidates(max_candidates=0)


class TestRendering:
    def test_render_contains_counts(self, trie):
        _, t = trie
        text = t.render(max_depth=1)
        assert "SAX trie" in text
        assert "#" in text

    def test_render_depth_limit(self, trie):
        _, t = trie
        shallow = t.render(max_depth=1)
        deep = t.render()
        assert len(deep.splitlines()) > len(shallow.splitlines())

"""Tests for repro.sax.sax (single-word transform + MINDIST)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ParameterError
from repro.sax.sax import mindist, sax_word, symbol_distance_matrix
from repro.timeseries.distance import euclidean
from repro.timeseries.znorm import znorm

finite = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


class TestSaxWord:
    def test_ramp(self):
        values = np.linspace(0.0, 1.0, 16)
        word = sax_word(values, 4, 4)
        # strictly increasing ramp -> strictly non-decreasing letters
        assert list(word) == sorted(word)
        assert word[0] == "a" and word[-1] == "d"

    def test_length(self):
        values = np.sin(np.linspace(0, 6, 50))
        assert len(sax_word(values, 7, 5)) == 7

    def test_flat_input_maps_to_middle(self):
        word = sax_word(np.full(20, 3.0), 4, 4)
        # mean-centered flat -> zeros -> upper-middle region 'c' for alpha=4
        assert word == "cccc"

    def test_no_normalize_flag(self):
        values = np.array([10.0, 10.0, 10.0, 10.0])
        assert sax_word(values, 2, 3, normalize=False) == "cc"

    def test_time_reversal_reverses_word(self):
        """Reversing the input reverses the word (PAA means reorder)."""
        values = np.linspace(-1, 1, 24)
        up = sax_word(values, 6, 4)
        down = sax_word(values[::-1].copy(), 6, 4)
        assert down == up[::-1]


class TestSymbolDistanceMatrix:
    def test_adjacent_cells_zero(self):
        table = symbol_distance_matrix(5)
        for i in range(5):
            assert table[i, i] == 0.0
            if i + 1 < 5:
                assert table[i, i + 1] == 0.0

    def test_symmetry(self):
        table = symbol_distance_matrix(6)
        np.testing.assert_allclose(table, table.T)

    def test_known_value_alpha_4(self):
        # dist(a, c) = cut[1] - cut[0] = 0 - (-0.6745)
        table = symbol_distance_matrix(4)
        assert table[0, 2] == pytest.approx(0.6745, abs=1e-3)


class TestMindist:
    def test_identical_words_zero(self):
        assert mindist("abca", "abca", 4, 32) == 0.0

    def test_adjacent_letters_zero(self):
        # a vs b are adjacent regions -> MINDIST 0 (cannot be separated)
        assert mindist("aaaa", "bbbb", 4, 32) == 0.0

    def test_distant_letters_positive(self):
        assert mindist("aaaa", "dddd", 4, 32) > 0.0

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            mindist("ab", "abc", 3, 16)

    def test_empty_words(self):
        with pytest.raises(ParameterError):
            mindist("", "", 3, 16)

    def test_scales_with_n(self):
        d16 = mindist("ad", "da", 4, 16)
        d64 = mindist("ad", "da", 4, 64)
        assert d64 == pytest.approx(2.0 * d16)

    @given(
        arrays(np.float64, st.just(32), elements=finite),
        arrays(np.float64, st.just(32), elements=finite),
        st.integers(3, 8),
        st.integers(2, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_lower_bounds_euclidean(self, a, b, alpha, w):
        """The fundamental SAX guarantee: MINDIST(A, B) <= D(a, b)."""
        za, zb = znorm(a), znorm(b)
        word_a = sax_word(a, w, alpha)
        word_b = sax_word(b, w, alpha)
        lower = mindist(word_a, word_b, alpha, 32)
        actual = euclidean(za, zb)
        assert lower <= actual + 1e-6

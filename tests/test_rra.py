"""Tests for repro.core.rra — the Rare Rule Anomaly algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rra import (
    RRAResult,
    _is_non_self_match,
    find_discord,
    find_discords,
    nearest_neighbor_distances,
)
from repro.exceptions import DiscordSearchError
from repro.grammar.intervals import RuleInterval
from repro.timeseries.distance import DistanceCounter


def _blip_series(length=800, period=50, blip_at=400, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    series = np.sin(2 * np.pi * t / period) + rng.normal(0, 0.02, length)
    series[blip_at : blip_at + 60] += 2.5
    return series


def _candidates_for(series, window=40, paa=4, alpha=4):
    from repro.grammar.intervals import rule_intervals, uncovered_intervals
    from repro.grammar.sequitur import induce_grammar
    from repro.sax.discretize import discretize

    disc = discretize(series, window, paa, alpha)
    grammar = induce_grammar(disc.tokens())
    return rule_intervals(grammar, disc) + uncovered_intervals(grammar, disc)


class TestNonSelfMatch:
    def test_overlap_excluded(self):
        p = RuleInterval(1, 100, 150, usage=1)
        q = RuleInterval(2, 120, 170, usage=1)
        assert not _is_non_self_match(p, q)

    def test_far_apart_allowed(self):
        p = RuleInterval(1, 100, 150, usage=1)
        q = RuleInterval(2, 200, 260, usage=1)
        assert _is_non_self_match(p, q)

    def test_paper_boundary(self):
        # |p0 - q0| must be STRICTLY greater than Length(p)
        p = RuleInterval(1, 100, 150, usage=1)  # length 50
        assert not _is_non_self_match(p, RuleInterval(2, 150, 190, usage=1))
        assert _is_non_self_match(p, RuleInterval(2, 151, 190, usage=1))


class TestFindDiscord:
    def test_finds_planted_blip(self):
        series = _blip_series()
        discord, counter = find_discord(series, _candidates_for(series))
        assert discord is not None
        assert discord.start < 470 and discord.end > 390
        assert counter.calls > 0

    def test_no_candidates(self):
        discord, _ = find_discord(np.zeros(100), [])
        assert discord is None

    def test_single_candidate_has_no_match(self):
        discord, _ = find_discord(
            np.random.default_rng(0).normal(size=100),
            [RuleInterval(1, 10, 40, usage=1)],
        )
        assert discord is None

    def test_exclusion_removes_winner(self):
        series = _blip_series()
        candidates = _candidates_for(series)
        first, _ = find_discord(series, candidates)
        second, _ = find_discord(
            series, candidates, exclude=[(first.start, first.end)]
        )
        assert second is not None
        assert (second.start, second.end) != (first.start, first.end)

    def test_rejects_2d_series(self):
        with pytest.raises(DiscordSearchError):
            find_discord(np.zeros((5, 5)), [])

    def test_counter_accumulates(self):
        series = _blip_series()
        counter = DistanceCounter()
        find_discord(series, _candidates_for(series), counter=counter)
        before = counter.calls
        find_discord(series, _candidates_for(series), counter=counter)
        assert counter.calls > before

    def test_deterministic_given_seed(self):
        series = _blip_series()
        candidates = _candidates_for(series)
        d1, _ = find_discord(series, candidates, rng=np.random.default_rng(3))
        d2, _ = find_discord(series, candidates, rng=np.random.default_rng(3))
        assert (d1.start, d1.end, d1.nn_distance) == (d2.start, d2.end, d2.nn_distance)

    def test_discord_metadata(self):
        series = _blip_series()
        discord, _ = find_discord(series, _candidates_for(series))
        assert discord.source == "rra"
        assert discord.score == discord.nn_distance > 0

    def test_result_is_true_max_nn_distance(self):
        """The reported discord maximizes NN distance over candidates."""
        series = _blip_series(length=500)
        candidates = _candidates_for(series)
        discord, _ = find_discord(series, candidates)
        profile = nearest_neighbor_distances(series, candidates)
        finite = [(iv, d) for iv, d in profile if np.isfinite(d)]
        best_iv, best_d = max(finite, key=lambda x: x[1])
        assert discord.nn_distance == pytest.approx(best_d)
        assert (discord.start, discord.end) == (best_iv.start, best_iv.end)


class TestFindDiscords:
    def test_requested_count(self):
        series = _blip_series()
        result = find_discords(series, _candidates_for(series), num_discords=3)
        assert isinstance(result, RRAResult)
        assert 1 <= len(result.discords) <= 3
        assert result.distance_calls > 0

    def test_ranks_sequential(self):
        series = _blip_series()
        result = find_discords(series, _candidates_for(series), num_discords=3)
        assert [d.rank for d in result.discords] == list(range(len(result.discords)))

    def test_discords_do_not_repeat(self):
        series = _blip_series()
        result = find_discords(series, _candidates_for(series), num_discords=3)
        spans = [(d.start, d.end) for d in result.discords]
        assert len(set(spans)) == len(spans)

    def test_invalid_count(self):
        with pytest.raises(DiscordSearchError):
            find_discords(np.zeros(10), [], num_discords=0)

    def test_best_property(self):
        series = _blip_series()
        result = find_discords(series, _candidates_for(series), num_discords=2)
        assert result.best is result.discords[0]
        assert RRAResult().best is None

    def test_scores_non_increasing(self):
        series = _blip_series()
        result = find_discords(series, _candidates_for(series), num_discords=3)
        scores = [d.nn_distance for d in result.discords]
        # Later discords exclude earlier ones, so scores should not grow
        # (modulo candidates whose NN was inside an excluded region).
        assert all(a >= b - 0.25 for a, b in zip(scores, scores[1:]))


class TestNearestNeighborDistances:
    def test_profile_covers_candidates(self):
        series = _blip_series(length=400)
        candidates = _candidates_for(series)
        profile = nearest_neighbor_distances(series, candidates)
        valid = [iv for iv in candidates if iv.end <= series.size and iv.length >= 2]
        assert len(profile) == len(valid)

    def test_same_rule_occurrences_have_small_nn(self):
        series = _blip_series(length=600)
        candidates = _candidates_for(series)
        profile = nearest_neighbor_distances(series, candidates)
        frequent = [
            d for iv, d in profile
            if iv.usage >= 4 and np.isfinite(d)
        ]
        if frequent:
            assert min(frequent) < 0.5

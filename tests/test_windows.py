"""Tests for repro.timeseries.windows."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.timeseries.windows import (
    num_windows,
    sliding_windows,
    subsequence,
    windows_iter,
)


class TestNumWindows:
    def test_exact(self):
        assert num_windows(10, 3) == 8

    def test_window_equals_length(self):
        assert num_windows(5, 5) == 1

    def test_window_longer_than_series(self):
        assert num_windows(4, 5) == 0

    def test_invalid_window(self):
        with pytest.raises(ParameterError):
            num_windows(10, 0)

    @given(st.integers(0, 500), st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_property_consistent_with_enumeration(self, m, n):
        expected = len([p for p in range(m) if p + n <= m])
        assert num_windows(m, n) == expected


class TestSubsequence:
    def test_basic(self):
        series = np.arange(10.0)
        np.testing.assert_array_equal(subsequence(series, 2, 3), [2.0, 3.0, 4.0])

    def test_full_series(self):
        series = np.arange(5.0)
        np.testing.assert_array_equal(subsequence(series, 0, 5), series)

    def test_out_of_bounds(self):
        with pytest.raises(ParameterError):
            subsequence(np.arange(5.0), 3, 3)

    def test_negative_start(self):
        with pytest.raises(ParameterError):
            subsequence(np.arange(5.0), -1, 2)

    def test_zero_length(self):
        with pytest.raises(ParameterError):
            subsequence(np.arange(5.0), 0, 0)


class TestSlidingWindows:
    def test_shape(self):
        view = sliding_windows(np.arange(10.0), 4)
        assert view.shape == (7, 4)

    def test_contents(self):
        view = sliding_windows(np.arange(5.0), 2)
        np.testing.assert_array_equal(view[0], [0.0, 1.0])
        np.testing.assert_array_equal(view[3], [3.0, 4.0])

    def test_read_only(self):
        view = sliding_windows(np.arange(6.0), 3)
        with pytest.raises((ValueError, RuntimeError)):
            view[0, 0] = 99.0

    def test_too_short_series(self):
        assert sliding_windows(np.arange(3.0), 5).shape == (0, 5)

    @given(st.integers(2, 60), st.integers(2, 20))
    @settings(max_examples=50, deadline=None)
    def test_property_each_row_is_the_slice(self, m, n):
        series = np.arange(float(m))
        view = sliding_windows(series, n)
        for start in range(view.shape[0]):
            np.testing.assert_array_equal(view[start], series[start : start + n])


class TestWindowsIter:
    def test_yields_pairs(self):
        pairs = list(windows_iter(np.arange(5.0), 3))
        assert [p[0] for p in pairs] == [0, 1, 2]
        np.testing.assert_array_equal(pairs[1][1], [1.0, 2.0, 3.0])

    def test_empty_when_series_short(self):
        assert list(windows_iter(np.arange(2.0), 5)) == []

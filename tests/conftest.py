"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import sine_with_anomaly


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def sine_bump():
    """A small sine series with a planted bump anomaly."""
    return sine_with_anomaly(
        length=2000, period=100, anomaly_start=1000, anomaly_length=80,
        anomaly_kind="bump", noise=0.03, seed=7,
    )


@pytest.fixture
def short_series(rng) -> np.ndarray:
    """A 400-point noisy sawtooth, fast enough for brute-force tests."""
    t = np.arange(400)
    return (t % 40) / 40.0 + rng.normal(0.0, 0.02, 400)

"""Tests for repro.trajectory.convert (GPS trail -> scalar series)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TrajectoryError
from repro.trajectory.convert import (
    BoundingBox,
    TrajectoryPoint,
    series_index_to_trail_slice,
    trail_to_series,
)


def _square_trail(n_per_side=10):
    """A closed loop around the unit square."""
    points = []
    t = 0.0
    for i in range(n_per_side):
        points.append(TrajectoryPoint(t, 0.0, i / n_per_side)); t += 1
    for i in range(n_per_side):
        points.append(TrajectoryPoint(t, i / n_per_side, 1.0)); t += 1
    for i in range(n_per_side):
        points.append(TrajectoryPoint(t, 1.0, 1.0 - i / n_per_side)); t += 1
    for i in range(n_per_side):
        points.append(TrajectoryPoint(t, 1.0 - i / n_per_side, 0.0)); t += 1
    return points


class TestBoundingBox:
    def test_of_trail(self):
        bbox = BoundingBox.of_trail(_square_trail())
        assert bbox.min_lat <= 0.0 and bbox.max_lat >= 1.0
        assert bbox.min_lon <= 0.0 and bbox.max_lon >= 1.0

    def test_degenerate_rejected(self):
        with pytest.raises(TrajectoryError):
            BoundingBox(1.0, 1.0, 0.0, 1.0)

    def test_empty_trail_rejected(self):
        with pytest.raises(TrajectoryError):
            BoundingBox.of_trail([])

    def test_to_cell_corners(self):
        bbox = BoundingBox(0.0, 1.0, 0.0, 1.0)
        assert bbox.to_cell(0.0, 0.0, 16) == (0, 0)
        assert bbox.to_cell(1.0, 1.0, 16) == (15, 15)

    def test_to_cell_clamps(self):
        bbox = BoundingBox(0.0, 1.0, 0.0, 1.0)
        assert bbox.to_cell(-5.0, -5.0, 8) == (0, 0)
        assert bbox.to_cell(5.0, 5.0, 8) == (7, 7)


class TestTrailToSeries:
    def test_one_value_per_fix(self):
        trail = _square_trail()
        series = trail_to_series(trail, order=4)
        assert series.size == len(trail)

    def test_values_in_curve_range(self):
        series = trail_to_series(_square_trail(), order=4)
        assert (series >= 0).all()
        assert (series < 16 * 16).all()

    def test_sorted_by_time(self):
        """Fixes are reordered by timestamp before conversion."""
        trail = _square_trail()
        shuffled = list(reversed(trail))
        np.testing.assert_array_equal(
            trail_to_series(trail, order=5), trail_to_series(shuffled, order=5)
        )

    def test_empty_rejected(self):
        with pytest.raises(TrajectoryError):
            trail_to_series([])

    def test_same_location_same_value(self):
        """Revisiting a place reproduces the same cell index."""
        trail = _square_trail()
        loop_twice = trail + [
            TrajectoryPoint(p.time + 1000.0, p.lat, p.lon) for p in trail
        ]
        bbox = BoundingBox.of_trail(trail)
        series = trail_to_series(loop_twice, order=6, bbox=bbox)
        half = len(trail)
        np.testing.assert_array_equal(series[:half], series[half:])

    def test_locality_small_steps_small_jumps(self):
        """Continuous movement gives mostly small Hilbert-index steps."""
        series = trail_to_series(_square_trail(50), order=6)
        jumps = np.abs(np.diff(series))
        # most transitions are local (the SFC preserves locality)
        assert np.median(jumps) <= 64


class TestSeriesIndexToTrailSlice:
    def test_roundtrip_slice(self):
        trail = _square_trail()
        segment = series_index_to_trail_slice(trail, 5, 12)
        assert len(segment) == 7
        assert segment[0].time == sorted(p.time for p in trail)[5]

    def test_out_of_range(self):
        trail = _square_trail()
        with pytest.raises(TrajectoryError):
            series_index_to_trail_slice(trail, 0, len(trail) + 1)
        with pytest.raises(TrajectoryError):
            series_index_to_trail_slice(trail, 5, 5)

"""Tests for repro.sax.alphabet."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import norm

from repro.exceptions import ParameterError
from repro.sax.alphabet import (
    MAX_ALPHABET_SIZE,
    MIN_ALPHABET_SIZE,
    breakpoints,
    symbol_for_value,
    symbol_index,
    symbols_for_values,
)


class TestBreakpoints:
    def test_alpha_2_single_zero(self):
        assert breakpoints(2) == (0.0,)

    def test_alpha_4_known_values(self):
        cuts = breakpoints(4)
        assert cuts[1] == pytest.approx(0.0)
        assert cuts[0] == pytest.approx(-0.6745, abs=1e-3)
        assert cuts[2] == pytest.approx(0.6745, abs=1e-3)

    def test_count(self):
        for alpha in range(MIN_ALPHABET_SIZE, 11):
            assert len(breakpoints(alpha)) == alpha - 1

    def test_monotone(self):
        for alpha in range(MIN_ALPHABET_SIZE, 13):
            cuts = breakpoints(alpha)
            assert all(a < b for a, b in zip(cuts, cuts[1:]))

    def test_equiprobable_regions(self):
        """Each region holds probability 1/alpha under N(0,1)."""
        for alpha in (3, 5, 8):
            cuts = (-np.inf,) + breakpoints(alpha) + (np.inf,)
            for lo, hi in zip(cuts, cuts[1:]):
                prob = norm.cdf(hi) - norm.cdf(lo)
                assert prob == pytest.approx(1.0 / alpha, abs=1e-9)

    def test_invalid_sizes(self):
        with pytest.raises(ParameterError):
            breakpoints(1)
        with pytest.raises(ParameterError):
            breakpoints(MAX_ALPHABET_SIZE + 1)


class TestSymbolForValue:
    def test_extremes(self):
        assert symbol_for_value(-10.0, 4) == "a"
        assert symbol_for_value(10.0, 4) == "d"

    def test_zero_with_alpha_4(self):
        # 0.0 is itself a breakpoint; searchsorted(side='right') puts it
        # in the upper region, 'c'.
        assert symbol_for_value(0.0, 4) == "c"

    def test_middle_symbol_alpha_3(self):
        assert symbol_for_value(0.0, 3) == "b"

    @given(
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        st.integers(2, 12),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_symbol_in_alphabet(self, value, alpha):
        symbol = symbol_for_value(value, alpha)
        assert 0 <= symbol_index(symbol) < alpha

    @given(st.integers(2, 12))
    @settings(max_examples=20, deadline=None)
    def test_property_monotone_in_value(self, alpha):
        values = np.linspace(-4, 4, 50)
        indices = [symbol_index(symbol_for_value(v, alpha)) for v in values]
        assert indices == sorted(indices)


class TestSymbolsForValues:
    def test_word(self):
        assert symbols_for_values(np.array([-2.0, 0.0, 2.0]), 3) == "abc"

    def test_matches_scalar_version(self, rng):
        values = rng.normal(size=20)
        word = symbols_for_values(values, 5)
        assert word == "".join(symbol_for_value(v, 5) for v in values)


class TestSymbolIndex:
    def test_roundtrip(self):
        for i, ch in enumerate("abcdefgh"):
            assert symbol_index(ch) == i

    def test_rejects_non_symbols(self):
        for bad in ("A", "1", "", "ab", "!"):
            with pytest.raises(ParameterError):
                symbol_index(bad)

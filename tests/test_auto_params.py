"""Tests for repro.core.auto_params — parameter suggestion heuristics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auto_params import (
    ParameterSuggestion,
    _band,
    dominant_period,
    grammar_health,
    suggest_parameters,
)
from repro.datasets import ecg_qtdb_0606_like, random_walk, sine_with_anomaly
from repro.exceptions import ParameterError


class TestDominantPeriod:
    def test_pure_sine(self):
        t = np.arange(2000)
        series = np.sin(2 * np.pi * t / 125)
        period = dominant_period(series)
        assert period is not None
        assert abs(period - 125) <= 2

    def test_noisy_sine(self, rng):
        t = np.arange(3000)
        series = np.sin(2 * np.pi * t / 80) + rng.normal(0, 0.3, 3000)
        period = dominant_period(series)
        assert abs(period - 80) <= 3

    def test_ecg_beat_length(self):
        dataset = ecg_qtdb_0606_like()
        period = dominant_period(dataset.series)
        assert period is not None
        assert 100 <= period <= 130  # beats are ~115 points

    def test_white_noise_none(self, rng):
        assert dominant_period(rng.normal(size=2000)) is None

    def test_constant_none(self):
        assert dominant_period(np.full(1000, 3.0)) is None

    def test_too_short_none(self):
        assert dominant_period(np.sin(np.arange(10.0))) is None

    def test_rejects_2d(self):
        with pytest.raises(ParameterError):
            dominant_period(np.zeros((10, 10)))


class TestBand:
    def test_inside(self):
        assert _band(0.8, 0.6, 0.97) == 1.0

    def test_below_scales(self):
        assert _band(0.3, 0.6, 0.97) == pytest.approx(0.5)

    def test_above_decays(self):
        assert _band(1.0, 0.0, 0.5) == pytest.approx(0.0)

    def test_never_negative(self):
        assert _band(5.0, 0.0, 0.5) == 0.0


class TestGrammarHealth:
    def test_valid_combination(self):
        dataset = ecg_qtdb_0606_like()
        suggestion = grammar_health(dataset.series, 120, 4, 4)
        assert isinstance(suggestion, ParameterSuggestion)
        assert 0.0 <= suggestion.score <= 1.0
        assert suggestion.coverage > 0.5

    def test_invalid_combination_none(self):
        dataset = ecg_qtdb_0606_like()
        assert grammar_health(dataset.series, 10, 20, 4) is None
        assert grammar_health(dataset.series, dataset.length + 5, 4, 4) is None

    def test_good_params_outscore_bad(self):
        """A context-sized window scores higher than a degenerate one."""
        dataset = ecg_qtdb_0606_like()
        good = grammar_health(dataset.series, 115, 4, 4)
        tiny = grammar_health(dataset.series, 4, 3, 3)
        assert good is not None
        if tiny is not None:
            assert good.score >= tiny.score


@pytest.mark.slow
class TestSuggestParameters:
    def test_suggests_beat_scale_window(self):
        dataset = ecg_qtdb_0606_like()
        suggestions = suggest_parameters(dataset.series, top_k=5)
        assert suggestions
        # windows are derived from the ~115-point beat
        assert all(40 <= s.window <= 160 for s in suggestions)

    def test_suggestions_ranked(self):
        dataset = ecg_qtdb_0606_like()
        suggestions = suggest_parameters(dataset.series, top_k=5)
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_suggested_parameters_find_the_anomaly(self):
        """End-to-end: auto-chosen parameters recover the planted event."""
        from repro.core.pipeline import GrammarAnomalyDetector

        dataset = ecg_qtdb_0606_like()
        best = suggest_parameters(dataset.series, top_k=1)[0]
        detector = GrammarAnomalyDetector(*best.as_tuple())
        detector.fit(dataset.series)
        discord = detector.discords(num_discords=1).best
        assert dataset.contains_hit(discord.start, discord.end, min_overlap=0.3)

    def test_explicit_windows(self):
        dataset = sine_with_anomaly(length=1500, period=100, seed=2)
        suggestions = suggest_parameters(
            dataset.series, windows=[50, 100], top_k=10
        )
        assert {s.window for s in suggestions} <= {50, 100}

    def test_aperiodic_fallback(self):
        walk = random_walk(length=1500, seed=4)
        suggestions = suggest_parameters(walk, top_k=3)
        # fallback windows around n/20 are used; results may be empty if
        # nothing scores, but the call must not fail
        assert isinstance(suggestions, list)

    def test_invalid_top_k(self):
        with pytest.raises(ParameterError):
            suggest_parameters(np.sin(np.arange(500.0)), top_k=0)

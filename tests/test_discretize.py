"""Tests for repro.sax.discretize (sliding-window SAX + numerosity reduction)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DiscretizationError, ParameterError
from repro.sax.discretize import (
    Discretization,
    NumerosityReduction,
    SAXWord,
    discretize,
)
from repro.sax.sax import sax_word


def _sine(length=600, period=60, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    return np.sin(2 * np.pi * t / period) + rng.normal(0.0, noise, length)


class TestDiscretize:
    def test_word_count_matches_windows_without_reduction(self):
        series = _sine(300)
        disc = discretize(series, 50, 4, 4, strategy=NumerosityReduction.NONE)
        assert len(disc) == 300 - 50 + 1
        assert disc.raw_word_count == len(disc)

    def test_offsets_strictly_increasing(self):
        disc = discretize(_sine(), 60, 5, 4)
        offsets = disc.offsets
        assert (np.diff(offsets) > 0).all()

    def test_words_match_direct_sax(self):
        series = _sine(200, noise=0.05)
        disc = discretize(series, 40, 4, 3, strategy=NumerosityReduction.NONE)
        for sax in disc.words[:20]:
            direct = sax_word(series[sax.offset : sax.offset + 40], 4, 3)
            assert sax.word == direct

    def test_exact_reduction_removes_consecutive_duplicates(self):
        disc = discretize(_sine(), 60, 4, 4, strategy=NumerosityReduction.EXACT)
        for a, b in zip(disc.words, disc.words[1:]):
            assert a.word != b.word

    def test_exact_reduction_keeps_first_occurrence(self):
        series = _sine(300)
        none = discretize(series, 50, 4, 4, strategy=NumerosityReduction.NONE)
        exact = discretize(series, 50, 4, 4, strategy=NumerosityReduction.EXACT)
        raw_words = [w.word for w in none.words]
        for sax in exact.words:
            assert raw_words[sax.offset] == sax.word
            if sax.offset > 0:
                assert raw_words[sax.offset - 1] != sax.word

    def test_mindist_reduction_at_least_as_aggressive(self):
        series = _sine(noise=0.05, seed=3)
        exact = discretize(series, 60, 5, 6, strategy=NumerosityReduction.EXACT)
        mind = discretize(series, 60, 5, 6, strategy=NumerosityReduction.MINDIST)
        assert len(mind) <= len(exact)

    def test_reduction_ratio(self):
        series = _sine()
        disc = discretize(series, 60, 4, 4)
        assert 0.0 < disc.reduction_ratio() < 1.0
        none = discretize(series, 60, 4, 4, strategy=NumerosityReduction.NONE)
        assert none.reduction_ratio() == 0.0

    def test_series_too_short(self):
        with pytest.raises(DiscretizationError):
            discretize(np.arange(10.0), 20, 4, 4)

    def test_bad_paa(self):
        with pytest.raises(ParameterError):
            discretize(_sine(), 50, 60, 4)

    def test_bad_window(self):
        with pytest.raises(ParameterError):
            discretize(_sine(), 1, 1, 4)

    def test_bad_alphabet(self):
        with pytest.raises(ParameterError):
            discretize(_sine(), 50, 4, 1)

    def test_2d_rejected(self):
        with pytest.raises(ParameterError):
            discretize(np.zeros((10, 10)), 4, 2, 3)

    def test_constant_series_single_word(self):
        disc = discretize(np.full(100, 5.0), 20, 4, 4)
        assert len(disc) == 1
        assert disc.words[0].offset == 0

    @given(
        st.integers(0, 10_000),
        st.integers(10, 40),
        st.integers(2, 6),
        st.integers(3, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_tokens_cover_series(self, seed, window, paa, alpha):
        """First word starts at 0; every offset is a valid window start."""
        series = _sine(200, period=37, noise=0.1, seed=seed)
        disc = discretize(series, window, paa, alpha)
        assert disc.words[0].offset == 0
        assert all(0 <= w.offset <= 200 - window for w in disc.words)


class TestSpanToInterval:
    def test_single_token(self):
        disc = discretize(_sine(300), 50, 4, 4)
        start, end = disc.span_to_interval(0, 0)
        assert start == 0
        assert end == 50

    def test_full_span_clipped_to_series(self):
        disc = discretize(_sine(300), 50, 4, 4)
        last = len(disc) - 1
        start, end = disc.span_to_interval(0, last)
        assert start == 0
        assert end <= 300

    def test_interval_contains_all_spanned_windows(self):
        disc = discretize(_sine(300), 50, 4, 4)
        if len(disc) >= 3:
            start, end = disc.span_to_interval(1, 2)
            assert start == disc.words[1].offset
            assert end >= disc.words[2].offset + 1

    def test_out_of_range(self):
        disc = discretize(_sine(300), 50, 4, 4)
        with pytest.raises(ParameterError):
            disc.span_to_interval(0, len(disc))
        with pytest.raises(ParameterError):
            disc.span_to_interval(-1, 0)
        with pytest.raises(ParameterError):
            disc.span_to_interval(2, 1)


class TestSAXWordType:
    def test_frozen(self):
        word = SAXWord("abc", 3)
        with pytest.raises(AttributeError):
            word.word = "xyz"

    def test_tokens_helper(self):
        disc = discretize(_sine(300), 50, 4, 4)
        assert disc.tokens() == [w.word for w in disc.words]
